// Edge deployment scenario: train a model, export the packed INT4
// checkpoint an accelerator would consume, reload it on the "device", and
// serve inference with ODQ — reporting checkpoint size, accuracy, and the
// work the accelerator would perform (cycle-stepped engine).
//
// Run: ./build/examples/edge_deployment
#include <cstdio>
#include <memory>

#include "accel/cyclesim/layer_engine.hpp"
#include "accel/workload.hpp"
#include "core/odq.hpp"
#include "data/synthetic.hpp"
#include "drq/drq.hpp"
#include "nn/init.hpp"
#include "nn/models.hpp"
#include "nn/summary.hpp"
#include "nn/trainer.hpp"
#include "quant/qmodel_io.hpp"

int main() {
  using namespace odq;

  // --- Workstation side: train and export. ---
  data::SyntheticConfig dcfg;
  dcfg.num_classes = 10;
  auto data = data::make_synthetic_images(dcfg, 192, 64);

  nn::Model trainer_model = nn::make_resnet20(10, 4);
  nn::kaiming_init(trainer_model, 3);
  nn::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 16;
  tc.lr = 0.05f;
  tc.lr_step = 7;
  tc.lr_decay = 0.2f;
  nn::SgdTrainer(tc).train(trainer_model, data.train.images,
                           data.train.labels);
  const double fp32_acc = nn::evaluate_accuracy(
      trainer_model, data.test.images, data.test.labels);
  std::printf("trained %s: FP32 accuracy %.3f\n", trainer_model.name().c_str(),
              fp32_acc);

  // The paper's §3 acceptance loop before shipping: for each candidate
  // threshold (largest first, 0 = full-INT4 fallback), re-estimate BN
  // statistics, retrain briefly with ODQ in the loop (straight-through
  // estimator backward), and accept the largest threshold whose accuracy
  // meets the expectation.
  const std::string snapshot = "edge_fp32.bin";
  trainer_model.save(snapshot);
  float accepted_thr = 0.0f;
  const std::int64_t train_chw = 3 * 32 * 32;
  for (float thr : {0.05f, 0.02f, 0.0f}) {
    // Fresh model per candidate: restores the FP32 baseline *and* drops the
    // previous run's optimizer momentum (stale momentum wrecks a restarted
    // fine-tune).
    trainer_model = nn::make_resnet20(10, 4);
    trainer_model.load(snapshot);
    auto ft_exec = std::make_shared<core::OdqConvExecutor>(core::OdqConfig{});
    ft_exec->set_threshold(thr);
    trainer_model.set_conv_executor(ft_exec);
    for (int pass = 0; pass < 2; ++pass) {  // BN re-estimation
      for (std::int64_t b = 0; b + 16 <= data.train.size(); b += 16) {
        tensor::Tensor batch(
            tensor::Shape{16, 3, 32, 32},
            std::vector<float>(data.train.images.data() + b * train_chw,
                               data.train.images.data() + (b + 16) * train_chw));
        (void)trainer_model.forward(batch, /*train=*/true);
      }
    }
    nn::TrainConfig ft;
    ft.epochs = 3;
    ft.batch_size = 16;
    ft.lr = 0.01f;
    nn::SgdTrainer(ft).train(trainer_model, data.train.images,
                             data.train.labels);
    const double acc = nn::evaluate_accuracy(trainer_model, data.test.images,
                                             data.test.labels);
    std::printf("candidate threshold %.3f -> accuracy %.3f\n", thr, acc);
    if (acc >= fp32_acc - 0.05) {
      accepted_thr = thr;
      break;
    }
  }
  trainer_model.set_conv_executor(nullptr);
  std::remove(snapshot.c_str());
  std::printf("accepted threshold: %.3f\n", accepted_thr);

  const std::string ckpt = "edge_model.qbin";
  const std::int64_t qbytes = quant::save_quantized_model(trainer_model, ckpt);
  std::printf("exported packed INT4 checkpoint: %lld bytes "
              "(float parameters would be %lld bytes, %.1fx larger)\n",
              static_cast<long long>(qbytes),
              static_cast<long long>(trainer_model.num_parameters() * 4),
              static_cast<double>(trainer_model.num_parameters() * 4) /
                  static_cast<double>(qbytes));

  // --- Device side: reload and serve with ODQ. ---
  nn::Model device_model = nn::make_resnet20(10, 4);
  quant::load_quantized_model(device_model, ckpt);
  std::remove(ckpt.c_str());

  core::OdqConfig cfg;
  cfg.threshold = accepted_thr;
  auto exec = std::make_shared<core::OdqConvExecutor>(cfg);
  device_model.set_conv_executor(exec);
  const double odq_acc = nn::evaluate_accuracy(
      device_model, data.test.images, data.test.labels);

  double sens = 0.0;
  for (std::size_t i = 0; i < exec->num_layers_seen(); ++i) {
    sens += exec->layer_stats(static_cast<int>(i)).sensitive_fraction();
  }
  sens /= static_cast<double>(exec->num_layers_seen());
  std::printf("device inference (ODQ, threshold %.2f): accuracy %.3f, "
              "%.0f%% of outputs at full INT4\n",
              cfg.threshold, odq_acc, 100.0 * sens);

  // --- What the accelerator does with it. ---
  drq::DrqConfig drq_cfg;
  drq_cfg.calibrate_quantile = 0.5;
  tensor::Tensor sample(
      tensor::Shape{2, 3, 32, 32},
      std::vector<float>(data.test.images.data(),
                         data.test.images.data() + 2 * 3 * 32 * 32));
  auto workloads =
      accel::extract_workloads(device_model, sample, cfg, drq_cfg);
  const auto sim = accel::cyclesim::simulate_network(workloads, {});
  std::printf("cycle-stepped accelerator estimate: %lld cycles/image "
              "(%.2f ms at 1 GHz), PE idle %.1f%%, DRAM %.1f KB/image\n",
              static_cast<long long>(sim.cycles),
              static_cast<double>(sim.cycles) / 1e6,
              100.0 * sim.idle_fraction(), sim.dram_bytes / 1024.0);
  return 0;
}
