// Quickstart: the ODQ pipeline on a single convolution.
//
//   1. Quantize an activation map and a weight filter to INT4.
//   2. Split both into high/low 2-bit halves (Eq. 3).
//   3. Run the sensitivity predictor (I_HBS x W_HBS), threshold the result
//      into a bit mask, and let the executor finish only the sensitive
//      outputs.
//   4. Compare against the full INT4 convolution: sensitive outputs are
//      bit-exact; insensitive outputs keep the cheap predictor value.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "core/odq.hpp"
#include "quant/quantizer.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

int main() {
  using namespace odq;
  util::Rng rng(1);

  // A toy layer: 8 input channels, 16 filters, 16x16 feature map.
  tensor::Tensor activations(tensor::Shape{1, 8, 16, 16});
  for (std::int64_t i = 0; i < activations.numel(); ++i) {
    activations[i] = rng.uniform_f(0.0f, 1.0f);
  }
  tensor::Tensor weights(tensor::Shape{16, 8, 3, 3});
  for (std::int64_t i = 0; i < weights.numel(); ++i) {
    weights[i] = rng.normal_f(0.0f, 0.3f);
  }

  // Steps 1-2: FP32 -> INT4 codes; the split happens inside odq_conv.
  quant::QTensor qin = quant::quantize_activations(activations, 4);
  quant::QTensor qw = quant::quantize_weights(weights, 4);
  std::printf("quantized: input scale %.5f, weight scale %.5f\n", qin.scale,
              qw.scale);

  // Steps 3-4: one-shot predict + execute.
  core::OdqConfig cfg;
  cfg.threshold = 0.25f;
  core::OdqConvResult r = core::odq_conv(qin, qw, /*stride=*/1, /*pad=*/1, cfg);

  std::printf("outputs: %lld, sensitive: %lld (%.1f%%)\n",
              static_cast<long long>(r.stats.outputs),
              static_cast<long long>(r.stats.sensitive),
              100.0 * r.stats.sensitive_fraction());
  std::printf("predictor INT2 MACs: %lld, executor remaining MACs: %lld\n",
              static_cast<long long>(r.stats.predictor_macs),
              static_cast<long long>(r.stats.executor_macs));

  // Verify the contract against the full INT4 convolution.
  tensor::TensorI32 full = quant::conv2d_i8(qin.q, qw.q, 1, 1);
  std::int64_t exact = 0, approximate = 0;
  double max_insens_err = 0.0;
  for (std::int64_t i = 0; i < full.numel(); ++i) {
    if (r.mask[i] != 0) {
      if (r.acc[i] == full[i]) ++exact;
    } else {
      ++approximate;
      max_insens_err = std::max(
          max_insens_err,
          static_cast<double>(std::abs(r.acc[i] - full[i])) * r.scale);
    }
  }
  std::printf("sensitive outputs bit-exact vs full INT4: %lld / %lld\n",
              static_cast<long long>(exact),
              static_cast<long long>(r.stats.sensitive));
  std::printf("insensitive outputs: %lld, worst dequantized deviation %.4f "
              "(below the %.2f threshold by construction of the predictor)\n",
              static_cast<long long>(approximate), max_insens_err,
              cfg.threshold);

  const double saved =
      1.0 - static_cast<double>(r.stats.executor_macs) /
                static_cast<double>(r.stats.predictor_macs * 3);
  std::printf("executor work skipped: %.1f%% of the worst case\n",
              100.0 * saved);
  return 0;
}
