// Adaptive threshold selection (paper §3): calibrate an initial threshold
// from the predictor-output distribution, retrain with the threshold in the
// loop, and halve until accuracy meets the tolerance. Prints the full search
// trace.
//
// Run: ./build/examples/threshold_tuning [tolerance]
#include <cstdio>
#include <cstdlib>

#include "core/threshold_search.hpp"
#include "data/synthetic.hpp"
#include "nn/init.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"

int main(int argc, char** argv) {
  using namespace odq;
  const double tolerance = argc > 1 ? std::atof(argv[1]) : 0.05;

  data::SyntheticConfig dcfg;
  dcfg.num_classes = 10;
  auto data = data::make_synthetic_images(dcfg, 128, 64);

  nn::Model model = nn::make_resnet20(10, 4);
  nn::kaiming_init(model, 9);
  nn::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 16;
  tc.lr = 0.05f;
  nn::SgdTrainer(tc).train(model, data.train.images, data.train.labels);
  const double ref =
      nn::evaluate_accuracy(model, data.test.images, data.test.labels);
  std::printf("FP32 reference accuracy: %.3f, tolerance %.3f\n", ref,
              tolerance);

  core::ThresholdSearchConfig scfg;
  scfg.accuracy_tolerance = tolerance;
  scfg.init_percentile = 0.9;
  scfg.max_iterations = 6;
  scfg.finetune_epochs = 1;
  scfg.finetune.batch_size = 16;
  scfg.finetune.lr = 0.01f;

  core::OdqConfig base;
  const auto res =
      core::search_threshold(model, data.train, data.test, ref, base, scfg);

  std::printf("\nsearch trace (threshold halves until accuracy recovers):\n");
  std::printf("%-6s %-12s %-10s %s\n", "iter", "threshold", "accuracy",
              "mean sensitive %");
  for (std::size_t i = 0; i < res.trace.size(); ++i) {
    std::printf("%-6zu %-12.5f %-10.3f %.1f\n", i + 1, res.trace[i].threshold,
                res.trace[i].accuracy,
                100.0 * res.trace[i].sensitive_fraction);
  }
  std::printf("\nselected threshold: %.5f (accuracy %.3f, %s after %d "
              "iterations)\n",
              res.threshold, res.accuracy,
              res.converged ? "converged" : "best-effort", res.iterations);
  std::printf("the paper's Table 3 records exactly this per-model value "
              "(0.5 / 0.5 / 0.3 / 0.05 at paper scale)\n");
  return 0;
}
