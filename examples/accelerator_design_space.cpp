// Explore the ODQ accelerator design space: PE-array allocation, static vs
// dynamic scheduling, and sensitivity of execution time / energy / idleness
// to the sensitive-output fraction — the knobs §4 of the paper designs for.
//
// Run: ./build/examples/accelerator_design_space
#include <cstdio>

#include "accel/simulator.hpp"

int main() {
  using namespace odq::accel;

  // A representative conv layer: 32 output channels, 32x32 map, 3x3 kernel
  // over 32 input channels.
  auto layer_with_sensitivity = [](double s) {
    ConvWorkload wl;
    wl.name = "conv3x3";
    wl.out_channels = 32;
    wl.out_elems = 32 * 32 * 32;
    wl.macs_per_out = 32 * 9;
    wl.total_macs = wl.out_elems * wl.macs_per_out;
    wl.input_elems = 32 * 32 * 32;
    wl.weight_elems = 32 * 32 * 9;
    wl.odq_sensitive_fraction = s;
    wl.drq_sensitive_input_fraction = 0.5;
    wl.sensitive_per_channel.assign(
        32, static_cast<std::int64_t>(s * wl.out_elems / 32));
    return wl;
  };

  std::printf("== Table-1 design space: allocation vs sensitive fraction ==\n");
  std::printf("%-12s", "sens.frac");
  for (const auto& a : valid_allocations()) {
    std::printf("  P%02d/E%02d", a.predictor_arrays, a.executor_arrays);
  }
  std::printf("   chosen\n");
  for (double s : {0.05, 0.10, 0.20, 0.30, 0.45, 0.60}) {
    std::printf("%-12.2f", s);
    const std::vector<ConvWorkload> wls{layer_with_sensitivity(s)};
    for (const auto& a : valid_allocations()) {
      SimOptions opts;
      opts.dynamic_allocation = false;
      opts.static_allocation = a;
      const double cycles = simulate(odq_accelerator(), wls, opts).total_cycles;
      std::printf("  %7.0f", cycles);
    }
    const PeAllocation chosen = choose_allocation(s);
    std::printf("   P%d/E%d\n", chosen.predictor_arrays,
                chosen.executor_arrays);
  }

  std::printf("\n== static vs dynamic workload scheduling (skewed channels) "
              "==\n");
  // Skew sensitive outputs into a few channels, as real masks do.
  ConvWorkload skewed = layer_with_sensitivity(0.25);
  for (std::size_t c = 0; c < skewed.sensitive_per_channel.size(); ++c) {
    skewed.sensitive_per_channel[c] = c < 4 ? 2048 : 64;
  }
  const std::vector<ConvWorkload> wls{skewed};
  SimOptions dyn;
  SimOptions stat = dyn;
  stat.dynamic_workload_schedule = false;
  const auto rd = simulate(odq_accelerator(), wls, dyn);
  const auto rs = simulate(odq_accelerator(), wls, stat);
  std::printf("static schedule : %.0f cycles, %.1f%% idle\n", rs.total_cycles,
              100.0 * rs.idle_pe_fraction);
  std::printf("dynamic schedule: %.0f cycles, %.1f%% idle  (crossbar "
              "longest-workload-first, Fig. 16)\n",
              rd.total_cycles, 100.0 * rd.idle_pe_fraction);

  std::printf("\n== accelerator comparison on this layer ==\n");
  for (const auto& cfg : table2_configs()) {
    const auto r = simulate(cfg, wls);
    std::printf("%-6s: %10.0f cycles, %8.1f nJ (dram %5.1f / buffer %5.1f / "
                "core %5.1f)\n",
                cfg.name.c_str(), r.total_cycles, r.energy.total_pj() / 1e3,
                r.energy.dram_pj / 1e3, r.energy.buffer_pj / 1e3,
                r.energy.core_pj / 1e3);
  }
  return 0;
}
