// End-to-end image classification with ODQ: train a CIFAR-style ResNet on
// the synthetic dataset, then compare FP32, static INT8, DRQ, and ODQ
// inference accuracy and the work each scheme performs.
//
// Run: ./build/examples/classify_synthetic [epochs]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/odq.hpp"
#include "data/synthetic.hpp"
#include "drq/drq.hpp"
#include "nn/init.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "quant/static_executor.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace odq;
  const std::int64_t epochs = argc > 1 ? std::atoll(argv[1]) : 10;

  data::SyntheticConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.noise = 0.05f;
  auto data = data::make_synthetic_images(dcfg, 128, 64);
  std::printf("dataset: %lld train / %lld test images, %d classes\n",
              static_cast<long long>(data.train.size()),
              static_cast<long long>(data.test.size()),
              data.train.num_classes);

  nn::Model model = nn::make_resnet20(10, /*base_width=*/4);
  nn::kaiming_init(model, 42);
  std::printf("model: %s, %lld parameters, %zu conv layers\n",
              model.name().c_str(),
              static_cast<long long>(model.num_parameters()),
              model.convs().size());

  util::WallTimer timer;
  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 16;
  tc.lr = 0.05f;
  tc.lr_step = std::max<std::int64_t>(1, epochs * 2 / 3);
  tc.lr_decay = 0.2f;
  tc.verbose = true;
  nn::SgdTrainer(tc).train(model, data.train.images, data.train.labels);
  std::printf("trained %lld epochs in %.1fs\n",
              static_cast<long long>(epochs), timer.seconds());

  auto eval = [&](const char* tag, std::shared_ptr<nn::ConvExecutor> exec) {
    model.set_conv_executor(std::move(exec));
    util::WallTimer t;
    const double acc =
        nn::evaluate_accuracy(model, data.test.images, data.test.labels);
    std::printf("%-22s accuracy %.3f   (eval %.2fs)\n", tag, acc, t.seconds());
    model.set_conv_executor(nullptr);
    return acc;
  };

  eval("FP32", nullptr);
  eval("static INT8 (DoReFa)",
       std::make_shared<quant::StaticQuantConvExecutor>(8));
  eval("static INT4 (DoReFa)",
       std::make_shared<quant::StaticQuantConvExecutor>(4));

  drq::DrqConfig dq;
  dq.input_threshold = 0.25f;
  eval("DRQ INT8-INT4", std::make_shared<drq::DrqConvExecutor>(dq));

  // ODQ needs the paper's retraining step: BN re-estimation plus a short
  // fine-tune per candidate threshold, accepting the largest that holds
  // accuracy (full recipe in examples/edge_deployment.cpp and
  // docs/training.md).
  const double fp32_acc =
      nn::evaluate_accuracy(model, data.test.images, data.test.labels);
  const std::string snap = "classify_snapshot.bin";
  model.save(snap);
  const std::int64_t chw = 3 * 32 * 32;
  for (float thr : {0.05f, 0.0f}) {
    nn::Model qat = nn::make_resnet20(10, /*base_width=*/4);
    qat.load(snap);
    core::OdqConfig oc;
    oc.threshold = thr;
    auto odq_exec = std::make_shared<core::OdqConvExecutor>(oc);
    qat.set_conv_executor(odq_exec);
    for (int pass = 0; pass < 2; ++pass) {  // BN re-estimation
      for (std::int64_t b = 0; b + 16 <= data.train.size(); b += 16) {
        tensor::Tensor batch(
            tensor::Shape{16, 3, 32, 32},
            std::vector<float>(data.train.images.data() + b * chw,
                               data.train.images.data() + (b + 16) * chw));
        (void)qat.forward(batch, /*train=*/true);
      }
    }
    nn::TrainConfig ft;
    ft.epochs = 2;
    ft.batch_size = 16;
    ft.lr = 0.01f;
    nn::SgdTrainer(ft).train(qat, data.train.images, data.train.labels);
    odq_exec->reset_stats();
    const double odq_acc =
        nn::evaluate_accuracy(qat, data.test.images, data.test.labels);
    double sens = 0.0;
    for (std::size_t i = 0; i < odq_exec->num_layers_seen(); ++i) {
      sens += odq_exec->layer_stats(static_cast<int>(i)).sensitive_fraction();
    }
    sens /= static_cast<double>(odq_exec->num_layers_seen());
    std::printf("%-22s accuracy %.3f   (thr %.2f: %.0f%% outputs full INT4, "
                "%.0f%% predictor-only INT2)\n",
                "ODQ INT4-INT2 (tuned)", odq_acc, thr, 100.0 * sens,
                100.0 * (1.0 - sens));
    if (odq_acc >= fp32_acc - 0.05) break;  // accepted
  }
  std::remove(snap.c_str());
  return 0;
}
