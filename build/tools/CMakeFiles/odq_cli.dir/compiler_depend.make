# Empty compiler generated dependencies file for odq_cli.
# This may be replaced when dependencies are built.
