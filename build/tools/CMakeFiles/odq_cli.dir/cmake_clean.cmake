file(REMOVE_RECURSE
  "CMakeFiles/odq_cli.dir/odq_cli.cpp.o"
  "CMakeFiles/odq_cli.dir/odq_cli.cpp.o.d"
  "odq_cli"
  "odq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
