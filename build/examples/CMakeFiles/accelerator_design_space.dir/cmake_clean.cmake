file(REMOVE_RECURSE
  "CMakeFiles/accelerator_design_space.dir/accelerator_design_space.cpp.o"
  "CMakeFiles/accelerator_design_space.dir/accelerator_design_space.cpp.o.d"
  "accelerator_design_space"
  "accelerator_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
