# Empty dependencies file for accelerator_design_space.
# This may be replaced when dependencies are built.
