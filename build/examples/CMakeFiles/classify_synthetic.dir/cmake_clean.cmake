file(REMOVE_RECURSE
  "CMakeFiles/classify_synthetic.dir/classify_synthetic.cpp.o"
  "CMakeFiles/classify_synthetic.dir/classify_synthetic.cpp.o.d"
  "classify_synthetic"
  "classify_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
