# Empty dependencies file for classify_synthetic.
# This may be replaced when dependencies are built.
