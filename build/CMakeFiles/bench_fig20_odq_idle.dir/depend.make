# Empty dependencies file for bench_fig20_odq_idle.
# This may be replaced when dependencies are built.
