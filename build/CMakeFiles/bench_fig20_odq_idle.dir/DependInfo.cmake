
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig20_odq_idle.cpp" "CMakeFiles/bench_fig20_odq_idle.dir/bench/bench_fig20_odq_idle.cpp.o" "gcc" "CMakeFiles/bench_fig20_odq_idle.dir/bench/bench_fig20_odq_idle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/odq_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/odq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
