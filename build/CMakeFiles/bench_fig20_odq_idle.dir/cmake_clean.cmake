file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_odq_idle.dir/bench/bench_fig20_odq_idle.cpp.o"
  "CMakeFiles/bench_fig20_odq_idle.dir/bench/bench_fig20_odq_idle.cpp.o.d"
  "bench/bench_fig20_odq_idle"
  "bench/bench_fig20_odq_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_odq_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
