file(REMOVE_RECURSE
  "CMakeFiles/odq_bench_common.dir/bench/common.cpp.o"
  "CMakeFiles/odq_bench_common.dir/bench/common.cpp.o.d"
  "libodq_bench_common.a"
  "libodq_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odq_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
