# Empty compiler generated dependencies file for odq_bench_common.
# This may be replaced when dependencies are built.
