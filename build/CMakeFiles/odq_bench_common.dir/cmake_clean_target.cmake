file(REMOVE_RECURSE
  "libodq_bench_common.a"
)
