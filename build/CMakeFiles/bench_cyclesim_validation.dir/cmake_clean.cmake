file(REMOVE_RECURSE
  "CMakeFiles/bench_cyclesim_validation.dir/bench/bench_cyclesim_validation.cpp.o"
  "CMakeFiles/bench_cyclesim_validation.dir/bench/bench_cyclesim_validation.cpp.o.d"
  "bench/bench_cyclesim_validation"
  "bench/bench_cyclesim_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cyclesim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
