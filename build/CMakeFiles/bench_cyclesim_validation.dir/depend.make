# Empty dependencies file for bench_cyclesim_validation.
# This may be replaced when dependencies are built.
