file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_precision_loss.dir/bench/bench_fig03_precision_loss.cpp.o"
  "CMakeFiles/bench_fig03_precision_loss.dir/bench/bench_fig03_precision_loss.cpp.o.d"
  "bench/bench_fig03_precision_loss"
  "bench/bench_fig03_precision_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_precision_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
