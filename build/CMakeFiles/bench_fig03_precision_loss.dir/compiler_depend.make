# Empty compiler generated dependencies file for bench_fig03_precision_loss.
# This may be replaced when dependencies are built.
