file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_static_idle.dir/bench/bench_fig11_static_idle.cpp.o"
  "CMakeFiles/bench_fig11_static_idle.dir/bench/bench_fig11_static_idle.cpp.o.d"
  "bench/bench_fig11_static_idle"
  "bench/bench_fig11_static_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_static_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
