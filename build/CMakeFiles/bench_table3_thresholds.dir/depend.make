# Empty dependencies file for bench_table3_thresholds.
# This may be replaced when dependencies are built.
