file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_thresholds.dir/bench/bench_table3_thresholds.cpp.o"
  "CMakeFiles/bench_table3_thresholds.dir/bench/bench_table3_thresholds.cpp.o.d"
  "bench/bench_table3_thresholds"
  "bench/bench_table3_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
