file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_10_insensitive.dir/bench/bench_fig09_10_insensitive.cpp.o"
  "CMakeFiles/bench_fig09_10_insensitive.dir/bench/bench_fig09_10_insensitive.cpp.o.d"
  "bench/bench_fig09_10_insensitive"
  "bench/bench_fig09_10_insensitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_10_insensitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
