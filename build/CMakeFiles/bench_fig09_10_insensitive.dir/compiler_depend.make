# Empty compiler generated dependencies file for bench_fig09_10_insensitive.
# This may be replaced when dependencies are built.
