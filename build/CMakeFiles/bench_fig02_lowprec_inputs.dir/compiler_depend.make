# Empty compiler generated dependencies file for bench_fig02_lowprec_inputs.
# This may be replaced when dependencies are built.
