file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_lowprec_inputs.dir/bench/bench_fig02_lowprec_inputs.cpp.o"
  "CMakeFiles/bench_fig02_lowprec_inputs.dir/bench/bench_fig02_lowprec_inputs.cpp.o.d"
  "bench/bench_fig02_lowprec_inputs"
  "bench/bench_fig02_lowprec_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_lowprec_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
