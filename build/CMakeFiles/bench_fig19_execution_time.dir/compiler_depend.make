# Empty compiler generated dependencies file for bench_fig19_execution_time.
# This may be replaced when dependencies are built.
