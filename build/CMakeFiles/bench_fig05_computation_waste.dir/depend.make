# Empty dependencies file for bench_fig05_computation_waste.
# This may be replaced when dependencies are built.
