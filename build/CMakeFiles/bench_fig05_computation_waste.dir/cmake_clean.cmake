file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_computation_waste.dir/bench/bench_fig05_computation_waste.cpp.o"
  "CMakeFiles/bench_fig05_computation_waste.dir/bench/bench_fig05_computation_waste.cpp.o.d"
  "bench/bench_fig05_computation_waste"
  "bench/bench_fig05_computation_waste.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_computation_waste.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
