file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_highprec_inputs.dir/bench/bench_fig04_highprec_inputs.cpp.o"
  "CMakeFiles/bench_fig04_highprec_inputs.dir/bench/bench_fig04_highprec_inputs.cpp.o.d"
  "bench/bench_fig04_highprec_inputs"
  "bench/bench_fig04_highprec_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_highprec_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
