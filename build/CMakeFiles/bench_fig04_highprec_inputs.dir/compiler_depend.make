# Empty compiler generated dependencies file for bench_fig04_highprec_inputs.
# This may be replaced when dependencies are built.
