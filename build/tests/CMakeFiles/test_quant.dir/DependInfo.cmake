
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/quant/test_bitsplit.cpp" "tests/CMakeFiles/test_quant.dir/quant/test_bitsplit.cpp.o" "gcc" "tests/CMakeFiles/test_quant.dir/quant/test_bitsplit.cpp.o.d"
  "/root/repo/tests/quant/test_conv_i8.cpp" "tests/CMakeFiles/test_quant.dir/quant/test_conv_i8.cpp.o" "gcc" "tests/CMakeFiles/test_quant.dir/quant/test_conv_i8.cpp.o.d"
  "/root/repo/tests/quant/test_packing.cpp" "tests/CMakeFiles/test_quant.dir/quant/test_packing.cpp.o" "gcc" "tests/CMakeFiles/test_quant.dir/quant/test_packing.cpp.o.d"
  "/root/repo/tests/quant/test_qmodel_io.cpp" "tests/CMakeFiles/test_quant.dir/quant/test_qmodel_io.cpp.o" "gcc" "tests/CMakeFiles/test_quant.dir/quant/test_qmodel_io.cpp.o.d"
  "/root/repo/tests/quant/test_quantizer.cpp" "tests/CMakeFiles/test_quant.dir/quant/test_quantizer.cpp.o" "gcc" "tests/CMakeFiles/test_quant.dir/quant/test_quantizer.cpp.o.d"
  "/root/repo/tests/quant/test_static_executor.cpp" "tests/CMakeFiles/test_quant.dir/quant/test_static_executor.cpp.o" "gcc" "tests/CMakeFiles/test_quant.dir/quant/test_static_executor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/odq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
