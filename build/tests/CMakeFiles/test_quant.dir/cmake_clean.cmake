file(REMOVE_RECURSE
  "CMakeFiles/test_quant.dir/quant/test_bitsplit.cpp.o"
  "CMakeFiles/test_quant.dir/quant/test_bitsplit.cpp.o.d"
  "CMakeFiles/test_quant.dir/quant/test_conv_i8.cpp.o"
  "CMakeFiles/test_quant.dir/quant/test_conv_i8.cpp.o.d"
  "CMakeFiles/test_quant.dir/quant/test_packing.cpp.o"
  "CMakeFiles/test_quant.dir/quant/test_packing.cpp.o.d"
  "CMakeFiles/test_quant.dir/quant/test_qmodel_io.cpp.o"
  "CMakeFiles/test_quant.dir/quant/test_qmodel_io.cpp.o.d"
  "CMakeFiles/test_quant.dir/quant/test_quantizer.cpp.o"
  "CMakeFiles/test_quant.dir/quant/test_quantizer.cpp.o.d"
  "CMakeFiles/test_quant.dir/quant/test_static_executor.cpp.o"
  "CMakeFiles/test_quant.dir/quant/test_static_executor.cpp.o.d"
  "test_quant"
  "test_quant.pdb"
  "test_quant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
