file(REMOVE_RECURSE
  "CMakeFiles/test_accel.dir/accel/test_allocation.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_allocation.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_cyclesim.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_cyclesim.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_energy.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_energy.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_scheduler.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_scheduler.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_simulator.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_simulator.cpp.o.d"
  "CMakeFiles/test_accel.dir/accel/test_workload.cpp.o"
  "CMakeFiles/test_accel.dir/accel/test_workload.cpp.o.d"
  "test_accel"
  "test_accel.pdb"
  "test_accel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
