
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/accel/test_allocation.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_allocation.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_allocation.cpp.o.d"
  "/root/repo/tests/accel/test_cyclesim.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_cyclesim.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_cyclesim.cpp.o.d"
  "/root/repo/tests/accel/test_energy.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_energy.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_energy.cpp.o.d"
  "/root/repo/tests/accel/test_scheduler.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_scheduler.cpp.o.d"
  "/root/repo/tests/accel/test_simulator.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_simulator.cpp.o.d"
  "/root/repo/tests/accel/test_workload.cpp" "tests/CMakeFiles/test_accel.dir/accel/test_workload.cpp.o" "gcc" "tests/CMakeFiles/test_accel.dir/accel/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/odq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
