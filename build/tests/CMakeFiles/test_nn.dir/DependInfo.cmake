
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/test_blocks.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_blocks.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_blocks.cpp.o.d"
  "/root/repo/tests/nn/test_gradients.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_gradients.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_gradients.cpp.o.d"
  "/root/repo/tests/nn/test_layers.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_layers.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_layers.cpp.o.d"
  "/root/repo/tests/nn/test_models.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_models.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_models.cpp.o.d"
  "/root/repo/tests/nn/test_serialization.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_serialization.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_serialization.cpp.o.d"
  "/root/repo/tests/nn/test_summary.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_summary.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_summary.cpp.o.d"
  "/root/repo/tests/nn/test_training.cpp" "tests/CMakeFiles/test_nn.dir/nn/test_training.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/odq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
