file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_odq.cpp.o"
  "CMakeFiles/test_core.dir/core/test_odq.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_odq_invariants.cpp.o"
  "CMakeFiles/test_core.dir/core/test_odq_invariants.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_odq_precisions.cpp.o"
  "CMakeFiles/test_core.dir/core/test_odq_precisions.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_threshold_search.cpp.o"
  "CMakeFiles/test_core.dir/core/test_threshold_search.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
