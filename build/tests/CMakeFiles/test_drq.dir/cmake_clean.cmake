file(REMOVE_RECURSE
  "CMakeFiles/test_drq.dir/drq/test_analysis.cpp.o"
  "CMakeFiles/test_drq.dir/drq/test_analysis.cpp.o.d"
  "CMakeFiles/test_drq.dir/drq/test_drq.cpp.o"
  "CMakeFiles/test_drq.dir/drq/test_drq.cpp.o.d"
  "test_drq"
  "test_drq.pdb"
  "test_drq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
