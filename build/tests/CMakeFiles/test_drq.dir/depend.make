# Empty dependencies file for test_drq.
# This may be replaced when dependencies are built.
