# Empty compiler generated dependencies file for odq.
# This may be replaced when dependencies are built.
