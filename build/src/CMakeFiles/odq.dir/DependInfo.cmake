
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/allocation.cpp" "src/CMakeFiles/odq.dir/accel/allocation.cpp.o" "gcc" "src/CMakeFiles/odq.dir/accel/allocation.cpp.o.d"
  "/root/repo/src/accel/config.cpp" "src/CMakeFiles/odq.dir/accel/config.cpp.o" "gcc" "src/CMakeFiles/odq.dir/accel/config.cpp.o.d"
  "/root/repo/src/accel/cyclesim/crossbar.cpp" "src/CMakeFiles/odq.dir/accel/cyclesim/crossbar.cpp.o" "gcc" "src/CMakeFiles/odq.dir/accel/cyclesim/crossbar.cpp.o.d"
  "/root/repo/src/accel/cyclesim/dram_channel.cpp" "src/CMakeFiles/odq.dir/accel/cyclesim/dram_channel.cpp.o" "gcc" "src/CMakeFiles/odq.dir/accel/cyclesim/dram_channel.cpp.o.d"
  "/root/repo/src/accel/cyclesim/layer_engine.cpp" "src/CMakeFiles/odq.dir/accel/cyclesim/layer_engine.cpp.o" "gcc" "src/CMakeFiles/odq.dir/accel/cyclesim/layer_engine.cpp.o.d"
  "/root/repo/src/accel/cyclesim/line_buffer.cpp" "src/CMakeFiles/odq.dir/accel/cyclesim/line_buffer.cpp.o" "gcc" "src/CMakeFiles/odq.dir/accel/cyclesim/line_buffer.cpp.o.d"
  "/root/repo/src/accel/cyclesim/pe_array.cpp" "src/CMakeFiles/odq.dir/accel/cyclesim/pe_array.cpp.o" "gcc" "src/CMakeFiles/odq.dir/accel/cyclesim/pe_array.cpp.o.d"
  "/root/repo/src/accel/scheduler.cpp" "src/CMakeFiles/odq.dir/accel/scheduler.cpp.o" "gcc" "src/CMakeFiles/odq.dir/accel/scheduler.cpp.o.d"
  "/root/repo/src/accel/simulator.cpp" "src/CMakeFiles/odq.dir/accel/simulator.cpp.o" "gcc" "src/CMakeFiles/odq.dir/accel/simulator.cpp.o.d"
  "/root/repo/src/accel/workload.cpp" "src/CMakeFiles/odq.dir/accel/workload.cpp.o" "gcc" "src/CMakeFiles/odq.dir/accel/workload.cpp.o.d"
  "/root/repo/src/core/odq.cpp" "src/CMakeFiles/odq.dir/core/odq.cpp.o" "gcc" "src/CMakeFiles/odq.dir/core/odq.cpp.o.d"
  "/root/repo/src/core/threshold_search.cpp" "src/CMakeFiles/odq.dir/core/threshold_search.cpp.o" "gcc" "src/CMakeFiles/odq.dir/core/threshold_search.cpp.o.d"
  "/root/repo/src/data/augment.cpp" "src/CMakeFiles/odq.dir/data/augment.cpp.o" "gcc" "src/CMakeFiles/odq.dir/data/augment.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/odq.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/odq.dir/data/synthetic.cpp.o.d"
  "/root/repo/src/drq/drq.cpp" "src/CMakeFiles/odq.dir/drq/drq.cpp.o" "gcc" "src/CMakeFiles/odq.dir/drq/drq.cpp.o.d"
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/odq.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/odq.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/CMakeFiles/odq.dir/nn/batchnorm.cpp.o" "gcc" "src/CMakeFiles/odq.dir/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/blocks.cpp" "src/CMakeFiles/odq.dir/nn/blocks.cpp.o" "gcc" "src/CMakeFiles/odq.dir/nn/blocks.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/CMakeFiles/odq.dir/nn/conv2d.cpp.o" "gcc" "src/CMakeFiles/odq.dir/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/CMakeFiles/odq.dir/nn/init.cpp.o" "gcc" "src/CMakeFiles/odq.dir/nn/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/odq.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/odq.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/odq.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/odq.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/CMakeFiles/odq.dir/nn/model.cpp.o" "gcc" "src/CMakeFiles/odq.dir/nn/model.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/CMakeFiles/odq.dir/nn/models.cpp.o" "gcc" "src/CMakeFiles/odq.dir/nn/models.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/CMakeFiles/odq.dir/nn/pooling.cpp.o" "gcc" "src/CMakeFiles/odq.dir/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/summary.cpp" "src/CMakeFiles/odq.dir/nn/summary.cpp.o" "gcc" "src/CMakeFiles/odq.dir/nn/summary.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/CMakeFiles/odq.dir/nn/trainer.cpp.o" "gcc" "src/CMakeFiles/odq.dir/nn/trainer.cpp.o.d"
  "/root/repo/src/quant/bitsplit.cpp" "src/CMakeFiles/odq.dir/quant/bitsplit.cpp.o" "gcc" "src/CMakeFiles/odq.dir/quant/bitsplit.cpp.o.d"
  "/root/repo/src/quant/packing.cpp" "src/CMakeFiles/odq.dir/quant/packing.cpp.o" "gcc" "src/CMakeFiles/odq.dir/quant/packing.cpp.o.d"
  "/root/repo/src/quant/qmodel_io.cpp" "src/CMakeFiles/odq.dir/quant/qmodel_io.cpp.o" "gcc" "src/CMakeFiles/odq.dir/quant/qmodel_io.cpp.o.d"
  "/root/repo/src/quant/quantizer.cpp" "src/CMakeFiles/odq.dir/quant/quantizer.cpp.o" "gcc" "src/CMakeFiles/odq.dir/quant/quantizer.cpp.o.d"
  "/root/repo/src/quant/static_executor.cpp" "src/CMakeFiles/odq.dir/quant/static_executor.cpp.o" "gcc" "src/CMakeFiles/odq.dir/quant/static_executor.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/odq.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/odq.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/odq.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/odq.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/odq.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/odq.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/odq.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/odq.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/odq.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/odq.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
