file(REMOVE_RECURSE
  "libodq.a"
)
