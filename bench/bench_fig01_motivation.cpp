// Figure 1: the motivating example — input-directed quantization on LeNet-5
// (MNIST-like data) produces (1) sensitive outputs computed from mostly
// insensitive (low-precision) inputs, hurting accuracy, and (2) insensitive
// outputs computed from mostly sensitive (high-precision) inputs, wasting
// computation. This bench counts both cases per conv layer.
#include <sys/stat.h>

#include <cstdio>
#include <memory>

#include "common.hpp"
#include "nn/init.hpp"
#include "nn/models.hpp"

int main() {
  using namespace odq;
  bench::print_header(
      "bench_fig01_motivation",
      "Figure 1 (input-directed quantization inefficiency, LeNet-5/MNIST)");

  // Train (or load) LeNet-5 on the synthetic MNIST stand-in.
  auto data = data::make_synthetic_digits(128, 64);
  nn::Model model = nn::make_lenet5();
  const std::string cache = "bench_cache/lenet5_digits.bin";
  ::mkdir("bench_cache", 0755);
  struct stat st{};
  if (::stat(cache.c_str(), &st) == 0) {
    model.load(cache);
  } else {
    nn::kaiming_init(model, 21);
    nn::TrainConfig tc;
    tc.epochs = 5;
    tc.batch_size = 16;
    tc.lr = 0.05f;
    nn::SgdTrainer(tc).train(model, data.train.images, data.train.labels);
    model.save(cache);
  }
  const double acc =
      nn::evaluate_accuracy(model, data.test.images, data.test.labels);
  std::printf("LeNet-5 FP32 accuracy on synthetic digits: %.3f\n\n", acc);

  // Cache conv inputs with one forward, then analyze each conv layer.
  std::vector<nn::Conv2d*> convs = model.assign_conv_ids();
  auto exec = std::make_shared<drq::DrqConvExecutor>(bench::default_drq_config());
  model.set_conv_executor(exec);
  tensor::Tensor batch(
      tensor::Shape{2, 1, 28, 28},
      std::vector<float>(data.test.images.data(),
                         data.test.images.data() + 2 * 28 * 28));
  (void)model.forward(batch, false);
  model.set_conv_executor(nullptr);

  std::printf("%-6s %-34s %s\n", "layer",
              "case(1): sens. out, >50% lo inputs",
              "case(2): insens. out, >50% hi inputs");
  bench::print_rule();
  for (nn::Conv2d* conv : convs) {
    drq::DrqConfig cfg = bench::default_drq_config();
    cfg.input_threshold =
        drq::calibrate_input_threshold(conv->cached_input(), cfg, 0.5);
    const tensor::Tensor empty_bias;
    const tensor::Tensor& bias =
        conv->bias() != nullptr ? conv->bias()->value : empty_bias;
    const drq::LayerAnalysis a = drq::analyze_layer(
        conv->cached_input(), conv->weight().value, bias, conv->stride(),
        conv->pad(), cfg, 0.3f);
    const double case1 = a.lowprec_share_hist[2] + a.lowprec_share_hist[3];
    const double case2 = a.highprec_share_hist[2] + a.highprec_share_hist[3];
    std::printf("C%-5d %-34.1f %.1f   (%% of that output class)\n",
                conv->conv_id() + 1, 100.0 * case1, 100.0 * case2);
  }
  bench::print_rule();
  std::printf("both cases are nonzero -> input sensitivity does not predict "
              "output sensitivity; ODQ keys precision on outputs instead\n");
  return 0;
}
