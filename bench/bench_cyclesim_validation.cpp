// Cross-validation of the two accelerator models: the analytic steady-state
// simulator (accel::simulate) versus the cycle-stepped microarchitecture
// engine (accel::cyclesim). The paper validates its simulator against
// Vivado-timed RTL; here the detailed engine plays the RTL role.
#include <cstdio>

#include "accel/cyclesim/layer_engine.hpp"
#include "accel/simulator.hpp"
#include "common.hpp"

int main() {
  using namespace odq;
  bench::print_header(
      "bench_cyclesim_validation",
      "cross-check: analytic model vs cycle-stepped engine (not a paper "
      "figure; plays the paper's RTL-vs-simulator validation role)");

  std::printf("%-10s %-12s %-12s %-8s %-10s %s\n", "model", "analytic",
              "cycle-step", "ratio", "idle(cs)", "lb underruns");
  bench::print_rule();
  for (const auto& model : bench::model_names()) {
    auto wls = bench::workloads_for(model, 10,
                                    bench::workload_odq_config(model, 10),
                                    bench::workload_drq_config());
    const auto analytic = accel::simulate(accel::odq_accelerator(), wls);
    const auto micro = accel::cyclesim::simulate_network(wls, {});
    const double ratio =
        static_cast<double>(micro.cycles) / analytic.total_cycles;
    std::printf("%-10s %-12.0f %-12lld %-8.2f %-10.1f %lld%s\n", model.c_str(),
                analytic.total_cycles, static_cast<long long>(micro.cycles),
                ratio, 100.0 * micro.idle_fraction(),
                static_cast<long long>(micro.line_buffer_underruns),
                micro.hit_cycle_limit ? "  <-- CYCLE LIMIT" : "");
  }
  bench::print_rule();
  std::printf("expected ratio ~1-2x: the cycle-stepped engine adds pipeline "
              "fill, prefetch gating and arbitration that the steady-state "
              "model ignores\n");
  return 0;
}
