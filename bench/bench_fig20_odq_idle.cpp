// Figure 20: percentage of idle PEs with the reconfigurable ODQ accelerator
// (dynamic PE allocation + dynamic workload scheduling), contrasted with the
// static scheme of Figure 11.
#include <cstdio>

#include "accel/simulator.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace odq;
  bench::json_init(argc, argv);
  bench::print_header(
      "bench_fig20_odq_idle",
      "Figure 20 (% idle PEs with ODQ dynamic allocation)",
      "paper: dynamic allocation caps idleness at ~18% vs up to 50% static");

  double overall_worst = 0.0;
  for (const auto& model : bench::model_names()) {
    auto wls = bench::workloads_for(model, 10, bench::workload_odq_config(model, 10),
                                    bench::workload_drq_config());
    accel::SimOptions dyn;  // defaults: dynamic allocation + schedule
    const auto rd = accel::simulate(accel::odq_accelerator(), wls, dyn);

    accel::SimOptions stat;
    stat.dynamic_allocation = false;
    stat.static_allocation = {15, 12};
    stat.dynamic_workload_schedule = false;
    const auto rs = accel::simulate(accel::odq_accelerator(), wls, stat);

    double worst_dyn = 0.0;
    for (const auto& l : rd.layers) {
      worst_dyn = std::max(worst_dyn, l.idle_pe_fraction);
    }
    overall_worst = std::max(overall_worst, worst_dyn);
    std::printf("%-10s dynamic idle: mean %5.1f%% worst %5.1f%%   "
                "static idle: mean %5.1f%%\n",
                model.c_str(), 100.0 * rd.idle_pe_fraction, 100.0 * worst_dyn,
                100.0 * rs.idle_pe_fraction);
    bench::json_row("fig20", {{"model", model},
                              {"dynamic_idle_mean", rd.idle_pe_fraction},
                              {"dynamic_idle_worst", worst_dyn},
                              {"static_idle_mean", rs.idle_pe_fraction}});
  }
  bench::print_rule();
  std::printf(
      "per-model mean dynamic idleness is the comparable quantity (paper "
      "caps at ~18%%); the worst single layer here is %.1f%% — quick-scale "
      "VGG tail layers are weight-DRAM-bound (64x fewer output pixels per "
      "weight than paper-width models), so their PEs wait on memory, not "
      "on allocation\n",
      100.0 * overall_worst);

  // Per-layer detail for ResNet-20 (the paper's plotted series).
  auto wls = bench::workloads_for("resnet20", 10,
                                  bench::workload_odq_config("resnet20", 10),
                                  bench::workload_drq_config());
  const auto rd = accel::simulate(accel::odq_accelerator(), wls, {});
  std::printf("\nResNet-20 per-layer idle (dynamic):\n");
  std::printf("%-8s %-8s %-8s %s\n", "layer", "P-arrays", "E-arrays",
              "idle(%)");
  bench::print_rule();
  for (std::size_t i = 0; i < rd.layers.size(); ++i) {
    const auto& l = rd.layers[i];
    std::printf("C%-7zu %-8d %-8d %.1f\n", i + 1,
                l.allocation.predictor_arrays, l.allocation.executor_arrays,
                100.0 * l.idle_pe_fraction);
  }
  return 0;
}
