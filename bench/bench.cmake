# Benchmark harness: one binary per paper table/figure plus micro kernels.
# Included from the top-level CMakeLists so build/bench/ contains only
# executables.

# Provenance header (git SHA + build flags) regenerated on every build but
# only rewritten when stale; bench JSON documents embed it so odq_bench_diff
# can report exactly which build produced each baseline.
set(ODQ_BUILD_INFO_DIR ${CMAKE_BINARY_DIR}/generated)
string(TOUPPER "${CMAKE_BUILD_TYPE}" ODQ_BUILD_CONFIG_UPPER)
add_custom_target(odq_build_info
  COMMAND ${CMAKE_COMMAND}
    -DOUT=${ODQ_BUILD_INFO_DIR}/odq_build_info.h
    -DSRC_DIR=${CMAKE_SOURCE_DIR}
    "-DBUILD_TYPE=${CMAKE_BUILD_TYPE}"
    "-DBUILD_FLAGS=${CMAKE_CXX_FLAGS} ${CMAKE_CXX_FLAGS_${ODQ_BUILD_CONFIG_UPPER}}"
    -P ${CMAKE_SOURCE_DIR}/cmake/git_sha.cmake
  BYPRODUCTS ${ODQ_BUILD_INFO_DIR}/odq_build_info.h
  COMMENT "Refreshing odq_build_info.h")

add_library(odq_bench_common STATIC ${CMAKE_SOURCE_DIR}/bench/common.cpp)
target_link_libraries(odq_bench_common PUBLIC odq)
target_include_directories(odq_bench_common PUBLIC ${CMAKE_SOURCE_DIR}/bench)
target_include_directories(odq_bench_common PRIVATE ${ODQ_BUILD_INFO_DIR})
add_dependencies(odq_bench_common odq_build_info)

function(odq_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE odq_bench_common)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

odq_add_bench(bench_fig01_motivation)
odq_add_bench(bench_fig02_lowprec_inputs)
odq_add_bench(bench_fig03_precision_loss)
odq_add_bench(bench_fig04_highprec_inputs)
odq_add_bench(bench_fig05_computation_waste)
odq_add_bench(bench_fig09_10_insensitive)
odq_add_bench(bench_fig11_static_idle)
odq_add_bench(bench_table1_pe_config)
odq_add_bench(bench_fig18_accuracy)
odq_add_bench(bench_fig19_execution_time)
odq_add_bench(bench_fig20_odq_idle)
odq_add_bench(bench_fig21_energy)
odq_add_bench(bench_fig22_threshold)
odq_add_bench(bench_table3_thresholds)

# google-benchmark micro kernels.
add_executable(bench_micro_kernels ${CMAKE_SOURCE_DIR}/bench/bench_micro_kernels.cpp)
target_link_libraries(bench_micro_kernels PRIVATE odq_bench_common benchmark::benchmark)
set_target_properties(bench_micro_kernels PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Ablations of the design choices DESIGN.md calls out.
odq_add_bench(bench_ablation_scheduler)
odq_add_bench(bench_ablation_precision)
odq_add_bench(bench_cyclesim_validation)
