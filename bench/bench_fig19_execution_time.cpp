// Figure 19: normalized execution time of the four DNNs on the four
// Table-2 accelerators (INT16 DoReFa, INT8 DoReFa, DRQ, ODQ).
//
// Also reports host wall-clock for the software ODQ pipeline itself
// (serial reference vs the tiled thread-pool path), since the simulated
// cycle counts say nothing about how fast this repo executes.
#include <cstdio>

#include "accel/simulator.hpp"
#include "common.hpp"
#include "core/odq.hpp"
#include "simd/dispatch.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

// Batch-8 quick-scale ResNet-20-ish conv stack (16-ch 16x16 + 32-ch 8x8),
// the shape EXPERIMENTS.md quotes for the host hot-path numbers.
double time_host_pipeline(const odq::core::OdqConfig& cfg) {
  using namespace odq;
  util::Rng rng(1);
  auto acts = [&](tensor::Shape s) {
    tensor::Tensor t(std::move(s));
    for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_f(0, 1);
    return t;
  };
  auto wts = [&](tensor::Shape s) {
    tensor::Tensor t(std::move(s));
    for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal_f(0, 0.3f);
    return t;
  };
  tensor::Tensor x1 = acts({8, 16, 16, 16}), w1 = wts({16, 16, 3, 3});
  tensor::Tensor x2 = acts({8, 32, 8, 8}), w2 = wts({32, 32, 3, 3});
  tensor::Tensor bias;
  (void)core::odq_conv_float(x1, w1, bias, 1, 1, cfg);  // warm-up
  util::WallTimer t;
  for (int i = 0; i < 10; ++i) {
    (void)core::odq_conv_float(x1, w1, bias, 1, 1, cfg);
    (void)core::odq_conv_float(x2, w2, bias, 1, 1, cfg);
  }
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace odq;
  bench::json_init(argc, argv);
  bench::print_header(
      "bench_fig19_execution_time",
      "Figure 19 (normalized execution time) + Table 2 (configurations)",
      "paper: ODQ cuts execution time 97.8% vs INT16, 95.8% vs INT8, "
      "67.6% vs DRQ");

  std::printf("Table 2 — accelerator configurations (same area budget):\n");
  std::printf("%-8s %-8s %-10s %s\n", "name", "#PEs", "PE width", "on-chip MB");
  bench::print_rule();
  for (const auto& cfg : accel::table2_configs()) {
    std::printf("%-8s %-8d INT%-7d %.2f\n", cfg.name.c_str(), cfg.num_pes,
                cfg.pe_bits, cfg.onchip_mem_mb);
  }

  std::printf("\nFigure 19 — execution time normalized to INT16 = 1.0:\n");
  std::printf("%-10s %-10s %-10s %-10s %-10s\n", "model", "INT16", "INT8",
              "DRQ", "ODQ");
  bench::print_rule();

  double sum_vs16 = 0.0, sum_vs8 = 0.0, sum_vsdrq = 0.0;
  for (const auto& model : bench::model_names()) {
    auto wls = bench::workloads_for(model, 10, bench::workload_odq_config(model, 10),
                                    bench::workload_drq_config());
    double cycles[4];
    int i = 0;
    for (const auto& cfg : accel::table2_configs()) {
      cycles[i++] = accel::simulate(cfg, wls).total_cycles;
    }
    std::printf("%-10s %-10.3f %-10.3f %-10.3f %-10.4f\n", model.c_str(),
                1.0, cycles[1] / cycles[0], cycles[2] / cycles[0],
                cycles[3] / cycles[0]);
    bench::json_row("fig19", {{"model", model},
                              {"int16", 1.0},
                              {"int8", cycles[1] / cycles[0]},
                              {"drq", cycles[2] / cycles[0]},
                              {"odq", cycles[3] / cycles[0]}});
    sum_vs16 += 1.0 - cycles[3] / cycles[0];
    sum_vs8 += 1.0 - cycles[3] / cycles[1];
    sum_vsdrq += 1.0 - cycles[3] / cycles[2];
  }
  const double n = static_cast<double>(bench::model_names().size());
  bench::print_rule();
  std::printf("mean ODQ execution-time reduction: vs INT16 %.1f%% (paper "
              "97.8%%), vs INT8 %.1f%% (paper 95.8%%), vs DRQ %.1f%% (paper "
              "67.6%%)\n",
              100.0 * sum_vs16 / n, 100.0 * sum_vs8 / n,
              100.0 * sum_vsdrq / n);
  bench::json_row("fig19_mean_reduction",
                  {{"vs_int16_pct", 100.0 * sum_vs16 / n},
                   {"vs_int8_pct", 100.0 * sum_vs8 / n},
                   {"vs_drq_pct", 100.0 * sum_vsdrq / n}});

  std::printf("\nHost wall-clock — ODQ software pipeline, 20 batch-8 convs "
              "(threshold %.2f):\n", 0.15);
  core::OdqConfig host_cfg;
  host_cfg.threshold = 0.15f;
  host_cfg.num_threads = 1;
  const double serial_s = time_host_pipeline(host_cfg);
  host_cfg.num_threads = 0;
  const double pooled_s = time_host_pipeline(host_cfg);
  std::printf("%-28s %.3f s\n", "serial reference", serial_s);
  std::printf("%-20s (%zu thr) %.3f s  (%.2fx)\n", "tiled thread pool",
              util::ThreadPool::global().size(), pooled_s,
              serial_s / pooled_s);
  bench::json_row("host_wall_clock",
                  {{"serial_seconds", serial_s},
                   {"pooled_seconds", pooled_s},
                   {"pool_threads", util::ThreadPool::global().size()},
                   {"speedup", serial_s / pooled_s}});

  // SIMD kernel A/B over the same packed pipeline at threshold 0 — every
  // output sensitive, the worst case where the packed path used to trail
  // the direct conv by ~20%. All wall cells are *_seconds/speedup so the
  // odq_bench_diff gate ignores them; the backend strings document what ran.
  {
    const simd::Backend active = simd::active_backend();
    core::OdqConfig ab_cfg;
    ab_cfg.threshold = 0.0f;
    simd::set_backend(simd::Backend::kScalar);
    const double scalar_s = time_host_pipeline(ab_cfg);
    simd::set_backend(active);
    const double active_s = time_host_pipeline(ab_cfg);
    std::printf("\nSIMD kernel A/B — threshold 0 (100%% sensitive), tiled "
                "pipeline:\n");
    std::printf("%-28s %.3f s\n", "scalar kernels", scalar_s);
    std::printf("%-21s (%s) %.3f s  (%.2fx)\n", "active backend",
                simd::backend_name(active), active_s, scalar_s / active_s);
    bench::json_row(
        "simd_ab",
        {{"active_backend", std::string(simd::backend_name(active))},
         {"scalar_seconds", scalar_s},
         {"active_seconds", active_s},
         {"speedup", scalar_s / active_s}});
  }

  // Threshold sweep over the same conv stack: the mask-aware sparse
  // epilogue runs Eq. 3 only over the compacted sensitive lists, so host
  // wall time must fall with the sensitive fraction. The fractions are
  // deterministic (fixed rng seed) and gated by odq_bench_diff; the
  // *_seconds cells are wall-clock and auto-ignored by the gate.
  std::printf("\nHost threshold sweep — sensitive fraction vs wall time:\n");
  std::printf("%-10s %-14s %-10s\n", "threshold", "sensitive frac", "secs");
  bench::print_rule();
  for (const float thr : {0.0f, 4.0f, 8.0f, 16.0f, 32.0f}) {
    core::OdqConfig sweep_cfg;
    sweep_cfg.threshold = thr;
    util::Rng rng(1);
    auto fill = [&](tensor::Tensor& t, bool act) {
      for (std::int64_t i = 0; i < t.numel(); ++i) {
        t[i] = act ? rng.uniform_f(0, 1) : rng.normal_f(0, 0.3f);
      }
    };
    tensor::Tensor x1(tensor::Shape{8, 16, 16, 16}), w1(tensor::Shape{16, 16, 3, 3});
    tensor::Tensor x2(tensor::Shape{8, 32, 8, 8}), w2(tensor::Shape{32, 32, 3, 3});
    fill(x1, true); fill(w1, false); fill(x2, true); fill(w2, false);
    tensor::Tensor no_bias;
    core::OdqLayerStats s1, s2;
    (void)core::odq_conv_float(x1, w1, no_bias, 1, 1, sweep_cfg);  // warm-up
    util::WallTimer sweep_t;
    for (int i = 0; i < 10; ++i) {
      (void)core::odq_conv_float(x1, w1, no_bias, 1, 1, sweep_cfg, &s1);
      (void)core::odq_conv_float(x2, w2, no_bias, 1, 1, sweep_cfg, &s2);
    }
    const double secs = sweep_t.seconds();
    core::OdqLayerStats total = s1;
    total.merge(s2);
    std::printf("%-10.2f %-14.4f %-10.3f\n", thr, total.sensitive_fraction(),
                secs);
    char thr_label[32];
    std::snprintf(thr_label, sizeof(thr_label), "thr_%.2f",
                  static_cast<double>(thr));
    bench::json_row("host_threshold_sweep",
                    {{"point", std::string(thr_label)},
                     {"threshold", thr},
                     {"sensitive_fraction", total.sensitive_fraction()},
                     {"odq_seconds", secs},
                     {"pack_seconds", total.pack_seconds},
                     {"gemm_seconds", total.gemm_seconds},
                     {"sparse_epilogue_seconds",
                      total.sparse_epilogue_seconds}});
  }
  return 0;
}
