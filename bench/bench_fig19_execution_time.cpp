// Figure 19: normalized execution time of the four DNNs on the four
// Table-2 accelerators (INT16 DoReFa, INT8 DoReFa, DRQ, ODQ).
#include <cstdio>

#include "accel/simulator.hpp"
#include "common.hpp"

int main() {
  using namespace odq;
  bench::print_header(
      "bench_fig19_execution_time",
      "Figure 19 (normalized execution time) + Table 2 (configurations)",
      "paper: ODQ cuts execution time 97.8% vs INT16, 95.8% vs INT8, "
      "67.6% vs DRQ");

  std::printf("Table 2 — accelerator configurations (same area budget):\n");
  std::printf("%-8s %-8s %-10s %s\n", "name", "#PEs", "PE width", "on-chip MB");
  bench::print_rule();
  for (const auto& cfg : accel::table2_configs()) {
    std::printf("%-8s %-8d INT%-7d %.2f\n", cfg.name.c_str(), cfg.num_pes,
                cfg.pe_bits, cfg.onchip_mem_mb);
  }

  std::printf("\nFigure 19 — execution time normalized to INT16 = 1.0:\n");
  std::printf("%-10s %-10s %-10s %-10s %-10s\n", "model", "INT16", "INT8",
              "DRQ", "ODQ");
  bench::print_rule();

  double sum_vs16 = 0.0, sum_vs8 = 0.0, sum_vsdrq = 0.0;
  for (const auto& model : bench::model_names()) {
    auto wls = bench::workloads_for(model, 10, bench::workload_odq_config(model, 10),
                                    bench::workload_drq_config());
    double cycles[4];
    int i = 0;
    for (const auto& cfg : accel::table2_configs()) {
      cycles[i++] = accel::simulate(cfg, wls).total_cycles;
    }
    std::printf("%-10s %-10.3f %-10.3f %-10.3f %-10.4f\n", model.c_str(),
                1.0, cycles[1] / cycles[0], cycles[2] / cycles[0],
                cycles[3] / cycles[0]);
    sum_vs16 += 1.0 - cycles[3] / cycles[0];
    sum_vs8 += 1.0 - cycles[3] / cycles[1];
    sum_vsdrq += 1.0 - cycles[3] / cycles[2];
  }
  const double n = static_cast<double>(bench::model_names().size());
  bench::print_rule();
  std::printf("mean ODQ execution-time reduction: vs INT16 %.1f%% (paper "
              "97.8%%), vs INT8 %.1f%% (paper 95.8%%), vs DRQ %.1f%% (paper "
              "67.6%%)\n",
              100.0 * sum_vs16 / n, 100.0 * sum_vs8 / n,
              100.0 * sum_vsdrq / n);
  return 0;
}
