// Figure 18: Top-1 accuracy and the share of high-precision (INT4) vs
// low-precision (INT2) computation for the four models on the two datasets
// under: FP32 (reference), INT16 DoReFa, INT8 DoReFa, DRQ INT8-INT4,
// DRQ INT4-INT2, and ODQ INT4-INT2.
//
// Per the paper's methodology, the aggressive 4/2-bit schemes (DRQ 4-2 and
// ODQ) are retrained with the quantizer in the loop; INT16/INT8/DRQ 8-4 are
// evaluated post-training (they are near-lossless).
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "core/odq.hpp"
#include "quant/static_executor.hpp"

namespace {

using namespace odq;

struct Row {
  double fp32, int16, int8, drq84, drq42, odq;
  double odq_sensitive;   // fraction of outputs computed at full INT4
  double drq42_sensitive; // fraction of sensitive input regions
  float odq_threshold;    // accepted by the acceptance loop (Table 3 style)
};

Row run_one(const std::string& model_name, int variant) {
  Row row{};
  {
    nn::Model m = bench::trained_model(model_name, variant);
    row.fp32 = bench::test_accuracy(m, variant);
    m.set_conv_executor(std::make_shared<quant::StaticQuantConvExecutor>(16));
    row.int16 = bench::test_accuracy(m, variant);
    m.set_conv_executor(std::make_shared<quant::StaticQuantConvExecutor>(8));
    row.int8 = bench::test_accuracy(m, variant);
    drq::DrqConfig d84 = bench::default_drq_config();
    m.set_conv_executor(std::make_shared<drq::DrqConvExecutor>(d84));
    row.drq84 = bench::test_accuracy(m, variant);
  }
  {
    drq::DrqConfig d42 = bench::default_drq_config();
    d42.hi_bits = 4;
    d42.lo_bits = 2;
    d42.calibrate_quantile = 0.5;  // half of input regions high-precision
    auto exec = std::make_shared<drq::DrqConvExecutor>(d42);
    nn::Model m = bench::finetuned_model(model_name, variant, "drq42", exec);
    exec->reset_stats();
    row.drq42 = bench::test_accuracy(m, variant);
    double sens = 0.0;
    const std::size_t layers = exec->num_layers_seen();
    for (std::size_t i = 0; i < layers; ++i) {
      sens += exec->layer_stats(static_cast<int>(i)).sensitive_input_fraction;
    }
    row.drq42_sensitive = layers > 0 ? sens / static_cast<double>(layers) : 0;
  }
  {
    // The paper's §3 recipe: candidate thresholds from the predictor-output
    // distribution, BN re-estimation + retraining at each, accept the
    // largest one meeting the accuracy expectation (odq_finetuned caches
    // the winner).
    bench::OdqTunedModel tuned = bench::odq_finetuned(model_name, variant);
    tuned.executor->reset_stats();
    row.odq = bench::test_accuracy(tuned.model, variant);
    row.odq_threshold = tuned.target_threshold;
    double sens = 0.0;
    const std::size_t layers = tuned.executor->num_layers_seen();
    for (std::size_t i = 0; i < layers; ++i) {
      sens +=
          tuned.executor->layer_stats(static_cast<int>(i)).sensitive_fraction();
    }
    row.odq_sensitive = layers > 0 ? sens / static_cast<double>(layers) : 0;
  }
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "bench_fig18_accuracy",
      "Figure 18 (Top-1 accuracy + %INT4/INT2 per quantization scheme)",
      "paper: ODQ within 0.6% of INT8-INT4 DRQ; INT4-INT2 DRQ degrades "
      "2.5-10%");

  std::printf(
      "%-10s %-6s | %-6s %-6s %-6s %-7s %-7s %-6s | %-9s %-9s %-8s\n",
      "model", "data", "FP32", "INT16", "INT8", "DRQ8-4", "DRQ4-2", "ODQ",
      "ODQ %4bit", "DRQ42 %hi", "thr");
  bench::print_rule();

  double worst_odq_vs_drq84 = 0.0;
  double best_drq42_gap = 0.0;
  for (int variant : {10, 100}) {
    for (const auto& model : bench::model_names()) {
      const Row r = run_one(model, variant);
      std::printf(
          "%-10s c%-5d | %-6.3f %-6.3f %-6.3f %-7.3f %-7.3f %-6.3f | "
          "%-9.1f %-9.1f %-8.4f\n",
          model.c_str(), variant, r.fp32, r.int16, r.int8, r.drq84, r.drq42,
          r.odq, 100.0 * r.odq_sensitive, 100.0 * r.drq42_sensitive,
          r.odq_threshold);
      worst_odq_vs_drq84 = std::max(worst_odq_vs_drq84, r.drq84 - r.odq);
      best_drq42_gap = std::max(best_drq42_gap, r.fp32 - r.drq42);
    }
  }
  bench::print_rule();
  std::printf("worst ODQ degradation vs DRQ INT8-INT4: %.3f (paper: <= "
              "0.006); worst DRQ INT4-INT2 degradation vs FP32: %.3f (paper: "
              "0.025-0.10)\n",
              worst_odq_vs_drq84, best_drq42_gap);
  return 0;
}
