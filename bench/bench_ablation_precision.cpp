// Ablation: ODQ's precision split. The paper fixes INT4 codes split 2+2;
// the pipeline is parametric, so sweep (total_bits, low_bits) and report
// predictor fidelity (how well the high-order product approximates the full
// result), the sensitive fraction at a fixed threshold, and the executor
// work — the accuracy/efficiency tradeoff behind the 2+2 choice.
#include <cstdio>

#include "common.hpp"
#include "core/odq.hpp"
#include "quant/quantizer.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace odq;
  bench::print_header(
      "bench_ablation_precision",
      "ablation of the bit-split choice (§5.1: 'not limited to 4/2-bit')");

  // One representative trained layer: the mid-network conv of ResNet-20.
  nn::Model model = bench::trained_model("resnet20", 10);
  auto convs = model.assign_conv_ids();
  nn::Conv2d* conv = convs[convs.size() / 2];

  // Cache its input with one forward.
  auto exec = std::make_shared<drq::DrqConvExecutor>(bench::default_drq_config());
  model.set_conv_executor(exec);
  const auto& data = bench::dataset(10);
  const std::int64_t chw = data.test.images.shape()[1] *
                           data.test.images.shape()[2] *
                           data.test.images.shape()[3];
  tensor::Tensor batch(
      tensor::Shape{2, data.test.images.shape()[1],
                    data.test.images.shape()[2], data.test.images.shape()[3]},
      std::vector<float>(data.test.images.data(),
                         data.test.images.data() + 2 * chw));
  (void)model.forward(batch, false);
  model.set_conv_executor(nullptr);
  const tensor::Tensor& x = conv->cached_input();
  const tensor::Tensor& w = conv->weight().value;

  std::printf("layer: %s (%lldx%lldx%lld kernel over %lld channels)\n\n",
              conv->name().c_str(), static_cast<long long>(conv->out_channels()),
              static_cast<long long>(conv->kernel()),
              static_cast<long long>(conv->kernel()),
              static_cast<long long>(conv->in_channels()));
  std::printf("%-8s %-8s | %-16s %-12s %-14s %s\n", "total", "low",
              "pred.mean.err", "sens.frac", "exec.MACs", "pred cost/MAC (bit^2)");
  bench::print_rule();

  const tensor::Tensor empty_bias;
  for (const auto& [total, low] :
       std::vector<std::pair<int, int>>{{4, 1}, {4, 2}, {4, 3},
                                        {5, 2}, {6, 2}, {6, 3}, {7, 3}}) {
    quant::QTensor qin = quant::quantize_activations(x, total);
    quant::QTensor qw = quant::quantize_weights(w, total);

    core::OdqConfig cfg;
    cfg.total_bits = total;
    cfg.low_bits = low;
    cfg.threshold = 1e30f;  // predictor-only pass for fidelity
    core::OdqConvResult pred = core::odq_conv(qin, qw, conv->stride(),
                                              conv->pad(), cfg);
    tensor::TensorI32 full =
        quant::conv2d_i8(qin.q, qw.q, conv->stride(), conv->pad());
    double err = 0.0;
    for (std::int64_t i = 0; i < full.numel(); ++i) {
      err += std::abs(static_cast<double>(pred.acc[i] - full[i])) * pred.scale;
    }
    err /= static_cast<double>(full.numel());

    cfg.threshold = 0.2f;
    core::OdqConvResult r =
        core::odq_conv(qin, qw, conv->stride(), conv->pad(), cfg);
    const int hb = total - low;
    std::printf("%-8d %-8d | %-16.5f %-12.3f %-14lld %d\n", total, low, err,
                r.stats.sensitive_fraction(),
                static_cast<long long>(r.stats.executor_macs), hb * hb);
  }
  bench::print_rule();
  std::printf("the paper's 4/2 split balances predictor fidelity (err) "
              "against predictor cost (high-bits^2 per MAC)\n");
  return 0;
}
