// google-benchmark micro kernels: the primitive operations whose relative
// costs drive the accelerator model — float conv, integer conv, bit-split,
// ODQ predictor-only, full ODQ, DRQ mixed conv, quantization.
#include <benchmark/benchmark.h>

#include "core/odq.hpp"
#include "drq/drq.hpp"
#include "quant/bitsplit.hpp"
#include "quant/quantizer.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using namespace odq;
using tensor::Shape;
using tensor::Tensor;

Tensor random_acts(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_f(0, 1);
  return t;
}

Tensor random_weights(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal_f(0, 0.3f);
  return t;
}

void BM_ConvFloatDirect(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Tensor x = random_acts(Shape{1, c, 16, 16}, 1);
  Tensor w = random_weights(Shape{c, c, 3, 3}, 2);
  Tensor bias;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::conv2d_direct(x, w, bias, 1, 1));
  }
  state.SetItemsProcessed(state.iterations() * 16 * 16 * c * c * 9);
}
BENCHMARK(BM_ConvFloatDirect)->Arg(4)->Arg(8)->Arg(16);

void BM_ConvInt8(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  quant::QTensor x = quant::quantize_activations(random_acts(Shape{1, c, 16, 16}, 3), 4);
  quant::QTensor w = quant::quantize_weights(random_weights(Shape{c, c, 3, 3}, 4), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::conv2d_i8(x.q, w.q, 1, 1));
  }
  state.SetItemsProcessed(state.iterations() * 16 * 16 * c * c * 9);
}
BENCHMARK(BM_ConvInt8)->Arg(4)->Arg(8)->Arg(16);

void BM_BitSplit(benchmark::State& state) {
  quant::QTensor w = quant::quantize_weights(
      random_weights(Shape{static_cast<std::int64_t>(state.range(0))}, 5), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::split(w));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BitSplit)->Arg(1024)->Arg(65536);

void BM_OdqPredictorOnly(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Tensor x = random_acts(Shape{1, c, 16, 16}, 6);
  Tensor w = random_weights(Shape{c, c, 3, 3}, 7);
  Tensor bias;
  core::OdqConfig cfg;
  cfg.threshold = 1e30f;  // nothing sensitive: predictor cost only
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::odq_conv_float(x, w, bias, 1, 1, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 16 * 16 * c * c * 9);
}
BENCHMARK(BM_OdqPredictorOnly)->Arg(4)->Arg(8)->Arg(16);

void BM_OdqFull(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Tensor x = random_acts(Shape{1, c, 16, 16}, 8);
  Tensor w = random_weights(Shape{c, c, 3, 3}, 9);
  Tensor bias;
  core::OdqConfig cfg;
  cfg.threshold = 0.0f;  // everything sensitive: worst-case executor cost
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::odq_conv_float(x, w, bias, 1, 1, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 16 * 16 * c * c * 9);
}
BENCHMARK(BM_OdqFull)->Arg(4)->Arg(8)->Arg(16);

void BM_DrqMixedConv(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Tensor x = random_acts(Shape{1, c, 16, 16}, 10);
  Tensor w = random_weights(Shape{c, c, 3, 3}, 11);
  Tensor bias;
  drq::DrqConfig cfg;
  cfg.input_threshold = drq::calibrate_input_threshold(x, cfg, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(drq::drq_conv(x, w, bias, 1, 1, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 16 * 16 * c * c * 9);
}
BENCHMARK(BM_DrqMixedConv)->Arg(4)->Arg(8);

void BM_QuantizeActivations(benchmark::State& state) {
  Tensor x = random_acts(Shape{state.range(0)}, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::quantize_activations(x, 4));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeActivations)->Arg(65536);

void BM_Im2col(benchmark::State& state) {
  Tensor x = random_acts(Shape{1, 16, 32, 32}, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::im2col(x, 3, 3, 1, 1));
  }
}
BENCHMARK(BM_Im2col);

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Tensor a = random_weights(Shape{n, n}, 14);
  Tensor b = random_weights(Shape{n, n}, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
