// Figure 22: threshold analysis on ResNet-20 — accuracy and the share of
// high(INT4)/low(INT2)-precision computation as the threshold sweeps from
// 0 to 1. The model is fine-tuned once with ODQ in the loop (at the Table-3
// threshold); the sweep then varies the inference threshold.
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "core/odq.hpp"

int main() {
  using namespace odq;
  bench::print_header(
      "bench_fig22_threshold",
      "Figure 22 (threshold vs accuracy and %INT4/INT2, ResNet-20)",
      "paper: threshold 0->1 costs ~1.8% accuracy and adds ~40% insensitive "
      "outputs; 0.5 balances both");

  const std::string model_name = "resnet20";
  bench::OdqTunedModel tuned = bench::odq_finetuned(model_name, 10);
  auto& exec = tuned.executor;
  nn::Model& model = tuned.model;
  std::printf("model fine-tuned with a threshold ramp ending at %.4f\n\n",
              tuned.target_threshold);

  std::printf("%-10s %-10s %-12s %s\n", "threshold", "accuracy",
              "insens.(%)", "INT4 share (%)");
  bench::print_rule();
  double acc0 = -1.0, acc1 = -1.0, ins0 = -1.0, ins1 = -1.0;
  // Sweep relative to the tuned threshold t (the paper sweeps its absolute
  // 0..1 range; our dequantization scales differ, so the sweep is anchored
  // at the per-model t the way Table 3 anchors per-model values).
  const float t = tuned.target_threshold;
  const float sweep[] = {0.0f,     0.25f * t, 0.5f * t, 0.75f * t,
                         1.0f * t, 1.5f * t,  2.0f * t};
  for (float thr : sweep) {
    exec->set_threshold(thr);
    exec->reset_stats();
    const double acc = bench::test_accuracy(model, 10);
    double sens = 0.0;
    const std::size_t layers = exec->num_layers_seen();
    for (std::size_t i = 0; i < layers; ++i) {
      sens += exec->layer_stats(static_cast<int>(i)).sensitive_fraction();
    }
    if (layers > 0) sens /= static_cast<double>(layers);
    std::printf("%-10.3f %-10.3f %-12.1f %.1f\n", thr, acc,
                100.0 * (1.0 - sens), 100.0 * sens);
    if (thr == 0.0f) {
      acc0 = acc;
      ins0 = 1.0 - sens;
    }
    if (thr == sweep[6]) {
      acc1 = acc;
      ins1 = 1.0 - sens;
    }
  }
  bench::print_rule();
  std::printf("threshold 0 -> 2t: accuracy change %.3f (paper, 0 -> 1: "
              "-0.018), insensitive outputs +%.1f%% (paper: ~+40%%)\n",
              acc1 - acc0, 100.0 * (ins1 - ins0));
  return 0;
}
