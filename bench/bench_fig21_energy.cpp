// Figure 21: normalized energy consumption of the four DNNs on the four
// accelerators, with the DRAM / Buffer / Core (PE slices) breakdown.
#include <cstdio>

#include "accel/simulator.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace odq;
  bench::json_init(argc, argv);
  bench::print_header(
      "bench_fig21_energy",
      "Figure 21 (normalized energy + DRAM/Buffer/Core breakdown)",
      "paper: ODQ saves 97.6% vs INT16, 93.5% vs INT8, 66.9% vs DRQ");

  std::printf("%-10s %-7s %-10s %-9s %-9s %-9s\n", "model", "accel",
              "norm.total", "dram", "buffer", "core");
  bench::print_rule();

  double sum_vs16 = 0.0, sum_vs8 = 0.0, sum_vsdrq = 0.0;
  for (const auto& model : bench::model_names()) {
    auto wls = bench::workloads_for(model, 10, bench::workload_odq_config(model, 10),
                                    bench::workload_drq_config());
    accel::EnergyBreakdown eb[4];
    int i = 0;
    for (const auto& cfg : accel::table2_configs()) {
      eb[i++] = accel::simulate(cfg, wls).energy;
    }
    const double base = eb[0].total_pj();
    const char* names[4] = {"INT16", "INT8", "DRQ", "ODQ"};
    for (int j = 0; j < 4; ++j) {
      std::printf("%-10s %-7s %-10.4f %-9.4f %-9.4f %-9.4f\n",
                  j == 0 ? model.c_str() : "", names[j],
                  eb[j].total_pj() / base, eb[j].dram_pj / base,
                  eb[j].buffer_pj / base, eb[j].core_pj / base);
      bench::json_row("fig21", {{"model", model},
                                {"accel", names[j]},
                                {"norm_total", eb[j].total_pj() / base},
                                {"dram", eb[j].dram_pj / base},
                                {"buffer", eb[j].buffer_pj / base},
                                {"core", eb[j].core_pj / base}});
    }
    sum_vs16 += 1.0 - eb[3].total_pj() / eb[0].total_pj();
    sum_vs8 += 1.0 - eb[3].total_pj() / eb[1].total_pj();
    sum_vsdrq += 1.0 - eb[3].total_pj() / eb[2].total_pj();
    bench::print_rule();
  }
  const double n = static_cast<double>(bench::model_names().size());
  std::printf("mean ODQ energy reduction: vs INT16 %.1f%% (paper 97.6%%), "
              "vs INT8 %.1f%% (paper 93.5%%), vs DRQ %.1f%% (paper 66.9%%)\n",
              100.0 * sum_vs16 / n, 100.0 * sum_vs8 / n,
              100.0 * sum_vsdrq / n);
  bench::json_row("fig21_mean_reduction",
                  {{"vs_int16_pct", 100.0 * sum_vs16 / n},
                   {"vs_int8_pct", 100.0 * sum_vs8 / n},
                   {"vs_drq_pct", 100.0 * sum_vsdrq / n}});
  return 0;
}
