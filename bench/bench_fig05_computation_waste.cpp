// Figure 5: computation waste (Eq. 1 "extra precision") from using
// high-precision inputs to produce insensitive outputs under DRQ
// (ResNet-20):  Extra_precision = max |O_IDQ - O_LP_input| over insensitive
// outputs.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace odq;
  bench::print_header(
      "bench_fig05_computation_waste",
      "Figure 5 (Eq. 1 extra precision on insensitive outputs, DRQ, "
      "ResNet-20)",
      "paper: up to 0.21 of removable extra precision per layer");

  drq::DrqConfig cfg = bench::default_drq_config();
  cfg.input_threshold = -1.0f;
  const auto layers = bench::analyze_model_layers("resnet20", 10, cfg, 0.3f);

  std::printf("%-6s %s\n", "layer", "extra precision (Eq. 1)");
  bench::print_rule();
  double mx = 0.0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    std::printf("C%-5zu %.4f\n", i + 1, layers[i].extra_precision_insensitive);
    mx = std::max(mx, layers[i].extra_precision_insensitive);
  }
  bench::print_rule();
  std::printf("max extra precision across layers: %.4f — precision spent on "
              "outputs that tolerate noise, removable for energy/speed\n",
              mx);
  return 0;
}
