// Figure 4: percentage of high-precision inputs used in generating
// *insensitive* outputs under DRQ (ResNet-20) — the wasted-precision side
// of the input-directed mismatch.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace odq;
  bench::print_header(
      "bench_fig04_highprec_inputs",
      "Figure 4 (% high-precision inputs per insensitive output, DRQ, "
      "ResNet-20)",
      "paper: >25% high-precision inputs in many layers; >50% in C1, C2, "
      "C4, C7, C11");

  drq::DrqConfig cfg = bench::default_drq_config();
  cfg.input_threshold = -1.0f;
  const auto layers = bench::analyze_model_layers("resnet20", 10, cfg, 0.3f);

  std::printf("%-6s %-10s %-10s %-10s %-10s %s\n", "layer", "0-25%",
              "25-50%", "50-75%", "75-100%", "insens.out(%)");
  bench::print_rule();
  int layers_over_25 = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const auto& a = layers[i];
    std::printf("C%-5zu %-10.2f %-10.2f %-10.2f %-10.2f %.1f\n", i + 1,
                a.highprec_share_hist[0], a.highprec_share_hist[1],
                a.highprec_share_hist[2], a.highprec_share_hist[3],
                100.0 * (1.0 - a.sensitive_output_fraction));
    if (a.highprec_share_hist[1] + a.highprec_share_hist[2] +
            a.highprec_share_hist[3] >
        0.5) {
      ++layers_over_25;
    }
  }
  bench::print_rule();
  std::printf("layers where most insensitive outputs use >25%% "
              "high-precision inputs: %d / %zu\n",
              layers_over_25, layers.size());
  return 0;
}
