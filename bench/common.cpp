#include "common.hpp"

#include "core/threshold_search.hpp"

#include <sys/stat.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "nn/init.hpp"
#include "nn/models.hpp"
#include "odq_build_info.h"
#include "simd/dispatch.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace odq::bench {

namespace {

Scale make_scale() {
  Scale s;
  const char* env = std::getenv("ODQ_BENCH_SCALE");
  if (env != nullptr && std::string(env) == "full") {
    s.name = "full";
    s.train_n = 2000;
    s.test_n = 1000;
    s.epochs = 30;
    s.finetune_epochs = 5;
    s.c100_classes = 100;
    s.c100_train_n = 4000;
    s.c100_test_n = 1000;
    s.resnet_width = 16;
    s.vgg_width = 64;
    s.densenet_growth = 12;
    s.densenet_layers = 6;
  } else {
    s.name = "quick";
  }
  return s;
}

std::string cache_dir() {
  const char* env = std::getenv("ODQ_BENCH_CACHE");
  std::string dir = env != nullptr ? env : "bench_cache";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

const Scale& scale() {
  static const Scale s = make_scale();
  return s;
}

const std::vector<std::string>& model_names() {
  static const std::vector<std::string> names{"resnet20", "resnet56", "vgg16",
                                              "densenet"};
  return names;
}

nn::Model make_model(const std::string& name, int num_classes) {
  const Scale& s = scale();
  if (name == "resnet20") return nn::make_resnet(20, num_classes, s.resnet_width);
  if (name == "resnet56") return nn::make_resnet(56, num_classes, s.resnet_width);
  if (name == "vgg16") return nn::make_vgg16(num_classes, s.vgg_width);
  if (name == "densenet") {
    return nn::make_densenet(num_classes, s.densenet_growth, s.densenet_layers);
  }
  throw std::invalid_argument("make_model: unknown model " + name);
}

int classes_for_variant(int variant) {
  if (variant == 10) return 10;
  if (variant == 100) return static_cast<int>(scale().c100_classes);
  throw std::invalid_argument("dataset variant must be 10 or 100");
}

const data::TrainTest& dataset(int variant) {
  static std::map<int, data::TrainTest> cache;
  auto it = cache.find(variant);
  if (it != cache.end()) return it->second;

  const Scale& s = scale();
  data::SyntheticConfig cfg;
  cfg.num_classes = classes_for_variant(variant);
  cfg.noise = 0.05f;
  cfg.seed = 1000 + static_cast<std::uint64_t>(variant);
  const std::int64_t train_n = variant == 10 ? s.train_n : s.c100_train_n;
  const std::int64_t test_n = variant == 10 ? s.test_n : s.c100_test_n;
  auto [pos, _] =
      cache.emplace(variant, data::make_synthetic_images(cfg, train_n, test_n));
  return pos->second;
}

nn::Model trained_model(const std::string& model_name, int variant) {
  const Scale& s = scale();
  nn::Model model = make_model(model_name, classes_for_variant(variant));
  const std::string path = cache_dir() + "/" + model_name + "_c" +
                           std::to_string(variant) + "_" + s.name + "_v2.bin";
  if (file_exists(path)) {
    model.load(path);
    return model;
  }
  util::WallTimer timer;
  nn::kaiming_init(model, 7 + static_cast<std::uint64_t>(variant));
  const data::TrainTest& data = dataset(variant);
  nn::TrainConfig tc;
  tc.epochs = s.epochs;
  tc.batch_size = 16;
  // Plain (non-residual) VGG needs a gentler rate to train this quickly.
  tc.lr = model_name == "vgg16" ? 0.02f : 0.05f;
  tc.lr_step = std::max<std::int64_t>(1, s.epochs * 2 / 3);
  tc.lr_decay = 0.2f;
  nn::SgdTrainer trainer(tc);
  trainer.train(model, data.train.images, data.train.labels);
  model.save(path);
  ODQ_LOG_INFO("trained %s (c%d, %s scale) in %.1fs -> %s", model_name.c_str(),
               variant, s.name.c_str(), timer.seconds(), path.c_str());
  return model;
}

nn::Model finetuned_model(const std::string& model_name, int variant,
                          const std::string& scheme_tag,
                          const std::shared_ptr<nn::ConvExecutor>& exec) {
  const Scale& s = scale();
  nn::Model model = trained_model(model_name, variant);
  const std::string path = cache_dir() + "/" + model_name + "_c" +
                           std::to_string(variant) + "_" + scheme_tag + "_" +
                           s.name + "_v2.bin";
  if (file_exists(path)) {
    model.load(path);
    model.set_conv_executor(exec);
    return model;
  }
  util::WallTimer timer;
  model.set_conv_executor(exec);
  const data::TrainTest& data = dataset(variant);
  nn::TrainConfig tc;
  tc.epochs = s.finetune_epochs;
  tc.batch_size = 16;
  tc.lr = 0.01f;
  nn::SgdTrainer trainer(tc);
  trainer.train(model, data.train.images, data.train.labels);
  // Save without executor state (weights + BN buffers only).
  model.set_conv_executor(nullptr);
  model.save(path);
  model.set_conv_executor(exec);
  ODQ_LOG_INFO("fine-tuned %s/%s (c%d) in %.1fs", model_name.c_str(),
               scheme_tag.c_str(), variant, timer.seconds());
  return model;
}

double test_accuracy(nn::Model& model, int variant) {
  const data::TrainTest& data = dataset(variant);
  return nn::evaluate_accuracy(model, data.test.images, data.test.labels);
}

std::vector<accel::ConvWorkload> workloads_for(const std::string& model_name,
                                               int variant,
                                               const core::OdqConfig& odq_cfg,
                                               const drq::DrqConfig& drq_cfg) {
  nn::Model model = trained_model(model_name, variant);
  const data::TrainTest& data = dataset(variant);
  const std::int64_t n = std::min<std::int64_t>(4, data.test.size());
  const std::int64_t chw = data.test.images.shape()[1] *
                           data.test.images.shape()[2] *
                           data.test.images.shape()[3];
  tensor::Tensor sample(
      tensor::Shape{n, data.test.images.shape()[1],
                    data.test.images.shape()[2], data.test.images.shape()[3]},
      std::vector<float>(data.test.images.data(),
                         data.test.images.data() + n * chw));
  return accel::extract_workloads(model, sample, odq_cfg, drq_cfg);
}

std::vector<drq::LayerAnalysis> analyze_model_layers(
    const std::string& model_name, int variant, drq::DrqConfig drq_cfg,
    float output_threshold) {
  nn::Model model = trained_model(model_name, variant);
  std::vector<nn::Conv2d*> convs = model.assign_conv_ids();

  // One forward with a (stat-free) DRQ executor caches every conv input.
  auto exec = std::make_shared<drq::DrqConvExecutor>(default_drq_config());
  model.set_conv_executor(exec);
  const data::TrainTest& data = dataset(variant);
  const std::int64_t n = std::min<std::int64_t>(2, data.test.size());
  const std::int64_t chw = data.test.images.shape()[1] *
                           data.test.images.shape()[2] *
                           data.test.images.shape()[3];
  tensor::Tensor batch(
      tensor::Shape{n, data.test.images.shape()[1],
                    data.test.images.shape()[2], data.test.images.shape()[3]},
      std::vector<float>(data.test.images.data(),
                         data.test.images.data() + n * chw));
  (void)model.forward(batch, false);
  model.set_conv_executor(nullptr);

  std::vector<drq::LayerAnalysis> out;
  out.reserve(convs.size());
  for (nn::Conv2d* conv : convs) {
    drq::DrqConfig cfg = drq_cfg;
    if (cfg.input_threshold < 0.0f) {
      cfg.input_threshold =
          drq::calibrate_input_threshold(conv->cached_input(), cfg, 0.5);
    }
    const tensor::Tensor empty_bias;
    const tensor::Tensor& bias =
        conv->bias() != nullptr ? conv->bias()->value : empty_bias;
    out.push_back(drq::analyze_layer(conv->cached_input(),
                                     conv->weight().value, bias,
                                     conv->stride(), conv->pad(), cfg,
                                     output_threshold));
  }
  return out;
}

core::OdqConfig default_odq_config(const std::string& model_name) {
  core::OdqConfig cfg;
  // Per-model thresholds in the spirit of the paper's Table 3; the
  // bench_table3_thresholds binary re-derives them with the adaptive search.
  if (model_name == "resnet20" || model_name == "resnet56") {
    cfg.threshold = 0.15f;
  } else if (model_name == "vgg16") {
    cfg.threshold = 0.10f;
  } else {
    cfg.threshold = 0.05f;  // densenet
  }
  return cfg;
}

drq::DrqConfig default_drq_config() {
  drq::DrqConfig cfg;
  cfg.region = 4;
  cfg.input_threshold = 0.25f;
  cfg.hi_bits = 8;
  cfg.lo_bits = 4;
  return cfg;
}

core::OdqConfig workload_odq_config(const std::string& model_name,
                                    int variant, double target_sensitive) {
  core::OdqConfig cfg;
  nn::Model model = trained_model(model_name, variant);
  const data::TrainTest& data = dataset(variant);
  const std::int64_t n = std::min<std::int64_t>(4, data.test.size());
  const std::int64_t chw = data.test.images.shape()[1] *
                           data.test.images.shape()[2] *
                           data.test.images.shape()[3];
  tensor::Tensor calib(
      tensor::Shape{n, data.test.images.shape()[1],
                    data.test.images.shape()[2], data.test.images.shape()[3]},
      std::vector<float>(data.test.images.data(),
                         data.test.images.data() + n * chw));
  cfg.threshold = core::calibrate_initial_threshold(model, calib, cfg,
                                                    1.0 - target_sensitive);
  return cfg;
}

drq::DrqConfig workload_drq_config() {
  drq::DrqConfig cfg = default_drq_config();
  cfg.calibrate_quantile = 0.5;  // half of input regions sensitive per layer
  return cfg;
}

core::OdqConfig accuracy_odq_config(const std::string& model_name,
                                    int variant) {
  core::OdqConfig cfg;
  if (model_name == "densenet") {
    cfg.weight_transform = quant::WeightTransform::kDoReFa;
    cfg.act_clip_percentile = 0.99f;
  }
  // Calibrate the threshold for ~50% sensitive outputs under this exact
  // quantizer configuration.
  nn::Model model = trained_model(model_name, variant);
  const data::TrainTest& data = dataset(variant);
  const std::int64_t n = std::min<std::int64_t>(4, data.test.size());
  const std::int64_t chw = data.test.images.shape()[1] *
                           data.test.images.shape()[2] *
                           data.test.images.shape()[3];
  tensor::Tensor calib(
      tensor::Shape{n, data.test.images.shape()[1],
                    data.test.images.shape()[2], data.test.images.shape()[3]},
      std::vector<float>(data.test.images.data(),
                         data.test.images.data() + n * chw));
  cfg.threshold = core::calibrate_initial_threshold(model, calib, cfg, 0.5);
  return cfg;
}

OdqTunedModel odq_finetuned(const std::string& model_name, int variant) {
  const Scale& s = scale();
  core::OdqConfig cfg = accuracy_odq_config(model_name, variant);
  OdqTunedModel out{make_model(model_name, classes_for_variant(variant)),
                    nullptr, cfg.threshold};
  out.executor = std::make_shared<core::OdqConvExecutor>(cfg);

  const std::string path = cache_dir() + "/" + model_name + "_c" +
                           std::to_string(variant) + "_odqtuned_" + s.name +
                           "_v3.bin";
  const std::string meta = path + ".meta";
  if (file_exists(path) && file_exists(meta)) {
    out.model.load(path);
    std::FILE* mf = std::fopen(meta.c_str(), "r");
    if (mf != nullptr) {
      float thr = cfg.threshold;
      if (std::fscanf(mf, "%f", &thr) == 1) out.target_threshold = thr;
      std::fclose(mf);
    }
    out.executor->set_threshold(out.target_threshold);
    out.model.set_conv_executor(out.executor);
    return out;
  }

  util::WallTimer timer;
  nn::Model ref_model = trained_model(model_name, variant);
  const double ref = test_accuracy(ref_model, variant);
  const data::TrainTest& data = dataset(variant);
  const std::int64_t chw = data.train.images.shape()[1] *
                           data.train.images.shape()[2] *
                           data.train.images.shape()[3];

  // Candidate thresholds, largest first; 0 is the pure INT4-QAT fallback
  // (the paper's DenseNet landed at 0.05 — an order of magnitude below its
  // ResNets — so "almost everything sensitive" is a legitimate outcome).
  const float t0 = cfg.threshold;
  const float candidates[] = {t0, 0.5f * t0, 0.25f * t0, 0.125f * t0, 0.0f};
  double best_acc = -1.0;
  float best_thr = 0.0f;
  const std::string tmp = cache_dir() + "/odq_tuned_tmp.bin";

  for (float thr : candidates) {
    nn::Model m = trained_model(model_name, variant);
    core::OdqConfig c = cfg;
    c.threshold = thr;
    auto exec = std::make_shared<core::OdqConvExecutor>(c);
    m.set_conv_executor(exec);
    // BatchNorm re-estimation: the predictor's low-precision bias on
    // insensitive outputs is largely a per-channel shift BN statistics can
    // absorb. Two forward passes, no weight updates.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::int64_t b = 0; b + 16 <= data.train.size(); b += 16) {
        tensor::Tensor batch(
            tensor::Shape{16, data.train.images.shape()[1],
                          data.train.images.shape()[2],
                          data.train.images.shape()[3]},
            std::vector<float>(data.train.images.data() + b * chw,
                               data.train.images.data() + (b + 16) * chw));
        (void)m.forward(batch, /*train=*/true);
      }
    }
    // Retraining with the threshold in the loop (paper §3).
    nn::TrainConfig tc;
    tc.epochs = s.finetune_epochs;
    tc.batch_size = 16;
    tc.lr = 0.01f;
    nn::SgdTrainer(tc).train(m, data.train.images, data.train.labels);
    const double acc = test_accuracy(m, variant);
    ODQ_LOG_DEBUG("odq tune %s c%d thr=%.4f acc=%.3f", model_name.c_str(),
                  variant, thr, acc);
    const bool accepted = acc + 1e-12 >= ref - 0.05;
    if (acc > best_acc) {
      best_acc = acc;
      best_thr = thr;
      m.set_conv_executor(nullptr);
      m.save(tmp);
      m.set_conv_executor(exec);
    }
    if (accepted) break;  // largest threshold meeting the expectation
  }

  out.model.load(tmp);
  std::remove(tmp.c_str());
  out.model.save(path);
  std::FILE* mf = std::fopen(meta.c_str(), "w");
  if (mf != nullptr) {
    std::fprintf(mf, "%.6f %.4f\n", best_thr, best_acc);
    std::fclose(mf);
  }
  out.target_threshold = best_thr;
  out.executor->set_threshold(best_thr);
  out.model.set_conv_executor(out.executor);
  ODQ_LOG_INFO("odq tuned %s (c%d): thr=%.4f acc=%.3f (ref %.3f) in %.0fs",
               model_name.c_str(), variant, best_thr, best_acc, ref,
               timer.seconds());
  return out;
}

// ---- Machine-readable output ----------------------------------------------

namespace {

struct JsonRow {
  std::string section;
  std::vector<std::pair<std::string, JsonCell>> cells;
};

struct BenchJsonState {
  bool enabled = false;
  std::string explicit_path;  // from --json or a file-looking env value
  std::string out_dir;        // from a directory-looking env value
  std::string bench_name;     // set by print_header
  std::string reproduces;
  std::vector<JsonRow> rows;
  bool flush_registered = false;
};

BenchJsonState& json_state() {
  static BenchJsonState s;
  return s;
}

bool is_directory(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::string json_output_path() {
  const BenchJsonState& s = json_state();
  if (!s.explicit_path.empty()) return s.explicit_path;
  std::string name = s.bench_name.empty() ? "unnamed" : s.bench_name;
  for (char& c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
          c == '-')) {
      c = '_';
    }
  }
  std::string dir = s.out_dir.empty() ? "." : s.out_dir;
  if (dir.back() == '/') dir.pop_back();
  return dir + "/BENCH_" + name + ".json";
}

void json_flush() {
  BenchJsonState& s = json_state();
  if (!s.enabled) return;
  util::JsonWriter w;
  w.begin_object();
  w.kv("bench", s.bench_name);
  w.kv("reproduces", s.reproduces);
  w.kv("scale", scale().name);
  // Build provenance (cmake/git_sha.cmake): which checkout and flags
  // produced these numbers. odq_bench_diff prints these alongside a diff.
  w.kv("git_sha", ODQ_GIT_SHA);
  w.kv("build_type", ODQ_BUILD_TYPE);
  w.kv("build_flags", ODQ_BUILD_FLAGS);
  // Which kernel backend produced these numbers; odq_bench_diff refuses to
  // compare documents whose backends disagree.
  w.kv("simd_backend", simd::backend_name(simd::active_backend()));
  w.key("rows");
  w.begin_array();
  for (const JsonRow& row : s.rows) {
    w.begin_object();
    w.kv("section", row.section);
    for (const auto& [key, cell] : row.cells) {
      w.key(key);
      switch (cell.kind) {
        case JsonCell::Kind::kString: w.value(cell.s); break;
        case JsonCell::Kind::kDouble: w.value(cell.d); break;
        case JsonCell::Kind::kInt: w.value(cell.i); break;
        case JsonCell::Kind::kBool: w.value(cell.b); break;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string path = json_output_path();
  const std::string doc = w.take();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
}

// Pick up ODQ_BENCH_JSON once; --json (via json_init) can override later.
void json_init_from_env() {
  static bool done = false;
  if (done) return;
  done = true;
  const char* env = std::getenv("ODQ_BENCH_JSON");
  if (env == nullptr || env[0] == '\0' || std::string(env) == "0") return;
  BenchJsonState& s = json_state();
  s.enabled = true;
  const std::string v = env;
  if (v == "1" || v == "true") {
    // default: ./BENCH_<name>.json
  } else if (v.back() == '/' || is_directory(v)) {
    s.out_dir = v;
  } else {
    s.explicit_path = v;
  }
}

void json_register_flush() {
  BenchJsonState& s = json_state();
  if (s.enabled && !s.flush_registered) {
    s.flush_registered = true;
    std::atexit(json_flush);
  }
}

}  // namespace

void json_init(int argc, char** argv) {
  json_init_from_env();
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      BenchJsonState& s = json_state();
      s.enabled = true;
      s.explicit_path = argv[i + 1];
      s.out_dir.clear();
      break;
    }
  }
  json_register_flush();
}

bool json_enabled() {
  json_init_from_env();
  return json_state().enabled;
}

void json_row(const std::string& section,
              std::initializer_list<std::pair<std::string, JsonCell>> cells) {
  if (!json_enabled()) return;
  JsonRow row;
  row.section = section;
  row.cells.assign(cells.begin(), cells.end());
  json_state().rows.push_back(std::move(row));
}

void print_header(const std::string& bench, const std::string& reproduces,
                  const std::string& note) {
  json_init_from_env();
  {
    BenchJsonState& s = json_state();
    s.bench_name = bench;
    s.reproduces = reproduces;
    json_register_flush();
  }
  std::printf("================================================================\n");
  std::printf("%s\n", bench.c_str());
  std::printf("reproduces: %s\n", reproduces.c_str());
  std::printf("scale: %s (set ODQ_BENCH_SCALE=full for paper-sized runs)\n",
              scale().name.c_str());
  std::printf("simd backend: %s (force with ODQ_SIMD=scalar|avx2|neon)\n",
              simd::backend_name(simd::active_backend()));
  if (!note.empty()) std::printf("note: %s\n", note.c_str());
  std::printf("================================================================\n");
}

void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace odq::bench
