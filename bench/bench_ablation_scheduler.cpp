// Ablation: the two accelerator design choices §4 argues for —
// (a) dynamic PE allocation between predictor and executor (Table 1) and
// (b) dynamic workload scheduling across executor arrays (Figs. 14-16) —
// each toggled independently on the four networks.
#include <cstdio>

#include "accel/simulator.hpp"
#include "common.hpp"

int main() {
  using namespace odq;
  bench::print_header(
      "bench_ablation_scheduler",
      "ablation of §4 design choices (not a paper figure)",
      "rows: allocation x scheduling; values: total cycles (and idle %)");

  std::printf("%-10s | %-22s %-22s %-22s %-22s\n", "model",
              "static alloc+sched", "dyn alloc only", "dyn sched only",
              "dynamic both");
  bench::print_rule();
  for (const auto& model : bench::model_names()) {
    auto wls = bench::workloads_for(model, 10,
                                    bench::workload_odq_config(model, 10),
                                    bench::workload_drq_config());
    std::printf("%-10s |", model.c_str());
    // Column order: {dynamic allocation, dynamic scheduling} =
    // (F,F), (T,F), (F,T), (T,T).
    const bool configs[4][2] = {
        {false, false}, {true, false}, {false, true}, {true, true}};
    for (const auto& c : configs) {
      accel::SimOptions opts;
      opts.dynamic_allocation = c[0];
      opts.dynamic_workload_schedule = c[1];
      opts.static_allocation = {12, 15};
      const auto r = accel::simulate(accel::odq_accelerator(), wls, opts);
      std::printf(" %10.0f (%4.1f%%)   ", r.total_cycles,
                  100.0 * r.idle_pe_fraction);
    }
    std::printf("\n");
  }
  bench::print_rule();
  std::printf("expected: each dynamic mechanism alone helps; together they "
              "give the paper's <=18%% idleness (Fig. 20 vs Fig. 11)\n");
  return 0;
}
