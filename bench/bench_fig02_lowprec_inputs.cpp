// Figure 2: percentage of low-precision inputs used in generating
// *sensitive* outputs under input-directed quantization (DRQ) on ResNet-20.
// Four shares per layer: receptive fields with 0-25 / 25-50 / 50-75 /
// 75-100 % low-precision inputs.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace odq;
  bench::print_header(
      "bench_fig02_lowprec_inputs",
      "Figure 2 (% low-precision inputs per sensitive output, DRQ, "
      "ResNet-20)",
      "paper: most sensitive outputs use >25% low-precision inputs; some "
      "layers >75%");

  drq::DrqConfig cfg = bench::default_drq_config();
  cfg.input_threshold = -1.0f;  // per-layer 50% quantile calibration
  const auto layers = bench::analyze_model_layers("resnet20", 10, cfg, 0.3f);

  std::printf("%-6s %-10s %-10s %-10s %-10s %s\n", "layer", "0-25%",
              "25-50%", "50-75%", "75-100%", "sens.out(%)");
  bench::print_rule();
  int layers_over_25 = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const auto& a = layers[i];
    std::printf("C%-5zu %-10.2f %-10.2f %-10.2f %-10.2f %.1f\n", i + 1,
                a.lowprec_share_hist[0], a.lowprec_share_hist[1],
                a.lowprec_share_hist[2], a.lowprec_share_hist[3],
                100.0 * a.sensitive_output_fraction);
    if (a.lowprec_share_hist[1] + a.lowprec_share_hist[2] +
            a.lowprec_share_hist[3] >
        0.5) {
      ++layers_over_25;
    }
  }
  bench::print_rule();
  std::printf("layers where most sensitive outputs use >25%% low-precision "
              "inputs: %d / %zu (paper: almost every layer)\n",
              layers_over_25, layers.size());
  return 0;
}
