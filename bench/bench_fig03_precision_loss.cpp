// Figure 3: average precision loss injected into *sensitive* outputs by
// DRQ's low-precision inputs, per layer (ResNet-20). With --odq (or as the
// second half of the default output) the same measurement under ODQ — the
// paper's §6.1 per-layer list (C1: 0.08 ... C16: 0.05) — where sensitive
// outputs are bit-exact INT4 results and the only loss is INT4 rounding.
#include <cstdio>
#include <cstring>
#include <memory>

#include "common.hpp"
#include "core/odq.hpp"
#include "quant/quantizer.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace odq;

// ODQ per-layer precision loss on sensitive outputs vs the FP32 reference.
std::vector<double> odq_precision_loss(const std::string& model_name) {
  nn::Model model = bench::trained_model(model_name, 10);
  std::vector<nn::Conv2d*> convs = model.assign_conv_ids();
  const core::OdqConfig cfg = bench::default_odq_config(model_name);
  auto exec = std::make_shared<core::OdqConvExecutor>(cfg);
  model.set_conv_executor(exec);
  const auto& data = bench::dataset(10);
  const std::int64_t chw = data.test.images.shape()[1] *
                           data.test.images.shape()[2] *
                           data.test.images.shape()[3];
  tensor::Tensor batch(
      tensor::Shape{2, data.test.images.shape()[1],
                    data.test.images.shape()[2], data.test.images.shape()[3]},
      std::vector<float>(data.test.images.data(),
                         data.test.images.data() + 2 * chw));
  (void)model.forward(batch, false);
  model.set_conv_executor(nullptr);

  std::vector<double> losses;
  for (nn::Conv2d* conv : convs) {
    const tensor::Tensor& x = conv->cached_input();
    const tensor::Tensor empty_bias;
    const tensor::Tensor& bias =
        conv->bias() != nullptr ? conv->bias()->value : empty_bias;
    tensor::Tensor ref = tensor::conv2d_direct(x, conv->weight().value, bias,
                                               conv->stride(), conv->pad());
    core::OdqLayerStats stats;
    tensor::TensorU8 mask;
    tensor::Tensor out = core::odq_conv_float(x, conv->weight().value, bias,
                                              conv->stride(), conv->pad(),
                                              cfg, &stats, &mask);
    double loss = 0.0;
    std::int64_t count = 0;
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      if (mask[i] != 0) {
        loss += std::abs(out[i] - ref[i]);
        ++count;
      }
    }
    losses.push_back(count > 0 ? loss / static_cast<double>(count) : 0.0);
  }
  return losses;
}

}  // namespace

int main(int argc, char** argv) {
  const bool odq_only = argc > 1 && std::strcmp(argv[1], "--odq") == 0;
  bench::print_header(
      "bench_fig03_precision_loss",
      "Figure 3 (DRQ precision loss on sensitive outputs) + §6.1 in-text "
      "(ODQ per-layer precision loss)",
      "paper: DRQ noise >0.1 in most layers (INT4-INT2); ODQ stays at "
      "0.02-0.1");

  if (!odq_only) {
    drq::DrqConfig cfg = bench::default_drq_config();
    cfg.hi_bits = 4;  // the INT4-INT2 regime where Fig. 3 is measured
    cfg.lo_bits = 2;
    cfg.input_threshold = -1.0f;
    const auto layers = bench::analyze_model_layers("resnet20", 10, cfg, 0.3f);
    std::printf("DRQ (INT4-INT2) precision loss on sensitive outputs, "
                "ResNet-20:\n");
    std::printf("%-6s %s\n", "layer", "avg |O_hi - O_drq|");
    bench::print_rule();
    for (std::size_t i = 0; i < layers.size(); ++i) {
      std::printf("C%-5zu %.4f\n", i + 1, layers[i].precision_loss_sensitive);
    }
    std::printf("\n");
  }

  const auto odq_losses = odq_precision_loss("resnet20");
  std::printf("ODQ precision loss on sensitive outputs (vs FP32 reference), "
              "ResNet-20 (paper §6.1: C1 0.08 ... C16 0.05):\n");
  std::printf("%-6s %s\n", "layer", "avg |O_fp32 - O_odq|");
  bench::print_rule();
  double mx = 0.0;
  for (std::size_t i = 0; i < odq_losses.size(); ++i) {
    std::printf("C%-5zu %.4f\n", i + 1, odq_losses[i]);
    mx = std::max(mx, odq_losses[i]);
  }
  bench::print_rule();
  std::printf("max ODQ per-layer loss: %.4f (sensitive outputs are bit-exact "
              "INT4; residual loss is INT4 rounding only)\n",
              mx);
  return 0;
}
