// Figure 11: percentage of idle PEs under *static* PE allocation, for the
// two splits the paper plots: (a) 12 executor / 15 predictor arrays and
// (b) 9 executor / 18 predictor arrays. Per-layer predictor and executor
// idle fractions come from the ODQ accelerator simulator with dynamic
// allocation disabled.
#include <cstdio>

#include "accel/simulator.hpp"
#include "common.hpp"

namespace {

void run_config(const std::vector<odq::accel::ConvWorkload>& wls,
                int executor_arrays, int predictor_arrays, const char* tag) {
  using namespace odq::accel;
  SimOptions opts;
  opts.dynamic_allocation = false;
  opts.static_allocation = {predictor_arrays, executor_arrays};
  const SimResult r = simulate(odq_accelerator(), wls, opts);

  std::printf("\nFigure 11(%s) — Executor arrays: %d, Predictor arrays: %d\n",
              tag, executor_arrays, predictor_arrays);
  std::printf("%-8s %-12s %-12s %s\n", "layer", "Pre_idle(%)", "Exe_idle(%)",
              "total idle(%)");
  odq::bench::print_rule();
  double worst = 0.0;
  for (std::size_t i = 0; i < r.layers.size(); ++i) {
    const auto& l = r.layers[i];
    worst = std::max(worst, l.idle_pe_fraction);
    std::printf("C%-7zu %-12.1f %-12.1f %.1f\n", i + 1,
                100.0 * std::max(0.0, l.predictor_idle_fraction),
                100.0 * std::max(0.0, l.executor_idle_fraction),
                100.0 * l.idle_pe_fraction);
  }
  odq::bench::print_rule();
  std::printf("cycle-weighted idle: %.1f%%, worst layer: %.1f%%  "
              "(paper: static allocation idles 14-50%% of PEs)\n",
              100.0 * r.idle_pe_fraction, 100.0 * worst);
}

}  // namespace

int main() {
  using namespace odq;
  bench::print_header("bench_fig11_static_idle",
                      "Figure 11 (% idle PEs with static PE allocation)");
  auto wls = bench::workloads_for("resnet20", 10,
                                  bench::workload_odq_config("resnet20", 10),
                                  bench::workload_drq_config());
  run_config(wls, /*executor=*/12, /*predictor=*/15, "a");
  run_config(wls, /*executor=*/9, /*predictor=*/18, "b");
  return 0;
}
