// Figures 9 and 10: percentage of insensitive output features identified by
// the ODQ sensitivity predictor, per conv layer, for ResNet-56 and
// ResNet-20.
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "core/odq.hpp"
#include "util/csv.hpp"

namespace {

void run_model(const char* model_name, const char* figure) {
  using namespace odq;
  nn::Model model = bench::trained_model(model_name, 10);
  model.assign_conv_ids();
  const core::OdqConfig cfg = bench::default_odq_config(model_name);
  auto exec = std::make_shared<core::OdqConvExecutor>(cfg);
  model.set_conv_executor(exec);

  const auto& data = bench::dataset(10);
  const std::int64_t n = std::min<std::int64_t>(8, data.test.size());
  const std::int64_t chw = data.test.images.shape()[1] *
                           data.test.images.shape()[2] *
                           data.test.images.shape()[3];
  tensor::Tensor batch(
      tensor::Shape{n, data.test.images.shape()[1],
                    data.test.images.shape()[2], data.test.images.shape()[3]},
      std::vector<float>(data.test.images.data(),
                         data.test.images.data() + n * chw));
  (void)model.forward(batch, false);
  model.set_conv_executor(nullptr);

  std::printf("\n%s — %s (threshold %.2f, %lld test images)\n", figure,
              model_name, cfg.threshold, static_cast<long long>(n));
  std::printf("%-6s %-10s %s\n", "layer", "insens(%)", "sensitive(%)");
  odq::bench::print_rule();
  double mean_insens = 0.0;
  const std::size_t layers = exec->num_layers_seen();
  for (std::size_t i = 0; i < layers; ++i) {
    const auto s = exec->layer_stats(static_cast<int>(i));
    const double insens = 100.0 * (1.0 - s.sensitive_fraction());
    mean_insens += insens;
    std::printf("C%-5zu %-10.1f %.1f\n", i + 1, insens,
                100.0 * s.sensitive_fraction());
  }
  if (layers > 0) mean_insens /= static_cast<double>(layers);
  odq::bench::print_rule();
  std::printf("mean insensitive: %.1f%%  (paper: considerable variation "
              "across layers; sensitive 8-50%%)\n",
              mean_insens);
}

}  // namespace

int main() {
  odq::bench::print_header(
      "bench_fig09_10_insensitive",
      "Figures 9 & 10 (% insensitive output features per layer, ODQ)");
  run_model("resnet56", "Figure 9");
  run_model("resnet20", "Figure 10");
  return 0;
}
