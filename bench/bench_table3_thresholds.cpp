// Table 3: per-model thresholds chosen by the adaptive search of §3
// (calibrate from the predictor-output distribution, retrain with the
// threshold in the loop, halve until accuracy meets the expectation).
#include <cstdio>

#include "common.hpp"
#include "core/threshold_search.hpp"

int main() {
  using namespace odq;
  bench::print_header(
      "bench_table3_thresholds",
      "Table 3 (thresholds per model via adaptive search)",
      "paper: ResNet-56 0.5, ResNet-20 0.5, VGG-16 0.3, DenseNet 0.05 — "
      "optimal threshold varies per model");

  std::printf("%-10s %-10s %-10s %-10s %-6s %s\n", "model", "threshold",
              "accuracy", "reference", "iters", "converged");
  bench::print_rule();
  for (const auto& model_name : bench::model_names()) {
    nn::Model model = bench::trained_model(model_name, 10);
    const double ref = bench::test_accuracy(model, 10);

    core::ThresholdSearchConfig scfg;
    // Quick-scale budget: 2 fine-tune epochs per candidate and a 10%
    // tolerance (the paper trains each network 3-4 full times here).
    scfg.accuracy_tolerance = 0.10;
    scfg.init_percentile = 0.50;  // quick-scale distributions have long tails
    scfg.max_iterations = 5;
    scfg.finetune_epochs = 2;
    scfg.finetune.batch_size = 16;
    scfg.finetune.lr = 0.01f;
    scfg.calibration_inputs = 16;

    const auto& data = bench::dataset(10);
    core::OdqConfig base = bench::default_odq_config(model_name);
    const auto res = core::search_threshold(model, data.train, data.test, ref,
                                            base, scfg);
    std::printf("%-10s %-10.4f %-10.3f %-10.3f %-6d %s\n", model_name.c_str(),
                res.threshold, res.accuracy, ref, res.iterations,
                res.converged ? "yes" : "no");
    for (const auto& pt : res.trace) {
      std::printf("           trace: thr=%.4f acc=%.3f sens=%.2f\n",
                  pt.threshold, pt.accuracy, pt.sensitive_fraction);
    }
  }
  bench::print_rule();
  std::printf("(thresholds are model-specific, as in the paper; absolute "
              "values differ because datasets and widths are bench-scale)\n");
  return 0;
}
