// Shared infrastructure for the per-figure/table benchmark harnesses.
//
// Every bench binary is self-contained: it builds (or loads from the disk
// cache) the trained models it needs, runs the experiment, and prints the
// rows/series of the corresponding paper table or figure. The environment
// variable ODQ_BENCH_SCALE selects "quick" (default; laptop-friendly, the
// scale EXPERIMENTS.md reports) or "full" (paper-sized datasets/widths —
// hours of CPU). ODQ_BENCH_CACHE overrides the weight-cache directory
// (default ./bench_cache).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "accel/workload.hpp"
#include "core/odq.hpp"
#include "data/synthetic.hpp"
#include "drq/drq.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace odq::bench {

struct Scale {
  std::string name;             // "quick" or "full"
  std::int64_t train_n = 240;   // per dataset
  std::int64_t test_n = 80;
  std::int64_t epochs = 8;
  std::int64_t finetune_epochs = 3;
  std::int64_t c100_classes = 20;  // quick-scale stand-in for CIFAR-100
  std::int64_t c100_train_n = 400;
  std::int64_t c100_test_n = 100;
  // Model widths.
  std::int64_t resnet_width = 4;
  std::int64_t vgg_width = 8;
  std::int64_t densenet_growth = 4;
  std::int64_t densenet_layers = 3;
};

// Resolved from ODQ_BENCH_SCALE.
const Scale& scale();

// The four paper models, at the current scale. Valid names: "resnet20",
// "resnet56", "vgg16", "densenet". Throws on anything else.
nn::Model make_model(const std::string& name, int num_classes);
const std::vector<std::string>& model_names();

// Synthetic CIFAR-10/100 stand-ins (cached in-process per variant).
// `variant` is 10 or 100.
const data::TrainTest& dataset(int variant);
int classes_for_variant(int variant);

// FP32-trained model, cached on disk under the bench cache directory.
nn::Model trained_model(const std::string& model_name, int variant);

// Model fine-tuned with `exec` installed (the paper's retraining step),
// starting from the trained FP32 weights; cached on disk under
// `scheme_tag`. The executor remains installed on the returned model.
nn::Model finetuned_model(const std::string& model_name, int variant,
                          const std::string& scheme_tag,
                          const std::shared_ptr<nn::ConvExecutor>& exec);

// Accuracy of `model` on the `variant` test split.
double test_accuracy(nn::Model& model, int variant);

// Per-layer accelerator workloads for a trained model (ODQ masks + DRQ
// fractions extracted from one test batch).
std::vector<accel::ConvWorkload> workloads_for(const std::string& model_name,
                                               int variant,
                                               const core::OdqConfig& odq_cfg,
                                               const drq::DrqConfig& drq_cfg);

// Reasonable default configs used across benches (thresholds follow the
// paper's Table 3 style: per-model values picked by the search bench).
core::OdqConfig default_odq_config(const std::string& model_name);
drq::DrqConfig default_drq_config();

// Configs for *accelerator workload extraction*: thresholds calibrated so
// the mean sensitive-output fraction lands in the paper's observed band
// (8-50%; target 25% here). At bench scale the synthetic networks have
// flatter predictor-output distributions than paper-scale CIFAR models, so
// a fixed Table-3 value would mark nearly everything sensitive.
core::OdqConfig workload_odq_config(const std::string& model_name,
                                    int variant,
                                    double target_sensitive = 0.25);
drq::DrqConfig workload_drq_config();

// Config for the *accuracy* experiments (Fig. 18 / Fig. 22): threshold
// calibrated for ~50% sensitive outputs, recovered by the retraining pass.
// The quantizer transform is model-specific (DenseNet benefits from the
// DoReFa tanh spread; the ResNets/VGG do better linear at this scale).
core::OdqConfig accuracy_odq_config(const std::string& model_name,
                                    int variant);

// The paper's retraining recipe for ODQ, with a threshold ramp
// (0 -> t/4 -> t/2 -> t) so deep models adapt gradually; cached on disk.
// Returns the fine-tuned model (executor installed) plus the target
// threshold the ramp ended at.
struct OdqTunedModel {
  nn::Model model;
  std::shared_ptr<core::OdqConvExecutor> executor;
  float target_threshold = 0.0f;
};
OdqTunedModel odq_finetuned(const std::string& model_name, int variant);

// Run one test batch through a trained model and apply drq::analyze_layer to
// every conv layer (Figures 2-5 instrumentation). `output_threshold`
// defines output sensitivity; `drq_cfg.input_threshold < 0` requests
// per-layer quantile calibration at 50% sensitive regions.
std::vector<drq::LayerAnalysis> analyze_model_layers(
    const std::string& model_name, int variant, drq::DrqConfig drq_cfg,
    float output_threshold);

// Pretty printing.
void print_header(const std::string& bench, const std::string& reproduces,
                  const std::string& note = "");
void print_rule();

// ---- Machine-readable output ----------------------------------------------
//
// Benches can mirror their result rows into a JSON file for scripted
// consumption (regression tracking, plotting). Off by default; enabled by
//   * `--json <path>` on the bench command line (call json_init from main), or
//   * ODQ_BENCH_JSON=1        -> ./BENCH_<bench>.json
//     ODQ_BENCH_JSON=<dir>/   -> <dir>/BENCH_<bench>.json (trailing slash or
//                                existing directory)
//     ODQ_BENCH_JSON=<path>   -> exactly that file.
// print_header() opens the document (bench name, reproduces line, scale);
// json_row() appends one row; the file is written at process exit, so
// benches need no explicit flush/teardown.

// One cell of a row: string, float, integer, or bool.
struct JsonCell {
  enum class Kind { kString, kDouble, kInt, kBool } kind;
  std::string s;
  double d = 0.0;
  std::int64_t i = 0;
  bool b = false;

  JsonCell(const char* v) : kind(Kind::kString), s(v) {}
  JsonCell(std::string v) : kind(Kind::kString), s(std::move(v)) {}
  JsonCell(double v) : kind(Kind::kDouble), d(v) {}
  JsonCell(float v) : kind(Kind::kDouble), d(v) {}
  JsonCell(std::int64_t v) : kind(Kind::kInt), i(v) {}
  JsonCell(int v) : kind(Kind::kInt), i(v) {}
  JsonCell(std::size_t v) : kind(Kind::kInt), i(static_cast<std::int64_t>(v)) {}
  JsonCell(bool v) : kind(Kind::kBool), b(v) {}
};

// Parse `--json <path>` (also accepts ODQ_BENCH_JSON); safe to skip for
// benches whose main() takes no arguments — the env var still works.
void json_init(int argc, char** argv);
bool json_enabled();

// Append one row under `section` (e.g. "fig19", "host_wall_clock"). Keys are
// emitted in the order given. No-op when JSON output is disabled.
void json_row(const std::string& section,
              std::initializer_list<std::pair<std::string, JsonCell>> cells);

}  // namespace odq::bench
