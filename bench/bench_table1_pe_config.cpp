// Table 1: PE-array split between predictor and executor vs the maximum
// sensitive-output percentage the split sustains without pipeline bubbles.
#include <cstdio>

#include "accel/allocation.hpp"
#include "common.hpp"

int main() {
  using namespace odq;
  bench::print_header("bench_table1_pe_config",
                      "Table 1 (PE array configuration vs max sensitive %)",
                      "analytic: executor keeps up iff s <= E / (3 P)");

  std::printf("%-28s %-28s %s\n", "# PE arrays for predictor",
              "# PE arrays for executor", "max sensitive outputs (%)");
  bench::print_rule();
  const int paper[5] = {66, 41, 26, 16, 9};
  int i = 0;
  bool all_match = true;
  for (const auto& alloc : accel::valid_allocations()) {
    const double frac = accel::max_bubble_free_sensitive_fraction(
        alloc.predictor_arrays, alloc.executor_arrays);
    const int pct = static_cast<int>(frac * 100.0);
    const bool match = pct == paper[i];
    all_match &= match;
    std::printf("%-28d %-28d %d   (paper: %d)%s\n", alloc.predictor_arrays,
                alloc.executor_arrays, pct, paper[i], match ? "" : "  <-- MISMATCH");
    ++i;
  }
  bench::print_rule();
  std::printf("Table 1 reproduction: %s\n", all_match ? "EXACT" : "MISMATCH");
  return all_match ? 0 : 1;
}
