// odq_bench_diff — regression gate over two BENCH_*.json documents.
//
//   odq_bench_diff baseline.json current.json [--tol 0.10] [options]
//
// Matches rows by (section + every string-valued cell, e.g. the model
// name), then compares every numeric cell of the baseline against the
// current document with a relative tolerance. Any cell whose relative
// change exceeds the tolerance — in either direction; the gate detects
// *movement*, the reviewer decides the sign — and any baseline row or key
// missing from the current document is a regression. Exit codes:
//
//   0  all compared cells within tolerance
//   1  at least one regression (or missing row/key)
//   2  usage / unreadable / unparseable input
//
// Wall-clock-ish cells ("seconds"/"wall"/"speedup" key substrings, the
// "host_wall_clock" section) and provenance metadata (git_sha, build_*)
// are ignored by default — they legitimately differ across runs and
// machines. --strict compares them too.
//
// Options:
//   --tol <f>            default relative tolerance (default 0.10)
//   --tol-key k=f        per-key tolerance override (repeatable, exact key)
//   --ignore <substr>    also ignore keys containing <substr> (repeatable)
//   --ignore-section <s> also ignore sections containing <s> (repeatable)
//   --strict             drop the built-in ignore lists
//   --quiet              only print regressions and the summary line
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "tool_main.hpp"
#include "util/json_read.hpp"

namespace {

using odq::util::JsonValue;

struct Options {
  std::string baseline_path;
  std::string current_path;
  double tol = 0.10;
  std::map<std::string, double> key_tol;
  std::vector<std::string> ignore_keys;      // substring match
  std::vector<std::string> ignore_sections;  // substring match
  bool quiet = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: odq_bench_diff <baseline.json> <current.json>\n"
      "                      [--tol f] [--tol-key key=f] [--ignore substr]\n"
      "                      [--ignore-section substr] [--strict] [--quiet]\n");
  return 2;
}

bool contains_any(const std::string& s,
                  const std::vector<std::string>& substrs) {
  for (const std::string& sub : substrs) {
    if (s.find(sub) != std::string::npos) return true;
  }
  return false;
}

// Identity of a row: its section plus every string cell, sorted by key, so
// reordered rows and reordered cells still match.
std::string row_key(const JsonValue& row) {
  std::string key;
  for (const auto& [k, v] : row.obj) {  // std::map: already key-sorted
    if (v.kind == JsonValue::Kind::kString) {
      key += k;
      key += '=';
      key += v.str;
      key += '|';
    }
  }
  return key;
}

std::string row_label(const JsonValue& row) {
  std::string label;
  if (row.has("section")) label = row.at("section").str;
  for (const auto& [k, v] : row.obj) {
    if (k != "section" && v.kind == JsonValue::Kind::kString) {
      label += ' ' + k + '=' + v.str;
    }
  }
  return label;
}

double rel_change(double base, double cur) {
  const double denom = std::max(std::abs(base), 1e-12);
  return std::abs(cur - base) / denom;
}

}  // namespace

int tool_main(int argc, char** argv) {
  Options opt;
  opt.ignore_keys = {"seconds", "wall", "speedup", "git_sha", "build_"};
  opt.ignore_sections = {"host_wall_clock"};
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "odq_bench_diff: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--tol") {
      opt.tol = std::strtod(next("--tol"), nullptr);
    } else if (a == "--tol-key") {
      const std::string kv = next("--tol-key");
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) return usage();
      opt.key_tol[kv.substr(0, eq)] =
          std::strtod(kv.substr(eq + 1).c_str(), nullptr);
    } else if (a == "--ignore") {
      opt.ignore_keys.push_back(next("--ignore"));
    } else if (a == "--ignore-section") {
      opt.ignore_sections.push_back(next("--ignore-section"));
    } else if (a == "--strict") {
      opt.ignore_keys.clear();
      opt.ignore_sections.clear();
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else if (!a.empty() && a[0] == '-') {
      return usage();
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2 || opt.tol <= 0.0) return usage();
  opt.baseline_path = positional[0];
  opt.current_path = positional[1];

  // Typed parse errors: a missing baseline and a corrupt document print
  // distinguishable diagnostics but both exit 2 (usage/error, not a gate
  // verdict).
  auto base_or = odq::util::json_try_parse_file(opt.baseline_path);
  auto cur_or = odq::util::json_try_parse_file(opt.current_path);
  for (const auto* doc : {&base_or, &cur_or}) {
    if (!doc->ok()) {
      std::fprintf(stderr, "odq_bench_diff: %s\n",
                   doc->status().to_string().c_str());
      return 2;
    }
  }
  const JsonValue& base = base_or.value();
  const JsonValue& cur = cur_or.value();

  auto meta = [](const JsonValue& doc, const std::string& key) {
    return doc.has(key) && doc.at(key).is_string() ? doc.at(key).str
                                                   : std::string("?");
  };
  if (!opt.quiet) {
    std::printf("baseline: %s  (bench=%s scale=%s simd=%s sha=%s)\n",
                opt.baseline_path.c_str(), meta(base, "bench").c_str(),
                meta(base, "scale").c_str(),
                meta(base, "simd_backend").c_str(),
                meta(base, "git_sha").c_str());
    std::printf("current:  %s  (bench=%s scale=%s simd=%s sha=%s)\n",
                opt.current_path.c_str(), meta(cur, "bench").c_str(),
                meta(cur, "scale").c_str(),
                meta(cur, "simd_backend").c_str(),
                meta(cur, "git_sha").c_str());
  }
  if (meta(base, "bench") != meta(cur, "bench")) {
    std::fprintf(stderr, "odq_bench_diff: warning: comparing different "
                         "benches (%s vs %s)\n",
                 meta(base, "bench").c_str(), meta(cur, "bench").c_str());
  }
  if (meta(base, "scale") != meta(cur, "scale")) {
    std::fprintf(stderr, "odq_bench_diff: warning: different scales "
                         "(%s vs %s) — numbers are not comparable 1:1\n",
                 meta(base, "scale").c_str(), meta(cur, "scale").c_str());
  }
  // The SIMD kernel backend is part of comparability: a scalar-backend run
  // against an AVX2 run measures different machine code, so two documents
  // that both record the backend but disagree are rejected outright (exit 2,
  // an input error — not a gate verdict). A document predating the field
  // (or a run without it) only warns.
  const bool base_has_simd =
      base.has("simd_backend") && base.at("simd_backend").is_string();
  const bool cur_has_simd =
      cur.has("simd_backend") && cur.at("simd_backend").is_string();
  if (base_has_simd && cur_has_simd &&
      base.at("simd_backend").str != cur.at("simd_backend").str) {
    std::fprintf(stderr,
                 "odq_bench_diff: simd backend mismatch (%s vs %s) — "
                 "documents are not comparable\n",
                 base.at("simd_backend").str.c_str(),
                 cur.at("simd_backend").str.c_str());
    return 2;
  }
  if (base_has_simd != cur_has_simd) {
    std::fprintf(stderr,
                 "odq_bench_diff: warning: only one document records "
                 "simd_backend (baseline %s, current %s)\n",
                 meta(base, "simd_backend").c_str(),
                 meta(cur, "simd_backend").c_str());
  }

  if (!base.has("rows") || !cur.has("rows")) {
    std::fprintf(stderr, "odq_bench_diff: missing \"rows\" array\n");
    return 2;
  }

  std::map<std::string, const JsonValue*> cur_rows;
  for (const JsonValue& row : cur.at("rows").arr) {
    cur_rows[row_key(row)] = &row;
  }

  int compared = 0, ignored = 0, regressions = 0;
  for (const JsonValue& brow : base.at("rows").arr) {
    const std::string section =
        brow.has("section") && brow.at("section").is_string()
            ? brow.at("section").str
            : "";
    if (contains_any(section, opt.ignore_sections)) {
      ++ignored;
      continue;
    }
    auto it = cur_rows.find(row_key(brow));
    if (it == cur_rows.end()) {
      std::printf("MISSING    %s — row not present in current\n",
                  row_label(brow).c_str());
      ++regressions;
      continue;
    }
    const JsonValue& crow = *it->second;
    for (const auto& [key, bval] : brow.obj) {
      if (bval.kind != JsonValue::Kind::kNumber) continue;
      if (contains_any(key, opt.ignore_keys)) {
        ++ignored;
        continue;
      }
      if (!crow.has(key) ||
          crow.at(key).kind != JsonValue::Kind::kNumber) {
        std::printf("MISSING    %s key=%s — cell not present in current\n",
                    row_label(brow).c_str(), key.c_str());
        ++regressions;
        continue;
      }
      const double b = bval.num;
      const double c = crow.at(key).num;
      const auto tol_it = opt.key_tol.find(key);
      const double tol = tol_it != opt.key_tol.end() ? tol_it->second
                                                     : opt.tol;
      ++compared;
      const double rel = rel_change(b, c);
      if (rel > tol && std::abs(c - b) > 1e-9) {
        std::printf(
            "REGRESSION %s key=%s: base=%.6g cur=%.6g (%+.1f%% > %.0f%%)\n",
            row_label(brow).c_str(), key.c_str(), b, c, 100.0 * (c - b) /
                (std::abs(b) > 1e-12 ? std::abs(b) : 1.0),
            100.0 * tol);
        ++regressions;
      } else if (!opt.quiet) {
        std::printf("ok         %s key=%s: base=%.6g cur=%.6g (%.2f%%)\n",
                    row_label(brow).c_str(), key.c_str(), b, c, 100.0 * rel);
      }
    }
  }

  std::printf("%d cells compared, %d ignored, %d regressions (tol %.0f%%)\n",
              compared, ignored, regressions, 100.0 * opt.tol);
  return regressions > 0 ? 1 : 0;
}

int main(int argc, char** argv) {
  return odq::tools::run_guarded("odq_bench_diff",
                                 [&] { return tool_main(argc, argv); });
}
