// Shared outermost error boundary for the CLI tools.
//
// Every tool's main() delegates to run_guarded(): an exception escaping the
// tool body prints one diagnostic line and exits 2 — the usage-error code
// odq_bench_diff established — instead of reaching std::terminate. Tools
// keep narrower catches where they can do something smarter (report and
// continue); this is the floor, not the ceiling.
#pragma once

#include <cstdio>
#include <exception>

namespace odq::tools {

template <typename Fn>
int run_guarded(const char* tool, Fn&& fn) {
  try {
    return fn();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", tool, e.what());
    return 2;
  } catch (...) {
    std::fprintf(stderr, "%s: unknown fatal error\n", tool);
    return 2;
  }
}

}  // namespace odq::tools
