// odq_profile — one-command "where did the time go" for the ODQ pipeline.
//
//   odq_profile --model lenet --trace out.trace.json --report out.json
//
// Builds the requested model, runs it end-to-end on synthetic data with the
// ODQ executor installed and tracing + metrics enabled, then emits
//   * a Chrome Trace Event Format file (chrome://tracing / Perfetto), and
//   * a JSON report: per-layer wall time, sensitive-output fraction
//     (exactly OdqConvExecutor::layer_stats), predictor vs executor MACs,
//     bytes moved at INT4 + mask width, plus a full metrics snapshot.
//
// Options:
//   --model <name>       lenet | resnet20 | resnet56 | vgg16 | densenet
//   --trace <path>       Chrome trace output (default: no trace file)
//   --report <path>      JSON report (default: stdout)
//   --threshold <t>      ODQ sensitivity threshold (default 0.15)
//   --batch <n>          batch size (default 8)
//   --batches <n>        forward passes to profile (default 1)
//   --width <w>          model width parameter (default 8)
//   --quiet              suppress the human-readable summary on stderr
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/odq.hpp"
#include "data/synthetic.hpp"
#include "nn/init.hpp"
#include "nn/models.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simd/dispatch.hpp"
#include "tool_main.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace {

using namespace odq;

struct Options {
  std::string model = "lenet";
  std::string trace_path;
  std::string report_path;
  float threshold = 0.15f;
  std::int64_t batch = 8;
  std::int64_t batches = 1;
  std::int64_t width = 8;
  bool quiet = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: odq_profile [--model lenet|resnet20|resnet56|vgg16|"
               "densenet]\n"
               "                   [--trace out.trace.json] [--report out.json]"
               "\n"
               "                   [--threshold t] [--batch n] [--batches n]\n"
               "                   [--width w] [--quiet]\n");
  return 2;
}

// Per-layer wall time and operand volume, captured by wrapping the real ODQ
// executor. The sensitive fractions in the report are NOT computed here —
// they are read back from OdqConvExecutor::layer_stats so the report
// matches the executor's own accounting exactly.
struct LayerProfile {
  double wall_seconds = 0.0;
  std::int64_t calls = 0;
  std::int64_t input_elems = 0;
  std::int64_t weight_elems = 0;
  std::int64_t output_elems = 0;
};

class ProfilingExecutor : public nn::ConvExecutor {
 public:
  explicit ProfilingExecutor(core::OdqConfig cfg)
      : inner_(std::make_shared<core::OdqConvExecutor>(cfg)) {}

  tensor::Tensor run(const tensor::Tensor& input, const tensor::Tensor& weight,
                     const tensor::Tensor& bias, std::int64_t stride,
                     std::int64_t pad, int conv_id) override {
    obs::TraceSpan span("profile.conv" + std::to_string(conv_id));
    util::WallTimer timer;
    tensor::Tensor out = inner_->run(input, weight, bias, stride, pad, conv_id);
    const double secs = timer.seconds();
    LayerProfile& p = profiles_[conv_id];
    p.wall_seconds += secs;
    ++p.calls;
    p.input_elems = input.numel();
    p.weight_elems = weight.numel();
    p.output_elems = out.numel();
    return out;
  }

  std::string name() const override { return "odq_profile"; }

  const core::OdqConvExecutor& inner() const { return *inner_; }
  const std::map<int, LayerProfile>& profiles() const { return profiles_; }

 private:
  std::shared_ptr<core::OdqConvExecutor> inner_;
  std::map<int, LayerProfile> profiles_;
};

nn::Model build_model(const Options& opt, int* classes) {
  *classes = 10;
  if (opt.model == "lenet" || opt.model == "lenet5") {
    return nn::make_lenet5(*classes);
  }
  if (opt.model == "resnet20") return nn::make_resnet(20, *classes, opt.width);
  if (opt.model == "resnet56") return nn::make_resnet(56, *classes, opt.width);
  if (opt.model == "vgg16") return nn::make_vgg16(*classes, opt.width);
  if (opt.model == "densenet") {
    return nn::make_densenet(*classes, opt.width / 2 + 2, 3);
  }
  throw std::invalid_argument("unknown model " + opt.model);
}

// ODQ operand bytes for one call: INT4 input + INT4 weights + INT4 output
// plus the 1-bit sensitivity mask per output.
double layer_bytes_moved(const LayerProfile& p) {
  return static_cast<double>(p.calls) *
         (static_cast<double>(p.input_elems) * 0.5 +
          static_cast<double>(p.weight_elems) * 0.5 +
          static_cast<double>(p.output_elems) * 0.5 +
          static_cast<double>(p.output_elems) / 8.0);
}

}  // namespace

int tool_main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "odq_profile: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--model") {
      opt.model = next("--model");
    } else if (a == "--trace") {
      opt.trace_path = next("--trace");
    } else if (a == "--report") {
      opt.report_path = next("--report");
    } else if (a == "--threshold") {
      opt.threshold = std::strtof(next("--threshold"), nullptr);
    } else if (a == "--batch") {
      opt.batch = std::atoll(next("--batch"));
    } else if (a == "--batches") {
      opt.batches = std::atoll(next("--batches"));
    } else if (a == "--width") {
      opt.width = std::atoll(next("--width"));
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else {
      return usage();
    }
  }
  if (opt.batch <= 0 || opt.batches <= 0 || opt.width <= 0) return usage();

  {
    obs::set_trace_enabled(true);
    obs::set_metrics_enabled(true);

    int classes = 10;
    nn::Model model = build_model(opt, &classes);
    nn::kaiming_init(model, 1);
    model.assign_conv_ids();

    core::OdqConfig cfg;
    cfg.threshold = opt.threshold;
    auto exec = std::make_shared<ProfilingExecutor>(cfg);
    model.set_conv_executor(exec);

    const bool digits = opt.model == "lenet" || opt.model == "lenet5";
    const std::int64_t need = opt.batch * opt.batches;
    data::TrainTest data;
    if (digits) {
      data = data::make_synthetic_digits(need, 1);
    } else {
      data::SyntheticConfig dcfg;
      dcfg.num_classes = classes;
      dcfg.noise = 0.05f;
      data = data::make_synthetic_images(dcfg, need, 1);
    }
    const tensor::Shape& ds = data.train.images.shape();
    const std::int64_t chw = ds[1] * ds[2] * ds[3];

    util::WallTimer total_timer;
    for (std::int64_t b = 0; b < opt.batches; ++b) {
      ODQ_TRACE_SPAN("profile.forward");
      tensor::Tensor batch(
          tensor::Shape{opt.batch, ds[1], ds[2], ds[3]},
          std::vector<float>(data.train.images.data() + b * opt.batch * chw,
                             data.train.images.data() +
                                 (b + 1) * opt.batch * chw));
      (void)model.forward(batch, /*train=*/false);
    }
    const double total_seconds = total_timer.seconds();

    if (!opt.trace_path.empty()) obs::write_chrome_trace(opt.trace_path);

    // Report.
    util::JsonWriter w;
    w.begin_object();
    w.kv("model", opt.model);
    w.kv("threshold", static_cast<double>(opt.threshold));
    w.kv("batch", opt.batch);
    w.kv("batches", opt.batches);
    // Which SIMD kernel backend served the GEMM + epilogue hot loops — the
    // phase timings below are meaningless without it.
    w.kv("simd_backend", simd::backend_name(simd::active_backend()));
    w.kv("total_wall_seconds", total_seconds);
    if (!opt.trace_path.empty()) w.kv("trace_file", opt.trace_path);
    w.key("layers");
    w.begin_array();
    double total_bytes = 0.0;
    const core::OdqConvExecutor& odq_exec = exec->inner();
    for (const auto& [conv_id, prof] : exec->profiles()) {
      const core::OdqLayerStats stats = odq_exec.layer_stats(conv_id);
      const double bytes = layer_bytes_moved(prof);
      total_bytes += bytes;
      w.begin_object();
      w.kv("conv_id", static_cast<std::int64_t>(conv_id));
      w.kv("calls", prof.calls);
      w.kv("wall_seconds", prof.wall_seconds);
      w.kv("outputs", stats.outputs);
      w.kv("sensitive", stats.sensitive);
      w.kv("sensitive_fraction", stats.sensitive_fraction());
      w.kv("predictor_macs", stats.predictor_macs);
      w.kv("executor_macs", stats.executor_macs);
      // Phase breakdown of the packed-GEMM pipeline (core/odq.cpp):
      // operand packing + digit split, predictor INT-GEMM, mask-aware
      // sparse result generation. Sums to less than wall_seconds; the
      // remainder is quantize/dequantize and executor overhead.
      w.kv("pack_seconds", stats.pack_seconds);
      w.kv("gemm_seconds", stats.gemm_seconds);
      w.kv("sparse_epilogue_seconds", stats.sparse_epilogue_seconds);
      w.kv("bytes_moved", bytes);
      w.end_object();
    }
    w.end_array();
    w.kv("total_bytes_moved", total_bytes);
    w.key("metrics");
    obs::metrics_to_json(w);
    w.end_object();

    const std::string report = w.take();
    if (opt.report_path.empty()) {
      std::printf("%s\n", report.c_str());
    } else {
      std::FILE* f = std::fopen(opt.report_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "odq_profile: cannot open %s\n",
                     opt.report_path.c_str());
        return 1;
      }
      std::fwrite(report.data(), 1, report.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }

    if (!opt.quiet) {
      std::fprintf(stderr, "simd backend: %s\n",
                   simd::backend_name(simd::active_backend()));
      std::fprintf(stderr,
                   "%-8s %5s %10s %8s %9s %9s %9s %12s %12s %10s\n", "layer",
                   "calls", "wall ms", "sens %", "pack ms", "gemm ms",
                   "spars ms", "pred MACs", "exec MACs", "KB moved");
      for (const auto& [conv_id, prof] : exec->profiles()) {
        const core::OdqLayerStats stats = odq_exec.layer_stats(conv_id);
        std::fprintf(stderr,
                     "conv%-4d %5lld %10.3f %7.1f%% %9.3f %9.3f %9.3f %12lld "
                     "%12lld %10.1f\n",
                     conv_id, static_cast<long long>(prof.calls),
                     prof.wall_seconds * 1e3,
                     100.0 * stats.sensitive_fraction(),
                     stats.pack_seconds * 1e3, stats.gemm_seconds * 1e3,
                     stats.sparse_epilogue_seconds * 1e3,
                     static_cast<long long>(stats.predictor_macs),
                     static_cast<long long>(stats.executor_macs),
                     layer_bytes_moved(prof) / 1024.0);
      }
      std::fprintf(stderr, "total: %.3f s, %.1f KB moved", total_seconds,
                   total_bytes / 1024.0);
      if (!opt.trace_path.empty()) {
        std::fprintf(stderr, ", trace -> %s", opt.trace_path.c_str());
      }
      if (!opt.report_path.empty()) {
        std::fprintf(stderr, ", report -> %s", opt.report_path.c_str());
      }
      std::fputc('\n', stderr);
    }
    return 0;
  }
}

int main(int argc, char** argv) {
  return odq::tools::run_guarded("odq_profile",
                                 [&] { return tool_main(argc, argv); });
}
