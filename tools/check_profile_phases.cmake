# Post-hoc check for odq_profile_smoke: the JSON report must contain the
# packed-GEMM phase-breakdown keys in its per-layer objects.
if(NOT DEFINED REPORT)
  message(FATAL_ERROR "pass -DREPORT=<path to smoke.report.json>")
endif()
file(READ "${REPORT}" report_json)
foreach(key pack_seconds gemm_seconds sparse_epilogue_seconds)
  string(FIND "${report_json}" "\"${key}\"" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "odq_profile report ${REPORT} is missing \"${key}\"")
  endif()
endforeach()
