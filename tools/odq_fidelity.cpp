// odq_fidelity — threshold-sweep numerical-fidelity report for ODQ.
//
//   odq_fidelity --model lenet5 --sweep --report fidelity.json
//
// Builds the requested model, runs one FP32 forward pass as the reference,
// then re-runs the same batch with the ODQ executor at each sensitivity
// threshold with the obs fidelity layer enabled. The report is the
// observability counterpart of the paper's Fig. 22 / Table 3: per threshold
// it records the sensitive-output fraction (read back from
// OdqConvExecutor::layer_stats, i.e. the exact counters odq_profile
// reports), per-layer SQNR / cosine / error attribution from
// obs::fidelity_snapshot, and two accuracy proxies — label accuracy on the
// synthetic batch and top-1 agreement with the FP32 forward pass.
//
// Options:
//   --model <name>       lenet5 | resnet20 | resnet56 | vgg16 | densenet
//   --sweep              sweep the default threshold ladder
//   --thresholds a,b,c   explicit comma-separated thresholds (implies sweep)
//   --batch <n>          batch size (default 8)
//   --width <w>          model width parameter (default 8)
//   --checkpoint <path>  v3 checkpoint loaded after deterministic init
//   --report <path>      JSON report (default: stdout)
//   --csv <path>         also mirror per-layer rows into a CSV file
//   --quiet              suppress the human-readable summary on stderr
//
// Without --sweep/--thresholds a single point at --threshold (default 0.15)
// is measured.
//
// Online-quality companion modes (docs/observability.md):
//
//   --emit-baseline <p>  calibrate a drift baseline: evaluate --batch
//                        synthetic requests one sample at a time (matching
//                        the serving path's per-sample quantization scales)
//                        under the ODQ executor at --threshold, and write
//                        the per-layer sensitive fraction / SQNR /
//                        normalized predictor-magnitude histogram as an
//                        odq_quality_baseline JSON for odq_serve
//                        --drift-baseline. --inputs uniform --seed s selects
//                        the uniform per-request generator odq_serve's load
//                        loop uses (same seed => same input stream).
//   --inputs <kind>      calibration inputs: digits (default) | uniform
//   --seed <s>           input stream seed for --inputs uniform (default 42)
//   --replay <dump>      load an anomaly flight-recorder dump (odq_serve
//                        --flight-dump), rebuild the model named in its
//                        header (checkpoint overridable via --checkpoint),
//                        re-evaluate every recorded input, and require the
//                        recomputed per-layer fidelity stats to match the
//                        recorded ones bit-for-bit; any divergence exits 1.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/odq.hpp"
#include "data/synthetic.hpp"
#include "nn/init.hpp"
#include "nn/models.hpp"
#include "obs/fidelity.hpp"
#include "obs/flight.hpp"
#include "obs/quality.hpp"
#include "serve/session.hpp"
#include "tool_main.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace {

using namespace odq;

struct Options {
  std::string model = "lenet5";
  std::string report_path;
  std::string csv_path;
  std::string checkpoint;
  std::string emit_baseline;
  std::string replay;
  std::string inputs = "digits";
  std::vector<float> thresholds;
  float threshold = 0.15f;
  bool sweep = false;
  std::int64_t batch = 8;
  std::int64_t width = 8;
  std::uint64_t seed = 42;
  bool quiet = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: odq_fidelity [--model lenet5|resnet20|resnet56|vgg16|"
               "densenet]\n"
               "                    [--sweep | --thresholds a,b,c] "
               "[--threshold t]\n"
               "                    [--batch n] [--width w] [--report out.json]"
               "\n"
               "                    [--csv out.csv] [--checkpoint ckpt.bin] "
               "[--quiet]\n"
               "                    [--emit-baseline base.json] "
               "[--inputs digits|uniform]\n"
               "                    [--seed s] [--replay flight.bin]\n");
  return 2;
}

nn::Model build_model(const Options& opt, int* classes) {
  *classes = 10;
  if (opt.model == "lenet" || opt.model == "lenet5") {
    return nn::make_lenet5(*classes);
  }
  if (opt.model == "resnet20") return nn::make_resnet(20, *classes, opt.width);
  if (opt.model == "resnet56") return nn::make_resnet(56, *classes, opt.width);
  if (opt.model == "vgg16") return nn::make_vgg16(*classes, opt.width);
  if (opt.model == "densenet") {
    return nn::make_densenet(*classes, opt.width / 2 + 2, 3);
  }
  throw std::invalid_argument("unknown model " + opt.model);
}

std::vector<float> parse_thresholds(const char* arg) {
  std::vector<float> out;
  const std::string s = arg;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtof(s.substr(pos, comma - pos).c_str(), nullptr));
    pos = comma + 1;
  }
  return out;
}

std::vector<int> argmax_rows(const tensor::Tensor& logits) {
  const std::int64_t n = logits.shape()[0];
  const std::int64_t k = logits.numel() / n;
  std::vector<int> out(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    int best = 0;
    for (std::int64_t j = 1; j < k; ++j) {
      if (row[j] > row[best]) best = static_cast<int>(j);
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

double match_fraction(const std::vector<int>& a, const std::vector<int>& b) {
  std::int64_t hits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) hits += a[i] == b[i] ? 1 : 0;
  return a.empty() ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(a.size());
}

// [C,H,W] request shape for a model (matches odq_serve's load generator).
tensor::Shape input_chw_for(const std::string& model) {
  return (model == "lenet" || model == "lenet5") ? tensor::Shape{1, 28, 28}
                                                 : tensor::Shape{3, 32, 32};
}

// Replica construction identical to odq_serve: deterministic init from the
// fixed seed, then (optionally) a checkpoint — the baseline and the shadow
// lane must hold the same weights or drift would measure replica skew.
serve::ModelSession make_quality_session(const Options& opt,
                                         const std::string& scheme,
                                         float threshold) {
  int classes = 10;
  nn::Model model = build_model(opt, &classes);
  nn::kaiming_init(model, 1);
  if (!opt.checkpoint.empty()) {
    model.try_load(opt.checkpoint).throw_if_error();
  }
  core::OdqConfig cfg;
  cfg.threshold = threshold;
  return serve::ModelSession(std::move(model),
                             serve::make_conv_executor(scheme, cfg), scheme);
}

// Bit-exact comparison of two per-request snapshot sets (replay contract:
// the reference evaluation is deterministic, so every field — including
// the double-valued error sums — must reproduce exactly).
bool accum_equal(const obs::ErrorAccum& a, const obs::ErrorAccum& b) {
  return a.count == b.count && a.ref_sq == b.ref_sq && a.out_sq == b.out_sq &&
         a.dot == b.dot && a.err_sq == b.err_sq && a.err_abs == b.err_abs &&
         a.err_max == b.err_max;
}

bool snapshots_equal(const std::vector<obs::FidelityLayerSnapshot>& a,
                     const std::vector<obs::FidelityLayerSnapshot>& b,
                     std::string* why) {
  if (a.size() != b.size()) {
    *why = "layer count " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size());
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const obs::FidelityLayerSnapshot& x = a[i];
    const obs::FidelityLayerSnapshot& y = b[i];
    const std::string at =
        "layer " + std::to_string(x.layer) + " (" + x.scheme + "): ";
    if (x.scheme != y.scheme || x.layer != y.layer) {
      *why = at + "cell identity mismatch";
      return false;
    }
    if (x.calls != y.calls) {
      *why = at + "calls differ";
      return false;
    }
    if (x.threshold != y.threshold) {
      *why = at + "threshold differs";
      return false;
    }
    if (!accum_equal(x.total, y.total) || !accum_equal(x.predictor, y.predictor) ||
        !accum_equal(x.sensitive, y.sensitive) ||
        !accum_equal(x.insensitive, y.insensitive)) {
      *why = at + "error accumulators differ";
      return false;
    }
    if (x.hist_lo != y.hist_lo || x.hist_hi != y.hist_hi ||
        x.hist != y.hist) {
      *why = at + "predictor-magnitude histogram differs";
      return false;
    }
  }
  return true;
}

// --emit-baseline: per-sample calibration pass -> odq_quality_baseline JSON.
int emit_baseline_main(const Options& opt) {
  serve::ModelSession session = make_quality_session(opt, "odq", opt.threshold);
  const tensor::Shape chw = input_chw_for(opt.model);

  // Calibration inputs, evaluated one sample at a time: activation scales
  // are per-tensor at run time, so a [N,...] batch would quantize under a
  // different scale than serving's single-sample requests.
  data::TrainTest digits_data;
  if (opt.inputs == "digits") {
    digits_data = data::make_synthetic_digits(opt.batch, 1);
  } else if (opt.inputs != "uniform") {
    std::fprintf(stderr, "odq_fidelity: unknown --inputs kind '%s'\n",
                 opt.inputs.c_str());
    return 2;
  }

  obs::FidelityScope scope;
  for (std::int64_t id = 0; id < opt.batch; ++id) {
    tensor::Tensor x;
    if (opt.inputs == "uniform") {
      x = data::make_request_input(opt.seed, static_cast<std::uint64_t>(id),
                                   chw);
    } else {
      const tensor::Shape& ds = digits_data.train.images.shape();
      const std::int64_t sample = ds[1] * ds[2] * ds[3];
      x = tensor::Tensor(
          tensor::Shape{1, ds[1], ds[2], ds[3]},
          std::vector<float>(digits_data.train.images.data() + id * sample,
                             digits_data.train.images.data() +
                                 (id + 1) * sample));
    }
    (void)session.run(x);
  }

  obs::QualityBaseline base = obs::make_quality_baseline(scope.snapshot());
  base.model = opt.model;
  base.scheme = "odq";
  base.width = opt.width;
  base.threshold = opt.threshold;
  base.inputs = opt.inputs;
  base.seed = opt.seed;
  base.batch = opt.batch;
  const util::Status st = base.save(opt.emit_baseline);
  if (!st.ok()) {
    std::fprintf(stderr, "odq_fidelity: --emit-baseline: %s\n",
                 st.message().c_str());
    return 1;
  }
  if (!opt.quiet) {
    std::fprintf(stderr,
                 "odq_fidelity: baseline %s (%lld x %s requests, threshold "
                 "%.3f, %zu layer(s))\n",
                 opt.emit_baseline.c_str(), static_cast<long long>(opt.batch),
                 opt.inputs.c_str(), static_cast<double>(opt.threshold),
                 base.layers.size());
    for (const obs::QualityBaselineLayer& l : base.layers) {
      std::fprintf(stderr, "  layer %d: sensitive %.2f%%  sqnr %.1f dB\n",
                   l.layer, 100.0 * l.sensitive_fraction, l.sqnr_db);
    }
  }
  return 0;
}

// --replay: re-evaluate a flight dump and demand bit-identical stats.
int replay_main(const Options& opt) {
  util::StatusOr<obs::FlightDump> loaded =
      obs::FlightRecorder::load(opt.replay);
  if (!loaded.ok()) {
    std::fprintf(stderr, "odq_fidelity: --replay: %s\n",
                 loaded.status().message().c_str());
    return 1;
  }
  const obs::FlightDump& dump = loaded.value();

  Options ropt = opt;
  ropt.model = dump.context.model;
  ropt.width = dump.context.width;
  if (ropt.checkpoint.empty()) ropt.checkpoint = dump.context.checkpoint;
  serve::ModelSession session = make_quality_session(
      ropt, dump.context.scheme, dump.context.threshold);

  if (!opt.quiet) {
    std::fprintf(stderr,
                 "odq_fidelity: replaying %zu record(s) from %s "
                 "(model %s, scheme %s, threshold %.3f)\n",
                 dump.records.size(), opt.replay.c_str(),
                 dump.context.model.c_str(), dump.context.scheme.c_str(),
                 static_cast<double>(dump.context.threshold));
  }
  int failures = 0;
  for (std::size_t i = 0; i < dump.records.size(); ++i) {
    const obs::FlightRecord& rec = dump.records[i];
    obs::FidelityScope scope;
    (void)session.run(rec.input);
    std::string why;
    const bool ok = snapshots_equal(rec.layers, scope.snapshot(), &why);
    if (!ok) ++failures;
    if (!opt.quiet || !ok) {
      std::fprintf(stderr,
                   "  record %zu: request %llu (%s, layer %d, tv %.4f): %s%s\n",
                   i, static_cast<unsigned long long>(rec.request_id),
                   rec.reason.c_str(), rec.layer, rec.distance,
                   ok ? "stats reproduced bit-identically" : "MISMATCH: ",
                   ok ? "" : why.c_str());
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "odq_fidelity: --replay: %d of %zu record(s) "
                 "diverged\n",
                 failures, dump.records.size());
    return 1;
  }
  if (!opt.quiet) {
    std::fprintf(stderr, "odq_fidelity: replay OK (%zu record(s))\n",
                 dump.records.size());
  }
  return 0;
}

// One measured sweep point.
struct SweepPoint {
  float threshold = 0.0f;
  double accuracy = 0.0;        // label accuracy on the batch
  double fp32_agreement = 0.0;  // top-1 agreement with the FP32 pass
  double mean_sensitive_fraction = 0.0;
  double mean_sqnr_db = 0.0;
  std::vector<core::OdqLayerStats> layer_stats;       // by conv id
  std::vector<obs::FidelityLayerSnapshot> fidelity;   // "odq" cells, by layer
};

}  // namespace

int tool_main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "odq_fidelity: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--model") {
      opt.model = next("--model");
    } else if (a == "--sweep") {
      opt.sweep = true;
    } else if (a == "--thresholds") {
      opt.thresholds = parse_thresholds(next("--thresholds"));
      opt.sweep = true;
    } else if (a == "--threshold") {
      opt.threshold = std::strtof(next("--threshold"), nullptr);
    } else if (a == "--report") {
      opt.report_path = next("--report");
    } else if (a == "--csv") {
      opt.csv_path = next("--csv");
    } else if (a == "--batch") {
      opt.batch = std::atoll(next("--batch"));
    } else if (a == "--width") {
      opt.width = std::atoll(next("--width"));
    } else if (a == "--checkpoint") {
      opt.checkpoint = next("--checkpoint");
    } else if (a == "--emit-baseline") {
      opt.emit_baseline = next("--emit-baseline");
    } else if (a == "--replay") {
      opt.replay = next("--replay");
    } else if (a == "--inputs") {
      opt.inputs = next("--inputs");
    } else if (a == "--seed") {
      opt.seed = std::strtoull(next("--seed"), nullptr, 0);
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else {
      return usage();
    }
  }
  if (opt.batch <= 0 || opt.width <= 0) return usage();
  if (!opt.replay.empty()) return replay_main(opt);
  if (!opt.emit_baseline.empty()) return emit_baseline_main(opt);
  if (opt.sweep && opt.thresholds.empty()) {
    opt.thresholds = {0.0f,  0.05f, 0.1f, 0.15f,
                      0.2f,  0.3f,  0.5f, 0.8f};
  }
  if (!opt.sweep) opt.thresholds = {opt.threshold};

  {
    int classes = 10;
    nn::Model model = build_model(opt, &classes);
    nn::kaiming_init(model, 1);
    if (!opt.checkpoint.empty()) {
      model.try_load(opt.checkpoint).throw_if_error();
    }
    const std::size_t num_convs = model.assign_conv_ids().size();

    const bool digits = opt.model == "lenet" || opt.model == "lenet5";
    data::TrainTest data;
    if (digits) {
      data = data::make_synthetic_digits(opt.batch, 1);
    } else {
      data::SyntheticConfig dcfg;
      dcfg.num_classes = classes;
      dcfg.noise = 0.05f;
      data = data::make_synthetic_images(dcfg, opt.batch, 1);
    }
    const tensor::Shape& ds = data.train.images.shape();
    tensor::Tensor batch(
        tensor::Shape{opt.batch, ds[1], ds[2], ds[3]},
        std::vector<float>(data.train.images.data(),
                           data.train.images.data() +
                               opt.batch * ds[1] * ds[2] * ds[3]));
    std::vector<int> labels(data.train.labels.begin(),
                            data.train.labels.begin() + opt.batch);

    // FP32 reference pass (no executor).
    const tensor::Tensor fp32_logits = model.forward(batch, /*train=*/false);
    const std::vector<int> fp32_top1 = argmax_rows(fp32_logits);
    const double fp32_accuracy = [&] {
      std::int64_t hits = 0;
      for (std::size_t i = 0; i < labels.size(); ++i) {
        hits += fp32_top1[i] == labels[i] ? 1 : 0;
      }
      return static_cast<double>(hits) / static_cast<double>(labels.size());
    }();

    obs::set_fidelity_enabled(true);

    std::vector<SweepPoint> points;
    for (float thr : opt.thresholds) {
      obs::fidelity_reset();
      core::OdqConfig cfg;
      cfg.threshold = thr;
      auto exec = std::make_shared<core::OdqConvExecutor>(cfg);
      model.set_conv_executor(exec);
      const tensor::Tensor logits = model.forward(batch, /*train=*/false);
      model.set_conv_executor(nullptr);

      SweepPoint p;
      p.threshold = thr;
      const std::vector<int> top1 = argmax_rows(logits);
      p.fp32_agreement = match_fraction(top1, fp32_top1);
      {
        std::int64_t hits = 0;
        for (std::size_t i = 0; i < labels.size(); ++i) {
          hits += top1[i] == labels[i] ? 1 : 0;
        }
        p.accuracy =
            static_cast<double>(hits) / static_cast<double>(labels.size());
      }
      for (std::size_t id = 0; id < num_convs; ++id) {
        p.layer_stats.push_back(exec->layer_stats(static_cast<int>(id)));
      }
      for (obs::FidelityLayerSnapshot& s : obs::fidelity_snapshot()) {
        if (s.scheme == "odq") p.fidelity.push_back(std::move(s));
      }
      double frac_sum = 0.0, sqnr_sum = 0.0;
      for (const core::OdqLayerStats& s : p.layer_stats) {
        frac_sum += s.sensitive_fraction();
      }
      for (const obs::FidelityLayerSnapshot& s : p.fidelity) {
        sqnr_sum += s.total.sqnr_db();
      }
      p.mean_sensitive_fraction =
          num_convs > 0 ? frac_sum / static_cast<double>(num_convs) : 0.0;
      p.mean_sqnr_db = p.fidelity.empty()
                           ? 0.0
                           : sqnr_sum / static_cast<double>(p.fidelity.size());
      points.push_back(std::move(p));
    }
    obs::set_fidelity_enabled(false);

    // JSON report.
    util::JsonWriter w;
    w.begin_object();
    w.kv("model", opt.model);
    w.kv("batch", opt.batch);
    w.kv("width", opt.width);
    w.kv("num_conv_layers", static_cast<std::int64_t>(num_convs));
    w.kv("fp32_accuracy", fp32_accuracy);
    w.key("sweep");
    w.begin_array();
    for (const SweepPoint& p : points) {
      w.begin_object();
      w.kv("threshold", static_cast<double>(p.threshold));
      w.kv("accuracy", p.accuracy);
      w.kv("fp32_agreement", p.fp32_agreement);
      w.kv("mean_sensitive_fraction", p.mean_sensitive_fraction);
      w.kv("mean_sqnr_db", p.mean_sqnr_db);
      w.key("layers");
      w.begin_array();
      for (const obs::FidelityLayerSnapshot& s : p.fidelity) {
        const auto id = static_cast<std::size_t>(s.layer);
        const core::OdqLayerStats stats =
            id < p.layer_stats.size() ? p.layer_stats[id]
                                      : core::OdqLayerStats{};
        w.begin_object();
        w.kv("conv_id", static_cast<std::int64_t>(s.layer));
        // Exact executor counters (the same numbers odq_profile reports).
        w.kv("outputs", stats.outputs);
        w.kv("sensitive", stats.sensitive);
        w.kv("sensitive_fraction", stats.sensitive_fraction());
        w.kv("sqnr_db", s.total.sqnr_db());
        w.kv("cosine", s.total.cosine());
        w.kv("max_abs_err", s.total.err_max);
        w.kv("mean_abs_err", s.total.mean_abs_err());
        w.kv("predictor_sqnr_db", s.predictor.sqnr_db());
        w.kv("sensitive_sqnr_db", s.sensitive.sqnr_db());
        w.kv("insensitive_sqnr_db", s.insensitive.sqnr_db());
        w.kv("pred_mass_above_threshold",
             s.hist_fraction_above(static_cast<double>(s.threshold)));
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();

    const std::string report = w.take();
    if (opt.report_path.empty()) {
      std::printf("%s\n", report.c_str());
    } else {
      std::FILE* f = std::fopen(opt.report_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "odq_fidelity: cannot open %s\n",
                     opt.report_path.c_str());
        return 2;
      }
      const std::size_t n = std::fwrite(report.data(), 1, report.size(), f);
      std::fputc('\n', f);
      const bool flushed = std::fflush(f) == 0;
      std::fclose(f);
      if (n != report.size() || !flushed) {
        std::fprintf(stderr, "odq_fidelity: short write to %s\n",
                     opt.report_path.c_str());
        return 2;
      }
    }

    if (!opt.csv_path.empty()) {
      std::FILE* f = std::fopen(opt.csv_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "odq_fidelity: cannot open %s\n",
                     opt.csv_path.c_str());
        return 2;
      }
      std::fprintf(f,
                   "threshold,conv_id,sensitive_fraction,sqnr_db,cosine,"
                   "max_abs_err,mean_abs_err,predictor_sqnr_db,"
                   "fp32_agreement,accuracy\n");
      for (const SweepPoint& p : points) {
        for (const obs::FidelityLayerSnapshot& s : p.fidelity) {
          const auto id = static_cast<std::size_t>(s.layer);
          const core::OdqLayerStats stats =
              id < p.layer_stats.size() ? p.layer_stats[id]
                                        : core::OdqLayerStats{};
          std::fprintf(f, "%.6f,%d,%.6f,%.3f,%.6f,%.6g,%.6g,%.3f,%.4f,%.4f\n",
                       p.threshold, s.layer, stats.sensitive_fraction(),
                       s.total.sqnr_db(), s.total.cosine(), s.total.err_max,
                       s.total.mean_abs_err(), s.predictor.sqnr_db(),
                       p.fp32_agreement, p.accuracy);
        }
      }
      std::fclose(f);
    }

    if (!opt.quiet) {
      std::fprintf(stderr, "%-10s %8s %8s %9s %9s %8s\n", "threshold",
                   "sens %", "SQNR dB", "pred dB", "agree %", "acc %");
      for (const SweepPoint& p : points) {
        double pred_sum = 0.0;
        for (const obs::FidelityLayerSnapshot& s : p.fidelity) {
          pred_sum += s.predictor.sqnr_db();
        }
        const double pred_mean =
            p.fidelity.empty()
                ? 0.0
                : pred_sum / static_cast<double>(p.fidelity.size());
        std::fprintf(stderr, "%-10.4f %7.1f%% %8.2f %9.2f %8.1f%% %7.1f%%\n",
                     p.threshold, 100.0 * p.mean_sensitive_fraction,
                     p.mean_sqnr_db, pred_mean, 100.0 * p.fp32_agreement,
                     100.0 * p.accuracy);
      }
      if (!opt.report_path.empty()) {
        std::fprintf(stderr, "report -> %s\n", opt.report_path.c_str());
      }
    }
    return 0;
  }
}

int main(int argc, char** argv) {
  return odq::tools::run_guarded("odq_fidelity",
                                 [&] { return tool_main(argc, argv); });
}
