// odq_top — live viewer for the telemetry snapshot the TelemetryExporter
// writes (see obs/telemetry.hpp and the "Serving telemetry" section of
// docs/observability.md).
//
//   odq_top --snapshot serve.telemetry.json            # live tail
//   odq_top --once --json --snapshot serve.telemetry.json   # scripting
//
// Tails the snapshot file (atomic tmp+rename writes mean every read sees a
// complete document or the previous one) and renders a per-window table of
// every series (count/mean/p50/p95/p99/p999 over total/1s/10s/60s) and
// counter, plus the flush sequence and the trace droppedEvents counter.
//
// Options:
//   --snapshot <path>   snapshot file (default: the ODQ_TELEMETRY path)
//   --interval-ms <n>   poll interval in live mode (default 500)
//   --iterations <n>    stop after n renders (0 = until interrupted)
//   --once              read and render once, then exit (exit 1 when the
//                       snapshot is missing or malformed)
//   --json              emit the parsed snapshot back as JSON on stdout
//                       instead of the table (scripting/ctest; implies the
//                       same validation as the table path)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "tool_main.hpp"
#include "util/json.hpp"
#include "util/json_read.hpp"
#include "util/status.hpp"

namespace {

using namespace odq;

struct Options {
  std::string snapshot;
  std::int64_t interval_ms = 500;
  std::int64_t iterations = 0;
  bool once = false;
  bool json = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: odq_top [--snapshot snap.json] [--interval-ms n]\n"
               "               [--iterations n] [--once] [--json]\n");
  return 2;
}

// Re-serialize a parsed document (std::map keys iterate sorted, which is
// exactly the writer's convention, so round-trips are stable).
void emit_json(const util::JsonValue& v, util::JsonWriter& w) {
  using Kind = util::JsonValue::Kind;
  switch (v.kind) {
    case Kind::kNull:
      w.value_null();
      break;
    case Kind::kBool:
      w.value(v.b);
      break;
    case Kind::kNumber:
      w.value(v.num);
      break;
    case Kind::kString:
      w.value(v.str);
      break;
    case Kind::kArray:
      w.begin_array();
      for (const util::JsonValue& e : v.arr) emit_json(e, w);
      w.end_array();
      break;
    case Kind::kObject:
      w.begin_object();
      for (const auto& [k, e] : v.obj) {
        w.key(k);
        emit_json(e, w);
      }
      w.end_object();
      break;
  }
}

double num_or(const util::JsonValue& obj, const std::string& key,
              double fallback) {
  if (!obj.has(key)) return fallback;
  const util::JsonValue& v = obj.at(key);
  return v.is_number() ? v.num : fallback;
}

// A snapshot is usable when it self-identifies and carries the schema
// version this viewer understands.
util::Status validate(const util::JsonValue& doc) {
  if (doc.kind != util::JsonValue::Kind::kObject || !doc.has("bench") ||
      !doc.at("bench").is_string() || doc.at("bench").str != "odq_telemetry") {
    return util::Status(util::StatusCode::kCorruption,
                        "not an odq_telemetry snapshot");
  }
  const double version = num_or(doc, "schema_version", -1.0);
  if (version != static_cast<double>(obs::kTelemetrySchemaVersion)) {
    return util::Status(util::StatusCode::kFailedPrecondition,
                        "unsupported telemetry schema_version");
  }
  return util::Status::Ok();
}

void render(const util::JsonValue& doc) {
  std::printf("odq_top — flush #%.0f   generated %.3f s   trace drops %.0f\n",
              num_or(doc, "flush_seq", 0),
              num_or(doc, "generated_us", 0) / 1e6,
              num_or(doc, "trace_dropped_events", 0));
  static const std::vector<std::string> kWindows = {"total", "1s", "10s",
                                                    "60s"};
  if (doc.has("series") &&
      doc.at("series").kind == util::JsonValue::Kind::kObject) {
    std::printf("%-28s %-6s %9s %10s %8s %8s %8s %8s\n", "series", "win",
                "count", "mean", "p50", "p95", "p99", "p999");
    for (const auto& [name, s] : doc.at("series").obj) {
      bool first = true;
      for (const std::string& win : kWindows) {
        if (!s.has(win)) continue;
        const util::JsonValue& ws = s.at(win);
        std::printf("%-28s %-6s %9.0f %10.1f %8.0f %8.0f %8.0f %8.0f\n",
                    first ? name.c_str() : "", win.c_str(),
                    num_or(ws, "count", 0), num_or(ws, "mean", 0),
                    num_or(ws, "p50", 0), num_or(ws, "p95", 0),
                    num_or(ws, "p99", 0), num_or(ws, "p999", 0));
        first = false;
      }
    }
  }
  if (doc.has("counters") &&
      doc.at("counters").kind == util::JsonValue::Kind::kObject &&
      !doc.at("counters").obj.empty()) {
    std::printf("%-28s %12s %9s %9s %9s\n", "counter", "total", "1s", "10s",
                "60s");
    for (const auto& [name, c] : doc.at("counters").obj) {
      std::printf("%-28s %12.0f %9.0f %9.0f %9.0f\n", name.c_str(),
                  num_or(c, "total", 0), num_or(c, "1s", 0),
                  num_or(c, "10s", 0), num_or(c, "60s", 0));
    }
  }
}

}  // namespace

int tool_main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "odq_top: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--snapshot") {
      opt.snapshot = next("--snapshot");
    } else if (a == "--interval-ms") {
      opt.interval_ms = std::atoll(next("--interval-ms"));
    } else if (a == "--iterations") {
      opt.iterations = std::atoll(next("--iterations"));
    } else if (a == "--once") {
      opt.once = true;
    } else if (a == "--json") {
      opt.json = true;
    } else {
      return usage();
    }
  }
  if (opt.snapshot.empty()) opt.snapshot = obs::telemetry_env_path();
  if (opt.snapshot.empty()) {
    std::fprintf(stderr,
                 "odq_top: no snapshot path (--snapshot or ODQ_TELEMETRY)\n");
    return usage();
  }
  if (opt.interval_ms < 1) opt.interval_ms = 1;

  std::int64_t renders = 0;
  while (true) {
    const util::StatusOr<util::JsonValue> parsed =
        util::json_try_parse_file(opt.snapshot);
    util::Status ok = parsed.ok() ? validate(*parsed) : parsed.status();
    if (ok.ok()) {
      if (opt.json) {
        util::JsonWriter w;
        emit_json(*parsed, w);
        std::printf("%s\n", w.take().c_str());
      } else {
        if (!opt.once) std::printf("\033[2J\033[H");  // clear in live mode
        render(*parsed);
      }
      std::fflush(stdout);
      ++renders;
    } else if (opt.once) {
      std::fprintf(stderr, "odq_top: %s: %s\n", opt.snapshot.c_str(),
                   ok.message().c_str());
      return 1;
    }
    if (opt.once) return 0;
    if (opt.iterations > 0 && renders >= opt.iterations) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
  }
}

int main(int argc, char** argv) {
  return odq::tools::run_guarded("odq_top",
                                 [&] { return tool_main(argc, argv); });
}
