// odq_top — live viewer for the telemetry snapshot the TelemetryExporter
// writes (see obs/telemetry.hpp and the "Serving telemetry" section of
// docs/observability.md).
//
//   odq_top --snapshot serve.telemetry.json            # live tail
//   odq_top --once --json --snapshot serve.telemetry.json   # scripting
//
// Tails the snapshot file (atomic tmp+rename writes mean every read sees a
// complete document or the previous one) and renders a per-window table of
// every series (count/mean/p50/p95/p99/p999 over total/1s/10s/60s) and
// counter, plus the flush sequence and the trace droppedEvents counter.
//
// Options:
//   --snapshot <path>   snapshot file (default: the ODQ_TELEMETRY path)
//   --interval-ms <n>   poll interval in live mode (default 500)
//   --iterations <n>    stop after n renders (0 = until interrupted)
//   --once              read and render once, then exit (exit 1 when the
//                       snapshot is missing or malformed)
//   --json              emit the parsed snapshot back as JSON on stdout
//                       instead of the table (scripting/ctest; implies the
//                       same validation as the table path)
//   --section <prefix>  only render series/counters whose name starts with
//                       <prefix> (e.g. --section quality, --section serve.)
//
// Series under the quality.* namespace (the shadow lane's per-layer drift
// statistics, recorded in scaled integer units — basis points for
// fractions/TV distance, centi-dB for SQNR) additionally get a decoded
// per-layer table.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "tool_main.hpp"
#include "util/json.hpp"
#include "util/json_read.hpp"
#include "util/status.hpp"

namespace {

using namespace odq;

struct Options {
  std::string snapshot;
  std::string section;
  std::int64_t interval_ms = 500;
  std::int64_t iterations = 0;
  bool once = false;
  bool json = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: odq_top [--snapshot snap.json] [--interval-ms n]\n"
               "               [--iterations n] [--once] [--json]\n"
               "               [--section prefix]\n");
  return 2;
}

bool in_section(const std::string& name, const std::string& prefix) {
  return prefix.empty() || name.compare(0, prefix.size(), prefix) == 0;
}

// Re-serialize a parsed document (std::map keys iterate sorted, which is
// exactly the writer's convention, so round-trips are stable).
void emit_json(const util::JsonValue& v, util::JsonWriter& w) {
  using Kind = util::JsonValue::Kind;
  switch (v.kind) {
    case Kind::kNull:
      w.value_null();
      break;
    case Kind::kBool:
      w.value(v.b);
      break;
    case Kind::kNumber:
      w.value(v.num);
      break;
    case Kind::kString:
      w.value(v.str);
      break;
    case Kind::kArray:
      w.begin_array();
      for (const util::JsonValue& e : v.arr) emit_json(e, w);
      w.end_array();
      break;
    case Kind::kObject:
      w.begin_object();
      for (const auto& [k, e] : v.obj) {
        w.key(k);
        emit_json(e, w);
      }
      w.end_object();
      break;
  }
}

double num_or(const util::JsonValue& obj, const std::string& key,
              double fallback) {
  if (!obj.has(key)) return fallback;
  const util::JsonValue& v = obj.at(key);
  return v.is_number() ? v.num : fallback;
}

// A snapshot is usable when it self-identifies and carries the schema
// version this viewer understands.
util::Status validate(const util::JsonValue& doc) {
  if (doc.kind != util::JsonValue::Kind::kObject || !doc.has("bench") ||
      !doc.at("bench").is_string() || doc.at("bench").str != "odq_telemetry") {
    return util::Status(util::StatusCode::kCorruption,
                        "not an odq_telemetry snapshot");
  }
  const double version = num_or(doc, "schema_version", -1.0);
  if (version != static_cast<double>(obs::kTelemetrySchemaVersion)) {
    return util::Status(util::StatusCode::kFailedPrecondition,
                        "unsupported telemetry schema_version");
  }
  return util::Status::Ok();
}

// Decoded per-layer view of the quality.* series: the shadow lane records
// scaled integers (basis points / centi-dB), so the raw table is hard to
// eyeball; this one undoes the scaling.
void render_quality(const util::JsonValue& doc) {
  if (!doc.has("series") ||
      doc.at("series").kind != util::JsonValue::Kind::kObject) {
    return;
  }
  struct Row {
    double samples = -1.0;
    double sensitive_pct = -1.0;  // negative = metric absent
    double sqnr_db = -1.0;
    double drift_tv = -1.0;
  };
  std::map<std::string, Row> rows;  // by layer suffix ("layer0", ...)
  for (const auto& [name, s] : doc.at("series").obj) {
    static const std::string kPrefix = "quality.";
    if (!in_section(name, kPrefix)) continue;
    const std::size_t dot = name.rfind('.');
    if (dot == std::string::npos || dot < kPrefix.size()) continue;
    const std::string metric = name.substr(kPrefix.size(), dot - kPrefix.size());
    const std::string layer = name.substr(dot + 1);
    if (!s.has("total")) continue;
    const util::JsonValue& total = s.at("total");
    Row& row = rows[layer];
    if (metric == "sensitive_fraction") {
      row.samples = num_or(total, "count", 0);
      row.sensitive_pct = num_or(total, "mean", 0) / 100.0;  // bp -> %
    } else if (metric == "sqnr_db") {
      row.sqnr_db = num_or(total, "mean", 0) / 100.0;  // centi-dB -> dB
    } else if (metric == "drift_distance") {
      row.drift_tv = num_or(total, "mean", 0) / 10000.0;  // bp -> [0,1]
    }
  }
  if (rows.empty()) return;
  std::printf("%-28s %9s %11s %9s %9s\n", "quality (decoded means)",
              "samples", "sensitive%", "sqnr dB", "drift tv");
  for (const auto& [layer, row] : rows) {
    auto cell = [](double v, const char* fmt, char* buf, std::size_t n) {
      if (v < 0.0) {
        std::snprintf(buf, n, "-");
      } else {
        std::snprintf(buf, n, fmt, v);
      }
      return buf;
    };
    char a[32], b[32], c[32], d[32];
    std::printf("%-28s %9s %11s %9s %9s\n", layer.c_str(),
                cell(row.samples, "%.0f", a, sizeof a),
                cell(row.sensitive_pct, "%.2f", b, sizeof b),
                cell(row.sqnr_db, "%.1f", c, sizeof c),
                cell(row.drift_tv, "%.4f", d, sizeof d));
  }
}

void render(const util::JsonValue& doc, const std::string& section) {
  std::printf("odq_top — flush #%.0f   generated %.3f s   trace drops %.0f\n",
              num_or(doc, "flush_seq", 0),
              num_or(doc, "generated_us", 0) / 1e6,
              num_or(doc, "trace_dropped_events", 0));
  static const std::vector<std::string> kWindows = {"total", "1s", "10s",
                                                    "60s"};
  if (doc.has("series") &&
      doc.at("series").kind == util::JsonValue::Kind::kObject) {
    std::printf("%-28s %-6s %9s %10s %8s %8s %8s %8s\n", "series", "win",
                "count", "mean", "p50", "p95", "p99", "p999");
    for (const auto& [name, s] : doc.at("series").obj) {
      if (!in_section(name, section)) continue;
      bool first = true;
      for (const std::string& win : kWindows) {
        // A window object can legitimately be absent (e.g. a series added
        // by a newer writer, or pruned windows): keep the row aligned with
        // a placeholder instead of silently dropping it.
        if (!s.has(win)) {
          std::printf("%-28s %-6s %9s %10s %8s %8s %8s %8s\n",
                      first ? name.c_str() : "", win.c_str(), "-", "-", "-",
                      "-", "-", "-");
          first = false;
          continue;
        }
        const util::JsonValue& ws = s.at(win);
        std::printf("%-28s %-6s %9.0f %10.1f %8.0f %8.0f %8.0f %8.0f\n",
                    first ? name.c_str() : "", win.c_str(),
                    num_or(ws, "count", 0), num_or(ws, "mean", 0),
                    num_or(ws, "p50", 0), num_or(ws, "p95", 0),
                    num_or(ws, "p99", 0), num_or(ws, "p999", 0));
        first = false;
      }
    }
  }
  if (doc.has("counters") &&
      doc.at("counters").kind == util::JsonValue::Kind::kObject &&
      !doc.at("counters").obj.empty()) {
    bool header = false;
    for (const auto& [name, c] : doc.at("counters").obj) {
      if (!in_section(name, section)) continue;
      if (!header) {
        std::printf("%-28s %12s %9s %9s %9s\n", "counter", "total", "1s",
                    "10s", "60s");
        header = true;
      }
      std::printf("%-28s %12.0f %9.0f %9.0f %9.0f\n", name.c_str(),
                  num_or(c, "total", 0), num_or(c, "1s", 0),
                  num_or(c, "10s", 0), num_or(c, "60s", 0));
    }
  }
  if (in_section("quality.", section) || in_section(section, "quality")) {
    render_quality(doc);
  }
}

}  // namespace

int tool_main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "odq_top: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--snapshot") {
      opt.snapshot = next("--snapshot");
    } else if (a == "--interval-ms") {
      opt.interval_ms = std::atoll(next("--interval-ms"));
    } else if (a == "--iterations") {
      opt.iterations = std::atoll(next("--iterations"));
    } else if (a == "--once") {
      opt.once = true;
    } else if (a == "--json") {
      opt.json = true;
    } else if (a == "--section") {
      opt.section = next("--section");
    } else {
      return usage();
    }
  }
  if (opt.snapshot.empty()) opt.snapshot = obs::telemetry_env_path();
  if (opt.snapshot.empty()) {
    std::fprintf(stderr,
                 "odq_top: no snapshot path (--snapshot or ODQ_TELEMETRY)\n");
    return usage();
  }
  if (opt.interval_ms < 1) opt.interval_ms = 1;

  std::int64_t renders = 0;
  while (true) {
    const util::StatusOr<util::JsonValue> parsed =
        util::json_try_parse_file(opt.snapshot);
    util::Status ok = parsed.ok() ? validate(*parsed) : parsed.status();
    if (ok.ok()) {
      if (opt.json) {
        util::JsonWriter w;
        emit_json(*parsed, w);
        std::printf("%s\n", w.take().c_str());
      } else {
        if (!opt.once) std::printf("\033[2J\033[H");  // clear in live mode
        render(*parsed, opt.section);
      }
      std::fflush(stdout);
      ++renders;
    } else if (opt.once) {
      std::fprintf(stderr, "odq_top: %s: %s\n", opt.snapshot.c_str(),
                   ok.message().c_str());
      return 1;
    }
    if (opt.once) return 0;
    if (opt.iterations > 0 && renders >= opt.iterations) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
  }
}

int main(int argc, char** argv) {
  return odq::tools::run_guarded("odq_top",
                                 [&] { return tool_main(argc, argv); });
}
