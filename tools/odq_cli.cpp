// odq_cli — command-line front end to the library.
//
//   odq_cli summary  <model> [classes] [width]        print the layer table
//   odq_cli train    <model> <out.bin> [epochs]       train on synthetic data
//   odq_cli eval     <model> <weights.bin> [scheme]   evaluate a checkpoint
//   odq_cli quantize <model> <weights.bin> <out.qbin> export packed INT4
//   odq_cli table1                                    print the PE-allocation table
//
// Models: resnet20, resnet56, vgg16, densenet, lenet5 (lenet5 uses the
// synthetic-digit dataset). Schemes for eval: fp32 (default), int16, int8,
// int4, drq, odq[:threshold].
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "accel/allocation.hpp"
#include "core/odq.hpp"
#include "data/synthetic.hpp"
#include "drq/drq.hpp"
#include "nn/init.hpp"
#include "nn/models.hpp"
#include "nn/summary.hpp"
#include "nn/trainer.hpp"
#include "quant/qmodel_io.hpp"
#include "quant/static_executor.hpp"
#include "tool_main.hpp"

namespace {

using namespace odq;

int usage() {
  std::fprintf(stderr,
               "usage: odq_cli <summary|train|eval|quantize|table1> ...\n"
               "  summary  <model> [classes=10] [width=8]\n"
               "  train    <model> <out.bin> [epochs=8]\n"
               "  eval     <model> <weights.bin> [scheme=fp32]\n"
               "  quantize <model> <weights.bin> <out.qbin>\n"
               "  table1\n"
               "models: resnet20 resnet56 vgg16 densenet lenet5\n"
               "schemes: fp32 int16 int8 int4 drq odq[:threshold]\n");
  return 2;
}

nn::Model build(const std::string& name, int classes, std::int64_t width) {
  if (name == "resnet20") return nn::make_resnet(20, classes, width);
  if (name == "resnet56") return nn::make_resnet(56, classes, width);
  if (name == "vgg16") return nn::make_vgg16(classes, width * 2);
  if (name == "densenet") return nn::make_densenet(classes, width / 2 + 2, 3);
  if (name == "lenet5") return nn::make_lenet5(classes);
  throw std::invalid_argument("unknown model " + name);
}

data::TrainTest make_data(const std::string& model, int classes) {
  if (model == "lenet5") return data::make_synthetic_digits(256, 96);
  data::SyntheticConfig cfg;
  cfg.num_classes = classes;
  cfg.noise = 0.05f;
  return data::make_synthetic_images(cfg, 256, 96);
}

std::shared_ptr<nn::ConvExecutor> scheme_executor(const std::string& scheme) {
  if (scheme == "fp32") return nullptr;
  if (scheme == "int16") {
    return std::make_shared<quant::StaticQuantConvExecutor>(16);
  }
  if (scheme == "int8") {
    return std::make_shared<quant::StaticQuantConvExecutor>(8);
  }
  if (scheme == "int4") {
    return std::make_shared<quant::StaticQuantConvExecutor>(4);
  }
  if (scheme == "drq") {
    drq::DrqConfig cfg;
    cfg.calibrate_quantile = 0.5;
    return std::make_shared<drq::DrqConvExecutor>(cfg);
  }
  if (scheme.rfind("odq", 0) == 0) {
    core::OdqConfig cfg;
    const auto colon = scheme.find(':');
    if (colon != std::string::npos) {
      cfg.threshold = std::strtof(scheme.c_str() + colon + 1, nullptr);
    }
    return std::make_shared<core::OdqConvExecutor>(cfg);
  }
  throw std::invalid_argument("unknown scheme " + scheme);
}

}  // namespace

int tool_main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  {
    if (cmd == "table1") {
      std::printf("%-12s %-12s %s\n", "#predictor", "#executor",
                  "max sensitive %");
      for (const auto& a : accel::valid_allocations()) {
        std::printf("%-12d %-12d %d\n", a.predictor_arrays, a.executor_arrays,
                    static_cast<int>(
                        100.0 * accel::max_bubble_free_sensitive_fraction(
                                    a.predictor_arrays, a.executor_arrays)));
      }
      return 0;
    }
    if (cmd == "summary" && argc >= 3) {
      const int classes = argc > 3 ? std::atoi(argv[3]) : 10;
      const std::int64_t width = argc > 4 ? std::atoll(argv[4]) : 8;
      nn::Model m = build(argv[2], classes, width);
      nn::kaiming_init(m, 1);
      const std::int64_t ch = std::string(argv[2]) == "lenet5" ? 1 : 3;
      const std::int64_t hw = std::string(argv[2]) == "lenet5" ? 28 : 32;
      std::printf("%s\n",
                  nn::summarize(m, tensor::Shape{1, ch, hw, hw}).str().c_str());
      return 0;
    }
    if (cmd == "train" && argc >= 4) {
      nn::Model m = build(argv[2], 10, 8);
      nn::kaiming_init(m, 42);
      auto data = make_data(argv[2], 10);
      nn::TrainConfig tc;
      tc.epochs = argc > 4 ? std::atoll(argv[4]) : 8;
      tc.batch_size = 16;
      tc.lr = std::string(argv[2]) == "vgg16" ? 0.02f : 0.05f;
      tc.verbose = true;
      nn::SgdTrainer(tc).train(m, data.train.images, data.train.labels);
      const double acc =
          nn::evaluate_accuracy(m, data.test.images, data.test.labels);
      m.save(argv[3]);
      std::printf("trained %s: test accuracy %.3f -> %s\n", argv[2], acc,
                  argv[3]);
      return 0;
    }
    if (cmd == "eval" && argc >= 4) {
      nn::Model m = build(argv[2], 10, 8);
      m.load(argv[3]);
      const std::string scheme = argc > 4 ? argv[4] : "fp32";
      m.set_conv_executor(scheme_executor(scheme));
      auto data = make_data(argv[2], 10);
      const double acc =
          nn::evaluate_accuracy(m, data.test.images, data.test.labels);
      std::printf("%s @ %s: test accuracy %.3f\n", argv[2], scheme.c_str(),
                  acc);
      return 0;
    }
    if (cmd == "quantize" && argc >= 5) {
      nn::Model m = build(argv[2], 10, 8);
      m.load(argv[3]);
      const std::int64_t bytes = quant::save_quantized_model(m, argv[4]);
      std::printf("exported packed INT4 checkpoint: %lld bytes (float: %lld)\n",
                  static_cast<long long>(bytes),
                  static_cast<long long>(m.num_parameters() * 4));
      return 0;
    }
  }
  return usage();
}

int main(int argc, char** argv) {
  return odq::tools::run_guarded("odq_cli",
                                 [&] { return tool_main(argc, argv); });
}
