// odq_serve — batched inference serving engine driven by a synthetic
// client workload (load generator + bit-identity verifier).
//
//   odq_serve --model lenet5 --scheme odq --workers 4 --requests 1000
//             --verify --json serve.json
//
// Builds the requested model (optionally loading a v3 checkpoint into every
// worker replica), starts a ServeEngine, and drives it from concurrent
// client threads submitting single-sample requests. Reports p50/p95/p99
// latency, throughput and the observed batch-size distribution, and mirrors
// the results as a bench-JSON document odq_bench_diff can gate: the
// deterministic cells (request/error counts, bit-identity) live in the
// "serve" section; wall-clock cells live in "serve_host_wall_clock", which
// the gate ignores by default.
//
// --verify re-runs every request sequentially (batch size 1, fresh session)
// and compares outputs bit-for-bit against the served responses: dynamic
// batching must be a pure scheduling decision, never a numerical one.
//
// Options:
//   --model <name>        lenet5 | resnet20 | resnet56 | vgg16 | densenet
//   --scheme <s>          odq | drq | static_int8 | fp32     (default odq)
//   --checkpoint <path>   v3 checkpoint loaded into every worker replica
//   --save-checkpoint <p> write the initialized model as a v3 checkpoint
//                         and exit (companion for --checkpoint runs)
//   --workers <n>         engine worker threads (default 4)
//   --clients <n>         concurrent submitting clients (default 4)
//   --requests <n>        total requests (default 1000)
//   --max-batch <n>       batch flush size (default 8)
//   --flush-us <n>        batch flush deadline in µs (default 2000)
//   --queue-cap <n>       queue capacity / backpressure bound (default 64)
//   --arrival-us <n>      mean inter-arrival sleep per client (default 0)
//   --threshold <t>       ODQ sensitivity threshold (default 0.15)
//   --width <w>           model width parameter (default 8)
//   --seed <s>            workload seed (default 42)
//   --verify              check bit-identity against sequential execution
//   --require-batching    fail unless some batch carried > 1 request
//   --json <path>         write the bench-JSON document
//   --telemetry <path>    enable live telemetry; run a background exporter
//                         writing the windowed snapshot to <path> (JSON)
//                         and <path base>.prom (Prometheus text) while the
//                         load runs; tail it live with tools/odq_top
//   --telemetry-flush-ms <n>  exporter flush interval (default 50)
//   --slo-us <n>          per-request latency SLO handed to the engine
//                         (over-SLO requests emit rate-limited exemplars)
//   --check-telemetry     after the run, check the telemetry histogram's
//                         p50/p95/p99 against the load generator's own
//                         measured latencies (must agree within one
//                         histogram bucket) and that the exported snapshot
//                         parses; failures exit 1
//   --shadow-rate <n>     shadow-FP32 quality sampling: deterministically
//                         route 1-in-n requests (by request index, seeded)
//                         through a reference evaluation lane computing
//                         per-layer SQNR / sensitive-fraction / drift
//                         statistics (serve/shadow.hpp); 0 disables
//   --drift-baseline <p>  odq_quality_baseline JSON (odq_fidelity
//                         --emit-baseline) the drift detector compares
//                         sampled windows against
//   --drift-window <n>    sampled requests per drift-detection window
//   --drift-tv <t>        histogram TV-distance alert threshold
//   --flight-dump <p>     write the anomaly flight-recorder ring (input
//                         tensors + per-layer stats of drift-flagged
//                         requests) as a CRC-checked binary dump, replayable
//                         via odq_fidelity --replay; written even when empty
//   --drift-snapshot <p>  write the drift detector's per-layer summary JSON
//   --input-shift <f>     add f to every input value — a deliberate
//                         distribution shift for drift-detection tests
//   --fail-on-drift       exit 1 if any drift alert fired
//   --require-drift       exit 1 if NO drift alert fired (shift tests)
//   --quiet               suppress the human-readable summary on stderr
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>

#include "core/odq.hpp"
#include "data/synthetic.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "nn/init.hpp"
#include "nn/models.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/quality.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "serve/frontend.hpp"
#include "serve/session.hpp"
#include "serve/shadow.hpp"
#include "tensor/tensor.hpp"
#include "tool_main.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/json_read.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace {

using namespace odq;

struct Options {
  std::string model = "lenet5";
  std::string scheme = "odq";
  std::string checkpoint;
  std::string save_checkpoint;
  std::string json_path;
  std::string telemetry_path;
  int workers = 4;
  int clients = 4;
  std::int64_t requests = 1000;
  std::int64_t max_batch = 8;
  std::int64_t flush_us = 2000;
  std::int64_t queue_cap = 64;
  std::int64_t arrival_us = 0;
  std::int64_t telemetry_flush_ms = 50;
  std::int64_t slo_us = 0;
  float threshold = 0.15f;
  std::int64_t width = 8;
  std::uint64_t seed = 42;
  bool verify = false;
  bool require_batching = false;
  bool check_telemetry = false;
  bool quiet = false;
  // Shadow quality lane.
  std::uint64_t shadow_rate = 0;
  std::string drift_baseline;
  std::string flight_dump;
  std::string drift_snapshot;
  std::int64_t drift_window = 8;
  double drift_tv = 0.12;
  float input_shift = 0.0f;
  bool fail_on_drift = false;
  bool require_drift = false;
  // Networked serving (docs/serving.md). mode selects the in-process load
  // generator ("") or one of the net roles.
  std::string mode;  // "" | "net-server" | "net-client" | "net-bench"
  std::string port_file;
  std::string result_path;  // net-client: where to write the result JSON
  int port = 0;
  std::string tenant = "gold";
  std::int64_t deadline_ms = 0;        // client per-request budget; 0 = none
  std::int64_t read_timeout_ms = 500;  // server receive timeout (slowloris)
  std::int64_t idle_timeout_ms = 30000;
  std::int64_t degrade_high = 0;  // 0 = derived from queue_cap
  std::int64_t shed_high = 0;
  std::int64_t low_water = 0;
  std::int64_t down_hold = 4;
  int client_procs = 2;         // net-bench: processes at 1x load
  std::int64_t req_base = 0;    // net-client: first request id
  std::int64_t overload_slo_ms = 0;  // net-bench: admitted p99 SLO at 2x
};

int usage() {
  std::fprintf(
      stderr,
      "usage: odq_serve [--model lenet5|resnet20|resnet56|vgg16|densenet]\n"
      "                 [--scheme odq|drq|static_int8|fp32]\n"
      "                 [--checkpoint ckpt.bin] [--save-checkpoint ckpt.bin]\n"
      "                 [--workers n] [--clients n] [--requests n]\n"
      "                 [--max-batch n] [--flush-us n] [--queue-cap n]\n"
      "                 [--arrival-us n] [--threshold t] [--width w]\n"
      "                 [--seed s] [--verify] [--require-batching]\n"
      "                 [--json out.json] [--telemetry snap.json]\n"
      "                 [--telemetry-flush-ms n] [--slo-us n]\n"
      "                 [--check-telemetry] [--quiet]\n"
      "                 [--shadow-rate n] [--drift-baseline base.json]\n"
      "                 [--drift-window n] [--drift-tv t]\n"
      "                 [--flight-dump dump.bin] [--drift-snapshot out.json]\n"
      "                 [--input-shift f] [--fail-on-drift] "
      "[--require-drift]\n"
      "       odq_serve --net-server  [--port n] [--port-file p]\n"
      "                 [--read-timeout-ms n] [--idle-timeout-ms n]\n"
      "                 [--degrade-high n] [--shed-high n] [--low-water n]\n"
      "                 [--down-hold n] + model/engine flags\n"
      "       odq_serve --net-client --port n [--tenant t] [--deadline-ms n]\n"
      "                 [--req-base n] [--result out.json] [--verify]\n"
      "                 + model/load flags\n"
      "       odq_serve --net-bench  [--client-procs n] [--deadline-ms n]\n"
      "                 [--overload-slo-ms n] [--json out.json] [--verify]\n"
      "                 + model/engine/load flags\n");
  return 2;
}

nn::Model build_model(const Options& opt, int* classes) {
  *classes = 10;
  if (opt.model == "lenet" || opt.model == "lenet5") {
    return nn::make_lenet5(*classes);
  }
  if (opt.model == "resnet20") return nn::make_resnet(20, *classes, opt.width);
  if (opt.model == "resnet56") return nn::make_resnet(56, *classes, opt.width);
  if (opt.model == "vgg16") return nn::make_vgg16(*classes, opt.width);
  if (opt.model == "densenet") {
    return nn::make_densenet(*classes, opt.width / 2 + 2, 3);
  }
  throw std::invalid_argument("unknown model " + opt.model);
}

// Every replica must hold identical weights or batched-vs-sequential
// comparisons would measure replica skew, not batching: deterministic init
// from a fixed seed, then (optionally) the same checkpoint.
nn::Model build_replica(const Options& opt) {
  int classes = 10;
  nn::Model model = build_model(opt, &classes);
  nn::kaiming_init(model, 1);
  if (!opt.checkpoint.empty()) {
    model.try_load(opt.checkpoint).throw_if_error();
  }
  return model;
}

std::unique_ptr<serve::ModelSession> make_session(const Options& opt) {
  core::OdqConfig cfg;
  cfg.threshold = opt.threshold;
  return std::make_unique<serve::ModelSession>(
      build_replica(opt), serve::make_conv_executor(opt.scheme, cfg),
      opt.scheme);
}

// Deterministic synthetic request: id -> [1,C,H,W] tensor, independent of
// submission order (so the sequential verifier can regenerate it). Shared
// with odq_fidelity --emit-baseline via data::make_request_input; the
// optional --input-shift offsets every value to simulate drifted traffic.
tensor::Tensor make_request_input(const Options& opt, std::uint64_t id,
                                  const tensor::Shape& chw) {
  tensor::Tensor x = data::make_request_input(opt.seed, id, chw);
  if (opt.input_shift != 0.0f) {
    for (std::int64_t i = 0; i < x.numel(); ++i) x[i] += opt.input_shift;
  }
  return x;
}

// Bit-compare two tensors. Returns -1 when identical, -2 on a shape
// mismatch, else the first mismatching flat element index — so verify
// failures report the exact (request, element) pair, not just "diverged".
std::int64_t first_mismatch(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.shape() != b.shape()) return -2;
  if (std::memcmp(a.data(), b.data(),
                  static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0) {
    return -1;
  }
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) return i;
  }
  return -1;  // unreachable: memcmp said they differ
}

std::uint32_t float_bits(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Report one verify divergence with the exact element and both bit
// patterns (mismatch == -2 means the shapes themselves disagree).
void print_mismatch(const char* what, std::int64_t request,
                    std::int64_t mismatch, const tensor::Tensor& expected,
                    const tensor::Tensor& got) {
  if (mismatch == -2) {
    std::fprintf(stderr, "odq_serve: %s MISMATCH request %lld: shape differs\n",
                 what, static_cast<long long>(request));
    return;
  }
  std::fprintf(stderr,
               "odq_serve: %s MISMATCH request %lld element %lld: expected "
               "%.9g (0x%08x) got %.9g (0x%08x)\n",
               what, static_cast<long long>(request),
               static_cast<long long>(mismatch),
               static_cast<double>(expected[mismatch]),
               float_bits(expected[mismatch]),
               static_cast<double>(got[mismatch]), float_bits(got[mismatch]));
}

// "x.json" -> "x.prom"; anything else gets ".prom" appended.
std::string prom_path_for(const std::string& json_path) {
  if (json_path.size() > 5 &&
      json_path.compare(json_path.size() - 5, 5, ".json") == 0) {
    return json_path.substr(0, json_path.size() - 5) + ".prom";
  }
  return json_path + ".prom";
}

// ---------------------------------------------------------------------------
// Networked serving modes (docs/serving.md).
// ---------------------------------------------------------------------------

tensor::Shape input_shape_for(const Options& opt) {
  return (opt.model == "lenet" || opt.model == "lenet5")
             ? tensor::Shape{1, 28, 28}
             : tensor::Shape{3, 32, 32};
}

// tmp + rename so a polling reader never sees a partial write.
util::Status write_text_file_atomic(const std::string& path,
                                    const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return util::Status(util::StatusCode::kIoError, "cannot open " + tmp);
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status(util::StatusCode::kIoError, "cannot write " + path);
  }
  return util::Status::Ok();
}

// --net-server: serve the engine over TCP until a client sends the
// kShutdown frame, then drain (connections -> front end -> engine) and
// exit 0. The tenant roster is fixed — "gold" (guaranteed, weight 4) and
// "batch" (best-effort, weight 1) — so every process in a multi-process
// run agrees on admission semantics without a config file.
int run_net_server(const Options& opt) {
  serve::EngineConfig ecfg;
  ecfg.num_workers = opt.workers;
  ecfg.queue_capacity = static_cast<std::size_t>(opt.queue_cap);
  ecfg.max_batch = static_cast<std::size_t>(opt.max_batch);
  ecfg.flush_timeout_us = opt.flush_us;
  ecfg.slo_us = opt.slo_us;
  serve::ServeEngine engine(ecfg, [&](int) {
    std::unique_ptr<serve::ModelSession> s = make_session(opt);
    core::OdqConfig cfg;
    cfg.threshold = opt.threshold;
    s->set_degraded_executor(serve::make_conv_executor("static_int8", cfg),
                             "static_int8");
    return s;
  });

  const auto cap = static_cast<std::size_t>(opt.queue_cap);
  serve::FrontEndConfig fcfg;
  serve::TenantSpec gold;
  gold.name = "gold";
  gold.weight = 4.0;
  gold.queue_limit = cap * 4;
  serve::TenantSpec batch;
  batch.name = "batch";
  batch.weight = 1.0;
  batch.queue_limit = cap * 4;
  batch.best_effort = true;
  fcfg.tenants = {gold, batch};
  fcfg.degrade.degrade_high =
      opt.degrade_high > 0 ? static_cast<std::size_t>(opt.degrade_high) : cap;
  fcfg.degrade.shed_high =
      opt.shed_high > 0 ? static_cast<std::size_t>(opt.shed_high) : 3 * cap;
  fcfg.degrade.low_water =
      opt.low_water > 0 ? static_cast<std::size_t>(opt.low_water) : cap / 4;
  fcfg.degrade.down_hold = static_cast<int>(opt.down_hold);
  serve::ServeFrontEnd frontend(engine, std::move(fcfg));

  net::ServerConfig scfg;
  scfg.port = static_cast<std::uint16_t>(opt.port);
  scfg.read_timeout_ms = opt.read_timeout_ms;
  scfg.idle_timeout_ms = opt.idle_timeout_ms;
  scfg.default_tenant = "gold";
  net::NetServer server(frontend, scfg);
  util::Status st = server.start();
  if (!st.ok()) {
    std::fprintf(stderr, "odq_serve: --net-server: %s\n",
                 st.to_string().c_str());
    return 1;
  }
  if (!opt.port_file.empty()) {
    st = write_text_file_atomic(opt.port_file,
                                std::to_string(server.port()) + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "odq_serve: --port-file: %s\n",
                   st.to_string().c_str());
      return 1;
    }
  }
  if (!opt.quiet) {
    std::fprintf(stderr,
                 "odq_serve: net server on 127.0.0.1:%u (%s/%s, %d "
                 "workers)\n",
                 server.port(), opt.model.c_str(), opt.scheme.c_str(),
                 opt.workers);
  }

  server.wait_for_shutdown_request();
  // Drain order matters: connections first (their writers need live engine
  // workers to fulfill in-flight futures), then the tenant queues, then
  // the engine itself.
  server.shutdown();
  frontend.shutdown();
  engine.shutdown();

  if (!opt.quiet) {
    const net::ServerStats ns = server.stats();
    const serve::EngineStats es = engine.stats();
    std::fprintf(stderr,
                 "odq_serve: net server drained: %" PRIu64 " conn(s), %" PRIu64
                 " request(s), %" PRIu64 " health probe(s), %" PRIu64
                 " decode error(s), %" PRIu64 " accept error(s)\n",
                 ns.connections, ns.requests, ns.health_probes,
                 ns.decode_errors, ns.accept_errors);
    std::fprintf(stderr,
                 "  engine: %" PRIu64 " completed, %" PRIu64 " degraded, %"
                 PRIu64 " deadline-expired, %" PRIu64 " rejected\n",
                 es.completed, es.degraded, es.deadline_exceeded, es.rejected);
    for (const auto& [name, ts] : frontend.all_tenant_stats()) {
      std::fprintf(stderr,
                   "  tenant %s: accepted %" PRIu64 " rejected %" PRIu64
                   " shed %" PRIu64 " deadline-shed %" PRIu64 " degraded %"
                   PRIu64 "\n",
                   name.c_str(), ts.accepted, ts.rejected, ts.shed,
                   ts.deadline_shed, ts.degraded);
    }
  }
  return 0;
}

// Per-process load accounting for --net-client (and the aggregation the
// bench driver does over client result files).
struct NetLoadResult {
  std::int64_t sent = 0;
  std::int64_t ok = 0;
  std::int64_t rejected = 0;  // kResourceExhausted (tenant queue limit)
  std::int64_t shed = 0;      // kUnavailable (overload / shutdown)
  std::int64_t deadline = 0;  // kDeadlineExceeded
  std::int64_t other = 0;     // anything else (corruption, io, ...)
  std::int64_t degraded = 0;  // ok responses served on the degraded path
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t give_ups = 0;
  std::vector<double> ok_latency_ms;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  bool bit_identical = true;

  void merge(const NetLoadResult& o) {
    sent += o.sent;
    ok += o.ok;
    rejected += o.rejected;
    shed += o.shed;
    deadline += o.deadline;
    other += o.other;
    degraded += o.degraded;
    retries += o.retries;
    reconnects += o.reconnects;
    give_ups += o.give_ups;
    ok_latency_ms.insert(ok_latency_ms.end(), o.ok_latency_ms.begin(),
                         o.ok_latency_ms.end());
    p50_ms = std::max(p50_ms, o.p50_ms);
    p95_ms = std::max(p95_ms, o.p95_ms);
    p99_ms = std::max(p99_ms, o.p99_ms);
    bit_identical = bit_identical && o.bit_identical;
    conservation_ok = conservation_ok && o.conservation_ok;
  }

  bool conservation_ok = true;  // sent == ok + every error class
  void finish() {
    p50_ms = util::percentile(ok_latency_ms, 0.50);
    p95_ms = util::percentile(ok_latency_ms, 0.95);
    p99_ms = util::percentile(ok_latency_ms, 0.99);
    conservation_ok =
        sent == ok + rejected + shed + deadline + other;
  }
};

// --net-client: drive `--clients` threads of synchronous requests against
// --port, classify every outcome, optionally verify ok responses
// bit-for-bit against a local oracle replica (the cross-process version of
// --verify: same deterministic inputs, same checkpoint, same executor).
int run_net_client(const Options& opt) {
  if (opt.port <= 0) {
    std::fprintf(stderr, "odq_serve: --net-client needs --port\n");
    return 2;
  }
  const tensor::Shape input_chw = input_shape_for(opt);

  // Verify oracles, built lazily under a mutex (requests are wire-bound;
  // oracle evaluation is the rare path). Degraded responses check against
  // the degraded scheme's executor — the server tells us which path served
  // each request.
  std::mutex oracle_mu;
  std::unique_ptr<serve::ModelSession> oracle_full;
  std::unique_ptr<serve::ModelSession> oracle_degraded;

  const std::int64_t n = opt.requests;
  std::vector<NetLoadResult> per_thread(
      static_cast<std::size_t>(opt.clients));
  std::vector<std::thread> threads;
  const std::int64_t per =
      (n + opt.clients - 1) / static_cast<std::int64_t>(opt.clients);
  for (int t = 0; t < opt.clients; ++t) {
    const std::int64_t lo = t * per;
    const std::int64_t hi = std::min<std::int64_t>(n, lo + per);
    if (lo >= hi) break;
    threads.emplace_back([&, lo, hi, t] {
      NetLoadResult& agg = per_thread[static_cast<std::size_t>(t)];
      net::ClientConfig ccfg;
      ccfg.port = static_cast<std::uint16_t>(opt.port);
      ccfg.seed = opt.seed + 0x9E3779B9ULL *
                                 static_cast<std::uint64_t>(
                                     opt.req_base + t + 1);
      net::NetClient client(ccfg);
      for (std::int64_t r = lo; r < hi; ++r) {
        const std::int64_t id = opt.req_base + r;
        net::WireRequest req;
        req.client_req_id = static_cast<std::uint64_t>(id);
        req.tenant = opt.tenant;
        // +1: wire tag 0 means "engine-assigned"; ids start at 0.
        req.tag = static_cast<std::uint64_t>(id) + 1;
        req.input = make_request_input(opt, static_cast<std::uint64_t>(id),
                                       input_chw);
        auto deadline = std::chrono::steady_clock::time_point::max();
        if (opt.deadline_ms > 0) {
          deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(opt.deadline_ms);
        }
        const auto t0 = std::chrono::steady_clock::now();
        auto res = client.infer(req, deadline);
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        ++agg.sent;
        if (!res.ok()) {
          switch (res.status().code()) {
            case util::StatusCode::kResourceExhausted:
              ++agg.rejected;
              break;
            case util::StatusCode::kUnavailable:
              ++agg.shed;
              break;
            case util::StatusCode::kDeadlineExceeded:
              ++agg.deadline;
              break;
            default:
              ++agg.other;
              break;
          }
          continue;
        }
        ++agg.ok;
        agg.ok_latency_ms.push_back(ms);
        const net::WireResponse& wire = res.value();
        if (wire.degraded != 0) ++agg.degraded;
        if (opt.verify) {
          std::lock_guard<std::mutex> lock(oracle_mu);
          core::OdqConfig cfg;
          cfg.threshold = opt.threshold;
          std::unique_ptr<serve::ModelSession>& oracle =
              wire.degraded != 0 ? oracle_degraded : oracle_full;
          if (oracle == nullptr) {
            if (wire.degraded != 0) {
              oracle = std::make_unique<serve::ModelSession>(
                  build_replica(opt),
                  serve::make_conv_executor("static_int8", cfg),
                  "static_int8");
            } else {
              oracle = make_session(opt);
            }
          }
          tensor::Tensor expected = oracle->run(req.input);
          const std::int64_t mismatch =
              first_mismatch(expected, wire.output);
          if (mismatch != -1) {
            print_mismatch("net-verify", id, mismatch, expected,
                           wire.output);
            agg.bit_identical = false;
          }
        }
      }
      const net::ClientStats& cs = client.stats();
      agg.retries = cs.retries;
      agg.reconnects = cs.reconnects;
      agg.give_ups = cs.deadline_give_ups;
    });
  }
  for (std::thread& th : threads) th.join();

  NetLoadResult total;
  for (const NetLoadResult& r : per_thread) total.merge(r);
  total.finish();

  if (!opt.result_path.empty()) {
    util::JsonWriter w;
    w.begin_object();
    w.kv("sent", total.sent);
    w.kv("ok", total.ok);
    w.kv("rejected", total.rejected);
    w.kv("shed", total.shed);
    w.kv("deadline", total.deadline);
    w.kv("other", total.other);
    w.kv("degraded", total.degraded);
    w.kv("retries", static_cast<std::int64_t>(total.retries));
    w.kv("reconnects", static_cast<std::int64_t>(total.reconnects));
    w.kv("give_ups", static_cast<std::int64_t>(total.give_ups));
    w.kv("p50_ms", total.p50_ms);
    w.kv("p95_ms", total.p95_ms);
    w.kv("p99_ms", total.p99_ms);
    w.kv("bit_identical", total.bit_identical ? 1 : 0);
    w.kv("conservation_ok", total.conservation_ok ? 1 : 0);
    w.end_object();
    const util::Status st =
        write_text_file_atomic(opt.result_path, w.take() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "odq_serve: --result: %s\n",
                   st.to_string().c_str());
      return 1;
    }
  }
  if (!opt.quiet) {
    std::fprintf(stderr,
                 "odq_serve: net client [%s]: %lld sent, %lld ok, %lld "
                 "rejected, %lld shed, %lld deadline, %lld other, %lld "
                 "degraded, %" PRIu64 " retries  p99 %.2f ms\n",
                 opt.tenant.c_str(), static_cast<long long>(total.sent),
                 static_cast<long long>(total.ok),
                 static_cast<long long>(total.rejected),
                 static_cast<long long>(total.shed),
                 static_cast<long long>(total.deadline),
                 static_cast<long long>(total.other),
                 static_cast<long long>(total.degraded), total.retries,
                 total.p99_ms);
  }
  if (!total.conservation_ok) {
    std::fprintf(stderr, "odq_serve: net client response conservation "
                 "violated (sent != sum of outcomes)\n");
    return 1;
  }
  return total.bit_identical ? 0 : 1;
}

pid_t spawn_self(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv("/proc/self/exe", argv.data());
    std::_Exit(127);
  }
  return pid;
}

// waitpid with a wall-clock bound; on timeout the child is SIGKILLed and
// reaped (false = wedge, the thing the chaos job asserts never happens).
bool wait_child(pid_t pid, int* exit_code, std::int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
      return true;
    }
    if (r < 0) {
      *exit_code = 128;
      return false;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      *exit_code = 137;
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

struct PhaseOutcome {
  std::string label;
  int procs = 0;
  NetLoadResult totals;
  double seconds = 0.0;
  double goodput_rps = 0.0;
  int max_degrade_level = 0;
  std::uint64_t health_probes = 0;
  std::uint64_t health_failures = 0;
  bool health_ok = false;  // at least one probe answered during the phase
  bool clients_ok = true;  // every client process exited 0 in time
};

// --net-bench: spawn one --net-server process and waves of --net-client
// processes at 0.5x / 1x / 2x the configured process count, measure
// goodput and tail latency per phase, then run the kShutdown handshake
// and require a clean, bounded drain. Overload behavior is asserted via
// the exit code (no collapse at 2x, health answered throughout);
// deterministic cells land in the "net" bench-JSON section.
int run_net_bench(const Options& opt) {
  // The driver itself must stay fault-free: children inherit ODQ_FAULT
  // from the environment, but the parent's own health probes and shutdown
  // handshake are control plane, not the system under test.
  util::fault_configure("");

  const std::string prefix =
      (opt.json_path.empty() ? std::string("net_bench") : opt.json_path) +
      "." + std::to_string(static_cast<long long>(::getpid()));
  const std::string port_file = prefix + ".port";
  std::vector<std::string> cleanup{port_file};

  auto arg = [](std::int64_t v) { return std::to_string(v); };
  std::vector<std::string> sargs = {
      "odq_serve",    "--net-server",
      "--model",      opt.model,
      "--scheme",     opt.scheme,
      "--workers",    arg(opt.workers),
      "--queue-cap",  arg(opt.queue_cap),
      "--max-batch",  arg(opt.max_batch),
      "--flush-us",   arg(opt.flush_us),
      "--threshold",  std::to_string(opt.threshold),
      "--width",      arg(opt.width),
      "--seed",       arg(static_cast<std::int64_t>(opt.seed)),
      "--read-timeout-ms", arg(opt.read_timeout_ms),
      "--idle-timeout-ms", arg(opt.idle_timeout_ms),
      "--down-hold",  arg(opt.down_hold),
      "--port-file",  port_file,
      "--quiet"};
  if (!opt.checkpoint.empty()) {
    sargs.push_back("--checkpoint");
    sargs.push_back(opt.checkpoint);
  }
  if (opt.degrade_high > 0) {
    sargs.push_back("--degrade-high");
    sargs.push_back(arg(opt.degrade_high));
  }
  if (opt.shed_high > 0) {
    sargs.push_back("--shed-high");
    sargs.push_back(arg(opt.shed_high));
  }
  if (opt.low_water > 0) {
    sargs.push_back("--low-water");
    sargs.push_back(arg(opt.low_water));
  }
  const pid_t server_pid = spawn_self(sargs);

  auto fail = [&](const char* why) {
    std::fprintf(stderr, "odq_serve: --net-bench: %s\n", why);
    ::kill(server_pid, SIGKILL);
    int code = 0;
    ::waitpid(server_pid, &code, 0);
    for (const std::string& p : cleanup) std::remove(p.c_str());
    return 1;
  };

  // Wait for the server to publish its port (written atomically).
  int port = 0;
  {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(20);
    while (port == 0) {
      std::FILE* f = std::fopen(port_file.c_str(), "r");
      if (f != nullptr) {
        if (std::fscanf(f, "%d", &port) != 1) port = 0;
        std::fclose(f);
      }
      if (port != 0) break;
      int code = 0;
      if (::waitpid(server_pid, &code, WNOHANG) == server_pid) {
        std::fprintf(stderr,
                     "odq_serve: --net-bench: server exited before "
                     "publishing a port\n");
        for (const std::string& p : cleanup) std::remove(p.c_str());
        return 1;
      }
      if (std::chrono::steady_clock::now() > deadline) {
        return fail("timed out waiting for the server port file");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  const int procs_1x = std::max(1, opt.client_procs);
  const struct {
    const char* label;
    int procs;
  } phases[3] = {{"0.5x", std::max(1, procs_1x / 2)},
                 {"1x", procs_1x},
                 {"2x", 2 * procs_1x}};
  std::vector<PhaseOutcome> outcomes;
  std::int64_t req_base = 0;

  for (const auto& phase : phases) {
    PhaseOutcome out;
    out.label = phase.label;
    out.procs = phase.procs;

    // Health poller: the "is the server still answering" probe that runs
    // *during* the load, including at 2x overload.
    std::atomic<bool> poll_stop{false};
    std::thread poller([&] {
      net::ClientConfig hcfg;
      hcfg.port = static_cast<std::uint16_t>(port);
      net::NetClient probe(hcfg);
      while (!poll_stop.load(std::memory_order_relaxed)) {
        auto h = probe.health();
        ++out.health_probes;
        if (h.ok()) {
          out.health_ok = true;
          out.max_degrade_level =
              std::max(out.max_degrade_level,
                       static_cast<int>(h.value().degrade_level));
        } else {
          ++out.health_failures;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });

    util::WallTimer timer;
    std::vector<pid_t> pids;
    std::vector<std::string> results;
    for (int i = 0; i < phase.procs; ++i) {
      const std::string result = prefix + "." + phase.label + ".client" +
                                 std::to_string(i) + ".json";
      results.push_back(result);
      cleanup.push_back(result);
      std::vector<std::string> cargs = {
          "odq_serve",  "--net-client",
          "--model",    opt.model,
          "--scheme",   opt.scheme,
          "--threshold", std::to_string(opt.threshold),
          "--width",    arg(opt.width),
          "--seed",     arg(static_cast<std::int64_t>(opt.seed)),
          "--port",     arg(port),
          "--clients",  arg(opt.clients),
          "--requests", arg(opt.requests),
          // Even processes drive the guaranteed tenant, odd ones the
          // best-effort tenant that absorbs overload.
          "--tenant",   (i % 2 == 0) ? "gold" : "batch",
          "--req-base", arg(req_base),
          "--result",   result,
          "--quiet"};
      if (!opt.checkpoint.empty()) {
        cargs.push_back("--checkpoint");
        cargs.push_back(opt.checkpoint);
      }
      if (opt.deadline_ms > 0) {
        cargs.push_back("--deadline-ms");
        cargs.push_back(arg(opt.deadline_ms));
      }
      if (opt.verify) cargs.push_back("--verify");
      req_base += opt.requests;
      pids.push_back(spawn_self(cargs));
    }
    for (const pid_t pid : pids) {
      int code = 0;
      if (!wait_child(pid, &code, 300000) || code != 0) {
        out.clients_ok = false;
      }
    }
    out.seconds = timer.seconds();
    poll_stop.store(true, std::memory_order_relaxed);
    poller.join();

    for (const std::string& result : results) {
      auto parsed = util::json_try_parse_file(result);
      if (!parsed.ok()) {
        out.clients_ok = false;
        continue;
      }
      const util::JsonValue& v = parsed.value();
      NetLoadResult r;
      r.sent = static_cast<std::int64_t>(v.at("sent").num);
      r.ok = static_cast<std::int64_t>(v.at("ok").num);
      r.rejected = static_cast<std::int64_t>(v.at("rejected").num);
      r.shed = static_cast<std::int64_t>(v.at("shed").num);
      r.deadline = static_cast<std::int64_t>(v.at("deadline").num);
      r.other = static_cast<std::int64_t>(v.at("other").num);
      r.degraded = static_cast<std::int64_t>(v.at("degraded").num);
      r.retries = static_cast<std::uint64_t>(v.at("retries").num);
      r.reconnects = static_cast<std::uint64_t>(v.at("reconnects").num);
      r.give_ups = static_cast<std::uint64_t>(v.at("give_ups").num);
      r.p50_ms = v.at("p50_ms").num;
      r.p95_ms = v.at("p95_ms").num;
      r.p99_ms = v.at("p99_ms").num;
      r.bit_identical = v.at("bit_identical").num != 0;
      r.conservation_ok = v.at("conservation_ok").num != 0;
      out.totals.merge(r);
    }
    out.goodput_rps = out.seconds > 0
                          ? static_cast<double>(out.totals.ok) / out.seconds
                          : 0.0;
    if (!opt.quiet) {
      std::fprintf(stderr,
                   "odq_serve: net-bench phase %-4s %d proc(s): %lld ok / "
                   "%lld sent  goodput %.1f req/s  p99 %.2f ms  shed %lld  "
                   "degraded %lld  level<=%d\n",
                   out.label.c_str(), out.procs,
                   static_cast<long long>(out.totals.ok),
                   static_cast<long long>(out.totals.sent), out.goodput_rps,
                   out.totals.p99_ms, static_cast<long long>(out.totals.shed),
                   static_cast<long long>(out.totals.degraded),
                   out.max_degrade_level);
    }
    outcomes.push_back(std::move(out));
  }

  // Clean-stop handshake + bounded drain.
  bool shutdown_ack_ok = false;
  {
    net::ClientConfig ccfg;
    ccfg.port = static_cast<std::uint16_t>(port);
    net::NetClient stopper(ccfg);
    shutdown_ack_ok = stopper.send_shutdown().ok();
  }
  int server_code = -1;
  const bool clean_drain =
      wait_child(server_pid, &server_code, 30000) && server_code == 0;
  for (const std::string& p : cleanup) std::remove(p.c_str());

  // Overload verdicts.
  bool all_clients_ok = true, all_health_ok = true, conservation_ok = true;
  bool bit_identical = true;
  for (const PhaseOutcome& out : outcomes) {
    all_clients_ok = all_clients_ok && out.clients_ok;
    all_health_ok = all_health_ok && out.health_ok;
    conservation_ok = conservation_ok && out.totals.conservation_ok;
    bit_identical = bit_identical && out.totals.bit_identical;
  }
  const double goodput_1x = outcomes[1].goodput_rps;
  const double goodput_2x = outcomes[2].goodput_rps;
  const bool goodput_ok =
      goodput_1x > 0.0 && goodput_2x >= 0.9 * goodput_1x;
  const bool slo_ok = opt.overload_slo_ms <= 0 ||
                      outcomes[2].totals.p99_ms <=
                          static_cast<double>(opt.overload_slo_ms);

  if (!opt.json_path.empty()) {
    util::JsonWriter w;
    w.begin_object();
    w.kv("bench", "odq_serve_net");
    w.kv("reproduces",
         "multi-process serving over TCP: admission, WFQ, degradation, "
         "clean drain under overload");
    w.kv("scale", opt.model);
    w.key("rows");
    w.begin_array();
    // Deterministic cells: protocol constants and the invariants the exit
    // code enforces (all pinned 1 on a passing run).
    w.begin_object();
    w.kv("section", "net");
    w.kv("model", opt.model);
    w.kv("scheme", opt.scheme);
    w.kv("protocol_version",
         static_cast<std::int64_t>(net::kWireProtocolVersion));
    w.kv("frame_header_bytes",
         static_cast<std::int64_t>(net::kFrameHeaderBytes));
    w.kv("frame_trailer_bytes",
         static_cast<std::int64_t>(net::kFrameTrailerBytes));
    w.kv("phases", static_cast<std::int64_t>(outcomes.size()));
    w.kv("conservation_ok", conservation_ok ? 1 : 0);
    w.kv("health_ok", all_health_ok ? 1 : 0);
    w.kv("shutdown_ack_ok", shutdown_ack_ok ? 1 : 0);
    w.kv("clean_drain", clean_drain ? 1 : 0);
    w.kv("goodput_ok", goodput_ok ? 1 : 0);
    if (opt.verify) w.kv("bit_identical", bit_identical ? 1 : 0);
    w.end_object();
    for (const PhaseOutcome& out : outcomes) {
      w.begin_object();
      w.kv("section", "net_host_wall_clock");
      w.kv("model", opt.model);
      w.kv("scheme", opt.scheme);
      w.kv("phase", out.label);
      w.kv("procs", out.procs);
      w.kv("sent", out.totals.sent);
      w.kv("ok", out.totals.ok);
      w.kv("rejected", out.totals.rejected);
      w.kv("shed", out.totals.shed);
      w.kv("deadline", out.totals.deadline);
      w.kv("other", out.totals.other);
      w.kv("degraded", out.totals.degraded);
      w.kv("retries", static_cast<std::int64_t>(out.totals.retries));
      w.kv("reconnects", static_cast<std::int64_t>(out.totals.reconnects));
      w.kv("p50_ms", out.totals.p50_ms);
      w.kv("p95_ms", out.totals.p95_ms);
      w.kv("p99_ms", out.totals.p99_ms);
      w.kv("goodput_rps", out.goodput_rps);
      w.kv("total_seconds", out.seconds);
      w.kv("max_degrade_level", out.max_degrade_level);
      w.kv("health_probes",
           static_cast<std::int64_t>(out.health_probes));
      w.kv("health_failures",
           static_cast<std::int64_t>(out.health_failures));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    const util::Status st =
        write_text_file_atomic(opt.json_path, w.take() + "\n");
    if (!st.ok()) {
      std::fprintf(stderr, "odq_serve: --json: %s\n",
                   st.to_string().c_str());
      return 1;
    }
  }

  if (!opt.quiet) {
    std::fprintf(stderr,
                 "odq_serve: net-bench goodput 1x %.1f -> 2x %.1f req/s "
                 "(%s), health %s, shutdown ack %s, drain %s\n",
                 goodput_1x, goodput_2x, goodput_ok ? "no collapse"
                                                    : "COLLAPSED",
                 all_health_ok ? "answered" : "UNANSWERED",
                 shutdown_ack_ok ? "ok" : "MISSING",
                 clean_drain ? "clean" : "WEDGED");
  }

  int rc = 0;
  auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "odq_serve: --net-bench FAILED: %s\n", what);
      rc = 1;
    }
  };
  check(all_clients_ok, "a client process failed or timed out");
  check(conservation_ok, "response conservation violated");
  check(all_health_ok, "health probe went unanswered during a phase");
  check(shutdown_ack_ok, "no shutdown ack from the server");
  check(clean_drain, "server did not drain and exit cleanly");
  check(goodput_ok, "goodput collapsed at 2x overload");
  check(slo_ok, "admitted p99 over --overload-slo-ms at 2x");
  if (opt.verify) check(bit_identical, "cross-process bit-identity failed");
  return rc;
}

}  // namespace

int tool_main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "odq_serve: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--model") {
      opt.model = next("--model");
    } else if (a == "--scheme") {
      opt.scheme = next("--scheme");
    } else if (a == "--checkpoint") {
      opt.checkpoint = next("--checkpoint");
    } else if (a == "--save-checkpoint") {
      opt.save_checkpoint = next("--save-checkpoint");
    } else if (a == "--workers") {
      opt.workers = std::atoi(next("--workers"));
    } else if (a == "--clients") {
      opt.clients = std::atoi(next("--clients"));
    } else if (a == "--requests") {
      opt.requests = std::atoll(next("--requests"));
    } else if (a == "--max-batch") {
      opt.max_batch = std::atoll(next("--max-batch"));
    } else if (a == "--flush-us") {
      opt.flush_us = std::atoll(next("--flush-us"));
    } else if (a == "--queue-cap") {
      opt.queue_cap = std::atoll(next("--queue-cap"));
    } else if (a == "--arrival-us") {
      opt.arrival_us = std::atoll(next("--arrival-us"));
    } else if (a == "--telemetry") {
      opt.telemetry_path = next("--telemetry");
    } else if (a == "--telemetry-flush-ms") {
      opt.telemetry_flush_ms = std::atoll(next("--telemetry-flush-ms"));
    } else if (a == "--slo-us") {
      opt.slo_us = std::atoll(next("--slo-us"));
    } else if (a == "--check-telemetry") {
      opt.check_telemetry = true;
    } else if (a == "--shadow-rate") {
      opt.shadow_rate = std::strtoull(next("--shadow-rate"), nullptr, 0);
    } else if (a == "--drift-baseline") {
      opt.drift_baseline = next("--drift-baseline");
    } else if (a == "--drift-window") {
      opt.drift_window = std::atoll(next("--drift-window"));
    } else if (a == "--drift-tv") {
      opt.drift_tv = std::strtod(next("--drift-tv"), nullptr);
    } else if (a == "--flight-dump") {
      opt.flight_dump = next("--flight-dump");
    } else if (a == "--drift-snapshot") {
      opt.drift_snapshot = next("--drift-snapshot");
    } else if (a == "--input-shift") {
      opt.input_shift = std::strtof(next("--input-shift"), nullptr);
    } else if (a == "--fail-on-drift") {
      opt.fail_on_drift = true;
    } else if (a == "--require-drift") {
      opt.require_drift = true;
    } else if (a == "--threshold") {
      opt.threshold = std::strtof(next("--threshold"), nullptr);
    } else if (a == "--width") {
      opt.width = std::atoll(next("--width"));
    } else if (a == "--seed") {
      opt.seed = std::strtoull(next("--seed"), nullptr, 0);
    } else if (a == "--net-server") {
      opt.mode = "net-server";
    } else if (a == "--net-client") {
      opt.mode = "net-client";
    } else if (a == "--net-bench") {
      opt.mode = "net-bench";
    } else if (a == "--port") {
      opt.port = std::atoi(next("--port"));
    } else if (a == "--port-file") {
      opt.port_file = next("--port-file");
    } else if (a == "--result") {
      opt.result_path = next("--result");
    } else if (a == "--tenant") {
      opt.tenant = next("--tenant");
    } else if (a == "--deadline-ms") {
      opt.deadline_ms = std::atoll(next("--deadline-ms"));
    } else if (a == "--read-timeout-ms") {
      opt.read_timeout_ms = std::atoll(next("--read-timeout-ms"));
    } else if (a == "--idle-timeout-ms") {
      opt.idle_timeout_ms = std::atoll(next("--idle-timeout-ms"));
    } else if (a == "--degrade-high") {
      opt.degrade_high = std::atoll(next("--degrade-high"));
    } else if (a == "--shed-high") {
      opt.shed_high = std::atoll(next("--shed-high"));
    } else if (a == "--low-water") {
      opt.low_water = std::atoll(next("--low-water"));
    } else if (a == "--down-hold") {
      opt.down_hold = std::atoll(next("--down-hold"));
    } else if (a == "--client-procs") {
      opt.client_procs = std::atoi(next("--client-procs"));
    } else if (a == "--req-base") {
      opt.req_base = std::atoll(next("--req-base"));
    } else if (a == "--overload-slo-ms") {
      opt.overload_slo_ms = std::atoll(next("--overload-slo-ms"));
    } else if (a == "--verify") {
      opt.verify = true;
    } else if (a == "--require-batching") {
      opt.require_batching = true;
    } else if (a == "--json") {
      opt.json_path = next("--json");
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else {
      return usage();
    }
  }
  if (opt.workers < 1 || opt.clients < 1 || opt.requests < 1 ||
      opt.max_batch < 1 || opt.queue_cap < 1 || opt.width < 1) {
    return usage();
  }

  if (opt.mode == "net-server") return run_net_server(opt);
  if (opt.mode == "net-client") return run_net_client(opt);
  if (opt.mode == "net-bench") return run_net_bench(opt);

  if (!opt.save_checkpoint.empty()) {
    int classes = 10;
    nn::Model model = build_model(opt, &classes);
    nn::kaiming_init(model, 1);
    model.try_save(opt.save_checkpoint).throw_if_error();
    if (!opt.quiet) {
      std::fprintf(stderr, "odq_serve: wrote v3 checkpoint %s\n",
                   opt.save_checkpoint.c_str());
    }
    return 0;
  }

  const tensor::Shape input_chw =
      (opt.model == "lenet" || opt.model == "lenet5")
          ? tensor::Shape{1, 28, 28}
          : tensor::Shape{3, 32, 32};

  // Keep a handle on each replica's ODQ executor so the summary can report
  // the whole-run sensitive fraction the executors measured.
  std::vector<std::shared_ptr<nn::ConvExecutor>> worker_execs(
      static_cast<std::size_t>(opt.workers));

  // Telemetry: switch the windowed registry on and run the background
  // exporter over the whole load phase, so odq_top can tail the snapshot
  // while the run is live. Metrics come on too — the queue-depth peak line
  // below reads the gauge watermark.
  std::unique_ptr<obs::TelemetryExporter> exporter;
  if (!opt.telemetry_path.empty()) {
    obs::set_telemetry_enabled(true);
    obs::set_metrics_enabled(true);
    obs::TelemetryExporterConfig tcfg;
    tcfg.json_path = opt.telemetry_path;
    tcfg.prom_path = prom_path_for(opt.telemetry_path);
    tcfg.flush_interval_ms =
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            1, opt.telemetry_flush_ms));
    exporter = std::make_unique<obs::TelemetryExporter>(std::move(tcfg));
    exporter->start();
  }

  // Shadow quality lane: one extra replica re-evaluating a deterministic
  // 1-in-N sample of the live requests under fidelity instrumentation.
  std::unique_ptr<serve::ShadowLane> shadow;
  if (opt.shadow_rate > 0) {
    serve::ShadowConfig scfg;
    scfg.rate = opt.shadow_rate;
    scfg.seed = opt.seed;
    scfg.quality.drift_window = opt.drift_window;
    scfg.quality.hist_drift_threshold = opt.drift_tv;
    shadow = std::make_unique<serve::ShadowLane>(scfg, make_session(opt));
    obs::FlightContext fctx;
    fctx.model = opt.model;
    fctx.scheme = opt.scheme;
    fctx.checkpoint = opt.checkpoint;
    fctx.width = opt.width;
    fctx.threshold = opt.threshold;
    shadow->monitor().flight().set_context(std::move(fctx));
    if (!opt.drift_baseline.empty()) {
      util::StatusOr<obs::QualityBaseline> base =
          obs::QualityBaseline::load(opt.drift_baseline);
      if (!base.ok()) {
        std::fprintf(stderr, "odq_serve: --drift-baseline: %s\n",
                     base.status().message().c_str());
        return 1;
      }
      shadow->monitor().set_baseline(std::move(base.value()));
    }
  }

  serve::EngineConfig ecfg;
  ecfg.num_workers = opt.workers;
  ecfg.queue_capacity = static_cast<std::size_t>(opt.queue_cap);
  ecfg.max_batch = static_cast<std::size_t>(opt.max_batch);
  ecfg.flush_timeout_us = opt.flush_us;
  ecfg.slo_us = opt.slo_us;
  ecfg.shadow = shadow.get();
  serve::ServeEngine engine(ecfg, [&](int worker_id) {
    std::unique_ptr<serve::ModelSession> s = make_session(opt);
    worker_execs[static_cast<std::size_t>(worker_id)] = s->executor();
    return s;
  });

  const std::int64_t n = opt.requests;
  std::vector<std::future<serve::InferResponse>> futures(
      static_cast<std::size_t>(n));
  std::vector<serve::InferResponse> responses(static_cast<std::size_t>(n));
  std::vector<util::Status> submit_errors(static_cast<std::size_t>(n));

  // Load phase: `clients` threads submit disjoint contiguous request
  // ranges as fast as --arrival-us allows; backpressure (bounded queue)
  // throttles them against the workers.
  util::WallTimer load_timer;
  {
    std::vector<std::thread> clients;
    const std::int64_t per =
        (n + opt.clients - 1) / static_cast<std::int64_t>(opt.clients);
    for (int c = 0; c < opt.clients; ++c) {
      const std::int64_t lo = c * per;
      const std::int64_t hi = std::min<std::int64_t>(n, lo + per);
      if (lo >= hi) break;
      clients.emplace_back([&, lo, hi, c] {
        util::Rng arrival_rng(opt.seed + 1000003ULL * (c + 1));
        for (std::int64_t r = lo; r < hi; ++r) {
          if (opt.arrival_us > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(arrival_rng.uniform_int(
                    0, static_cast<int>(2 * opt.arrival_us))));
          }
          auto fut = engine.submit(make_request_input(opt, r, input_chw),
                                   static_cast<std::uint64_t>(r));
          if (fut.ok()) {
            futures[static_cast<std::size_t>(r)] = std::move(*fut);
          } else {
            submit_errors[static_cast<std::size_t>(r)] = fut.status();
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    for (std::int64_t r = 0; r < n; ++r) {
      auto& fut = futures[static_cast<std::size_t>(r)];
      if (fut.valid()) {
        responses[static_cast<std::size_t>(r)] = fut.get();
      } else {
        responses[static_cast<std::size_t>(r)].status =
            submit_errors[static_cast<std::size_t>(r)];
      }
    }
  }
  const double load_seconds = load_timer.seconds();
  engine.shutdown();
  // Shadow drain before the telemetry drain flush, so every sampled
  // request's quality series/counters make it into the final snapshot.
  if (shadow != nullptr) shadow->stop();
  // Drain flush: everything recorded up to shutdown is on disk after this.
  if (exporter != nullptr) exporter->stop();
  const serve::EngineStats stats = engine.stats();

  std::int64_t errors = 0;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(n));
  for (const serve::InferResponse& res : responses) {
    if (!res.status.ok()) {
      ++errors;
      continue;
    }
    latencies_ms.push_back(res.latency_us() / 1000.0);
  }
  const double p50 = util::percentile(latencies_ms, 0.50);
  const double p95 = util::percentile(latencies_ms, 0.95);
  const double p99 = util::percentile(latencies_ms, 0.99);
  const double throughput =
      load_seconds > 0 ? static_cast<double>(n) / load_seconds : 0.0;

  // Sequential oracle: same inputs, fresh replica, one request at a time.
  // Bit-identity is the serving engine's core invariant — how requests
  // were coalesced must never show up in the outputs.
  bool bit_identical = true;
  std::int64_t verified = 0;
  if (opt.verify) {
    std::unique_ptr<serve::ModelSession> oracle = make_session(opt);
    for (std::int64_t r = 0; r < n; ++r) {
      const serve::InferResponse& res = responses[static_cast<std::size_t>(r)];
      if (!res.status.ok()) continue;
      tensor::Tensor expected =
          oracle->run(make_request_input(opt, r, input_chw));
      const std::int64_t mismatch = first_mismatch(expected, res.output);
      if (mismatch != -1) {
        // Always printed (even under --quiet): the (request, element)
        // pair is the whole point of a verify failure.
        print_mismatch("verify", r, mismatch, expected, res.output);
        if (bit_identical && !opt.quiet) {
          std::fprintf(stderr,
                       "odq_serve:   (batch_size %zu, worker %d)\n",
                       res.batch_size, res.worker_id);
        }
        bit_identical = false;
      }
      ++verified;
    }
  }

  // Telemetry self-check: the windowed histogram's quantiles must land in
  // (or next to) the bucket holding the load generator's own measured
  // order statistic — the histogram is the live view of the exact same
  // latencies, so disagreement beyond bucket resolution is a bug.
  int telemetry_quantile_check = -1;  // -1 not run, 0 failed, 1 passed
  int telemetry_snapshot_valid = -1;
  std::uint64_t telemetry_observed = 0;
  obs::TelemetryWindowStats telemetry_total;
  if (!opt.telemetry_path.empty()) {
    const obs::LogHistogram hist =
        obs::telemetry_series("serve.latency_us").total();
    telemetry_observed = hist.count();
    telemetry_total.count = hist.count();
    telemetry_total.mean = hist.mean();
    telemetry_total.p50 = hist.quantile(0.50);
    telemetry_total.p95 = hist.quantile(0.95);
    telemetry_total.p99 = hist.quantile(0.99);

    const util::StatusOr<util::JsonValue> parsed =
        util::json_try_parse_file(opt.telemetry_path);
    telemetry_snapshot_valid = parsed.ok() ? 1 : 0;

    if (opt.check_telemetry) {
      std::vector<std::uint64_t> oracle_us;
      oracle_us.reserve(responses.size());
      for (const serve::InferResponse& res : responses) {
        if (res.done_us > 0.0) {
          oracle_us.push_back(res.latency_us() > 0.0
                                  ? static_cast<std::uint64_t>(
                                        res.latency_us())
                                  : 0);
        }
      }
      std::sort(oracle_us.begin(), oracle_us.end());
      telemetry_quantile_check =
          (!oracle_us.empty() && hist.count() == oracle_us.size()) ? 1 : 0;
      for (const double q : {0.50, 0.95, 0.99}) {
        if (oracle_us.empty()) break;
        const std::size_t rank = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::ceil(q * static_cast<double>(oracle_us.size()))));
        const std::uint64_t oracle_v = oracle_us[rank - 1];
        const auto ob =
            static_cast<std::int64_t>(obs::log_bucket_index(oracle_v));
        const auto hb =
            static_cast<std::int64_t>(obs::log_bucket_index(hist.quantile(q)));
        if (ob - hb > 1 || hb - ob > 1) {
          telemetry_quantile_check = 0;
          if (!opt.quiet) {
            std::fprintf(stderr,
                         "odq_serve: telemetry p%g MISMATCH: oracle %llu us "
                         "(bucket %lld) vs histogram %llu us (bucket %lld)\n",
                         100 * q, static_cast<unsigned long long>(oracle_v),
                         static_cast<long long>(ob),
                         static_cast<unsigned long long>(hist.quantile(q)),
                         static_cast<long long>(hb));
          }
        }
      }
    }
  }

  // Shadow quality accounting. After stop() the lane has evaluated every
  // sampled request it accepted, so (on an error-free run) the sample count
  // must equal the count the deterministic predicate says — an exact
  // cross-check that the sampler keyed on request indices, not engine ids.
  std::int64_t shadow_expected = 0;
  bool shadow_count_ok = true;
  std::vector<obs::QualityMonitor::LayerSummary> quality_layers;
  std::int64_t drift_alerts = 0;
  if (shadow != nullptr) {
    for (std::int64_t r = 0; r < n; ++r) {
      if (shadow->sampled(static_cast<std::uint64_t>(r))) ++shadow_expected;
    }
    if (errors == 0 && stats.rejected == 0) {
      shadow_count_ok =
          shadow->samples() == static_cast<std::uint64_t>(shadow_expected) &&
          shadow->evaluated() + shadow->dropped() == shadow->samples();
    }
    quality_layers = shadow->monitor().summary();
    drift_alerts = shadow->monitor().drift_alerts();

    if (!opt.flight_dump.empty()) {
      const util::Status st = shadow->monitor().flight().dump(opt.flight_dump);
      if (!st.ok()) {
        std::fprintf(stderr, "odq_serve: --flight-dump: %s\n",
                     st.message().c_str());
        return 1;
      }
    }
    if (!opt.drift_snapshot.empty()) {
      util::JsonWriter w;
      shadow->monitor().drift_snapshot_json(w);
      std::FILE* f = std::fopen(opt.drift_snapshot.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "odq_serve: cannot open %s\n",
                     opt.drift_snapshot.c_str());
        return 1;
      }
      const std::string doc = w.take();
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }

  const double multi_frac =
      stats.batches > 0 ? static_cast<double>(stats.multi_request_batches) /
                              static_cast<double>(stats.batches)
                        : 0.0;

  if (!opt.quiet) {
    std::fprintf(stderr,
                 "odq_serve: %s/%s  %d worker(s), %d client(s), %lld "
                 "requests (%lld errors, %" PRIu64 " rejected)\n",
                 opt.model.c_str(), opt.scheme.c_str(), opt.workers,
                 opt.clients, static_cast<long long>(n),
                 static_cast<long long>(errors), stats.rejected);
    std::fprintf(stderr,
                 "  latency  p50 %.2f ms   p95 %.2f ms   p99 %.2f ms\n", p50,
                 p95, p99);
    std::fprintf(stderr, "  throughput %.1f req/s over %.2f s\n", throughput,
                 load_seconds);
    std::fprintf(stderr, "  batches %" PRIu64 " (%.0f%% multi-request, "
                 "largest %" PRIu64 ")\n",
                 stats.batches, 100.0 * multi_frac, stats.max_batch_observed);
    std::fprintf(stderr, "  batch-size histogram:");
    for (std::size_t k = 1; k < stats.batch_size_hist.size(); ++k) {
      if (stats.batch_size_hist[k] > 0) {
        std::fprintf(stderr, "  %zu:%" PRIu64, k, stats.batch_size_hist[k]);
      }
    }
    std::fputc('\n', stderr);
    if (opt.scheme == "odq") {
      core::OdqLayerStats total;
      for (const auto& exec : worker_execs) {
        auto* odq_exec = dynamic_cast<core::OdqConvExecutor*>(exec.get());
        if (odq_exec != nullptr) total.merge(odq_exec->total_stats());
      }
      std::fprintf(stderr, "  odq sensitive fraction %.1f%% over %lld outputs\n",
                   100.0 * total.sensitive_fraction(),
                   static_cast<long long>(total.outputs));
    }
    if (opt.verify) {
      std::fprintf(stderr, "  verify: %lld outputs %s\n",
                   static_cast<long long>(verified),
                   bit_identical ? "bit-identical to sequential execution"
                                 : "DIVERGED from sequential execution");
    }
    if (shadow != nullptr) {
      std::fprintf(stderr,
                   "  shadow: 1-in-%" PRIu64 " sampling, %" PRIu64
                   " sampled (expected %lld), %" PRIu64 " evaluated, %" PRIu64
                   " dropped, %" PRIu64 " errors%s\n",
                   opt.shadow_rate, shadow->samples(),
                   static_cast<long long>(shadow_expected),
                   shadow->evaluated(), shadow->dropped(), shadow->errors(),
                   shadow_count_ok ? "" : "  COUNT MISMATCH");
      std::fprintf(stderr, "  drift: %s baseline, %lld alert(s), %" PRIu64
                   " flight record(s)\n",
                   shadow->monitor().has_baseline() ? "with" : "no",
                   static_cast<long long>(drift_alerts),
                   shadow->monitor().flight().total_recorded());
      for (const auto& l : quality_layers) {
        std::fprintf(stderr,
                     "    layer %d: %lld req, sensitive %.2f%% (baseline "
                     "%.2f%%), sqnr %.1f dB, drift tv %.4f%s\n",
                     l.layer, static_cast<long long>(l.requests),
                     100.0 * l.sensitive_fraction, 100.0 * l.baseline_fraction,
                     l.sqnr_db, l.drift_distance,
                     l.drifted ? "  DRIFTED" : "");
      }
    }
    if (!opt.telemetry_path.empty()) {
      std::fprintf(stderr,
                   "  telemetry: %" PRIu64 " samples  p50 %.2f ms  p95 %.2f "
                   "ms  p99 %.2f ms (windowed histogram), snapshot %s\n",
                   telemetry_observed, telemetry_total.p50 / 1000.0,
                   telemetry_total.p95 / 1000.0, telemetry_total.p99 / 1000.0,
                   telemetry_snapshot_valid == 1 ? opt.telemetry_path.c_str()
                                                 : "INVALID");
      std::fprintf(stderr,
                   "  queue depth peak %.0f  slo violations %" PRIu64
                   " (slo %lld us)  trace drops %" PRIu64 "\n",
                   obs::gauge("serve.queue_depth").max_watermark(),
                   stats.slo_violations, static_cast<long long>(opt.slo_us),
                   obs::trace_dropped_events());
      if (opt.check_telemetry) {
        std::fprintf(stderr, "  telemetry quantile check: %s\n",
                     telemetry_quantile_check == 1 ? "within one bucket of "
                                                    "measured latencies"
                                                  : "FAILED");
      }
    }
  }

  if (!opt.json_path.empty()) {
    util::JsonWriter w;
    w.begin_object();
    w.kv("bench", "odq_serve");
    w.kv("reproduces",
         "serving load run: dynamic batching with single-request "
         "bit-identity");
    w.kv("scale", opt.model);
    w.key("rows");
    w.begin_array();
    w.begin_object();
    w.kv("section", "serve");
    w.kv("model", opt.model);
    w.kv("scheme", opt.scheme);
    w.kv("workers", opt.workers);
    w.kv("max_batch", opt.max_batch);
    w.kv("requests", n);
    w.kv("errors", errors);
    w.kv("rejected", static_cast<std::int64_t>(stats.rejected));
    if (opt.verify) w.kv("bit_identical", bit_identical ? 1 : 0);
    w.end_object();
    w.begin_object();
    w.kv("section", "serve_host_wall_clock");
    w.kv("model", opt.model);
    w.kv("scheme", opt.scheme);
    w.kv("p50_ms", p50);
    w.kv("p95_ms", p95);
    w.kv("p99_ms", p99);
    w.kv("throughput_rps", throughput);
    w.kv("total_seconds", load_seconds);
    w.kv("batches", static_cast<std::int64_t>(stats.batches));
    w.kv("multi_request_batch_frac", multi_frac);
    w.kv("max_batch_observed",
         static_cast<std::int64_t>(stats.max_batch_observed));
    w.end_object();
    if (!opt.telemetry_path.empty()) {
      // Deterministic exposition-schema cells, gated against
      // tools/testdata/serve_baseline.json: bucket-layout or schema
      // changes must fail the bench gate until the baseline is refreshed.
      w.begin_object();
      w.kv("section", "telemetry");
      w.kv("model", opt.model);
      w.kv("scheme", opt.scheme);
      w.kv("schema_version", obs::kTelemetrySchemaVersion);
      w.kv("windows", static_cast<int>(obs::kTelemetryWindowsS.size()));
      w.kv("sub_bucket_bits", obs::kLogHistSubBits);
      w.kv("max_value_pow2", obs::kLogHistMaxPow);
      w.kv("observed", static_cast<std::int64_t>(telemetry_observed));
      w.kv("snapshot_valid", telemetry_snapshot_valid);
      w.kv("quantile_check", telemetry_quantile_check);
      w.end_object();
    }
    if (shadow != nullptr) {
      // Deterministic quality cells: sample counts come from the seeded
      // predicate, per-layer fractions and TV distances from
      // order-independent integer counts — identical across reruns of the
      // same command (sqnr_db is double-merge order-dependent only at ulp
      // scale, far inside the gate's 10% tolerance).
      w.begin_object();
      w.kv("section", "quality");
      w.kv("model", opt.model);
      w.kv("scheme", opt.scheme);
      w.kv("shadow_rate", static_cast<std::int64_t>(opt.shadow_rate));
      w.kv("shadow_samples", static_cast<std::int64_t>(shadow->samples()));
      w.kv("shadow_evaluated",
           static_cast<std::int64_t>(shadow->evaluated()));
      w.kv("shadow_dropped", static_cast<std::int64_t>(shadow->dropped()));
      w.kv("sample_count_ok", shadow_count_ok ? 1 : 0);
      w.kv("has_baseline", shadow->monitor().has_baseline() ? 1 : 0);
      w.kv("drift_alerts", drift_alerts);
      w.end_object();
      for (const auto& l : quality_layers) {
        w.begin_object();
        w.kv("section", "quality");
        w.kv("model", opt.model);
        w.kv("scheme", opt.scheme);
        w.kv("layer", "conv" + std::to_string(l.layer));
        w.kv("requests", l.requests);
        w.kv("sensitive_fraction", l.sensitive_fraction);
        w.kv("baseline_fraction", l.baseline_fraction);
        w.kv("sqnr_db", l.sqnr_db);
        w.kv("drift_distance", l.drift_distance);
        w.kv("alerts", l.alerts);
        w.end_object();
      }
    }
    w.end_array();
    w.end_object();

    const std::string doc = w.take();
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "odq_serve: cannot open %s\n",
                   opt.json_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }

  if (errors > 0) return 1;
  if (opt.verify && !bit_identical) return 1;
  if (opt.check_telemetry &&
      (telemetry_quantile_check != 1 || telemetry_snapshot_valid != 1)) {
    std::fprintf(stderr, "odq_serve: --check-telemetry failed (quantiles %d, "
                 "snapshot %d)\n",
                 telemetry_quantile_check, telemetry_snapshot_valid);
    return 1;
  }
  if (opt.require_batching && stats.multi_request_batches == 0) {
    std::fprintf(stderr,
                 "odq_serve: --require-batching: every batch carried a "
                 "single request\n");
    return 1;
  }
  if (shadow != nullptr && !shadow_count_ok) {
    std::fprintf(stderr,
                 "odq_serve: shadow sample accounting mismatch: %" PRIu64
                 " sampled vs %lld expected, %" PRIu64 " evaluated + %" PRIu64
                 " dropped\n",
                 shadow->samples(), static_cast<long long>(shadow_expected),
                 shadow->evaluated(), shadow->dropped());
    return 1;
  }
  if (opt.fail_on_drift && drift_alerts > 0) {
    std::fprintf(stderr, "odq_serve: --fail-on-drift: %lld drift alert(s)\n",
                 static_cast<long long>(drift_alerts));
    return 1;
  }
  if (opt.require_drift && drift_alerts == 0) {
    std::fprintf(stderr,
                 "odq_serve: --require-drift: no drift alert fired on the "
                 "shifted stream\n");
    return 1;
  }
  return 0;
}

int main(int argc, char** argv) {
  return odq::tools::run_guarded("odq_serve",
                                 [&] { return tool_main(argc, argv); });
}
