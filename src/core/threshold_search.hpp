// Adaptive threshold selection (paper §3, "A key parameter in sensitivity
// prediction is the threshold"):
//
//   1. Train the network with 4-bit weights and inputs (QAT with STE).
//   2. Run N test inputs through the predictor path and collect the output
//      distribution; pick a relatively large initial threshold from it.
//   3. Retrain (fine-tune) the weights with the threshold in the loop.
//   4. Evaluate ODQ accuracy; if it meets the expectation, stop. Otherwise
//      halve the threshold and repeat.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/odq.hpp"
#include "data/synthetic.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace odq::core {

struct ThresholdSearchConfig {
  // Accuracy may drop at most this much (absolute) vs the reference
  // accuracy supplied by the caller (FP32 or INT4-static accuracy).
  double accuracy_tolerance = 0.02;
  // Initial threshold = this percentile of |predictor outputs|.
  double init_percentile = 0.90;
  int max_iterations = 8;
  // Calibration inputs (N random test samples, paper §3).
  std::int64_t calibration_inputs = 32;
  // Fine-tuning between threshold updates ("weights are retrained after
  // introducing the threshold"). 0 disables retraining.
  std::int64_t finetune_epochs = 1;
  nn::TrainConfig finetune;
};

struct ThresholdTracePoint {
  float threshold;
  double accuracy;
  double sensitive_fraction;  // mean over conv layers
};

struct ThresholdSearchResult {
  float threshold = 0.0f;
  double accuracy = 0.0;
  double reference_accuracy = 0.0;
  int iterations = 0;
  bool converged = false;
  std::vector<ThresholdTracePoint> trace;
};

// Pick the initial threshold from the predictor-output distribution of
// `model` over `inputs` calibration images.
float calibrate_initial_threshold(nn::Model& model,
                                  const tensor::Tensor& inputs,
                                  const OdqConfig& cfg, double percentile);

// Full adaptive search. `reference_accuracy` is the accuracy the quantized
// model must stay within `accuracy_tolerance` of. The model's weights may be
// fine-tuned in place (as in the paper).
ThresholdSearchResult search_threshold(nn::Model& model,
                                       const data::Dataset& train,
                                       const data::Dataset& test,
                                       double reference_accuracy,
                                       const OdqConfig& base_cfg,
                                       const ThresholdSearchConfig& scfg);

}  // namespace odq::core
