// ODQ: output-directed dynamic quantization (the paper's contribution).
//
// Pipeline per conv layer (paper §3, Fig. 6):
//   1. Quantize the input feature map FP32 -> INT4 (unsigned, post-ReLU) and
//      the weights -> INT4 (signed, DoReFa-style or linear).
//   2. Split both into high-order 2 bits (HBS) and low-order 2 bits (LBS).
//   3. Sensitivity prediction: convolve I_HBS x W_HBS, shift left by
//      2*N_LBS = 4. Outputs whose dequantized predictor magnitude exceeds
//      the threshold are *sensitive* (bit mask = 1).
//   4. Result generation: for sensitive outputs only, add the remaining
//      three partial products of Eq. (3):
//      (I_HBS*W_LBS + I_LBS*W_HBS) << 2  +  I_LBS*W_LBS.
//   5. Final output = predictor partial sums + executor remainders,
//      dequantized with the combined input*weight scale (+ bias).
//
// Sensitive outputs are therefore *bit-exact* INT4xINT4 results; insensitive
// outputs keep the predictor-only low-precision value. This is the property
// that separates ODQ from input-directed schemes (DRQ): precision follows
// output sensitivity, never input mixing.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "gemm/sparse_epilogue.hpp"
#include "nn/layer.hpp"
#include "quant/bitsplit.hpp"
#include "quant/quantizer.hpp"
#include "tensor/tensor.hpp"

namespace odq::core {

struct OdqConfig {
  float threshold = 0.5f;  // on |dequantized predictor output|
  int total_bits = 4;      // INT4 codes
  int low_bits = 2;        // LBS width (HBS = total - low)
  // Linear by default: the DoReFa tanh transform belongs to training-time
  // quantization; post-hoc it distorts FP32-trained weights. The paper's
  // flow (DoReFa QAT + retraining) uses kDoReFa — the tanh normalization
  // spreads weight codes across the INT4 range so their high-order bits
  // (and hence the sensitivity predictor) carry information.
  quant::WeightTransform weight_transform = quant::WeightTransform::kLinear;
  // Activation clip calibration: <= 0 uses the per-tensor max; in (0, 1]
  // clips at that quantile of the activation distribution, spreading codes
  // across the range the way DoReFa's fixed [0,1] clip does. Values above
  // the clip saturate at the top code.
  float act_clip_percentile = -1.0f;
  // Execution threading. 0 (default) runs the tiled pipeline on the global
  // util::ThreadPool (pool size: ODQ_THREADS env var, else hardware
  // concurrency); 1 forces the serial reference implementation
  // (odq_conv_reference), the oracle the parallel-equivalence tests compare
  // against. Both paths are bit-exact on integer accumulators, so the
  // choice never affects results — only scheduling.
  int num_threads = 0;
};

struct OdqLayerStats {
  std::int64_t calls = 0;
  std::int64_t outputs = 0;
  std::int64_t sensitive = 0;
  std::int64_t predictor_macs = 0;  // INT2 MACs (every output)
  std::int64_t executor_macs = 0;   // remaining MACs (sensitive outputs only)
  // Phase wall time of the packed-GEMM pipeline (zero on the serial
  // reference path, which has no pack/GEMM phases): operand packing +
  // digit split, predictor INT-GEMM, and mask-aware sparse result
  // generation. Additive across calls, like the MAC counters.
  double pack_seconds = 0.0;
  double gemm_seconds = 0.0;
  double sparse_epilogue_seconds = 0.0;

  double sensitive_fraction() const {
    return outputs > 0
               ? static_cast<double>(sensitive) / static_cast<double>(outputs)
               : 0.0;
  }

  void merge(const OdqLayerStats& other) {
    calls += other.calls;
    outputs += other.outputs;
    sensitive += other.sensitive;
    predictor_macs += other.predictor_macs;
    executor_macs += other.executor_macs;
    pack_seconds += other.pack_seconds;
    gemm_seconds += other.gemm_seconds;
    sparse_epilogue_seconds += other.sparse_epilogue_seconds;
  }
};

struct OdqConvResult {
  tensor::TensorI32 acc;            // final accumulators
  tensor::TensorI32 predictor_acc;  // predictor-only accumulators (shifted)
  tensor::TensorU8 mask;            // 1 = sensitive
  // Per-output-channel sensitive counts (summed over batch & space) — the
  // accelerator simulator's workload-balance input.
  std::vector<std::int64_t> sensitive_per_channel;
  // Compacted per-(batch, out-channel) sensitive output-pixel indices, the
  // executor PE work queues the sparse epilogue consumed. Always consistent
  // with `mask` and `stats.sensitive` (tests/gemm pins this).
  gemm::SensitiveLists sensitive_lists;
  float scale = 1.0f;  // float value = acc * scale
  OdqLayerStats stats;
};

// Core integer pipeline on already-quantized tensors. `input` must be an
// unsigned QTensor with `cfg.total_bits` bits, `weight` a signed one.
// Runs the fused mask+executor passes tiled over (batch, out-channel) on
// the global thread pool unless cfg.num_threads == 1.
OdqConvResult odq_conv(const quant::QTensor& input,
                       const quant::QTensor& weight, std::int64_t stride,
                       std::int64_t pad, const OdqConfig& cfg);

// Serial scalar reference for odq_conv: separate mask and result-generation
// passes, no tiling, no pool. Kept as the oracle for the parallel path
// (tests/core/test_odq_parallel.cpp asserts bit-exact agreement).
OdqConvResult odq_conv_reference(const quant::QTensor& input,
                                 const quant::QTensor& weight,
                                 std::int64_t stride, std::int64_t pad,
                                 const OdqConfig& cfg);

// Float-facing wrapper: quantizes, runs odq_conv, dequantizes, applies bias.
tensor::Tensor odq_conv_float(const tensor::Tensor& input,
                              const tensor::Tensor& weight,
                              const tensor::Tensor& bias, std::int64_t stride,
                              std::int64_t pad, const OdqConfig& cfg,
                              OdqLayerStats* stats = nullptr,
                              tensor::TensorU8* mask_out = nullptr);

// ConvExecutor plugging ODQ into any Model. Thread-safe stat accumulation
// keyed by conv id; optionally records per-layer bit masks and per-channel
// sensitive counts for the accelerator simulator (the paper dumps binary
// mask maps from PyTorch into its simulator the same way, §5.2).
//
// Graceful degradation: run() validates the layer's quantization
// parameters first — a non-finite threshold, non-finite activations, or a
// collapsed activation range (no positive values) makes the sensitivity
// threshold meaningless — and serves that layer through the static-INT8
// path instead, incrementing the `odq.fallback` obs counter once per run
// and logging once per layer. The model keeps serving; docs/robustness.md
// has the semantics.
class OdqConvExecutor : public nn::ConvExecutor {
 public:
  explicit OdqConvExecutor(OdqConfig cfg) : cfg_(cfg) {}

  tensor::Tensor run(const tensor::Tensor& input, const tensor::Tensor& weight,
                     const tensor::Tensor& bias, std::int64_t stride,
                     std::int64_t pad, int conv_id) override;

  std::string name() const override { return "odq"; }

  const OdqConfig& config() const { return cfg_; }
  void set_threshold(float t) { cfg_.threshold = t; }

  OdqLayerStats layer_stats(int id) const;
  std::size_t num_layers_seen() const;
  // Merge of every layer's stats — the whole-model sensitive fraction and
  // MAC split a serving run reports.
  OdqLayerStats total_stats() const;
  void reset_stats();

  // Runs of conv `id` that were served by the static-INT8 fallback since
  // construction / the last reset_stats().
  std::int64_t fallback_count(int id) const;

  // Per-output-channel sensitive counts of the *last* call per layer
  // (workload-balance input for the accelerator sim).
  std::vector<std::int64_t> last_sensitive_per_channel(int id) const;

  // When enabled, keeps per-layer predictor-magnitude samples so a caller
  // can pick an initial threshold from the output distribution (§3).
  // Toggle before starting concurrent run() callers — the flag itself is
  // read outside the stats lock on the hot path.
  void enable_calibration(bool on) { calibrate_ = on; }
  std::vector<float> calibration_samples() const;

 private:
  tensor::Tensor run_fallback(const tensor::Tensor& input,
                              const tensor::Tensor& weight,
                              const tensor::Tensor& bias, std::int64_t stride,
                              std::int64_t pad, int conv_id,
                              const char* reason);

  OdqConfig cfg_;
  bool calibrate_ = false;
  mutable std::mutex mutex_;
  std::vector<OdqLayerStats> stats_;
  std::vector<std::vector<std::int64_t>> last_channel_counts_;
  std::vector<std::int64_t> fallback_counts_;
  std::vector<float> calib_samples_;
};

}  // namespace odq::core
