#include "core/odq.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gemm/gemm.hpp"
#include "gemm/packed.hpp"
#include "gemm/sparse_epilogue.hpp"
#include "nn/epilogue.hpp"
#include "obs/fidelity.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quant/static_executor.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace odq::core {

using quant::QTensor;
using tensor::Shape;
using tensor::Tensor;
using tensor::TensorI32;
using tensor::TensorI8;
using tensor::TensorU8;

namespace {

// Quantize activations per the config: max calibration, or clipping at the
// configured quantile of the (non-negative) activation distribution.
QTensor quantize_input(const Tensor& input, const OdqConfig& cfg) {
  ODQ_TRACE_SPAN("odq.quantize");
  const float clip =
      quant::activation_clip_from_percentile(input, cfg.act_clip_percentile);
  return quant::quantize_activations(input, cfg.total_bits, clip);
}

QTensor quantize_weight(const Tensor& weight, const OdqConfig& cfg) {
  ODQ_TRACE_SPAN("odq.quantize");
  return quant::quantize_weights(weight, cfg.total_bits, cfg.weight_transform);
}

// Per-conv pipeline counters (see docs/observability.md). Recorded once per
// odq_conv call — a handful of relaxed ops, never inside the MAC loops.
void record_conv_metrics(const OdqLayerStats& s) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& calls = obs::counter("odq.conv.calls");
  static obs::Counter& outputs = obs::counter("odq.conv.outputs");
  static obs::Counter& sensitive = obs::counter("odq.conv.sensitive");
  static obs::Counter& pred_macs = obs::counter("odq.conv.predictor_macs");
  static obs::Counter& exec_macs = obs::counter("odq.conv.executor_macs");
  static obs::Distribution& frac =
      obs::distribution("odq.conv.sensitive_fraction", 0.0, 1.0, 50);
  calls.increment();
  outputs.add(s.outputs);
  sensitive.add(s.sensitive);
  pred_macs.add(s.predictor_macs);
  exec_macs.add(s.executor_macs);
  frac.record(s.sensitive_fraction());
}

// Dequantize integer accumulators and add the per-channel bias through the
// shared conv epilogue helper (nn/epilogue.hpp) — the bias-only case there
// is the exact fused expression this file used to hand-roll.
Tensor dequantize_with_bias(const TensorI32& acc, float scale,
                            const Tensor& bias) {
  ODQ_TRACE_SPAN("odq.epilogue");
  nn::ConvEpilogue e;
  e.bias = bias;
  return nn::dequantize_epilogue(acc, scale, e);
}

// Fidelity attribution for one finished ODQ conv (obs/fidelity.hpp): runs
// the FP32 reference conv and dequantizes the predictor-only accumulators,
// then records scheme/predictor/mask-side errors plus the |predictor|
// magnitude histogram. Only ever called when fidelity is enabled — the
// reference conv makes this path deliberately expensive.
void record_odq_fidelity(const Tensor& input, const Tensor& weight,
                         const Tensor& bias, std::int64_t stride,
                         std::int64_t pad, const OdqConfig& cfg,
                         const OdqConvResult& r, const Tensor& out, int layer) {
  ODQ_TRACE_SPAN("odq.fidelity");
  const Tensor ref = tensor::conv2d_direct(input, weight, bias, stride, pad);
  const Tensor pred_out = dequantize_with_bias(r.predictor_acc, r.scale, bias);
  std::vector<float> pred_mag(static_cast<std::size_t>(out.numel()));
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    pred_mag[static_cast<std::size_t>(i)] =
        std::abs(static_cast<float>(r.predictor_acc[i]) * r.scale);
  }
  obs::fidelity_record_odq("odq", layer, cfg.threshold, ref.data(), out.data(),
                           pred_out.data(), pred_mag.data(), r.mask.data(),
                           out.numel());
}

// Returns nullptr when the layer's runtime statistics support the dynamic
// scheme, else a short reason string. ODQ's sensitivity threshold compares
// |dequantized predictor| against cfg.threshold — a non-finite threshold
// never selects anything, and a collapsed or non-finite activation range
// makes the predictor magnitudes meaningless. One linear scan of the input;
// negligible next to the conv itself and NaN-safe (a plain max would let
// NaN slip through std::max's ordering).
const char* odq_degenerate_reason(const Tensor& input, float threshold) {
  if (!std::isfinite(threshold)) return "non-finite sensitivity threshold";
  float amax = 0.0f;
  const float* p = input.data();
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float v = p[i];
    if (!std::isfinite(v)) return "non-finite activation";
    if (v > amax) amax = v;
  }
  if (amax <= 0.0f) return "collapsed activation range (no positive values)";
  return nullptr;
}

void check_bits(const QTensor& input, const QTensor& weight,
                const OdqConfig& cfg) {
  if (input.bits != cfg.total_bits || weight.bits != cfg.total_bits) {
    throw std::invalid_argument("odq_conv: tensors must be total_bits wide");
  }
}

}  // namespace

OdqConvResult odq_conv_reference(const QTensor& input, const QTensor& weight,
                                 std::int64_t stride, std::int64_t pad,
                                 const OdqConfig& cfg) {
  check_bits(input, weight, cfg);
  const int lb = cfg.low_bits;

  // Step 2: bit split.
  quant::SplitTensor in_split, w_split;
  {
    ODQ_TRACE_SPAN("odq.bitsplit");
    in_split = quant::split(input, lb);
    w_split = quant::split(weight, lb);
  }

  // Step 3: sensitivity prediction — I_HBS x W_HBS shifted by 2*low_bits.
  const Shape& is = input.q.shape();
  const Shape& ws = weight.q.shape();
  const std::int64_t n = is[0];
  const std::int64_t c = is[1], h = is[2], w = is[3];
  const std::int64_t oc = ws[0], kh = ws[2], kw = ws[3];
  const std::int64_t oh = tensor::conv_out_dim(h, kh, stride, pad);
  const std::int64_t ow = tensor::conv_out_dim(w, kw, stride, pad);

  OdqConvResult res;
  res.scale = input.scale * weight.scale;
  {
    ODQ_TRACE_SPAN("odq.predictor");
    // Direct (non-packed) integer conv: the reference path must stay an
    // independent oracle for the packed-GEMM pipeline, so it shares no code
    // with it.
    res.predictor_acc =
        quant::conv2d_i8(in_split.high, w_split.high, stride, pad);
    for (std::int64_t i = 0; i < res.predictor_acc.numel(); ++i) {
      res.predictor_acc[i] <<= 2 * lb;
    }
  }

  // Threshold -> bit mask, plus the compacted per-tile index lists the
  // packed path emits (ascending by construction here too).
  res.mask = TensorU8(Shape{n, oc, oh, ow});
  res.sensitive_per_channel.assign(static_cast<std::size_t>(oc), 0);
  res.sensitive_lists.batches = n;
  res.sensitive_lists.channels = oc;
  res.sensitive_lists.rows = oh * ow;
  res.sensitive_lists.lists.assign(static_cast<std::size_t>(n * oc), {});
  std::int64_t sensitive = 0;
  {
    ODQ_TRACE_SPAN("odq.mask");
    for (std::int64_t b = 0; b < n; ++b) {
      for (std::int64_t ch = 0; ch < oc; ++ch) {
        std::vector<std::int32_t>& list =
            res.sensitive_lists.lists[static_cast<std::size_t>(b * oc + ch)];
        for (std::int64_t i = 0; i < oh * ow; ++i) {
          const std::int64_t idx = ((b * oc + ch) * oh * ow) + i;
          const float mag =
              std::abs(static_cast<float>(res.predictor_acc[idx]) * res.scale);
          const bool sens = mag >= cfg.threshold;
          res.mask[idx] = sens ? 1 : 0;
          if (sens) {
            ++sensitive;
            ++res.sensitive_per_channel[static_cast<std::size_t>(ch)];
            list.push_back(static_cast<std::int32_t>(i));
          }
        }
      }
    }
  }

  // Step 4: result generation — remaining three terms, sensitive outputs
  // only. Computed per masked output, mirroring the executor PE's work.
  obs::TraceSpan result_span("odq.result_gen");
  result_span.arg("sensitive", sensitive);
  res.acc = res.predictor_acc;
  const std::int8_t* ih = in_split.high.data();
  const std::int8_t* il = in_split.low.data();
  const std::int8_t* wh = w_split.high.data();
  const std::int8_t* wl = w_split.low.data();
  std::int64_t exec_macs = 0;

  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t och = 0; och < oc; ++och) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const std::int64_t oidx = ((b * oc + och) * oh + oy) * ow + ox;
          if (res.mask[oidx] == 0) continue;
          std::int32_t cross = 0;  // ih*wl + il*wh
          std::int32_t low = 0;    // il*wl
          for (std::int64_t ic = 0; ic < c; ++ic) {
            for (std::int64_t ki = 0; ki < kh; ++ki) {
              const std::int64_t iy = oy * stride - pad + ki;
              if (iy < 0 || iy >= h) continue;
              const std::int64_t irow = ((b * c + ic) * h + iy) * w;
              const std::int64_t wrow = ((och * c + ic) * kh + ki) * kw;
              for (std::int64_t kj = 0; kj < kw; ++kj) {
                const std::int64_t ix = ox * stride - pad + kj;
                if (ix < 0 || ix >= w) continue;
                const std::int32_t a_h = ih[irow + ix];
                const std::int32_t a_l = il[irow + ix];
                const std::int32_t b_h = wh[wrow + kj];
                const std::int32_t b_l = wl[wrow + kj];
                cross += a_h * b_l + a_l * b_h;
                low += a_l * b_l;
                ++exec_macs;
              }
            }
          }
          res.acc[oidx] += (cross << lb) + low;
        }
      }
    }
  }

  res.stats.calls = 1;
  res.stats.outputs = n * oc * oh * ow;
  res.stats.sensitive = sensitive;
  res.stats.predictor_macs = res.stats.outputs * c * kh * kw;
  res.stats.executor_macs = exec_macs;
  record_conv_metrics(res.stats);
  return res;
}

OdqConvResult odq_conv(const QTensor& input, const QTensor& weight,
                       std::int64_t stride, std::int64_t pad,
                       const OdqConfig& cfg) {
  if (cfg.num_threads == 1) {
    return odq_conv_reference(input, weight, stride, pad, cfg);
  }
  check_bits(input, weight, cfg);
  const int lb = cfg.low_bits;

  const Shape& is = input.q.shape();
  const Shape& ws = weight.q.shape();
  const std::int64_t n = is[0];
  const std::int64_t c = is[1], h = is[2], w = is[3];
  const std::int64_t oc = ws[0], kh = ws[2], kw = ws[3];
  const std::int64_t oh = tensor::conv_out_dim(h, kh, stride, pad);
  const std::int64_t ow = tensor::conv_out_dim(w, kw, stride, pad);

  OdqConvResult res;
  res.scale = input.scale * weight.scale;

  // Step 2 fused with packing: one pass over the codes produces the
  // digit-split (HBS/LBS), cache-blocked im2col rows and filter panels the
  // whole pipeline shares (gemm/packed.hpp).
  gemm::PackedSplitIm2col cols;
  gemm::PackedSplitWeights wts;
  {
    ODQ_TRACE_SPAN("odq.pack");
    util::WallTimer timer;
    cols = gemm::pack_im2col_split(input.q, lb, kh, kw, stride, pad);
    wts = gemm::pack_weights_split(weight.q, lb);
    res.stats.pack_seconds = timer.seconds();
  }

  // Step 3: sensitivity prediction — tiled INT-GEMM over the high digit
  // planes with the 2*N_LBS shift folded into the store.
  {
    ODQ_TRACE_SPAN("odq.gemm");
    util::WallTimer timer;
    res.predictor_acc = gemm::gemm_conv_i8(cols.high, wts.high, 2 * lb);
    res.stats.gemm_seconds = timer.seconds();
  }

  // Steps 3b+4: threshold mask, sensitive-index compaction, and Eq. (3)
  // result generation over the compacted lists only (gemm/sparse_epilogue).
  gemm::SparseEpilogueStats es;
  {
    obs::TraceSpan span("odq.sparse_epilogue");
    util::WallTimer timer;
    res.acc = res.predictor_acc;
    res.mask = TensorU8(Shape{n, oc, oh, ow});
    res.sensitive_per_channel.assign(static_cast<std::size_t>(oc), 0);
    const gemm::ConvShape geom{c, h, w, kh, kw, stride, pad};
    es = gemm::sparse_result_generation(
        cols, wts, geom, res.predictor_acc, res.scale, cfg.threshold, res.acc,
        res.mask, res.sensitive_per_channel, res.sensitive_lists);
    res.stats.sparse_epilogue_seconds = timer.seconds();
    span.arg("sensitive", es.sensitive);
  }

  res.stats.calls = 1;
  res.stats.outputs = n * oc * oh * ow;
  res.stats.sensitive = es.sensitive;
  res.stats.predictor_macs = res.stats.outputs * c * kh * kw;
  res.stats.executor_macs = es.executor_macs;
  record_conv_metrics(res.stats);
  return res;
}

Tensor odq_conv_float(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, std::int64_t stride, std::int64_t pad,
                      const OdqConfig& cfg, OdqLayerStats* stats,
                      TensorU8* mask_out) {
  QTensor qin = quantize_input(input, cfg);
  QTensor qw = quantize_weight(weight, cfg);
  OdqConvResult r = odq_conv(qin, qw, stride, pad, cfg);

  Tensor out = dequantize_with_bias(r.acc, r.scale, bias);
  if (obs::fidelity_enabled()) {
    record_odq_fidelity(input, weight, bias, stride, pad, cfg, r, out,
                        /*layer=*/-1);
  }
  if (stats != nullptr) *stats = r.stats;
  if (mask_out != nullptr) *mask_out = std::move(r.mask);
  return out;
}

Tensor OdqConvExecutor::run(const Tensor& input, const Tensor& weight,
                            const Tensor& bias, std::int64_t stride,
                            std::int64_t pad, int conv_id) {
  obs::TraceSpan span("odq.conv");
  span.arg("conv_id", conv_id);
  if (const char* reason = odq_degenerate_reason(input, cfg_.threshold)) {
    return run_fallback(input, weight, bias, stride, pad, conv_id, reason);
  }
  QTensor qin = quantize_input(input, cfg_);
  QTensor qw = quantize_weight(weight, cfg_);
  OdqConvResult r = odq_conv(qin, qw, stride, pad, cfg_);

  Tensor out = dequantize_with_bias(r.acc, r.scale, bias);
  if (obs::fidelity_enabled()) {
    record_odq_fidelity(input, weight, bias, stride, pad, cfg_, r, out,
                        conv_id);
  }

  // Calibration subsampling happens in a call-local buffer; the shared
  // state below is only touched under one short lock (concurrent run()
  // callers would otherwise serialize on the sampling loop).
  std::vector<float> local_samples;
  if (calibrate_) {
    const std::int64_t stride_s =
        std::max<std::int64_t>(1, r.predictor_acc.numel() / 512);
    local_samples.reserve(
        static_cast<std::size_t>(r.predictor_acc.numel() / stride_s) + 1);
    for (std::int64_t i = 0; i < r.predictor_acc.numel(); i += stride_s) {
      local_samples.push_back(
          std::abs(static_cast<float>(r.predictor_acc[i]) * r.scale));
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto id = static_cast<std::size_t>(std::max(conv_id, 0));
    if (stats_.size() <= id) {
      stats_.resize(id + 1);
      last_channel_counts_.resize(id + 1);
    }
    stats_[id].merge(r.stats);
    last_channel_counts_[id] = std::move(r.sensitive_per_channel);
    calib_samples_.insert(calib_samples_.end(), local_samples.begin(),
                          local_samples.end());
  }
  return out;
}

Tensor OdqConvExecutor::run_fallback(const Tensor& input, const Tensor& weight,
                                     const Tensor& bias, std::int64_t stride,
                                     std::int64_t pad, int conv_id,
                                     const char* reason) {
  obs::TraceSpan span("odq.fallback");
  span.arg("conv_id", conv_id);
  static obs::Counter& fallbacks = obs::counter("odq.fallback");
  fallbacks.increment();
  bool log_now = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto id = static_cast<std::size_t>(std::max(conv_id, 0));
    if (fallback_counts_.size() <= id) fallback_counts_.resize(id + 1, 0);
    log_now = fallback_counts_[id]++ == 0;
  }
  if (log_now) {
    ODQ_LOG_WARN(
        "odq: conv %d has %s; serving this layer via the static-INT8 "
        "fallback",
        conv_id, reason);
  }
  quant::StaticQuantConvExecutor fallback(/*bits=*/8);
  return fallback.run(input, weight, bias, stride, pad, conv_id);
}

std::int64_t OdqConvExecutor::fallback_count(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto i = static_cast<std::size_t>(id);
  return i < fallback_counts_.size() ? fallback_counts_[i] : 0;
}

OdqLayerStats OdqConvExecutor::layer_stats(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto i = static_cast<std::size_t>(id);
  return i < stats_.size() ? stats_[i] : OdqLayerStats{};
}

std::size_t OdqConvExecutor::num_layers_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.size();
}

OdqLayerStats OdqConvExecutor::total_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  OdqLayerStats total;
  for (const OdqLayerStats& s : stats_) total.merge(s);
  return total;
}

void OdqConvExecutor::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.clear();
  last_channel_counts_.clear();
  fallback_counts_.clear();
  calib_samples_.clear();
}

std::vector<std::int64_t> OdqConvExecutor::last_sensitive_per_channel(
    int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto i = static_cast<std::size_t>(id);
  return i < last_channel_counts_.size() ? last_channel_counts_[i]
                                         : std::vector<std::int64_t>{};
}

std::vector<float> OdqConvExecutor::calibration_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return calib_samples_;
}

}  // namespace odq::core
