#include "core/odq.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/stats.hpp"

namespace odq::core {

namespace {

// Quantize activations per the config: max calibration, or clipping at the
// configured quantile of the (non-negative) activation distribution.
quant::QTensor quantize_input(const tensor::Tensor& input,
                              const OdqConfig& cfg) {
  float clip = -1.0f;
  if (cfg.act_clip_percentile > 0.0f && input.numel() > 0) {
    std::vector<float> mags;
    const std::int64_t stride =
        std::max<std::int64_t>(1, input.numel() / 4096);
    mags.reserve(static_cast<std::size_t>(input.numel() / stride) + 1);
    for (std::int64_t i = 0; i < input.numel(); i += stride) {
      mags.push_back(input[i] > 0.0f ? input[i] : 0.0f);
    }
    clip = static_cast<float>(util::percentile(
        std::move(mags), static_cast<double>(cfg.act_clip_percentile)));
    if (clip <= 0.0f) clip = -1.0f;  // degenerate: fall back to max
  }
  return quant::quantize_activations(input, cfg.total_bits, clip);
}

}  // namespace

using quant::QTensor;
using tensor::Shape;
using tensor::Tensor;
using tensor::TensorI32;
using tensor::TensorI8;
using tensor::TensorU8;

OdqConvResult odq_conv(const QTensor& input, const QTensor& weight,
                       std::int64_t stride, std::int64_t pad,
                       const OdqConfig& cfg) {
  if (input.bits != cfg.total_bits || weight.bits != cfg.total_bits) {
    throw std::invalid_argument("odq_conv: tensors must be total_bits wide");
  }
  const int lb = cfg.low_bits;

  // Step 2: bit split.
  quant::SplitTensor in_split = quant::split(input, lb);
  quant::SplitTensor w_split = quant::split(weight, lb);

  // Step 3: sensitivity prediction — I_HBS x W_HBS shifted by 2*low_bits.
  const Shape& is = input.q.shape();
  const Shape& ws = weight.q.shape();
  const std::int64_t n = is[0];
  const std::int64_t c = is[1], h = is[2], w = is[3];
  const std::int64_t oc = ws[0], kh = ws[2], kw = ws[3];
  const std::int64_t oh = tensor::conv_out_dim(h, kh, stride, pad);
  const std::int64_t ow = tensor::conv_out_dim(w, kw, stride, pad);

  OdqConvResult res;
  res.scale = input.scale * weight.scale;
  res.predictor_acc =
      quant::conv2d_i8_fast(in_split.high, w_split.high, stride, pad);
  for (std::int64_t i = 0; i < res.predictor_acc.numel(); ++i) {
    res.predictor_acc[i] <<= 2 * lb;
  }

  // Threshold -> bit mask.
  res.mask = TensorU8(Shape{n, oc, oh, ow});
  res.sensitive_per_channel.assign(static_cast<std::size_t>(oc), 0);
  std::int64_t sensitive = 0;
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < oc; ++ch) {
      for (std::int64_t i = 0; i < oh * ow; ++i) {
        const std::int64_t idx = ((b * oc + ch) * oh * ow) + i;
        const float mag =
            std::abs(static_cast<float>(res.predictor_acc[idx]) * res.scale);
        const bool sens = mag >= cfg.threshold;
        res.mask[idx] = sens ? 1 : 0;
        if (sens) {
          ++sensitive;
          ++res.sensitive_per_channel[static_cast<std::size_t>(ch)];
        }
      }
    }
  }

  // Step 4: result generation — remaining three terms, sensitive outputs
  // only. Computed per masked output, mirroring the executor PE's work.
  res.acc = res.predictor_acc;
  const std::int8_t* ih = in_split.high.data();
  const std::int8_t* il = in_split.low.data();
  const std::int8_t* wh = w_split.high.data();
  const std::int8_t* wl = w_split.low.data();
  std::int64_t exec_macs = 0;

  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t och = 0; och < oc; ++och) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const std::int64_t oidx = ((b * oc + och) * oh + oy) * ow + ox;
          if (res.mask[oidx] == 0) continue;
          std::int32_t cross = 0;  // ih*wl + il*wh
          std::int32_t low = 0;    // il*wl
          for (std::int64_t ic = 0; ic < c; ++ic) {
            for (std::int64_t ki = 0; ki < kh; ++ki) {
              const std::int64_t iy = oy * stride - pad + ki;
              if (iy < 0 || iy >= h) continue;
              const std::int64_t irow = ((b * c + ic) * h + iy) * w;
              const std::int64_t wrow = ((och * c + ic) * kh + ki) * kw;
              for (std::int64_t kj = 0; kj < kw; ++kj) {
                const std::int64_t ix = ox * stride - pad + kj;
                if (ix < 0 || ix >= w) continue;
                const std::int32_t a_h = ih[irow + ix];
                const std::int32_t a_l = il[irow + ix];
                const std::int32_t b_h = wh[wrow + kj];
                const std::int32_t b_l = wl[wrow + kj];
                cross += a_h * b_l + a_l * b_h;
                low += a_l * b_l;
                ++exec_macs;
              }
            }
          }
          res.acc[oidx] += (cross << lb) + low;
        }
      }
    }
  }

  res.stats.calls = 1;
  res.stats.outputs = n * oc * oh * ow;
  res.stats.sensitive = sensitive;
  res.stats.predictor_macs = res.stats.outputs * c * kh * kw;
  res.stats.executor_macs = exec_macs;
  return res;
}

Tensor odq_conv_float(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, std::int64_t stride, std::int64_t pad,
                      const OdqConfig& cfg, OdqLayerStats* stats,
                      TensorU8* mask_out) {
  QTensor qin = quantize_input(input, cfg);
  QTensor qw = quant::quantize_weights(weight, cfg.total_bits,
                                       cfg.weight_transform);
  OdqConvResult r = odq_conv(qin, qw, stride, pad, cfg);

  Tensor out(r.acc.shape());
  for (std::int64_t i = 0; i < r.acc.numel(); ++i) {
    out[i] = static_cast<float>(r.acc[i]) * r.scale;
  }
  if (!bias.empty()) {
    const Shape& s = out.shape();
    const std::int64_t n = s[0], oc = s[1], ohw = s[2] * s[3];
    for (std::int64_t b = 0; b < n; ++b) {
      for (std::int64_t ch = 0; ch < oc; ++ch) {
        float* p = out.data() + (b * oc + ch) * ohw;
        const float bv = bias[ch];
        for (std::int64_t i = 0; i < ohw; ++i) p[i] += bv;
      }
    }
  }
  if (stats != nullptr) *stats = r.stats;
  if (mask_out != nullptr) *mask_out = std::move(r.mask);
  return out;
}

Tensor OdqConvExecutor::run(const Tensor& input, const Tensor& weight,
                            const Tensor& bias, std::int64_t stride,
                            std::int64_t pad, int conv_id) {
  QTensor qin = quantize_input(input, cfg_);
  QTensor qw =
      quant::quantize_weights(weight, cfg_.total_bits, cfg_.weight_transform);
  OdqConvResult r = odq_conv(qin, qw, stride, pad, cfg_);

  Tensor out(r.acc.shape());
  for (std::int64_t i = 0; i < r.acc.numel(); ++i) {
    out[i] = static_cast<float>(r.acc[i]) * r.scale;
  }
  if (!bias.empty()) {
    const Shape& s = out.shape();
    const std::int64_t n = s[0], oc = s[1], ohw = s[2] * s[3];
    for (std::int64_t b = 0; b < n; ++b) {
      for (std::int64_t ch = 0; ch < oc; ++ch) {
        float* p = out.data() + (b * oc + ch) * ohw;
        const float bv = bias[ch];
        for (std::int64_t i = 0; i < ohw; ++i) p[i] += bv;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto id = static_cast<std::size_t>(std::max(conv_id, 0));
    if (stats_.size() <= id) {
      stats_.resize(id + 1);
      last_channel_counts_.resize(id + 1);
    }
    stats_[id].merge(r.stats);
    last_channel_counts_[id] = std::move(r.sensitive_per_channel);
    if (calibrate_) {
      // Subsample predictor magnitudes (cap per call to bound memory).
      const std::int64_t stride_s =
          std::max<std::int64_t>(1, r.predictor_acc.numel() / 512);
      for (std::int64_t i = 0; i < r.predictor_acc.numel(); i += stride_s) {
        calib_samples_.push_back(
            std::abs(static_cast<float>(r.predictor_acc[i]) * r.scale));
      }
    }
  }
  return out;
}

OdqLayerStats OdqConvExecutor::layer_stats(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto i = static_cast<std::size_t>(id);
  return i < stats_.size() ? stats_[i] : OdqLayerStats{};
}

std::size_t OdqConvExecutor::num_layers_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.size();
}

void OdqConvExecutor::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.clear();
  last_channel_counts_.clear();
  calib_samples_.clear();
}

std::vector<std::int64_t> OdqConvExecutor::last_sensitive_per_channel(
    int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto i = static_cast<std::size_t>(id);
  return i < last_channel_counts_.size() ? last_channel_counts_[i]
                                         : std::vector<std::int64_t>{};
}

std::vector<float> OdqConvExecutor::calibration_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return calib_samples_;
}

}  // namespace odq::core
