#include "core/threshold_search.hpp"

#include <algorithm>
#include <memory>

#include "tensor/ops.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace odq::core {

using tensor::Shape;
using tensor::Tensor;

float calibrate_initial_threshold(nn::Model& model, const Tensor& inputs,
                                  const OdqConfig& cfg, double percentile) {
  auto executor = std::make_shared<OdqConvExecutor>(cfg);
  executor->enable_calibration(true);
  // A huge threshold keeps the executor idle: the calibration pass measures
  // the predictor-output distribution only.
  executor->set_threshold(3.4e38f);
  model.set_conv_executor(executor);
  (void)model.forward(inputs, /*train=*/false);
  model.set_conv_executor(nullptr);

  std::vector<float> samples = executor->calibration_samples();
  if (samples.empty()) return cfg.threshold;
  return static_cast<float>(util::percentile(std::move(samples), percentile));
}

namespace {

double mean_sensitive_fraction(const OdqConvExecutor& executor) {
  const std::size_t layers = executor.num_layers_seen();
  if (layers == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < layers; ++i) {
    acc += executor.layer_stats(static_cast<int>(i)).sensitive_fraction();
  }
  return acc / static_cast<double>(layers);
}

}  // namespace

ThresholdSearchResult search_threshold(nn::Model& model,
                                       const data::Dataset& train,
                                       const data::Dataset& test,
                                       double reference_accuracy,
                                       const OdqConfig& base_cfg,
                                       const ThresholdSearchConfig& scfg) {
  ThresholdSearchResult res;
  res.reference_accuracy = reference_accuracy;

  // Initial threshold from the predictor-output distribution over N
  // calibration inputs.
  const std::int64_t ncal = std::min(scfg.calibration_inputs, test.size());
  const std::int64_t chw =
      test.images.shape()[1] * test.images.shape()[2] * test.images.shape()[3];
  Tensor calib(Shape{ncal, test.images.shape()[1], test.images.shape()[2],
                     test.images.shape()[3]},
               std::vector<float>(test.images.data(),
                                  test.images.data() + ncal * chw));
  float threshold = calibrate_initial_threshold(model, calib, base_cfg,
                                                scfg.init_percentile);

  // Snapshot the trained weights: each candidate threshold is evaluated by
  // retraining from this baseline ("weights are retrained after introducing
  // the threshold"), never from a previous candidate's iterate.
  std::vector<tensor::Tensor> param_snapshot;
  for (nn::Param* p : model.params()) param_snapshot.push_back(p->value);
  std::vector<tensor::Tensor> buffer_snapshot;
  for (tensor::Tensor* b : model.buffers()) buffer_snapshot.push_back(*b);
  auto restore = [&] {
    auto ps = model.params();
    for (std::size_t i = 0; i < ps.size(); ++i) {
      ps[i]->value = param_snapshot[i];
      // Drop optimizer state: a restarted fine-tune must not inherit the
      // previous candidate's momentum.
      ps[i]->momentum = tensor::Tensor();
      ps[i]->velocity = tensor::Tensor();
    }
    auto bs = model.buffers();
    for (std::size_t i = 0; i < bs.size(); ++i) *bs[i] = buffer_snapshot[i];
  };

  OdqConfig cfg = base_cfg;
  for (int iter = 0; iter < scfg.max_iterations; ++iter) {
    cfg.threshold = threshold;
    auto executor = std::make_shared<OdqConvExecutor>(cfg);
    if (iter > 0) restore();
    model.set_conv_executor(executor);

    // Retrain with the threshold in the loop (STE backward).
    if (scfg.finetune_epochs > 0) {
      nn::TrainConfig tc = scfg.finetune;
      tc.epochs = scfg.finetune_epochs;
      nn::SgdTrainer trainer(tc);
      trainer.train(model, train.images, train.labels);
      executor->reset_stats();
    }

    const double acc =
        nn::evaluate_accuracy(model, test.images, test.labels);
    const double sens = mean_sensitive_fraction(*executor);
    model.set_conv_executor(nullptr);

    res.trace.push_back({threshold, acc, sens});
    res.iterations = iter + 1;
    ODQ_LOG_DEBUG("threshold search iter %d: thr=%.5f acc=%.4f sens=%.3f",
                  iter, threshold, acc, sens);

    if (acc + 1e-12 >= reference_accuracy - scfg.accuracy_tolerance) {
      res.threshold = threshold;
      res.accuracy = acc;
      res.converged = true;
      return res;
    }
    threshold *= 0.5f;  // halve and repeat (paper §3)
  }

  // Did not converge within the budget: keep the best-accuracy point.
  const auto best = std::max_element(
      res.trace.begin(), res.trace.end(),
      [](const ThresholdTracePoint& a, const ThresholdTracePoint& b) {
        return a.accuracy < b.accuracy;
      });
  res.threshold = best->threshold;
  res.accuracy = best->accuracy;
  res.converged = false;
  return res;
}

}  // namespace odq::core
