#include "util/json_read.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/fault.hpp"

namespace odq::util {

const JsonValue& JsonValue::at(const std::string& key) const {
  auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("missing key " + key);
  return it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  char get() {
    char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (get() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_ - 1));
    }
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  JsonValue parse_value() {
    // Containers recurse through here; bound the depth so a hostile
    // document ("[[[[...") becomes a parse error, not a stack overflow.
    if (depth_ >= kJsonMaxDepth) {
      throw std::runtime_error("nesting deeper than " +
                               std::to_string(kJsonMaxDepth) + " levels");
    }
    ++depth_;
    JsonValue v = parse_value_inner();
    --depth_;
    return v;
  }

  JsonValue parse_value_inner() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      get();
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj.emplace(std::move(key), parse_value());
      skip_ws();
      char c = get();
      if (c == '}') break;
      if (c != ',') throw std::runtime_error("expected ',' or '}'");
    }
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      get();
      return v;
    }
    while (true) {
      v.arr.push_back(parse_value());
      skip_ws();
      char c = get();
      if (c == ']') break;
      if (c != ',') throw std::runtime_error("expected ',' or ']'");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = get();
      if (c == '"') break;
      if (c == '\\') {
        char e = get();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = get();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                throw std::runtime_error("bad \\u escape");
              }
            }
            // The writers only emit ASCII control characters this way.
            out.push_back(static_cast<char>(code & 0x7F));
            break;
          }
          default: throw std::runtime_error("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        throw std::runtime_error("raw control character in string");
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.b = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.b = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  JsonValue parse_null() {
    if (s_.compare(pos_, 4, "null") != 0) {
      throw std::runtime_error("bad literal");
    }
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') get();
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    // strtod, not std::stod: stod throws out_of_range whenever strtod sets
    // ERANGE, which includes *underflow* — it would reject perfectly valid
    // subnormal literals like 5e-324 that JsonWriter's %.17g emits. strtod
    // itself already returns the right value for those (and +-HUGE_VAL on
    // genuine overflow, the closest double to what the text meant).
    const std::string text = s_.substr(start, pos_ - start);
    char* end = nullptr;
    v.num = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') {
      throw std::runtime_error("bad number");
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

JsonValue json_parse(const std::string& text) {
  return Parser(text).parse_document();
}

JsonValue json_parse_file(const std::string& path) {
  StatusOr<JsonValue> v = json_try_parse_file(path);
  v.status().throw_if_error();
  return std::move(v.value());
}

StatusOr<JsonValue> json_try_parse(const std::string& text) {
  try {
    return Parser(text).parse_document();
  } catch (const std::exception& e) {
    return Status(StatusCode::kCorruption,
                  std::string("json parse error: ") + e.what());
  }
}

StatusOr<JsonValue> json_try_parse_file(const std::string& path) {
  if (fault_fire("json.open")) {
    return Status(StatusCode::kIoError, "injected open failure for " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status(StatusCode::kNotFound,
                  "json_parse_file: cannot open " + path);
  }
  std::string text;
  char buf[1 << 14];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0 || fault_fire("json.read");
  std::fclose(f);
  if (read_error) {
    return Status(StatusCode::kIoError,
                  "json_parse_file: read error in " + path);
  }
  StatusOr<JsonValue> v = json_try_parse(text);
  if (!v.ok()) {
    return Status(v.status().code(), v.status().message() + " in " + path);
  }
  return v;
}

}  // namespace odq::util
