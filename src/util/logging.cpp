#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace odq::util {
namespace {

std::atomic<int> g_level{-1};  // -1: uninitialized
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

int init_level_from_env() {
  const char* env = std::getenv("ODQ_LOG_LEVEL");
  LogLevel level = env != nullptr ? parse_log_level(env) : LogLevel::kInfo;
  return static_cast<int>(level);
}

}  // namespace

LogLevel parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

LogLevel log_level() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = init_level_from_env();
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lvl);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const char* file, int line, const char* fmt,
                 ...) {
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;

  char body[2048];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);

  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_name(level), base, line, body);
}

}  // namespace odq::util
