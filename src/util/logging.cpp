#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace odq::util {
namespace {

std::atomic<int> g_level{-1};  // -1: uninitialized

// Monotonic seconds since the first logging call, shared by all threads.
double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

// Compact per-process thread id (0, 1, 2, ... in first-log order) — far
// easier to correlate across lines than pthread handles.
unsigned log_thread_id() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

int init_level_from_env() {
  const char* env = std::getenv("ODQ_LOG_LEVEL");
  LogLevel level = env != nullptr ? parse_log_level(env) : LogLevel::kInfo;
  return static_cast<int>(level);
}

}  // namespace

LogLevel parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

LogLevel log_level() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = init_level_from_env();
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lvl);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const char* file, int line, const char* fmt,
                 ...) {
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;

  char body[2048];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);

  // Format the whole line into one buffer and emit it with a single
  // fwrite: POSIX stdio locks the stream per call, so concurrent
  // log_message calls can never interleave within a line.
  char full[2304];
  const int len =
      std::snprintf(full, sizeof(full), "[%12.6f t%02u %s %s:%d] %s\n",
                    monotonic_seconds(), log_thread_id(), level_name(level),
                    base, line, body);
  if (len > 0) {
    std::size_t n = static_cast<std::size_t>(len);
    if (n >= sizeof(full)) {  // truncated: keep the trailing newline
      n = sizeof(full) - 1;
      full[n - 1] = '\n';
    }
    std::fwrite(full, 1, n, stderr);
  }
}

}  // namespace odq::util
