#include "util/crc32.hpp"

#include <array>

namespace odq::util {

namespace {

// Reflected CRC-32 table for polynomial 0xEDB88320, built once at first use.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFU; }

std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& table = crc_table();
  for (std::size_t i = 0; i < len; ++i) {
    state = table[(state ^ p[i]) & 0xFFU] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFU; }

std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_final(crc32_update(crc32_init(), data, len));
}

}  // namespace odq::util
