// Deterministic fault injection for the I/O boundaries.
//
// Production code brackets each failure-capable operation with a named
// *site* check:
//
//   if (util::fault_fire("ckpt.write")) return io_error(...);
//   if (std::fwrite(...) != n)          return io_error(...);
//
// Sites are armed by the ODQ_FAULT environment variable (read on first use)
// or fault_configure() in tests:
//
//   ODQ_FAULT=<site>:<nth>[,<site>:<nth>...]
//
// An armed site fires on exactly its nth occurrence (1-based) and never
// again until the counters are reset — so the same spec produces the same
// failure point on every run. Occurrence counting is a single process-wide
// sequence per site (guarded by a mutex), which keeps the failure point
// deterministic regardless of thread-pool size: concurrent callers race for
// *which* call observes the nth slot, but exactly one of them fires.
//
// Cost discipline matches obs: when no spec is configured, fault_fire() is
// one relaxed atomic load and a branch. Sites live on open/read/write paths
// only — never inside MAC loops.
//
// The site inventory lives in docs/robustness.md.
#pragma once

#include <cstdint>
#include <string>

namespace odq::util {

// True when a non-empty fault spec is armed. Initialized from ODQ_FAULT on
// first query; one relaxed atomic load afterwards.
bool fault_injection_enabled();

// (Re)arm from a spec string ("" disarms). Replaces any previous spec and
// zeroes every occurrence counter. Malformed entries (no ':', nth < 1) are
// ignored with a warning on stderr rather than aborting the process — a bad
// ODQ_FAULT must never take down a serving binary.
void fault_configure(const std::string& spec);

// Count this occurrence of `site`; true when it is the armed nth occurrence.
bool fault_fire(const char* site);

// Zero every occurrence counter, keeping the armed spec (test helper: rerun
// the same scenario and the fault fires at the same point again).
void fault_reset_counters();

// Occurrences of `site` counted since the last reset (0 when never hit or
// when injection is disabled). Test/diagnostic helper.
std::int64_t fault_site_hits(const std::string& site);

}  // namespace odq::util
