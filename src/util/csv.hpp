// Tiny CSV writer for experiment outputs. Benches print human-readable rows
// to stdout and optionally mirror them to CSV files for plotting.
//
// Two error styles, matching docs/robustness.md: the throwing constructor
// for bench/one-shot callers, and Status-returning open()/finish() for
// serving-facing tools that must report failures (full disk, injected
// faults) without dying. ofstream buffers rows, so write failures surface
// at finish(); callers that skip finish() keep the legacy fire-and-forget
// behavior.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace odq::util {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  // A no-op writer (used when the caller did not request CSV output).
  CsvWriter() = default;

  // Non-throwing form of the constructor; kIoError when the file cannot be
  // opened or the header row fails to write.
  Status open(const std::string& path,
              const std::vector<std::string>& header);

  // Flush and report any buffered write failure (ofstream swallows short
  // writes until the buffer drains). Idempotent; a no-op writer is OK.
  Status finish();

  bool is_open() const { return out_.is_open(); }

  template <typename... Ts>
  void row(const Ts&... fields) {
    if (!out_.is_open()) return;
    std::ostringstream line;
    bool first = true;
    ((append_field(line, fields, first), first = false), ...);
    out_ << line.str() << '\n';
  }

 private:
  template <typename T>
  static void append_field(std::ostringstream& line, const T& value,
                           bool first) {
    if (!first) line << ',';
    line << value;
  }

  std::string path_;
  std::ofstream out_;
};

}  // namespace odq::util
