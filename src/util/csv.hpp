// Tiny CSV writer for experiment outputs. Benches print human-readable rows
// to stdout and optionally mirror them to CSV files for plotting.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace odq::util {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  // A no-op writer (used when the caller did not request CSV output).
  CsvWriter() = default;

  bool is_open() const { return out_.is_open(); }

  template <typename... Ts>
  void row(const Ts&... fields) {
    if (!out_.is_open()) return;
    std::ostringstream line;
    bool first = true;
    ((append_field(line, fields, first), first = false), ...);
    out_ << line.str() << '\n';
  }

 private:
  template <typename T>
  static void append_field(std::ostringstream& line, const T& value,
                           bool first) {
    if (!first) line << ',';
    line << value;
  }

  std::ofstream out_;
};

}  // namespace odq::util
