// Status / StatusOr<T>: typed error propagation for the I/O boundaries.
//
// The compute paths keep throwing (std::invalid_argument on programmer
// errors) — exceptions are the right tool when the caller cannot recover.
// Serving-facing boundaries (checkpoint load, report parsing, CSV output)
// instead return a Status so callers can distinguish *why* an operation
// failed (missing file vs corrupt payload vs short write) and keep running.
// docs/robustness.md documents the conventions; the bridge back to the
// throwing world is Status::throw_if_error().
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace odq::util {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,    // caller passed something unusable (bad spec, bad flag)
  kNotFound,           // file or key does not exist
  kIoError,            // open/read/write/rename failed or came up short
  kCorruption,          // payload present but fails validation (CRC, parse)
  kFailedPrecondition,  // state mismatch (wrong architecture, wrong version)
  kUnavailable,         // transient refusal (queue full, engine shutting down)
  kResourceExhausted,   // per-tenant quota or admission limit hit
  kDeadlineExceeded     // request deadline passed before completion
};

// Stable lowercase name for a code ("corruption", ...). Never nullptr.
const char* status_code_name(StatusCode code);

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "corruption: bad payload crc in m.bin" (or "ok").
  std::string to_string() const;

  // Bridge to throwing APIs: no-op when ok, std::runtime_error otherwise.
  void throw_if_error() const {
    if (!ok()) throw std::runtime_error(to_string());
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// A Status or a value. Accessing value() on an error state throws the
// error's to_string() — the same bridge discipline as throw_if_error().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status(StatusCode::kInvalidArgument,
                       "StatusOr constructed from OK status without a value");
    }
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    status_.throw_if_error();
    return *value_;
  }
  const T& value() const {
    status_.throw_if_error();
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;  // OK iff value_ holds
  std::optional<T> value_;
};

}  // namespace odq::util
