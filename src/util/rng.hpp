// Deterministic, seedable random number generation.
//
// All randomness in the library flows through Rng so that experiments are
// reproducible run-to-run. The generator is xoshiro256** (public domain,
// Blackman & Vigna) seeded via SplitMix64.
#pragma once

#include <cstdint>
#include <limits>

namespace odq::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  float uniform_f(float lo, float hi) {
    return static_cast<float>(uniform(lo, hi));
  }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  int uniform_int(int lo, int hi_inclusive) {
    return lo + static_cast<int>(uniform_u64(
                    static_cast<std::uint64_t>(hi_inclusive - lo + 1)));
  }

  // Standard normal via Box-Muller (non-cached variant; adequate here).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  float normal_f(float mean, float stddev) {
    return static_cast<float>(normal(mean, stddev));
  }

  // Bernoulli with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  // UniformRandomBitGenerator interface so Rng works with <algorithm>.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace odq::util
