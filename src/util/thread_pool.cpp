#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace odq::util {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::in_worker() { return t_in_worker; }

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("ODQ_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return static_cast<std::size_t>(0);
  }());
  return pool;
}

void parallel_for_dispatch(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& body,
    std::int64_t grain) {
  // The template fast path already handled n <= 0, nested calls, single
  // worker, and n <= grain — this only runs when work really fans out.
  ThreadPool& pool = ThreadPool::global();
  const auto workers = static_cast<std::int64_t>(pool.size());
  const std::int64_t chunks = std::min(workers * 4, (n + grain - 1) / grain);
  const std::int64_t step = (n + chunks - 1) / chunks;
  for (std::int64_t begin = 0; begin < n; begin += step) {
    const std::int64_t end = std::min(begin + step, n);
    pool.submit([&body, begin, end] { body(begin, end); });
  }
  pool.wait_idle();
}

}  // namespace odq::util
