#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace odq::util {

namespace {
thread_local bool t_in_worker = false;

// Observability handles, resolved once. Recording is a no-op (one relaxed
// load inside the metric) while ODQ_METRICS is off.
obs::Counter& tasks_counter() {
  static obs::Counter& c = obs::counter("threadpool.tasks");
  return c;
}
obs::Counter& busy_us_counter() {
  static obs::Counter& c = obs::counter("threadpool.worker_busy_us");
  return c;
}
obs::Distribution& queue_wait_dist() {
  static obs::Distribution& d =
      obs::distribution("threadpool.queue_wait_us", 0.0, 10000.0, 64);
  return d;
}

bool observing() { return obs::metrics_enabled() || obs::trace_enabled(); }

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const double enqueue_us = observing() ? obs::trace_now_us() : 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(Task{std::move(task), enqueue_us});
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

bool ThreadPool::in_worker() { return t_in_worker; }

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    if (observing()) {
      const double start_us = obs::trace_now_us();
      if (task.enqueue_us > 0.0) {
        queue_wait_dist().record(start_us - task.enqueue_us);
      }
      task.fn();
      const double end_us = obs::trace_now_us();
      tasks_counter().increment();
      busy_us_counter().add(static_cast<std::int64_t>(end_us - start_us));
      obs::trace_record("pool.task", start_us, end_us - start_us);
    } else {
      task.fn();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("ODQ_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return static_cast<std::size_t>(0);
  }());
  return pool;
}

void parallel_for_dispatch(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& body,
    std::int64_t grain) {
  // The template fast path already handled n <= 0, nested calls, single
  // worker, and n <= grain — this only runs when work really fans out.
  obs::TraceSpan span("pool.parallel_for");
  span.arg("n", n);
  ThreadPool& pool = ThreadPool::global();
  const auto workers = static_cast<std::int64_t>(pool.size());
  const std::int64_t chunks = std::min(workers * 4, (n + grain - 1) / grain);
  const std::int64_t step = (n + chunks - 1) / chunks;
  for (std::int64_t begin = 0; begin < n; begin += step) {
    const std::int64_t end = std::min(begin + step, n);
    pool.submit([&body, begin, end] { body(begin, end); });
  }
  pool.wait_idle();
}

}  // namespace odq::util
