#include "util/status.hpp"

namespace odq::util {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kCorruption: return "corruption";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string s = status_code_name(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace odq::util
