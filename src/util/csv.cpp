#include "util/csv.hpp"

#include <stdexcept>

namespace odq::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header) {
  out_.open(path);
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  bool first = true;
  for (const auto& h : header) {
    if (!first) out_ << ',';
    out_ << h;
    first = false;
  }
  out_ << '\n';
}

}  // namespace odq::util
