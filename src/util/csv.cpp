#include "util/csv.hpp"

#include <stdexcept>

#include "util/fault.hpp"

namespace odq::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header) {
  open(path, header).throw_if_error();
}

Status CsvWriter::open(const std::string& path,
                       const std::vector<std::string>& header) {
  path_ = path;
  if (fault_fire("csv.open")) {
    return {StatusCode::kIoError, "injected open failure for " + path};
  }
  out_.open(path);
  if (!out_) {
    return {StatusCode::kIoError, "CsvWriter: cannot open " + path};
  }
  bool first = true;
  for (const auto& h : header) {
    if (!first) out_ << ',';
    out_ << h;
    first = false;
  }
  out_ << '\n';
  if (!out_) {
    return {StatusCode::kIoError, "CsvWriter: cannot write header to " + path};
  }
  return Status::Ok();
}

Status CsvWriter::finish() {
  if (!out_.is_open()) return Status::Ok();
  if (fault_fire("csv.write")) {
    out_.setstate(std::ios::badbit);
  }
  out_.flush();
  const bool failed = !out_;
  out_.close();
  if (failed) {
    return {StatusCode::kIoError, "CsvWriter: write failure on " + path_};
  }
  return Status::Ok();
}

}  // namespace odq::util
