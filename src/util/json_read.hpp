// Minimal recursive-descent JSON reader, the counterpart of JsonWriter.
// Consumed by the observability tools (odq_bench_diff compares BENCH_*.json
// documents, odq_fidelity re-reads its own reports in tests) and by the obs
// tests to validate emitted documents without adding a JSON dependency.
// Supports the full grammar the writers produce (objects, arrays, strings
// with \uXXXX escapes, numbers, bools, null). Parse errors throw
// std::runtime_error; the json_try_* forms return a typed util::Status
// instead (corruption for malformed documents, not-found/io for file
// problems) so tools can report and keep running. Nesting is capped at
// kJsonMaxDepth levels — adversarial input cannot overflow the stack.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace odq::util {

// Maximum container nesting the parser accepts; deeper documents are a
// parse error, not a stack overflow.
inline constexpr std::size_t kJsonMaxDepth = 256;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
  // Object member access; throws std::runtime_error when missing.
  const JsonValue& at(const std::string& key) const;
};

// Parse a complete document (trailing garbage is an error).
JsonValue json_parse(const std::string& text);

// json_parse over a whole file; throws std::runtime_error when the file
// cannot be read.
JsonValue json_parse_file(const std::string& path);

// Non-throwing forms: kCorruption on parse errors (message includes the
// parser's context), kNotFound / kIoError on file problems.
StatusOr<JsonValue> json_try_parse(const std::string& text);
StatusOr<JsonValue> json_try_parse_file(const std::string& path);

}  // namespace odq::util
