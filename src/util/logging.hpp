// Minimal leveled logger.
//
// Usage:
//   ODQ_LOG_INFO("trained %d epochs, loss=%.4f", epochs, loss);
//
// The level is controlled globally (default Info) or via the ODQ_LOG_LEVEL
// environment variable ("trace", "debug", "info", "warn", "error", "off").
#pragma once

#include <cstdarg>
#include <string>

namespace odq::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

// Global minimum level. Messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

// Parses a level name ("info", "DEBUG", ...). Unknown names map to kInfo.
LogLevel parse_log_level(const std::string& name);

// printf-style log sink (stderr). Prefer the macros below.
void log_message(LogLevel level, const char* file, int line, const char* fmt,
                 ...) __attribute__((format(printf, 4, 5)));

}  // namespace odq::util

#define ODQ_LOG_AT(lvl, ...)                                              \
  do {                                                                    \
    if (static_cast<int>(lvl) >=                                          \
        static_cast<int>(::odq::util::log_level())) {                     \
      ::odq::util::log_message(lvl, __FILE__, __LINE__, __VA_ARGS__);     \
    }                                                                     \
  } while (0)

#define ODQ_LOG_TRACE(...) ODQ_LOG_AT(::odq::util::LogLevel::kTrace, __VA_ARGS__)
#define ODQ_LOG_DEBUG(...) ODQ_LOG_AT(::odq::util::LogLevel::kDebug, __VA_ARGS__)
#define ODQ_LOG_INFO(...) ODQ_LOG_AT(::odq::util::LogLevel::kInfo, __VA_ARGS__)
#define ODQ_LOG_WARN(...) ODQ_LOG_AT(::odq::util::LogLevel::kWarn, __VA_ARGS__)
#define ODQ_LOG_ERROR(...) ODQ_LOG_AT(::odq::util::LogLevel::kError, __VA_ARGS__)
