#include "util/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace odq::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::comma_for_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_.push_back(',');
    has_elem_.back() = true;
  }
}

void JsonWriter::open(char c) {
  comma_for_value();
  out_.push_back(c);
  has_elem_.push_back(false);
}

void JsonWriter::close(char c) {
  assert(!has_elem_.empty());
  has_elem_.pop_back();
  out_.push_back(c);
}

void JsonWriter::begin_object() { open('{'); }
void JsonWriter::end_object() { close('}'); }
void JsonWriter::begin_array() { open('['); }
void JsonWriter::end_array() { close(']'); }

void JsonWriter::key(const std::string& k) {
  assert(!after_key_);
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_.push_back(',');
    has_elem_.back() = true;
  }
  out_ += json_escape(k);
  out_.push_back(':');
  after_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  comma_for_value();
  out_ += json_escape(v);
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  comma_for_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
}

void JsonWriter::value(std::int64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::value_null() {
  comma_for_value();
  out_ += "null";
}

}  // namespace odq::util
