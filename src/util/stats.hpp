// Streaming statistics, percentiles and fixed-bin histograms used by the
// experiment harnesses (per-layer sensitivity distributions, precision-loss
// summaries, PE idleness breakdowns, ...).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace odq::util {

// Welford streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile of a sample (linear interpolation between order statistics).
// q in [0, 1]. The input is copied; the original order is preserved.
double percentile(std::vector<double> values, double q);
double percentile(std::vector<float> values, double q);

// Fixed-width histogram over [lo, hi). Out-of-range samples clamp to the
// first/last bin so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_n(double x, std::size_t n);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_[bin]; }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  // Fraction of samples in the bin; 0 when the histogram is empty.
  double fraction(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace odq::util
