// A small work-stealing-free thread pool plus a chunked parallel_for.
//
// The library is written to scale with hardware threads but remains fully
// correct (and overhead-free on the hot path) when only one core is
// available: with pool size 1 parallel_for runs inline on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace odq::util {

class ThreadPool {
 public:
  // threads == 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  // Block until every submitted task has finished.
  void wait_idle();

  // Process-wide pool, sized from ODQ_THREADS env var or hardware
  // concurrency. Constructed on first use.
  static ThreadPool& global();

  // True when the calling thread is one of the global pool's workers.
  // parallel_for uses this to run nested calls inline: a worker blocking in
  // wait_idle() would never see in_flight_ reach zero (its own task is still
  // counted), so nesting must degrade to serial execution instead.
  static bool in_worker();

 private:
  // A queued task plus its enqueue timestamp (µs on the obs trace clock;
  // 0 when observability is off) so workers can report queue-wait time.
  struct Task {
    std::function<void()> fn;
    double enqueue_us = 0.0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

// Out-of-line slow path for parallel_for: chunk [0, n) onto the pool.
// Callers should use the parallel_for template below, which only pays for
// the std::function type erasure when work is actually dispatched.
void parallel_for_dispatch(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& body,
    std::int64_t grain);

// Splits [0, n) into chunks and runs body(begin, end) on the global pool.
// With a single worker (or tiny n) the body runs inline on the caller — a
// direct call, so the compiler can inline and optimize the loop body exactly
// as if it were written in place (type-erasing the body through
// std::function on a 1-core host cost ~25% on the ODQ hot loop). Nested
// calls (body itself calling parallel_for) also run inline on the worker.
// Concurrent top-level callers are safe: each caller's wait only returns
// once the pool drains, which over-waits but never deadlocks.
// The body must be safe to run concurrently on disjoint ranges.
template <typename Body>
void parallel_for(std::int64_t n, Body&& body, std::int64_t grain = 1024) {
  if (n <= 0) return;
  if (ThreadPool::in_worker() || ThreadPool::global().size() <= 1 ||
      n <= grain) {
    body(0, n);
    return;
  }
  parallel_for_dispatch(
      n, std::function<void(std::int64_t, std::int64_t)>(body), grain);
}

}  // namespace odq::util
