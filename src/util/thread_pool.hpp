// A small work-stealing-free thread pool plus a chunked parallel_for.
//
// The library is written to scale with hardware threads but remains fully
// correct (and overhead-free on the hot path) when only one core is
// available: with pool size 1 parallel_for runs inline on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace odq::util {

class ThreadPool {
 public:
  // threads == 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  // Block until every submitted task has finished.
  void wait_idle();

  // Process-wide pool, sized from ODQ_THREADS env var or hardware
  // concurrency. Constructed on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

// Splits [0, n) into chunks and runs body(begin, end) on the global pool.
// With a single worker (or tiny n) the body runs inline on the caller.
// The body must be safe to run concurrently on disjoint ranges.
void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t, std::int64_t)>& body,
                  std::int64_t grain = 1024);

}  // namespace odq::util
