#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace odq::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double percentile(std::vector<float> values, double q) {
  std::vector<double> d(values.begin(), values.end());
  return percentile(std::move(d), q);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need bins > 0 and hi > lo");
  }
}

void Histogram::add(double x) { add_n(x, 1); }

void Histogram::add_n(double x, std::size_t n) {
  auto bin = static_cast<long>(std::floor((x - lo_) / width_));
  bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += n;
  total_ += n;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

}  // namespace odq::util
