// Minimal streaming JSON writer shared by the observability subsystem
// (Chrome-trace flush, metrics snapshots), the bench --json output and the
// odq_profile report. Handles comma placement and string escaping; the
// caller is responsible for structural balance (asserted in debug builds).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace odq::util {

class JsonWriter {
 public:
  JsonWriter() = default;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Object member key; must be followed by exactly one value/container.
  void key(const std::string& k);

  void value(const std::string& v);
  void value(const char* v);
  void value(double v);  // non-finite values are emitted as null
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void value_null();

  // key + scalar value in one call.
  template <typename T>
  void kv(const std::string& k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma_for_value();
  void open(char c);
  void close(char c);

  std::string out_;
  // One frame per open container: true once the first element was written.
  std::vector<bool> has_elem_;
  bool after_key_ = false;
};

// Escape `s` into a double-quoted JSON string literal.
std::string json_escape(const std::string& s);

}  // namespace odq::util
