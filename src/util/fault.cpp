#include "util/fault.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace odq::util {

namespace {

std::atomic<int> g_fault_enabled{-1};  // -1: read ODQ_FAULT on first use

struct FaultState {
  std::mutex mutex;
  std::map<std::string, std::int64_t> trigger;  // site -> nth (1-based)
  std::map<std::string, std::int64_t> hits;     // site -> occurrences
};

// Leaked on purpose: sites may be checked during static destruction (trace
// flush at exit writes files through the same I/O helpers).
FaultState& state() {
  static FaultState* s = new FaultState;
  return *s;
}

// Parse "<site>:<nth>[,...]" into the trigger map. Bad entries warn and are
// skipped; injection stays usable for the well-formed remainder.
void parse_spec_locked(FaultState& s, const std::string& spec) {
  s.trigger.clear();
  s.hits.clear();
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t colon = entry.rfind(':');
    const std::string site = colon == std::string::npos
                                 ? std::string()
                                 : entry.substr(0, colon);
    const long long nth =
        colon == std::string::npos
            ? 0
            : std::atoll(entry.c_str() + colon + 1);
    if (site.empty() || nth < 1) {
      std::fprintf(stderr,
                   "odq fault: ignoring malformed ODQ_FAULT entry '%s' "
                   "(want <site>:<nth>, nth >= 1)\n",
                   entry.c_str());
      continue;
    }
    s.trigger[site] = nth;
  }
}

}  // namespace

bool fault_injection_enabled() {
  int v = g_fault_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("ODQ_FAULT");
    const std::string spec = env != nullptr ? env : "";
    if (!spec.empty()) {
      FaultState& s = state();
      std::lock_guard<std::mutex> lock(s.mutex);
      parse_spec_locked(s, spec);
      v = s.trigger.empty() ? 0 : 1;
    } else {
      v = 0;
    }
    g_fault_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void fault_configure(const std::string& spec) {
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  parse_spec_locked(s, spec);
  g_fault_enabled.store(s.trigger.empty() ? 0 : 1,
                        std::memory_order_relaxed);
}

bool fault_fire(const char* site) {
  if (!fault_injection_enabled()) return false;
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const std::int64_t n = ++s.hits[site];
  const auto it = s.trigger.find(site);
  return it != s.trigger.end() && n == it->second;
}

void fault_reset_counters() {
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.hits.clear();
}

std::int64_t fault_site_hits(const std::string& site) {
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.hits.find(site);
  return it != s.hits.end() ? it->second : 0;
}

}  // namespace odq::util
