// CRC-32 (the zlib/PNG polynomial, reflected 0xEDB88320) for checkpoint
// payload integrity. Streaming interface so writers can checksum tensors as
// they go without assembling the payload in memory:
//
//   std::uint32_t c = crc32_init();
//   c = crc32_update(c, a.data(), a_bytes);
//   c = crc32_update(c, b.data(), b_bytes);
//   const std::uint32_t crc = crc32_final(c);
//
// crc32() is the one-shot convenience over the same state machine.
#pragma once

#include <cstddef>
#include <cstdint>

namespace odq::util {

std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t len);
std::uint32_t crc32_final(std::uint32_t state);

std::uint32_t crc32(const void* data, std::size_t len);

}  // namespace odq::util
