// Scalar reference kernels — the always-available fallback and the oracle
// every vector backend is differentially tested against.
//
// The 4-wide unroll mirrors the original gemm_conv_int inner loop (kp is a
// multiple of kKTile = 16, so there is never a tail); integer sums
// reassociate freely, so the unroll order is irrelevant to the result.
#include "simd/kernels.hpp"

namespace odq::simd {

namespace {

std::int32_t dot_i8_scalar(const std::int8_t* a, const std::int8_t* b,
                           std::int64_t kp) {
  std::int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::int64_t p = 0; p < kp; p += 4) {
    s0 += static_cast<std::int32_t>(a[p]) * b[p];
    s1 += static_cast<std::int32_t>(a[p + 1]) * b[p + 1];
    s2 += static_cast<std::int32_t>(a[p + 2]) * b[p + 2];
    s3 += static_cast<std::int32_t>(a[p + 3]) * b[p + 3];
  }
  return (s0 + s1) + (s2 + s3);
}

std::int64_t dot_i8_acc64_scalar(const std::int8_t* a, const std::int8_t* b,
                                 std::int64_t kp) {
  std::int64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::int64_t p = 0; p < kp; p += 4) {
    s0 += static_cast<std::int64_t>(a[p]) * b[p];
    s1 += static_cast<std::int64_t>(a[p + 1]) * b[p + 1];
    s2 += static_cast<std::int64_t>(a[p + 2]) * b[p + 2];
    s3 += static_cast<std::int64_t>(a[p + 3]) * b[p + 3];
  }
  return (s0 + s1) + (s2 + s3);
}

void dot_i8_split_scalar(const std::int8_t* ah, const std::int8_t* al,
                         const std::int8_t* bh, const std::int8_t* bl,
                         std::int64_t kp, std::int32_t* cross,
                         std::int32_t* low) {
  std::int32_t c = 0, l = 0;
  for (std::int64_t p = 0; p < kp; ++p) {
    const std::int32_t x_h = ah[p];
    const std::int32_t x_l = al[p];
    c += x_h * bl[p] + x_l * bh[p];
    l += x_l * bl[p];
  }
  *cross = c;
  *low = l;
}

constexpr Kernels kScalarKernels = {"scalar", dot_i8_scalar,
                                    dot_i8_acc64_scalar, dot_i8_split_scalar};

}  // namespace

const Kernels& scalar_kernels() { return kScalarKernels; }

}  // namespace odq::simd
