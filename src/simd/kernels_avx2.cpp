// AVX2 backend: widen-accumulate integer dot products over packed rows.
//
// This is the only TU in the library compiled with -mavx2 (per-source flag
// in src/CMakeLists.txt), so the rest of the binary stays plain x86-64 and
// dispatch.cpp gates entry on a runtime cpuid check. Without the flag the
// TU compiles to the nullptr stub at the bottom.
//
// Kernel shape, per kKTile (16-lane) block:
//   1. load 16 int8 from each operand,
//   2. sign-extend to 16 x int16 (_mm256_cvtepi8_epi16) — two digits now
//      ride each 32-bit madd input pair,
//   3. _mm256_madd_epi16: multiply int16 lanes, add adjacent pairs into
//      8 x int32 — exact, because |int8*int8| <= 2^14 and a pair sum
//      <= 2^15 (static_assert in kernels.hpp), so the signed-saturation
//      edge of the maddubs-style tricks never applies,
//   4. accumulate the int32 lanes (or widen each block's lanes to int64 for
//      the acc64 kernel, which must stay exact past int32 headroom).
// Integer addition is associative, so the lane-parallel accumulation is
// bit-identical to the scalar reference for every input.
#include "simd/kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace odq::simd {

namespace {

inline __m256i madd_block(const std::int8_t* a, const std::int8_t* b) {
  const __m256i a16 = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(a)));
  const __m256i b16 = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(b)));
  return _mm256_madd_epi16(a16, b16);
}

inline std::int32_t hsum_epi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

std::int32_t dot_i8_avx2(const std::int8_t* a, const std::int8_t* b,
                         std::int64_t kp) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::int64_t p = 0;
  for (; p + 2 * kKTileLanes <= kp; p += 2 * kKTileLanes) {
    acc0 = _mm256_add_epi32(acc0, madd_block(a + p, b + p));
    acc1 = _mm256_add_epi32(acc1, madd_block(a + p + kKTileLanes,
                                             b + p + kKTileLanes));
  }
  if (p < kp) acc0 = _mm256_add_epi32(acc0, madd_block(a + p, b + p));
  return hsum_epi32(_mm256_add_epi32(acc0, acc1));
}

std::int64_t dot_i8_acc64_avx2(const std::int8_t* a, const std::int8_t* b,
                               std::int64_t kp) {
  __m256i acc = _mm256_setzero_si256();  // 4 x int64
  for (std::int64_t p = 0; p < kp; p += kKTileLanes) {
    // Each block's 8 int32 partial sums are exact (<= 2^15 each); widening
    // them into int64 lanes *every block* keeps the running sum exact even
    // where an int32 accumulation would wrap.
    const __m256i s32 = madd_block(a + p, b + p);
    acc = _mm256_add_epi64(
        acc, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(s32)));
    acc = _mm256_add_epi64(
        acc, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(s32, 1)));
  }
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                  _mm256_extracti128_si256(acc, 1));
  return _mm_cvtsi128_si64(s) +
         _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s));
}

void dot_i8_split_avx2(const std::int8_t* ah, const std::int8_t* al,
                       const std::int8_t* bh, const std::int8_t* bl,
                       std::int64_t kp, std::int32_t* cross,
                       std::int32_t* low) {
  __m256i acc_cross = _mm256_setzero_si256();
  __m256i acc_low = _mm256_setzero_si256();
  for (std::int64_t p = 0; p < kp; p += kKTileLanes) {
    const __m256i vah = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ah + p)));
    const __m256i val = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(al + p)));
    const __m256i vbh = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bh + p)));
    const __m256i vbl = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bl + p)));
    acc_cross = _mm256_add_epi32(acc_cross, _mm256_madd_epi16(vah, vbl));
    acc_cross = _mm256_add_epi32(acc_cross, _mm256_madd_epi16(val, vbh));
    acc_low = _mm256_add_epi32(acc_low, _mm256_madd_epi16(val, vbl));
  }
  *cross = hsum_epi32(acc_cross);
  *low = hsum_epi32(acc_low);
}

constexpr Kernels kAvx2Kernels = {"avx2", dot_i8_avx2, dot_i8_acc64_avx2,
                                  dot_i8_split_avx2};

}  // namespace

const Kernels* avx2_kernels() { return &kAvx2Kernels; }

}  // namespace odq::simd

#else  // !__AVX2__: TU built without the ISA (non-x86 target, or a compiler
       // without -mavx2) — report "not compiled in".

namespace odq::simd {
const Kernels* avx2_kernels() { return nullptr; }
}  // namespace odq::simd

#endif
