// NEON (AArch64) backend: the same widen-accumulate scheme as the AVX2
// kernels, built only where __ARM_NEON is baseline (no per-TU flag needed
// on AArch64). On every other target this TU is the nullptr stub and the
// `simd`-labelled tests skip the backend cleanly.
//
// Per kKTile (16-lane) block:
//   1. vld1q_s8 both operands,
//   2. vmull_s8 low/high halves: exact 8 x int16 products (|p| <= 2^14),
//   3. vpadalq_s16: pairwise-add the int16 products into 4 x int32 lanes —
//      each block adds at most 4 * 2^14 = 2^16 per lane, so the int32
//      accumulator absorbs far more depth than any layer reaches (the
//      kMaxDotBlocks budget in kernels.hpp is the conservative bound),
//   4. vaddvq_s32 to reduce (or vpadalq_s32 into int64x2 for acc64).
#include "simd/kernels.hpp"

#if defined(__ARM_NEON) && defined(__aarch64__)

#include <arm_neon.h>

namespace odq::simd {

namespace {

// 4 x int32 of exact pairwise sums for one 16-lane block.
inline int32x4_t block_sums(const std::int8_t* a, const std::int8_t* b) {
  const int8x16_t va = vld1q_s8(a);
  const int8x16_t vb = vld1q_s8(b);
  const int16x8_t lo = vmull_s8(vget_low_s8(va), vget_low_s8(vb));
  const int16x8_t hi = vmull_s8(vget_high_s8(va), vget_high_s8(vb));
  return vaddq_s32(vpaddlq_s16(lo), vpaddlq_s16(hi));
}

std::int32_t dot_i8_neon(const std::int8_t* a, const std::int8_t* b,
                         std::int64_t kp) {
  int32x4_t acc = vdupq_n_s32(0);
  for (std::int64_t p = 0; p < kp; p += kKTileLanes) {
    acc = vaddq_s32(acc, block_sums(a + p, b + p));
  }
  return vaddvq_s32(acc);
}

std::int64_t dot_i8_acc64_neon(const std::int8_t* a, const std::int8_t* b,
                               std::int64_t kp) {
  int64x2_t acc = vdupq_n_s64(0);
  for (std::int64_t p = 0; p < kp; p += kKTileLanes) {
    // Widen each block's exact int32 sums into int64 lanes so the running
    // sum stays exact past int32 headroom.
    acc = vpadalq_s32(acc, block_sums(a + p, b + p));
  }
  return vaddvq_s64(acc);
}

void dot_i8_split_neon(const std::int8_t* ah, const std::int8_t* al,
                       const std::int8_t* bh, const std::int8_t* bl,
                       std::int64_t kp, std::int32_t* cross,
                       std::int32_t* low) {
  int32x4_t acc_cross = vdupq_n_s32(0);
  int32x4_t acc_low = vdupq_n_s32(0);
  for (std::int64_t p = 0; p < kp; p += kKTileLanes) {
    acc_cross = vaddq_s32(acc_cross, block_sums(ah + p, bl + p));
    acc_cross = vaddq_s32(acc_cross, block_sums(al + p, bh + p));
    acc_low = vaddq_s32(acc_low, block_sums(al + p, bl + p));
  }
  *cross = vaddvq_s32(acc_cross);
  *low = vaddvq_s32(acc_low);
}

constexpr Kernels kNeonKernels = {"neon", dot_i8_neon, dot_i8_acc64_neon,
                                  dot_i8_split_neon};

}  // namespace

const Kernels* neon_kernels() { return &kNeonKernels; }

}  // namespace odq::simd

#else  // not an AArch64+NEON build.

namespace odq::simd {
const Kernels* neon_kernels() { return nullptr; }
}  // namespace odq::simd

#endif
