// Runtime CPU-feature dispatch for the bit-packed SIMD kernels.
//
// Backend selection, in order:
//   1. ODQ_SIMD=scalar|avx2|neon forces a backend (read once, first use).
//      Forcing an unavailable backend logs a warning and falls back to
//      scalar so CI legs behave deterministically on any runner; an unknown
//      value logs a warning and auto-selects.
//   2. Otherwise the best available backend wins: avx2 > neon > scalar.
//
// "Available" means the kernels TU was compiled with the ISA (per-TU
// -mavx2; __ARM_NEON) *and* the running CPU reports the feature, so a
// binary built with the AVX2 TU still runs on plain x86-64 — it just
// dispatches to scalar there.
//
// Tests force backends in-process via set_backend() (the differential
// suites run the same case once per available backend and skip the rest);
// the selection is a single atomic, safe to flip between GEMM calls from
// any thread.
#pragma once

#include "simd/kernels.hpp"

namespace odq::simd {

enum class Backend { kScalar = 0, kAvx2 = 1, kNeon = 2 };

inline constexpr Backend kAllBackends[] = {Backend::kScalar, Backend::kAvx2,
                                           Backend::kNeon};

const char* backend_name(Backend b);

// Compiled in AND supported by the running CPU.
bool backend_available(Backend b);

// The best available backend (avx2 > neon > scalar).
Backend best_backend();

// The backend hot loops will use right now (resolves ODQ_SIMD on first use).
Backend active_backend();

// Force a backend for this process (tests, benches). Returns false — and
// changes nothing — when the backend is unavailable here.
bool set_backend(Backend b);

// Kernel table of the active backend; fetch once per GEMM call.
const Kernels& active_kernels();

}  // namespace odq::simd
