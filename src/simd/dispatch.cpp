#include "simd/dispatch.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "util/logging.hpp"

namespace odq::simd {

namespace {

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// ODQ_SIMD resolution, run once. Unknown values and unavailable backends
// degrade with a warning instead of aborting: a forced CI leg must behave
// the same on every runner, and scalar is always a correct answer.
Backend resolve_initial() {
  const char* env = std::getenv("ODQ_SIMD");
  if (env != nullptr && *env != '\0') {
    std::string v(env);
    for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    Backend want = Backend::kScalar;
    bool known = true;
    if (v == "scalar") {
      want = Backend::kScalar;
    } else if (v == "avx2") {
      want = Backend::kAvx2;
    } else if (v == "neon") {
      want = Backend::kNeon;
    } else {
      known = false;
    }
    if (!known) {
      ODQ_LOG_WARN("simd: unknown ODQ_SIMD=%s (want scalar|avx2|neon); "
                   "auto-selecting %s",
                   env, backend_name(best_backend()));
      return best_backend();
    }
    if (!backend_available(want)) {
      ODQ_LOG_WARN("simd: ODQ_SIMD=%s forced but unavailable on this "
                   "CPU/build; falling back to scalar",
                   backend_name(want));
      return Backend::kScalar;
    }
    return want;
  }
  return best_backend();
}

// -1 = unresolved; otherwise a Backend value. A plain atomic (not
// call_once) so tests can re-point it with set_backend().
std::atomic<int> g_backend{-1};

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kNeon: return "neon";
  }
  return "?";
}

bool backend_available(Backend b) {
  switch (b) {
    case Backend::kScalar: return true;
    case Backend::kAvx2: return avx2_kernels() != nullptr && cpu_has_avx2();
    case Backend::kNeon: return neon_kernels() != nullptr;
  }
  return false;
}

Backend best_backend() {
  if (backend_available(Backend::kAvx2)) return Backend::kAvx2;
  if (backend_available(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

Backend active_backend() {
  int b = g_backend.load(std::memory_order_acquire);
  if (b < 0) {
    const Backend init = resolve_initial();
    int expected = -1;
    // First resolver wins; a concurrent set_backend() also wins — either
    // way the stored value is a valid, available backend.
    g_backend.compare_exchange_strong(expected, static_cast<int>(init),
                                      std::memory_order_acq_rel);
    b = g_backend.load(std::memory_order_acquire);
  }
  return static_cast<Backend>(b);
}

bool set_backend(Backend b) {
  if (!backend_available(b)) return false;
  g_backend.store(static_cast<int>(b), std::memory_order_release);
  return true;
}

const Kernels& active_kernels() {
  switch (active_backend()) {
    case Backend::kAvx2: return *avx2_kernels();
    case Backend::kNeon: return *neon_kernels();
    case Backend::kScalar: break;
  }
  return scalar_kernels();
}

}  // namespace odq::simd
