// Bit-exact SIMD dot-product kernels for the packed conv-GEMM core.
//
// Every kernel here computes an *integer* sum whose value is independent of
// accumulation order, so the scalar reference, the AVX2 backend, and the
// NEON backend are interchangeable bit-for-bit — the `simd`-labelled
// differential suite (tests/simd/) sweeps every lane-boundary shape across
// all available backends and asserts exactly that.
//
// Contract shared by all three entry points:
//   * `kp` is the padded depth of a packed row (gemm/packed.hpp): a multiple
//     of kKTile (16), so vector loops never handle a remainder and scalar
//     unrolls never need a tail.
//   * Operands are int8 digit planes or full int8 codes; products fit int16
//     (|a*b| <= 128*128 = 2^14) and the int32 accumulators have headroom for
//     any depth this library reaches (see kMaxDotBlocks below).
//   * Padding lanes (entries in [k, kp)) are zero in at least one operand,
//     so they contribute exact zeros — kernels multiply them unconditionally.
//
// The kernels are reached through the per-backend tables in dispatch.hpp;
// hot loops fetch the active table once per GEMM call, not per dot product.
#pragma once

#include <cstdint>

namespace odq::simd {

// Overflow budget, derived from the kKTile = 16 packing quantum: each
// 16-lane block contributes at most 2 products of |a|,|b| <= 128 per int32
// vector lane (the widen-to-int16 + pairwise-multiply-accumulate step every
// backend uses), so a lane stays exact for up to kMaxDotBlocks blocks.
inline constexpr std::int64_t kKTileLanes = 16;
inline constexpr std::int64_t kMaxLaneProduct = 128 * 128;  // |int8 * int8|
inline constexpr std::int64_t kMaxDotBlocks =
    ((std::int64_t{1} << 31) - 1) / (2 * kMaxLaneProduct);
static_assert(kMaxDotBlocks * 2 * kMaxLaneProduct <= (std::int64_t{1} << 31) - 1,
              "int32 vector lane must absorb kMaxDotBlocks kKTile blocks");
static_assert(2 * kMaxLaneProduct <= 32767 + 1,
              "a widened int16 product pair must not saturate a madd lane");

// Maximum packed depth any dot kernel accepts while the int32 accumulation
// stays exact (~1M taps; the largest layer in the model zoo is ~4.6k).
inline constexpr std::int64_t kMaxDotDepth = kMaxDotBlocks * kKTileLanes;

// sum_p a[p] * b[p] over kp int8 entries, exact in int32.
using DotI8Fn = std::int32_t (*)(const std::int8_t* a, const std::int8_t* b,
                                 std::int64_t kp);

// Same sum, exact in int64 regardless of int32 headroom: vector backends
// widen every kKTile block's int32 partial sums into int64 lanes, so this
// stays bit-identical to a scalar int64 accumulation even where an int32
// sum would wrap.
using DotI8Acc64Fn = std::int64_t (*)(const std::int8_t* a,
                                      const std::int8_t* b, std::int64_t kp);

// The Eq. (3) epilogue pair over four digit planes:
//   *cross = sum_p ah[p]*bl[p] + al[p]*bh[p]
//   *low   = sum_p al[p]*bl[p]
// (the caller folds the << low_bits into the cross term).
using DotI8SplitFn = void (*)(const std::int8_t* ah, const std::int8_t* al,
                              const std::int8_t* bh, const std::int8_t* bl,
                              std::int64_t kp, std::int32_t* cross,
                              std::int32_t* low);

// One backend's kernel table.
struct Kernels {
  const char* name;
  DotI8Fn dot_i8;
  DotI8Acc64Fn dot_i8_acc64;
  DotI8SplitFn dot_i8_split;
};

// The always-available scalar reference (kernels_scalar.cpp).
const Kernels& scalar_kernels();

// Vector backends. Each returns nullptr when its TU was not built with the
// matching ISA (kernels_avx2.cpp is the only TU compiled with -mavx2, so a
// plain x86-64 binary still loads; kernels_neon.cpp needs __ARM_NEON).
// Availability at runtime additionally requires CPU support — dispatch.hpp
// owns that check.
const Kernels* avx2_kernels();
const Kernels* neon_kernels();

}  // namespace odq::simd
