// Training-time data augmentation: the standard CIFAR recipe (random
// horizontal flip + random crop with zero padding) the paper's training
// pipeline uses.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace odq::data {

struct AugmentConfig {
  bool horizontal_flip = true;
  // Random crop after padding by `crop_pad` pixels on each side (0 = off).
  std::int64_t crop_pad = 4;
};

// Augment a single image [C,H,W] in place inside a batch tensor.
// `offset` is the image's starting element within `batch`.
void augment_image(tensor::Tensor& batch, std::int64_t offset,
                   std::int64_t channels, std::int64_t height,
                   std::int64_t width, const AugmentConfig& cfg,
                   util::Rng& rng);

// Augment every image of an NCHW batch (deterministic given the Rng state).
void augment_batch(tensor::Tensor& batch, const AugmentConfig& cfg,
                   util::Rng& rng);

}  // namespace odq::data
