#include "data/augment.hpp"

#include <algorithm>
#include <vector>

namespace odq::data {

void augment_image(tensor::Tensor& batch, std::int64_t offset,
                   std::int64_t channels, std::int64_t height,
                   std::int64_t width, const AugmentConfig& cfg,
                   util::Rng& rng) {
  float* img = batch.data() + offset;

  if (cfg.horizontal_flip && rng.bernoulli(0.5)) {
    for (std::int64_t c = 0; c < channels; ++c) {
      for (std::int64_t y = 0; y < height; ++y) {
        float* row = img + (c * height + y) * width;
        std::reverse(row, row + width);
      }
    }
  }

  if (cfg.crop_pad > 0) {
    // Shift by a random offset in [-pad, pad] on each axis, zero-filling
    // the exposed border (equivalent to pad-then-crop).
    const auto pad = static_cast<int>(cfg.crop_pad);
    const int dy = rng.uniform_int(-pad, pad);
    const int dx = rng.uniform_int(-pad, pad);
    if (dy != 0 || dx != 0) {
      std::vector<float> tmp(static_cast<std::size_t>(height * width));
      for (std::int64_t c = 0; c < channels; ++c) {
        float* plane = img + c * height * width;
        std::fill(tmp.begin(), tmp.end(), 0.0f);
        for (std::int64_t y = 0; y < height; ++y) {
          const std::int64_t sy = y + dy;
          if (sy < 0 || sy >= height) continue;
          for (std::int64_t x = 0; x < width; ++x) {
            const std::int64_t sx = x + dx;
            if (sx < 0 || sx >= width) continue;
            tmp[static_cast<std::size_t>(y * width + x)] =
                plane[sy * width + sx];
          }
        }
        std::copy(tmp.begin(), tmp.end(), plane);
      }
    }
  }
}

void augment_batch(tensor::Tensor& batch, const AugmentConfig& cfg,
                   util::Rng& rng) {
  const auto& s = batch.shape();
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const std::int64_t chw = c * h * w;
  for (std::int64_t i = 0; i < n; ++i) {
    augment_image(batch, i * chw, c, h, w, cfg, rng);
  }
}

}  // namespace odq::data
