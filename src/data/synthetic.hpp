// Synthetic datasets standing in for CIFAR-10 / CIFAR-100 / MNIST.
//
// The environment has no dataset files, so the paper's data is substituted
// with procedurally generated class-conditional images (see DESIGN.md §4):
// each class owns a random set of oriented sinusoidal gratings, a color
// bias, and a blob layout; samples perturb them with phase jitter, global
// gain, and pixel noise. Small CNNs trained on these exhibit the activation
// and weight distributions the paper's quantization analysis depends on.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace odq::data {

struct Dataset {
  tensor::Tensor images;    // [N, C, H, W], values in [0, 1]
  std::vector<int> labels;  // size N
  int num_classes = 0;

  std::int64_t size() const { return images.shape()[0]; }
};

struct SyntheticConfig {
  int num_classes = 10;
  std::int64_t channels = 3;
  std::int64_t height = 32;
  std::int64_t width = 32;
  float noise = 0.08f;      // per-pixel Gaussian noise sigma
  float phase_jitter = 1.0f;
  std::uint64_t seed = 1234;
};

// CIFAR-like RGB dataset: `train_n` + `test_n` images drawn from the same
// class-conditional generative process. Classes partition evenly.
struct TrainTest {
  Dataset train;
  Dataset test;
};

TrainTest make_synthetic_images(const SyntheticConfig& cfg,
                                std::int64_t train_n, std::int64_t test_n);

// MNIST-like grayscale 28x28 dataset (digit-ish stroke blobs).
TrainTest make_synthetic_digits(std::int64_t train_n, std::int64_t test_n,
                                std::uint64_t seed = 99);

// Deterministic synthetic serving request: (seed, id) -> [1,C,H,W] tensor
// of uniform [0,1) values, independent of submission order. Shared by the
// odq_serve load generator and odq_fidelity --emit-baseline so quality
// drift baselines are calibrated on exactly the serving input
// distribution (same seed, same per-id stream).
tensor::Tensor make_request_input(std::uint64_t seed, std::uint64_t id,
                                  const tensor::Shape& chw);

}  // namespace odq::data
