#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace odq::data {

using tensor::Shape;
using tensor::Tensor;

namespace {

constexpr float kPi = 3.14159265358979323846f;

// Per-class generative parameters.
struct ClassParams {
  // Two oriented gratings per channel.
  float freq[2];
  float angle[2];
  float amp[2];
  float color_bias[3];  // up to 3 channels used
  // A soft blob.
  float blob_cx, blob_cy, blob_r, blob_amp;
};

ClassParams sample_class(util::Rng& rng, std::int64_t channels) {
  ClassParams p{};
  for (int g = 0; g < 2; ++g) {
    p.freq[g] = rng.uniform_f(1.5f, 5.5f);
    p.angle[g] = rng.uniform_f(0.0f, kPi);
    p.amp[g] = rng.uniform_f(0.25f, 0.5f);
  }
  for (std::int64_t c = 0; c < 3; ++c) {
    p.color_bias[c] = c < channels ? rng.uniform_f(0.2f, 0.8f) : 0.0f;
  }
  p.blob_cx = rng.uniform_f(0.25f, 0.75f);
  p.blob_cy = rng.uniform_f(0.25f, 0.75f);
  p.blob_r = rng.uniform_f(0.12f, 0.3f);
  p.blob_amp = rng.uniform_f(0.3f, 0.6f);
  return p;
}

void render_sample(const ClassParams& p, const SyntheticConfig& cfg,
                   util::Rng& rng, float* out) {
  const std::int64_t c = cfg.channels, h = cfg.height, w = cfg.width;
  const float phase0 = rng.uniform_f(0.0f, cfg.phase_jitter * 2.0f * kPi);
  const float phase1 = rng.uniform_f(0.0f, cfg.phase_jitter * 2.0f * kPi);
  const float gain = rng.uniform_f(0.8f, 1.2f);
  const float jx = rng.uniform_f(-0.06f, 0.06f);
  const float jy = rng.uniform_f(-0.06f, 0.06f);

  for (std::int64_t ch = 0; ch < c; ++ch) {
    const float bias = p.color_bias[std::min<std::int64_t>(ch, 2)];
    for (std::int64_t y = 0; y < h; ++y) {
      const float fy = static_cast<float>(y) / static_cast<float>(h);
      for (std::int64_t x = 0; x < w; ++x) {
        const float fx = static_cast<float>(x) / static_cast<float>(w);
        float v = bias;
        // Gratings (channel-dependent phase offset keeps channels distinct).
        const float co = std::cos(p.angle[0]), si = std::sin(p.angle[0]);
        v += p.amp[0] * std::sin(2.0f * kPi * p.freq[0] * (fx * co + fy * si) +
                                 phase0 + 0.7f * static_cast<float>(ch));
        const float co1 = std::cos(p.angle[1]), si1 = std::sin(p.angle[1]);
        v += p.amp[1] *
             std::sin(2.0f * kPi * p.freq[1] * (fx * co1 + fy * si1) + phase1);
        // Blob.
        const float dx = fx - (p.blob_cx + jx);
        const float dy = fy - (p.blob_cy + jy);
        v += p.blob_amp *
             std::exp(-(dx * dx + dy * dy) / (2.0f * p.blob_r * p.blob_r));
        // Noise, gain, clamp.
        v = gain * v + rng.normal_f(0.0f, cfg.noise);
        out[(ch * h + y) * w + x] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
}

Dataset generate(const SyntheticConfig& cfg,
                 const std::vector<ClassParams>& classes, std::int64_t n,
                 util::Rng& rng) {
  Dataset ds;
  ds.num_classes = cfg.num_classes;
  ds.images = Tensor(Shape{n, cfg.channels, cfg.height, cfg.width});
  ds.labels.resize(static_cast<std::size_t>(n));
  const std::int64_t chw = cfg.channels * cfg.height * cfg.width;
  for (std::int64_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % cfg.num_classes);
    ds.labels[static_cast<std::size_t>(i)] = label;
    render_sample(classes[static_cast<std::size_t>(label)], cfg, rng,
                  ds.images.data() + i * chw);
  }
  return ds;
}

}  // namespace

TrainTest make_synthetic_images(const SyntheticConfig& cfg,
                                std::int64_t train_n, std::int64_t test_n) {
  util::Rng rng(cfg.seed);
  std::vector<ClassParams> classes;
  classes.reserve(static_cast<std::size_t>(cfg.num_classes));
  for (int k = 0; k < cfg.num_classes; ++k) {
    classes.push_back(sample_class(rng, cfg.channels));
  }
  TrainTest tt;
  tt.train = generate(cfg, classes, train_n, rng);
  tt.test = generate(cfg, classes, test_n, rng);
  return tt;
}

TrainTest make_synthetic_digits(std::int64_t train_n, std::int64_t test_n,
                                std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_classes = 10;
  cfg.channels = 1;
  cfg.height = 28;
  cfg.width = 28;
  cfg.noise = 0.06f;
  cfg.seed = seed;
  return make_synthetic_images(cfg, train_n, test_n);
}

tensor::Tensor make_request_input(std::uint64_t seed, std::uint64_t id,
                                  const tensor::Shape& chw) {
  util::Rng rng(seed ^ (0x9E3779B97F4A7C15ULL * (id + 1)));
  tensor::Tensor x(tensor::Shape{1, chw[0], chw[1], chw[2]});
  for (std::int64_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform_f(0, 1);
  return x;
}

}  // namespace odq::data
