// Numerical-fidelity observability: per-layer error attribution for the
// quantized executors.
//
// Time telemetry (obs/trace.hpp, obs/metrics.hpp) shows *where the cycles
// went*; this layer shows *where the numerical error came from*. When
// enabled, every instrumented conv call compares its scheme output against
// the FP32 reference convolution and accumulates, per (scheme, layer):
//
//   * SQNR (dB), max-abs / mean-abs error, RMSE and cosine similarity of
//     the scheme output vs the FP32 reference;
//   * for ODQ additionally the same errors of the *predictor-only* output
//     (what quality would be if no output were ever escalated), and the
//     scheme-vs-reference error split by mask side — sensitive outputs
//     (bit-exact INT4xINT4) vs insensitive outputs (INT2xINT2 predictor
//     value), which is exactly the attribution the threshold trades off;
//   * a histogram of |dequantized predictor output| with the sensitivity
//     threshold recorded alongside, so a report can overlay the threshold
//     on the magnitude distribution and show how much probability mass
//     sits on each side.
//
// Collection defaults to off (ODQ_FIDELITY env var, any non-empty value
// except "0", or set_fidelity_enabled(true)) and costs one relaxed atomic
// load per conv call when disabled. When enabled it is deliberately
// expensive: each instrumented call runs an extra FP32 reference conv.
//
// Determinism: accumulation happens on the calling thread in flat index
// order, and the executors' integer pipelines are bit-exact across thread
// counts, so for a sequential forward pass the snapshot is identical
// whether the conv tiles ran on 1 or N pool workers
// (tests/obs/test_fidelity.cpp pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace odq::util {
class JsonWriter;
}  // namespace odq::util

namespace odq::obs {

// Global fidelity switch. Initialized from ODQ_FIDELITY on first query.
bool fidelity_enabled();
void set_fidelity_enabled(bool on);

// One comparison stream: error of an output array against a reference.
struct ErrorAccum {
  std::int64_t count = 0;
  double ref_sq = 0.0;   // sum ref[i]^2
  double out_sq = 0.0;   // sum out[i]^2
  double dot = 0.0;      // sum ref[i]*out[i]
  double err_sq = 0.0;   // sum (out[i]-ref[i])^2
  double err_abs = 0.0;  // sum |out[i]-ref[i]|
  double err_max = 0.0;  // max |out[i]-ref[i]|

  // 10*log10(ref_sq/err_sq), the SQNR with the FP32 output as the signal.
  // Clamped to +/-300 dB so exact matches stay representable in JSON.
  double sqnr_db() const;
  double cosine() const;  // 1.0 when either vector is all-zero
  double mean_abs_err() const { return count > 0 ? err_abs / count : 0.0; }
  double rmse() const;

  void add(double ref, double out);
  void merge(const ErrorAccum& other);
};

// Bins of the |dequantized predictor| magnitude histogram per layer cell.
inline constexpr std::size_t kFidelityHistBins = 64;

// Merged per-(scheme, layer) view at snapshot time.
struct FidelityLayerSnapshot {
  std::string scheme;      // executor name: "odq", "drq", "static_int8", ...
  int layer = -1;          // conv id; -1 for non-model (direct) calls
  std::int64_t calls = 0;
  float threshold = 0.0f;  // last ODQ sensitivity threshold seen; 0 otherwise

  ErrorAccum total;        // scheme output vs FP32 reference
  // ODQ only (zero counts for other schemes):
  ErrorAccum predictor;    // predictor-only output vs FP32 reference
  ErrorAccum sensitive;    // `total` restricted to mask==1 outputs
  ErrorAccum insensitive;  // `total` restricted to mask==0 outputs

  // |dequantized predictor| histogram (ODQ only). Fixed-width bins over
  // [hist_lo, hist_hi), bounds frozen at the cell's first record; the last
  // bin absorbs overflow. Empty for non-ODQ schemes.
  double hist_lo = 0.0;
  double hist_hi = 0.0;
  std::vector<std::uint64_t> hist;

  std::uint64_t hist_total() const;
  // Fraction of predictor magnitudes at or above `threshold` according to
  // the histogram (bin granularity; the exact count lives in `sensitive`).
  double hist_fraction_above(double t) const;

  // Exact sensitive-output fraction of this cell (mask-side counts).
  double sensitive_fraction() const {
    return total.count > 0 ? static_cast<double>(sensitive.count) /
                                 static_cast<double>(total.count)
                           : 0.0;
  }

  // Fold another cell of the same (scheme, layer) into this one: calls and
  // every error accumulator add; histograms with identical bounds add
  // bin-wise, otherwise `other`'s bins are re-binned by midpoint into this
  // cell's bounds (first record wins the bounds, matching the registry).
  // Integer fields and same-bounds histograms are exactly associative;
  // double sums associate up to floating-point rounding — the shadow lane
  // folds per-request cells in arrival order, so two runs agree to ulps,
  // not bits (tests/obs/test_quality.cpp pins both properties).
  void merge(const FidelityLayerSnapshot& other);
};

// Record one instrumented conv call of a non-ODQ scheme: `out` vs the FP32
// reference `ref`, both length `n` in the same layout.
void fidelity_record(const std::string& scheme, int layer, const float* ref,
                     const float* out, std::int64_t n);

// Record one ODQ conv call. `full` is the final ODQ output, `pred_out` the
// predictor-only output dequantized on the same scale (bias included), and
// `pred_mag[i]` the |dequantized predictor| magnitude the mask thresholded
// on (bias excluded). `mask[i] != 0` marks sensitive outputs.
void fidelity_record_odq(const std::string& scheme, int layer, float threshold,
                         const float* ref, const float* full,
                         const float* pred_out, const float* pred_mag,
                         const std::uint8_t* mask, std::int64_t n);

// Deterministic snapshot: cells sorted by (scheme, layer).
std::vector<FidelityLayerSnapshot> fidelity_snapshot();

// Scoped per-thread fidelity collection for the serving shadow lane.
//
// While a FidelityScope is alive on a thread, fidelity collection is (a)
// force-enabled on that thread regardless of the global ODQ_FIDELITY
// switch, and (b) redirected into a private registry owned by the scope —
// records made by this thread never touch the global cells, and other
// threads (e.g. serving workers on the hot path) are unaffected. This is
// what lets the shadow lane compute per-request error attribution while
// the serving process keeps the global switch off. Scopes nest (the
// innermost wins) and must be destroyed on the thread that created them.
//
// Note: the instrumented executors accumulate on the *calling* thread (see
// the determinism note at the top of this header), so a scope on the
// thread that drives model.forward() captures every conv of that pass even
// when the conv tiles themselves run on the shared pool.
class FidelityScope {
 public:
  FidelityScope();
  ~FidelityScope();
  FidelityScope(const FidelityScope&) = delete;
  FidelityScope& operator=(const FidelityScope&) = delete;

  // Cells recorded under this scope, sorted by (scheme, layer).
  std::vector<FidelityLayerSnapshot> snapshot() const;
  // Drop this scope's cells (subsequent records re-create them).
  void reset();

 private:
  void* registry_;  // owned opaque Registry
  void* prev_;      // previously installed scope registry (nesting)
};

// Drop every cell (subsequent records re-create them).
void fidelity_reset();

// Serialize a snapshot as a JSON array of per-layer objects.
void fidelity_to_json(util::JsonWriter& w);

}  // namespace odq::obs
