// Log-bucketed HDR-style histograms for live serving telemetry.
//
// One fixed bucket layout shared by every histogram in the process (so any
// two histograms merge bucket-for-bucket, and a serialized histogram is
// meaningful without carrying its own layout):
//
//   * values are non-negative 64-bit integers (microseconds, queue depths,
//     batch sizes — the recorder picks the unit, the name carries it);
//   * values below 2^kLogHistSubBits (32) get one exact bucket each;
//   * above that, every power-of-two octave is split into 32 sub-buckets,
//     bounding the relative bucket width to 1/32 ≈ 3.1% — the "two
//     significant digits" HDR guarantee;
//   * values at or beyond 2^kLogHistMaxPow clamp into the last bucket
//     (2^40 µs ≈ 12.7 days — nothing a serving process should wait for).
//
// That makes kLogHistBuckets = 1152 buckets ≈ 9 KB of counters: bounded
// memory no matter how many samples are recorded, unlike a sample vector.
//
// Two layers:
//   * LogHistogram — plain value type: add / merge / subtract / quantile.
//     merge() is element-wise, hence associative and order-independent:
//     merging per-thread shards in any grouping yields identical counts and
//     identical quantiles (tests/obs/test_histogram.cpp pins this).
//     Quantiles are *exact at bucket resolution*: quantile(q) returns the
//     highest representable value of the bucket containing the rank
//     ceil(q·count) sample, so a sorted-vector oracle's order statistic is
//     guaranteed to land in that same bucket.
//   * ShardedLogHistogram — lock-free recorder: each thread owns a shard
//     and record() is two relaxed atomic RMWs on it; merged() folds every
//     shard into one LogHistogram. No mutex is ever taken on the record
//     path (the registry mutex guards only first-touch shard creation).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace odq::obs {

// Bucket layout constants. Changing these is a telemetry schema change:
// bump the snapshot schema_version and refresh the serve bench baseline.
inline constexpr int kLogHistSubBits = 5;   // 32 sub-buckets per octave
inline constexpr int kLogHistMaxPow = 40;   // clamp at 2^40
inline constexpr std::size_t kLogHistBuckets =
    (std::size_t{1} << kLogHistSubBits) * (kLogHistMaxPow - kLogHistSubBits + 1);

// Value -> bucket index (total order preserving; clamps at the top).
std::size_t log_bucket_index(std::uint64_t v);

// Bucket bounds: values v with lo <= v < hi map to this bucket.
std::uint64_t log_bucket_lo(std::size_t index);
std::uint64_t log_bucket_hi(std::size_t index);

class LogHistogram {
 public:
  LogHistogram() = default;

  void add(std::uint64_t v, std::uint64_t n = 1);

  // Element-wise sum; associative and commutative.
  void merge(const LogHistogram& other);

  // Element-wise difference, for epoch deltas between two cumulative
  // snapshots of the same recorder. `other` must be component-wise <=
  // *this (older snapshot of the same history); counts saturate at 0
  // defensively rather than wrapping.
  void subtract(const LogHistogram& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  // Exact sum of recorded values (not bucket midpoints), so mean() is
  // exact even though quantiles are bucket-resolution.
  std::uint64_t sum() const { return sum_; }
  double mean() const;

  // Bucket-resolution extrema: lo of the first / hi-1 of the last
  // non-empty bucket. 0 when empty.
  std::uint64_t min() const;
  std::uint64_t max() const;

  // Highest representable value of the bucket holding the rank
  // ceil(q*count) sample (q clamped to [0,1]; 0 when empty).
  std::uint64_t quantile(double q) const;

  std::uint64_t bucket_count(std::size_t index) const;

  // Bucket-for-bucket transfer used when folding atomic shards (whose sums
  // are tracked exactly and separately): adds `n` samples to bucket
  // `index` without re-bucketing through a representative value.
  void add_in_bucket(std::size_t index, std::uint64_t n);
  void add_to_sum(std::uint64_t s) { sum_ += s; }

 private:
  // Lazily sized to kLogHistBuckets on first add so empty histograms (ring
  // slots before their first epoch) cost nothing.
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

// Lock-free sharded recorder. Handles are long-lived (the telemetry
// registry never deletes series); a shard belongs to one recording thread
// and is only ever *read* by merged().
class ShardedLogHistogram {
 public:
  ShardedLogHistogram();
  ShardedLogHistogram(const ShardedLogHistogram&) = delete;
  ShardedLogHistogram& operator=(const ShardedLogHistogram&) = delete;

  // Wait-free on the calling thread's own shard (after first touch).
  void record(std::uint64_t v);

  // Cumulative view over all shards. Deterministic: element-wise sums are
  // order-independent however recording was sharded across threads.
  LogHistogram merged() const;

  // Zero every shard (handles and shard ownership stay valid). Test/tool
  // helper; not meant to race with record().
  void reset();

 private:
  struct Shard {
    std::vector<std::atomic<std::uint64_t>> counts =
        std::vector<std::atomic<std::uint64_t>>(kLogHistBuckets);
    std::atomic<std::uint64_t> sum{0};
  };
  Shard& shard();

  // Process-unique instance id. The per-thread shard cache is keyed by
  // address but validated against this, so a histogram constructed at a
  // recycled address can never inherit a stale (dangling) shard pointer
  // from a destroyed predecessor.
  const std::uint64_t gen_;

  mutable std::mutex mutex_;  // guards shards_ growth only
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace odq::obs
