#include "obs/quality.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/telemetry.hpp"
#include "util/json.hpp"
#include "util/json_read.hpp"
#include "util/logging.hpp"

namespace odq::obs {

using util::Status;
using util::StatusCode;
using util::StatusOr;

namespace {

// Scale factors between the double-valued statistics and the integer
// telemetry series (WindowedSeries records uint64).
std::uint64_t fraction_bp(double f) {
  return static_cast<std::uint64_t>(
      std::llround(std::clamp(f, 0.0, 1.0) * 10000.0));
}

std::uint64_t sqnr_cdb(double db) {
  return static_cast<std::uint64_t>(
      std::llround(std::clamp(db, 0.0, 300.0) * 100.0));
}

std::vector<double> normalized_hist(const FidelityLayerSnapshot& s) {
  std::vector<double> out(s.hist.size(), 0.0);
  std::uint64_t total = 0;
  for (std::uint64_t c : s.hist) total += c;
  if (total == 0) return out;
  for (std::size_t b = 0; b < s.hist.size(); ++b) {
    out[b] = static_cast<double>(s.hist[b]) / static_cast<double>(total);
  }
  return out;
}

Status write_file_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status(StatusCode::kIoError, "quality: cannot open " + tmp);
  }
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  ok = ok && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kIoError, "quality: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kIoError, "quality: cannot rename to " + path);
  }
  return Status::Ok();
}

}  // namespace

double quality_hist_distance(double p_lo, double p_hi,
                             const std::vector<double>& p, double q_lo,
                             double q_hi, const std::vector<double>& q) {
  if (p.empty() || q.empty()) return 0.0;
  if (p_lo == q_lo && p_hi == q_hi && p.size() == q.size()) {
    double d = 0.0;
    for (std::size_t b = 0; b < p.size(); ++b) d += std::abs(p[b] - q[b]);
    return 0.5 * d;
  }
  // Re-bin q into p's layout by bin midpoint, then compare.
  std::vector<double> r(p.size(), 0.0);
  const double qw = (q_hi - q_lo) / static_cast<double>(q.size());
  const double pw = (p_hi - p_lo) / static_cast<double>(p.size());
  for (std::size_t b = 0; b < q.size(); ++b) {
    if (q[b] == 0.0) continue;
    const double mid = q_lo + (static_cast<double>(b) + 0.5) * qw;
    auto bin = static_cast<std::int64_t>((mid - p_lo) / pw);
    bin = std::clamp<std::int64_t>(bin, 0,
                                   static_cast<std::int64_t>(p.size()) - 1);
    r[static_cast<std::size_t>(bin)] += q[b];
  }
  double d = 0.0;
  for (std::size_t b = 0; b < p.size(); ++b) d += std::abs(p[b] - r[b]);
  return 0.5 * d;
}

QualityBaseline make_quality_baseline(
    const std::vector<FidelityLayerSnapshot>& cells) {
  QualityBaseline base;
  for (const FidelityLayerSnapshot& s : cells) {
    if (s.predictor.count == 0) continue;  // non-ODQ cell: no mask split
    QualityBaselineLayer layer;
    layer.layer = s.layer;
    layer.threshold = s.threshold;
    layer.sensitive_fraction = s.sensitive_fraction();
    layer.sqnr_db = s.total.sqnr_db();
    layer.hist_lo = s.hist_lo;
    layer.hist_hi = s.hist_hi;
    layer.hist = normalized_hist(s);
    base.layers.push_back(std::move(layer));
  }
  std::sort(base.layers.begin(), base.layers.end(),
            [](const QualityBaselineLayer& a, const QualityBaselineLayer& b) {
              return a.layer < b.layer;
            });
  return base;
}

Status QualityBaseline::save(const std::string& path) const {
  util::JsonWriter w;
  w.begin_object();
  w.kv("doc", kQualityBaselineDoc);
  w.kv("version", kQualityBaselineVersion);
  w.kv("model", model);
  w.kv("scheme", scheme);
  w.kv("width", width);
  w.kv("threshold", static_cast<double>(threshold));
  w.kv("inputs", inputs);
  w.kv("seed", seed);
  w.kv("batch", batch);
  w.key("layers");
  w.begin_array();
  for (const QualityBaselineLayer& l : layers) {
    w.begin_object();
    w.kv("layer", static_cast<std::int64_t>(l.layer));
    w.kv("threshold", static_cast<double>(l.threshold));
    w.kv("sensitive_fraction", l.sensitive_fraction);
    w.kv("sqnr_db", l.sqnr_db);
    w.kv("hist_lo", l.hist_lo);
    w.kv("hist_hi", l.hist_hi);
    w.key("hist");
    w.begin_array();
    for (double v : l.hist) w.value(v);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string body = w.take();
  body.push_back('\n');
  return write_file_atomic(path, body);
}

StatusOr<QualityBaseline> QualityBaseline::load(const std::string& path) {
  StatusOr<util::JsonValue> parsed = util::json_try_parse_file(path);
  if (!parsed.ok()) return parsed.status();
  const util::JsonValue& doc = parsed.value();
  if (doc.kind != util::JsonValue::Kind::kObject || !doc.has("doc") ||
      doc.at("doc").str != kQualityBaselineDoc) {
    return Status(StatusCode::kCorruption,
                  path + " is not an " + kQualityBaselineDoc + " document");
  }
  if (!doc.has("version") ||
      static_cast<int>(doc.at("version").num) != kQualityBaselineVersion) {
    return Status(StatusCode::kCorruption,
                  path + ": unsupported baseline version");
  }
  QualityBaseline base;
  base.model = doc.has("model") ? doc.at("model").str : "";
  base.scheme = doc.has("scheme") ? doc.at("scheme").str : "";
  base.width = doc.has("width") ? static_cast<std::int64_t>(doc.at("width").num)
                                : 8;
  base.threshold =
      doc.has("threshold") ? static_cast<float>(doc.at("threshold").num) : 0.0f;
  base.inputs = doc.has("inputs") ? doc.at("inputs").str : "";
  base.seed = doc.has("seed")
                  ? static_cast<std::uint64_t>(doc.at("seed").num)
                  : 0;
  base.batch =
      doc.has("batch") ? static_cast<std::int64_t>(doc.at("batch").num) : 0;
  if (!doc.has("layers") ||
      doc.at("layers").kind != util::JsonValue::Kind::kArray) {
    return Status(StatusCode::kCorruption, path + ": missing layers array");
  }
  for (const util::JsonValue& jl : doc.at("layers").arr) {
    if (jl.kind != util::JsonValue::Kind::kObject || !jl.has("layer")) {
      return Status(StatusCode::kCorruption, path + ": malformed layer entry");
    }
    QualityBaselineLayer l;
    l.layer = static_cast<int>(jl.at("layer").num);
    l.threshold =
        jl.has("threshold") ? static_cast<float>(jl.at("threshold").num) : 0.0f;
    l.sensitive_fraction =
        jl.has("sensitive_fraction") ? jl.at("sensitive_fraction").num : 0.0;
    l.sqnr_db = jl.has("sqnr_db") ? jl.at("sqnr_db").num : 0.0;
    l.hist_lo = jl.has("hist_lo") ? jl.at("hist_lo").num : 0.0;
    l.hist_hi = jl.has("hist_hi") ? jl.at("hist_hi").num : 0.0;
    if (jl.has("hist")) {
      for (const util::JsonValue& v : jl.at("hist").arr) {
        l.hist.push_back(v.num);
      }
    }
    base.layers.push_back(std::move(l));
  }
  std::sort(base.layers.begin(), base.layers.end(),
            [](const QualityBaselineLayer& a, const QualityBaselineLayer& b) {
              return a.layer < b.layer;
            });
  return base;
}

QualityMonitor::QualityMonitor(QualityConfig cfg)
    : cfg_(cfg), flight_(cfg.flight_capacity) {
  if (cfg_.drift_window <= 0) cfg_.drift_window = 1;
}

void QualityMonitor::set_baseline(QualityBaseline baseline) {
  std::lock_guard<std::mutex> lock(mutex_);
  baseline_ = std::move(baseline);
  have_baseline_ = true;
}

bool QualityMonitor::has_baseline() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return have_baseline_;
}

const QualityBaselineLayer* QualityMonitor::baseline_for(int layer) const {
  if (!have_baseline_) return nullptr;
  for (const QualityBaselineLayer& l : baseline_.layers) {
    if (l.layer == layer) return &l;
  }
  return nullptr;
}

void QualityMonitor::check_window(
    LayerState& st, int layer, std::uint64_t request_id,
    const tensor::Tensor& input,
    const std::vector<FidelityLayerSnapshot>& layers) {
  const QualityBaselineLayer* base = baseline_for(layer);
  if (base == nullptr) {
    if (have_baseline_ && !st.baseline_warned) {
      st.baseline_warned = true;
      ODQ_LOG_WARN("quality: layer %d absent from drift baseline; skipping",
                   layer);
    }
    return;
  }
  const double sens = st.window.sensitive_fraction();
  const double sens_delta = std::abs(sens - base->sensitive_fraction);
  const double distance = quality_hist_distance(
      st.window.hist_lo, st.window.hist_hi, normalized_hist(st.window),
      base->hist_lo, base->hist_hi, base->hist);
  st.window_distance = distance;
  telemetry_series("quality.drift_distance.layer" + std::to_string(layer))
      .record(fraction_bp(distance));

  const bool hist_over = distance > cfg_.hist_drift_threshold;
  const bool sens_over = sens_delta > cfg_.sens_drift_threshold;
  if (st.armed && (hist_over || sens_over)) {
    st.armed = false;
    ++st.alerts;
    ++total_alerts_;
    telemetry_counter("quality.drift").increment();
    telemetry_counter("quality.drift.layer" + std::to_string(layer))
        .increment();
    const char* reason = hist_over && sens_over ? "hist_drift|sens_drift"
                         : hist_over            ? "hist_drift"
                                                : "sens_drift";
    ODQ_LOG_WARN(
        "quality: drift alert layer=%d reason=%s hist_tv=%.4f "
        "sensitive=%.4f baseline=%.4f (request %llu)",
        layer, reason, distance, sens, base->sensitive_fraction,
        static_cast<unsigned long long>(request_id));
    FlightRecord rec;
    rec.request_id = request_id;
    rec.reason = reason;
    rec.layer = layer;
    rec.distance = distance;
    rec.sens_delta = sens_delta;
    rec.input = input;
    rec.layers = layers;
    flight_.record(std::move(rec));
  } else if (!st.armed && distance < cfg_.hist_drift_threshold *
                                         cfg_.rearm_factor &&
             sens_delta < cfg_.sens_drift_threshold * cfg_.rearm_factor) {
    st.armed = true;
  }
}

void QualityMonitor::observe(std::uint64_t request_id,
                             const tensor::Tensor& input,
                             const std::vector<FidelityLayerSnapshot>& layers) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++observed_;
  for (const FidelityLayerSnapshot& s : layers) {
    if (s.total.count == 0) continue;
    LayerState& st = layers_[s.layer];
    st.cumulative.merge(s);
    st.window.merge(s);
    ++st.requests;
    ++st.window_requests;
    const std::string suffix = ".layer" + std::to_string(s.layer);
    telemetry_series("quality.sensitive_fraction" + suffix)
        .record(fraction_bp(s.sensitive_fraction()));
    telemetry_series("quality.sqnr_db" + suffix)
        .record(sqnr_cdb(s.total.sqnr_db()));
    if (st.window_requests >= cfg_.drift_window) {
      check_window(st, s.layer, request_id, input, layers);
      st.window = FidelityLayerSnapshot{};
      st.window_requests = 0;
    }
  }
}

std::vector<QualityMonitor::LayerSummary> QualityMonitor::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return summary_locked();
}

std::vector<QualityMonitor::LayerSummary> QualityMonitor::summary_locked()
    const {
  std::vector<LayerSummary> out;
  out.reserve(layers_.size());
  for (const auto& [layer, st] : layers_) {
    LayerSummary s;
    s.layer = layer;
    s.requests = st.requests;
    s.sensitive_fraction = st.cumulative.sensitive_fraction();
    s.sqnr_db = st.cumulative.total.sqnr_db();
    s.window_distance = st.window_distance;
    s.alerts = st.alerts;
    s.drifted = !st.armed;
    if (const QualityBaselineLayer* base = baseline_for(layer)) {
      s.baseline_fraction = base->sensitive_fraction;
      s.drift_distance = quality_hist_distance(
          st.cumulative.hist_lo, st.cumulative.hist_hi,
          normalized_hist(st.cumulative), base->hist_lo, base->hist_hi,
          base->hist);
    }
    out.push_back(s);
  }
  return out;  // std::map iteration is layer-sorted
}

std::uint64_t QualityMonitor::observed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return observed_;
}

std::int64_t QualityMonitor::drift_alerts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_alerts_;
}

void QualityMonitor::drift_snapshot_json(util::JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::vector<LayerSummary> layers = summary_locked();
  w.begin_object();
  w.kv("doc", "odq_drift_snapshot");
  w.kv("version", 1);
  w.key("config");
  w.begin_object();
  w.kv("drift_window", cfg_.drift_window);
  w.kv("hist_drift_threshold", cfg_.hist_drift_threshold);
  w.kv("sens_drift_threshold", cfg_.sens_drift_threshold);
  w.kv("rearm_factor", cfg_.rearm_factor);
  w.end_object();
  w.kv("has_baseline", have_baseline_);
  if (have_baseline_) {
    w.key("baseline");
    w.begin_object();
    w.kv("model", baseline_.model);
    w.kv("scheme", baseline_.scheme);
    w.kv("inputs", baseline_.inputs);
    w.kv("seed", baseline_.seed);
    w.kv("batch", baseline_.batch);
    w.end_object();
  }
  w.kv("observed", observed_);
  w.kv("drift_alerts", total_alerts_);
  w.kv("flight_records", flight_.total_recorded());
  w.key("layers");
  w.begin_array();
  for (const LayerSummary& s : layers) {
    w.begin_object();
    w.kv("layer", static_cast<std::int64_t>(s.layer));
    w.kv("requests", s.requests);
    w.kv("sensitive_fraction", s.sensitive_fraction);
    w.kv("baseline_fraction", s.baseline_fraction);
    w.kv("sqnr_db", s.sqnr_db);
    w.kv("drift_distance", s.drift_distance);
    w.kv("window_distance", s.window_distance);
    w.kv("alerts", s.alerts);
    w.kv("drifted", s.drifted);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace odq::obs
