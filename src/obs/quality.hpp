// Online quality monitoring for the serving path.
//
// The shadow lane (serve/shadow.hpp) re-evaluates a deterministic sample of
// live requests under a FidelityScope and hands each request's per-layer
// fidelity cells to the QualityMonitor here. The monitor:
//
//   * folds the per-request cells into cumulative and tumbling-window
//     accumulators via FidelityLayerSnapshot::merge (no quadratic
//     re-snapshotting);
//   * feeds per-layer windowed telemetry series — quality.sensitive_fraction
//     .layer<k> (basis points, 0..10000), quality.sqnr_db.layer<k>
//     (centi-dB, clamped to [0, 30000]) and quality.drift_distance.layer<k>
//     (basis points) — which the TelemetryExporter ships to the JSON/
//     Prometheus snapshots rendered by odq_top;
//   * every completed window of `drift_window` sampled requests, compares
//     the window's predictor-magnitude histogram (total-variation distance)
//     and sensitive fraction against a committed calibration baseline
//     (odq_fidelity --emit-baseline), and raises a drift alert when either
//     exceeds its threshold. Alerts are hysteretic: once fired, a layer
//     re-arms only after both statistics fall back below threshold *
//     rearm_factor, so a persistent shift fires once, not once per window.
//   * on alert, bumps the quality.drift counters, logs one warning
//     exemplar, and snapshots the offending request (input tensor +
//     per-layer stats) into the flight recorder (obs/flight.hpp) for
//     offline replay via odq_fidelity --replay.
//
// Thread model: observe() is called from the single shadow-lane thread;
// summary()/drift_alerts()/drift_snapshot_json() may race with it from the
// main thread — all state is guarded by one mutex (the shadow lane is off
// the serving hot path, so the lock is uncontended where it matters).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/fidelity.hpp"
#include "obs/flight.hpp"
#include "tensor/tensor.hpp"
#include "util/status.hpp"

namespace odq::util {
class JsonWriter;
}  // namespace odq::util

namespace odq::obs {

// Baseline JSON document tag / version (odq_fidelity --emit-baseline).
inline constexpr const char* kQualityBaselineDoc = "odq_quality_baseline";
inline constexpr int kQualityBaselineVersion = 1;

// Per-layer calibration statistics the drift detector compares against.
struct QualityBaselineLayer {
  int layer = -1;
  float threshold = 0.0f;
  double sensitive_fraction = 0.0;
  double sqnr_db = 0.0;
  // Normalized |dequantized predictor| magnitude histogram (sums to 1 when
  // any sample landed; same fixed-width-bin layout as FidelityLayerSnapshot).
  double hist_lo = 0.0;
  double hist_hi = 0.0;
  std::vector<double> hist;
};

// Calibration baseline: what the per-layer quality statistics looked like
// on in-distribution traffic, plus the provenance needed to regenerate it.
struct QualityBaseline {
  std::string model;
  std::string scheme;
  std::int64_t width = 8;
  float threshold = 0.0f;
  std::string inputs;       // input generator name, e.g. "uniform"
  std::uint64_t seed = 0;
  std::int64_t batch = 0;   // number of calibration requests
  std::vector<QualityBaselineLayer> layers;  // sorted by layer id

  // Serialize to `path` atomically (tmp + rename, valid-or-absent).
  util::Status save(const std::string& path) const;
  // Parse and validate a baseline document.
  static util::StatusOr<QualityBaseline> load(const std::string& path);
};

// Build a baseline from fidelity cells accumulated over calibration
// traffic (only cells with ODQ mask data contribute layers).
QualityBaseline make_quality_baseline(
    const std::vector<FidelityLayerSnapshot>& cells);

// Total-variation distance (0.5 * sum |p - q|, in [0, 1]) between two
// normalized fixed-width-bin histograms. Mismatched bounds re-bin `q` into
// `p`'s layout by bin midpoint. Either side empty => 0 (no evidence).
double quality_hist_distance(double p_lo, double p_hi,
                             const std::vector<double>& p, double q_lo,
                             double q_hi, const std::vector<double>& q);

struct QualityConfig {
  // Sampled requests per tumbling drift-detection window.
  std::int64_t drift_window = 8;
  // Alert when the window histogram's TV distance from baseline exceeds
  // this...
  double hist_drift_threshold = 0.10;
  // ...or the window sensitive fraction moves further than this from the
  // baseline fraction (absolute).
  double sens_drift_threshold = 0.05;
  // Hysteresis: a fired layer re-arms once both statistics fall below
  // threshold * rearm_factor.
  double rearm_factor = 0.5;
  std::size_t flight_capacity = kDefaultFlightCapacity;
};

class QualityMonitor {
 public:
  explicit QualityMonitor(QualityConfig cfg = {});

  QualityMonitor(const QualityMonitor&) = delete;
  QualityMonitor& operator=(const QualityMonitor&) = delete;

  // Install the drift baseline. Without one, observe() still accumulates
  // and feeds telemetry but never raises drift alerts.
  void set_baseline(QualityBaseline baseline);
  bool has_baseline() const;

  // Fold one shadow-evaluated request into the monitor: `layers` are the
  // per-request fidelity cells from the FidelityScope that wrapped the
  // reference evaluation, `input` the request tensor (copied into the
  // flight recorder only when this request trips the detector).
  void observe(std::uint64_t request_id, const tensor::Tensor& input,
               const std::vector<FidelityLayerSnapshot>& layers);

  struct LayerSummary {
    int layer = -1;
    std::int64_t requests = 0;        // sampled requests folded in
    double sensitive_fraction = 0.0;  // cumulative, exact mask-side counts
    double sqnr_db = 0.0;             // cumulative scheme-vs-FP32 SQNR
    double drift_distance = 0.0;      // cumulative hist TV vs baseline
    double window_distance = 0.0;     // last completed window's TV distance
    double baseline_fraction = 0.0;   // baseline sensitive fraction
    std::int64_t alerts = 0;
    bool drifted = false;             // currently fired (not yet re-armed)
  };

  // Per-layer cumulative view, sorted by layer id. `drift_distance` and
  // `sensitive_fraction` derive from order-independent integer counts, so
  // they are bit-deterministic for a fixed request set regardless of
  // arrival order (the serve bench gate relies on this).
  std::vector<LayerSummary> summary() const;

  std::uint64_t observed() const;       // requests folded in
  std::int64_t drift_alerts() const;    // total alerts across layers

  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }

  // {"doc":"odq_drift_snapshot",...} document with config, baseline
  // provenance and the per-layer summary (odq_serve --drift-snapshot).
  void drift_snapshot_json(util::JsonWriter& w) const;

 private:
  struct LayerState {
    FidelityLayerSnapshot cumulative;
    FidelityLayerSnapshot window;
    std::int64_t window_requests = 0;
    std::int64_t requests = 0;
    double window_distance = 0.0;
    std::int64_t alerts = 0;
    bool armed = true;
    bool baseline_warned = false;
  };

  // Requires mutex_. Returns the baseline layer or nullptr.
  const QualityBaselineLayer* baseline_for(int layer) const;
  // Requires mutex_.
  std::vector<LayerSummary> summary_locked() const;
  // Requires mutex_. Runs the drift check for a completed window.
  void check_window(LayerState& st, int layer, std::uint64_t request_id,
                    const tensor::Tensor& input,
                    const std::vector<FidelityLayerSnapshot>& layers);

  QualityConfig cfg_;
  FlightRecorder flight_;

  mutable std::mutex mutex_;
  bool have_baseline_ = false;
  QualityBaseline baseline_;
  std::map<int, LayerState> layers_;
  std::uint64_t observed_ = 0;
  std::int64_t total_alerts_ = 0;
};

}  // namespace odq::obs
