// Live serving telemetry: rolling time-windowed series and counters, a
// snapshot/exposition layer, and a background exporter.
//
// This subsystem answers "what are the last 1s/10s/60s of traffic doing"
// while the process serves — in contrast to the metrics registry
// (metrics.hpp), which accumulates since process start and is read once at
// shutdown. The two share the recording idioms (one relaxed atomic load
// when off, lock-free per-thread shards when on) but keep separate
// registries: a windowed series costs a 64-slot histogram ring, so only
// hot serving signals should pay for it.
//
// Time model — no wall-clock reads in this library:
//
//  * Recording (`WindowedSeries::record`, `WindowedCounter::add`) is
//    clock-free: samples land in a cumulative lock-free recorder.
//  * `advance(now_us)` folds the cumulative delta since the previous
//    advance into the ring slot for epoch now_us / 1e6 (1-second epochs,
//    kTelemetryRingSlots slots). The *caller* supplies the monotonic
//    clock — the TelemetryExporter injects one via its config, and tests
//    drive a manual clock through epoch skips and jumps.
//  * `window(seconds)` merges the ring slots whose epoch tag lies in
//    (current_epoch - seconds, current_epoch]. Stale slots (tags older
//    than the window, e.g. after a clock jump past the whole ring) are
//    excluded by the tag check — no eager clearing needed.
//
// Exposition: telemetry_snapshot() advances every registered object and
// returns a value-type snapshot; telemetry_to_json() renders it as a
// bench-JSON-compatible document and telemetry_to_prometheus() as
// Prometheus text exposition format. The TelemetryExporter writes both
// atomically (tmp + rename, the checkpoint idiom) on a background flusher
// thread with a final drain flush on stop(), so readers tailing the file
// (tools/odq_top) always see a complete document or none.
//
// Enablement: ODQ_TELEMETRY (any non-empty value except "0") or
// set_telemetry_enabled(true). When the value names a file (contains '/'
// or ends in ".json") it doubles as the default snapshot path, which
// telemetry_env_path() reports for tools.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"

namespace odq::util {
class JsonWriter;
}  // namespace odq::util

namespace odq::obs {

// Global telemetry switch. Initialized from ODQ_TELEMETRY on first query.
bool telemetry_enabled();
void set_telemetry_enabled(bool on);

// When ODQ_TELEMETRY names a file (contains '/' or ends in ".json"),
// returns that path; "" otherwise. Tools use it as the default snapshot
// destination.
std::string telemetry_env_path();

// Reporting windows, in seconds, smallest first. The ring must span the
// largest window plus slack for the in-progress epoch.
inline constexpr std::array<int, 3> kTelemetryWindowsS = {1, 10, 60};
inline constexpr std::size_t kTelemetryRingSlots = 64;

// Windowed sample series (latency, batch size, queue depth...). Hot path
// is record(); advance()/window()/total() are snapshot-side and take the
// series mutex (never contended by recorders).
class WindowedSeries {
 public:
  explicit WindowedSeries(std::string name) : name_(std::move(name)) {}
  WindowedSeries(const WindowedSeries&) = delete;
  WindowedSeries& operator=(const WindowedSeries&) = delete;

  void record(std::uint64_t v) {
    if (!telemetry_enabled()) return;
    live_.record(v);
  }

  const std::string& name() const { return name_; }

  // Fold samples recorded since the previous advance into the ring slot
  // for epoch now_us / 1e6. A now_us older than the current epoch folds
  // into the current slot (monotonic clocks shouldn't go back; be safe).
  void advance(std::uint64_t now_us);

  // Cumulative histogram since creation/reset (all shards merged).
  LogHistogram total() const { return live_.merged(); }

  // Merged histogram over the last `seconds` epochs ending at the epoch
  // of the latest advance(). Samples recorded after that advance are not
  // yet visible (they fold in on the next advance).
  LogHistogram window(int seconds) const;

  void reset();

 private:
  struct Slot {
    std::int64_t epoch = -1;
    LogHistogram data;
  };

  std::string name_;
  ShardedLogHistogram live_;

  mutable std::mutex mutex_;  // guards everything below
  LogHistogram last_cum_;
  std::int64_t cur_epoch_ = -1;
  std::array<Slot, kTelemetryRingSlots> ring_;
};

// Windowed monotonic counter (requests, errors, batches...).
class WindowedCounter {
 public:
  explicit WindowedCounter(std::string name) : name_(std::move(name)) {}
  WindowedCounter(const WindowedCounter&) = delete;
  WindowedCounter& operator=(const WindowedCounter&) = delete;

  void add(std::int64_t delta) {
    if (!telemetry_enabled()) return;
    total_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  const std::string& name() const { return name_; }

  void advance(std::uint64_t now_us);

  std::int64_t total() const {
    return total_.load(std::memory_order_relaxed);
  }
  std::int64_t window(int seconds) const;

  void reset();

 private:
  struct Slot {
    std::int64_t epoch = -1;
    std::int64_t value = 0;
  };

  std::string name_;
  std::atomic<std::int64_t> total_{0};

  mutable std::mutex mutex_;  // guards everything below
  std::int64_t last_cum_ = 0;
  std::int64_t cur_epoch_ = -1;
  std::array<Slot, kTelemetryRingSlots> ring_;
};

// Registry lookups: create-on-first-use, same object for the same name,
// process-lifetime handles. Series and counters live in one namespace;
// mixing kinds under a name throws std::invalid_argument.
WindowedSeries& telemetry_series(const std::string& name);
WindowedCounter& telemetry_counter(const std::string& name);

// Zero every registered series/counter (handles stay valid). Test helper.
void telemetry_reset();

// -- Snapshot / exposition ------------------------------------------------

struct TelemetryWindowStats {
  std::uint64_t count = 0;
  double mean = 0.0;
  std::uint64_t min = 0, max = 0;
  std::uint64_t p50 = 0, p95 = 0, p99 = 0, p999 = 0;
};

struct TelemetrySeriesSnapshot {
  std::string name;
  TelemetryWindowStats total;
  // Indexed like kTelemetryWindowsS.
  std::array<TelemetryWindowStats, kTelemetryWindowsS.size()> windows;
};

struct TelemetryCounterSnapshot {
  std::string name;
  std::int64_t total = 0;
  std::array<std::int64_t, kTelemetryWindowsS.size()> windows{};
};

struct TelemetrySnapshot {
  std::uint64_t generated_us = 0;
  std::uint64_t flush_seq = 0;
  std::uint64_t trace_dropped_events = 0;
  std::vector<TelemetrySeriesSnapshot> series;    // sorted by name
  std::vector<TelemetryCounterSnapshot> counters;  // sorted by name
};

// Advance every registered object to now_us and snapshot it. Deterministic
// once recorders have quiesced.
TelemetrySnapshot telemetry_snapshot(std::uint64_t now_us);

// Bench-JSON-compatible document ({"bench":"odq_telemetry",...}).
// Bumping the layout requires bumping kTelemetrySchemaVersion (gated by
// the telemetry row in tools/testdata/serve_baseline.json).
inline constexpr int kTelemetrySchemaVersion = 1;
void telemetry_to_json(const TelemetrySnapshot& snap, util::JsonWriter& w);

// Prometheus text exposition format (summary-style quantile lines per
// window; metric names get an odq_ prefix and dots become underscores).
std::string telemetry_to_prometheus(const TelemetrySnapshot& snap);

// -- Exporter -------------------------------------------------------------

struct TelemetryExporterConfig {
  std::string json_path;  // "" skips the JSON snapshot file
  std::string prom_path;  // "" skips the Prometheus file
  std::uint64_t flush_interval_ms = 250;
  // Monotonic microsecond clock driving the epoch ring. Defaults to a
  // steady clock anchored at the exporter's construction.
  std::function<std::uint64_t()> now_us;
};

// Background flusher: every flush_interval_ms, advance the registry and
// atomically rewrite the configured files. stop() performs a final drain
// flush (so samples recorded up to shutdown are on disk) and joins;
// idempotent, and the destructor calls it.
class TelemetryExporter {
 public:
  explicit TelemetryExporter(TelemetryExporterConfig cfg);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  void start();
  void stop();

  // One advance-and-write cycle; returns the snapshot it wrote. Usable
  // without start() for manual-clock tests and one-shot tools.
  TelemetrySnapshot flush_once();

  std::uint64_t flush_count() const {
    return flush_seq_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  TelemetryExporterConfig cfg_;
  std::atomic<std::uint64_t> flush_seq_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace odq::obs
