#include "obs/fidelity.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>

#include "util/json.hpp"

namespace odq::obs {

namespace {

std::atomic<int> g_fidelity_enabled{-1};  // -1: read ODQ_FIDELITY on first use

struct Cell {
  std::int64_t calls = 0;
  float threshold = 0.0f;
  ErrorAccum total;
  ErrorAccum predictor;
  ErrorAccum sensitive;
  ErrorAccum insensitive;
  double hist_lo = 0.0;
  double hist_hi = 0.0;
  std::vector<std::uint64_t> hist;  // empty until the first ODQ record
};

struct Registry {
  std::mutex mutex;
  std::map<std::pair<std::string, int>, Cell> cells;
};

// Leaked on purpose: executors may record during static destruction.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

// Scope redirection: when a FidelityScope is alive on this thread, records
// land in its private registry instead of the global one.
thread_local Registry* t_scope_registry = nullptr;

Registry& active_registry() {
  return t_scope_registry != nullptr ? *t_scope_registry : registry();
}

// Histogram bounds for a cell: anchored at the threshold when there is one
// (the overlay point lands on an exact bin edge at 1/4 of the range), else
// a unit range. The last bin absorbs overflow, the first clamps negatives.
double hist_hi_for(float threshold) {
  return threshold > 0.0f ? 4.0 * static_cast<double>(threshold) : 1.0;
}

void hist_add(Cell& c, double x) {
  const double w = (c.hist_hi - c.hist_lo) / static_cast<double>(c.hist.size());
  auto bin = static_cast<std::int64_t>((x - c.hist_lo) / w);
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(c.hist.size()) - 1);
  ++c.hist[static_cast<std::size_t>(bin)];
}

}  // namespace

bool fidelity_enabled() {
  if (t_scope_registry != nullptr) return true;
  int v = g_fidelity_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("ODQ_FIDELITY");
    v = (env != nullptr && env[0] != '\0' && std::string(env) != "0") ? 1 : 0;
    g_fidelity_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_fidelity_enabled(bool on) {
  g_fidelity_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

double ErrorAccum::sqnr_db() const {
  if (count == 0) return 0.0;
  if (err_sq <= 0.0) return 300.0;  // exact match
  if (ref_sq <= 0.0) return -300.0;
  return std::clamp(10.0 * std::log10(ref_sq / err_sq), -300.0, 300.0);
}

double ErrorAccum::cosine() const {
  const double denom = std::sqrt(ref_sq) * std::sqrt(out_sq);
  if (denom <= 0.0) return 1.0;
  return dot / denom;
}

double ErrorAccum::rmse() const {
  return count > 0 ? std::sqrt(err_sq / static_cast<double>(count)) : 0.0;
}

void ErrorAccum::add(double ref, double out) {
  const double err = out - ref;
  ++count;
  ref_sq += ref * ref;
  out_sq += out * out;
  dot += ref * out;
  err_sq += err * err;
  err_abs += std::abs(err);
  err_max = std::max(err_max, std::abs(err));
}

void ErrorAccum::merge(const ErrorAccum& other) {
  count += other.count;
  ref_sq += other.ref_sq;
  out_sq += other.out_sq;
  dot += other.dot;
  err_sq += other.err_sq;
  err_abs += other.err_abs;
  err_max = std::max(err_max, other.err_max);
}

std::uint64_t FidelityLayerSnapshot::hist_total() const {
  std::uint64_t t = 0;
  for (std::uint64_t c : hist) t += c;
  return t;
}

double FidelityLayerSnapshot::hist_fraction_above(double t) const {
  const std::uint64_t total = hist_total();
  if (total == 0 || hist.empty()) return 0.0;
  const double w = (hist_hi - hist_lo) / static_cast<double>(hist.size());
  std::uint64_t above = 0;
  for (std::size_t b = 0; b < hist.size(); ++b) {
    if (hist_lo + static_cast<double>(b) * w >= t) above += hist[b];
  }
  return static_cast<double>(above) / static_cast<double>(total);
}

void fidelity_record(const std::string& scheme, int layer, const float* ref,
                     const float* out, std::int64_t n) {
  if (!fidelity_enabled()) return;
  ErrorAccum acc;
  for (std::int64_t i = 0; i < n; ++i) acc.add(ref[i], out[i]);

  Registry& r = active_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  Cell& c = r.cells[{scheme, layer}];
  ++c.calls;
  c.total.merge(acc);
}

void fidelity_record_odq(const std::string& scheme, int layer, float threshold,
                         const float* ref, const float* full,
                         const float* pred_out, const float* pred_mag,
                         const std::uint8_t* mask, std::int64_t n) {
  if (!fidelity_enabled()) return;
  ErrorAccum total, predictor, sens, insens;
  for (std::int64_t i = 0; i < n; ++i) {
    total.add(ref[i], full[i]);
    predictor.add(ref[i], pred_out[i]);
    if (mask[i] != 0) {
      sens.add(ref[i], full[i]);
    } else {
      insens.add(ref[i], full[i]);
    }
  }

  Registry& r = active_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  Cell& c = r.cells[{scheme, layer}];
  ++c.calls;
  c.threshold = threshold;
  c.total.merge(total);
  c.predictor.merge(predictor);
  c.sensitive.merge(sens);
  c.insensitive.merge(insens);
  if (c.hist.empty()) {
    c.hist_lo = 0.0;
    c.hist_hi = hist_hi_for(threshold);
    c.hist.assign(kFidelityHistBins, 0);
  }
  for (std::int64_t i = 0; i < n; ++i) {
    hist_add(c, static_cast<double>(pred_mag[i]));
  }
}

void FidelityLayerSnapshot::merge(const FidelityLayerSnapshot& other) {
  calls += other.calls;
  if (other.threshold != 0.0f) threshold = other.threshold;
  total.merge(other.total);
  predictor.merge(other.predictor);
  sensitive.merge(other.sensitive);
  insensitive.merge(other.insensitive);
  if (other.hist.empty()) return;
  if (hist.empty()) {
    hist_lo = other.hist_lo;
    hist_hi = other.hist_hi;
    hist = other.hist;
    return;
  }
  if (other.hist_lo == hist_lo && other.hist_hi == hist_hi &&
      other.hist.size() == hist.size()) {
    for (std::size_t b = 0; b < hist.size(); ++b) hist[b] += other.hist[b];
    return;
  }
  // Bound mismatch (e.g. a threshold change between requests): re-bin by
  // bin midpoint into this cell's layout. Lossy at bin granularity, which
  // is all the histogram ever promised.
  const double ow = (other.hist_hi - other.hist_lo) /
                    static_cast<double>(other.hist.size());
  const double w = (hist_hi - hist_lo) / static_cast<double>(hist.size());
  for (std::size_t b = 0; b < other.hist.size(); ++b) {
    if (other.hist[b] == 0) continue;
    const double mid = other.hist_lo + (static_cast<double>(b) + 0.5) * ow;
    auto bin = static_cast<std::int64_t>((mid - hist_lo) / w);
    bin = std::clamp<std::int64_t>(
        bin, 0, static_cast<std::int64_t>(hist.size()) - 1);
    hist[static_cast<std::size_t>(bin)] += other.hist[b];
  }
}

namespace {

std::vector<FidelityLayerSnapshot> snapshot_registry(Registry& r) {
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<FidelityLayerSnapshot> out;
  out.reserve(r.cells.size());
  for (const auto& [key, c] : r.cells) {
    FidelityLayerSnapshot s;
    s.scheme = key.first;
    s.layer = key.second;
    s.calls = c.calls;
    s.threshold = c.threshold;
    s.total = c.total;
    s.predictor = c.predictor;
    s.sensitive = c.sensitive;
    s.insensitive = c.insensitive;
    s.hist_lo = c.hist_lo;
    s.hist_hi = c.hist_hi;
    s.hist = c.hist;
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration is already (scheme, layer)-sorted
}

}  // namespace

std::vector<FidelityLayerSnapshot> fidelity_snapshot() {
  return snapshot_registry(registry());
}

FidelityScope::FidelityScope()
    : registry_(new Registry), prev_(t_scope_registry) {
  t_scope_registry = static_cast<Registry*>(registry_);
}

FidelityScope::~FidelityScope() {
  t_scope_registry = static_cast<Registry*>(prev_);
  delete static_cast<Registry*>(registry_);
}

std::vector<FidelityLayerSnapshot> FidelityScope::snapshot() const {
  return snapshot_registry(*static_cast<Registry*>(registry_));
}

void FidelityScope::reset() {
  Registry& r = *static_cast<Registry*>(registry_);
  std::lock_guard<std::mutex> lock(r.mutex);
  r.cells.clear();
}

void fidelity_reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.cells.clear();
}

namespace {

void accum_to_json(util::JsonWriter& w, const std::string& key,
                   const ErrorAccum& a) {
  w.key(key);
  w.begin_object();
  w.kv("count", a.count);
  w.kv("sqnr_db", a.sqnr_db());
  w.kv("cosine", a.cosine());
  w.kv("max_abs_err", a.err_max);
  w.kv("mean_abs_err", a.mean_abs_err());
  w.kv("rmse", a.rmse());
  w.end_object();
}

}  // namespace

void fidelity_to_json(util::JsonWriter& w) {
  w.begin_array();
  for (const FidelityLayerSnapshot& s : fidelity_snapshot()) {
    w.begin_object();
    w.kv("scheme", s.scheme);
    w.kv("layer", static_cast<std::int64_t>(s.layer));
    w.kv("calls", s.calls);
    accum_to_json(w, "total", s.total);
    if (s.predictor.count > 0) {
      w.kv("threshold", static_cast<double>(s.threshold));
      accum_to_json(w, "predictor_only", s.predictor);
      accum_to_json(w, "sensitive", s.sensitive);
      accum_to_json(w, "insensitive", s.insensitive);
    }
    if (!s.hist.empty()) {
      w.key("pred_magnitude_hist");
      w.begin_object();
      w.kv("lo", s.hist_lo);
      w.kv("hi", s.hist_hi);
      w.kv("fraction_above_threshold",
           s.hist_fraction_above(static_cast<double>(s.threshold)));
      w.key("counts");
      w.begin_array();
      for (std::uint64_t c : s.hist) w.value(static_cast<std::uint64_t>(c));
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
}

}  // namespace odq::obs
