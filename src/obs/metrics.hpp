// Metrics registry: named counters, gauges and distributions with
// per-thread shards, merged on snapshot.
//
// Design goals (docs/observability.md has the full conventions):
//
//  * Near-zero cost when disabled: every record path starts with one
//    relaxed atomic load and branches out. Collection defaults to off and
//    is switched on by the ODQ_METRICS environment variable (any non-empty
//    value except "0") or set_metrics_enabled(true).
//  * No contention when enabled: each recording thread writes its own
//    shard. Counters use a single-writer atomic cell per (metric, thread);
//    distributions keep a util::RunningStats + util::Histogram pair behind
//    a per-shard mutex that only the snapshot ever contends on.
//  * Deterministic snapshots: merging shards is order-independent for
//    counters/gauges and for RunningStats sums/counts/extrema, so a
//    snapshot after N recorded events is identical however the work was
//    sharded across threads.
//
// Usage on a hot-ish path (resolve the handle once, outside the loop):
//
//   static obs::Counter& c = obs::counter("odq.conv.outputs");
//   c.add(n);
//
// Handles returned by counter()/gauge()/distribution() stay valid for the
// process lifetime; the registry never deletes metrics (reset() zeroes
// values but keeps the objects).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace odq::util {
class JsonWriter;
}  // namespace odq::util

namespace odq::obs {

// Global metrics switch. Initialized from ODQ_METRICS on first query.
bool metrics_enabled();
void set_metrics_enabled(bool on);

// Monotonically increasing integer, e.g. "threadpool.tasks".
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::int64_t delta) {
    if (!metrics_enabled()) return;
    cell().fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  const std::string& name() const { return name_; }
  std::int64_t total() const;
  void reset();

 private:
  std::atomic<std::int64_t>& cell();

  std::string name_;
  mutable std::mutex mutex_;  // guards cells_ growth
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> cells_;
};

// Last-write-wins double, e.g. "sim.last_idle_fraction".
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(double v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
    written_.store(true, std::memory_order_relaxed);
    note_watermark(v);
  }

  // Atomic increment/decrement, for level gauges (queue depth, in-flight
  // requests) whose +1/-1 halves run on different threads with no shared
  // lock — last-write-wins set() would lose updates there.
  void add(double delta) {
    if (!metrics_enabled()) return;
    const double prev = value_.fetch_add(delta, std::memory_order_relaxed);
    written_.store(true, std::memory_order_relaxed);
    note_watermark(prev + delta);
  }

  const std::string& name() const { return name_; }
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool written() const { return written_.load(std::memory_order_relaxed); }

  // Highest value the gauge reached since the last take_watermark()/reset()
  // (for level gauges: the true peak — each add() notes the level it
  // produced, so concurrent +1/-1 traffic cannot hide a spike between two
  // snapshot reads).
  double max_watermark() const {
    return watermark_.load(std::memory_order_relaxed);
  }

  // Read the watermark and re-arm it at the current value, so the next
  // snapshot window reports peaks since this one ("reset-on-snapshot").
  double take_watermark();

  void reset();

 private:
  void note_watermark(double v) {
    double cur = watermark_.load(std::memory_order_relaxed);
    while (v > cur && !watermark_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  std::string name_;
  std::atomic<double> value_{0.0};
  std::atomic<double> watermark_{0.0};
  std::atomic<bool> written_{false};
};

// Sample distribution: streaming moments plus a fixed-bin histogram,
// e.g. "threadpool.queue_wait_us".
class Distribution {
 public:
  Distribution(std::string name, double lo, double hi, std::size_t bins)
      : name_(std::move(name)), lo_(lo), hi_(hi), bins_(bins) {}

  void record(double x);

  const std::string& name() const { return name_; }
  // Merged view over all shards.
  util::RunningStats stats() const;
  util::Histogram histogram() const;
  void reset();

 private:
  struct Shard {
    std::mutex mutex;
    util::RunningStats stats;
    std::unique_ptr<util::Histogram> hist;
  };
  Shard& shard();

  std::string name_;
  double lo_, hi_;
  std::size_t bins_;
  mutable std::mutex mutex_;  // guards shards_ growth
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Registry lookups: create-on-first-use, then return the same object for
// the same name. Mixing kinds under one name throws std::invalid_argument.
// A Distribution's bounds are fixed by its first registration.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Distribution& distribution(const std::string& name, double lo = 0.0,
                           double hi = 1.0, std::size_t bins = 32);

// One merged metric value at snapshot time.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kDistribution };
  std::string name;
  Kind kind = Kind::kCounter;
  std::int64_t count = 0;  // counter total or distribution sample count
  double value = 0.0;      // gauge value or distribution mean
  // Distribution extrema/moments; for gauges, max carries the high
  // watermark observed since the previous snapshot (taking a snapshot
  // re-arms it at the current value).
  double min = 0.0, max = 0.0, stddev = 0.0, sum = 0.0;
};

// Deterministic snapshot: metrics sorted by name, shards merged. Always
// includes a synthetic "trace.dropped_events" counter mirroring
// trace_dropped_events(), so span loss from ODQ_TRACE_MAX_EVENTS
// saturation is visible wherever metrics are, not only in the trace file.
std::vector<MetricValue> metrics_snapshot();

// Zero every registered metric (handles stay valid). Test/tool helper.
void metrics_reset();

// Serialize a snapshot as a JSON object keyed by metric name.
void metrics_to_json(util::JsonWriter& w);

}  // namespace odq::obs
