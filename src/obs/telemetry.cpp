#include "obs/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/json.hpp"

namespace odq::obs {

namespace {

std::atomic<int> g_telemetry_enabled{-1};  // -1: read ODQ_TELEMETRY first

bool env_value_is_path(const std::string& v) {
  return v.find('/') != std::string::npos ||
         (v.size() > 5 && v.compare(v.size() - 5, 5, ".json") == 0);
}

std::string& env_path_storage() {
  static std::string* p = new std::string;  // leaked: read during exit
  return *p;
}

}  // namespace

bool telemetry_enabled() {
  int v = g_telemetry_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("ODQ_TELEMETRY");
    const std::string val = env != nullptr ? env : "";
    v = (!val.empty() && val != "0") ? 1 : 0;
    if (v != 0 && env_value_is_path(val)) env_path_storage() = val;
    g_telemetry_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_telemetry_enabled(bool on) {
  g_telemetry_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::string telemetry_env_path() {
  telemetry_enabled();  // force the ODQ_TELEMETRY probe
  return env_path_storage();
}

// -- WindowedSeries -------------------------------------------------------

void WindowedSeries::advance(std::uint64_t now_us) {
  const std::int64_t e = static_cast<std::int64_t>(now_us / 1000000);
  LogHistogram cum = live_.merged();

  std::lock_guard<std::mutex> lock(mutex_);
  LogHistogram delta = cum;
  delta.subtract(last_cum_);
  last_cum_ = std::move(cum);

  const std::int64_t target = std::max(e, cur_epoch_);
  cur_epoch_ = target;
  if (delta.empty()) return;
  Slot& s = ring_[static_cast<std::size_t>(target) % kTelemetryRingSlots];
  if (s.epoch != target) {
    s.epoch = target;
    s.data = LogHistogram{};
  }
  s.data.merge(delta);
}

LogHistogram WindowedSeries::window(int seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  LogHistogram out;
  if (cur_epoch_ < 0) return out;
  for (const Slot& s : ring_) {
    if (s.epoch > cur_epoch_ - seconds && s.epoch <= cur_epoch_) {
      out.merge(s.data);
    }
  }
  return out;
}

void WindowedSeries::reset() {
  live_.reset();
  std::lock_guard<std::mutex> lock(mutex_);
  last_cum_ = LogHistogram{};
  cur_epoch_ = -1;
  for (Slot& s : ring_) {
    s.epoch = -1;
    s.data = LogHistogram{};
  }
}

// -- WindowedCounter ------------------------------------------------------

void WindowedCounter::advance(std::uint64_t now_us) {
  const std::int64_t e = static_cast<std::int64_t>(now_us / 1000000);
  const std::int64_t cum = total_.load(std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mutex_);
  const std::int64_t delta = cum - last_cum_;
  last_cum_ = cum;

  const std::int64_t target = std::max(e, cur_epoch_);
  cur_epoch_ = target;
  if (delta == 0) return;
  Slot& s = ring_[static_cast<std::size_t>(target) % kTelemetryRingSlots];
  if (s.epoch != target) {
    s.epoch = target;
    s.value = 0;
  }
  s.value += delta;
}

std::int64_t WindowedCounter::window(int seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t out = 0;
  if (cur_epoch_ < 0) return out;
  for (const Slot& s : ring_) {
    if (s.epoch > cur_epoch_ - seconds && s.epoch <= cur_epoch_) {
      out += s.value;
    }
  }
  return out;
}

void WindowedCounter::reset() {
  total_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  last_cum_ = 0;
  cur_epoch_ = -1;
  for (Slot& s : ring_) {
    s.epoch = -1;
    s.value = 0;
  }
}

// -- Registry -------------------------------------------------------------

namespace {

struct TelemetryRegistry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<WindowedSeries>> series;
  std::map<std::string, std::unique_ptr<WindowedCounter>> counters;
};

// Leaked on purpose: worker threads may record during static destruction.
TelemetryRegistry& telemetry_registry() {
  static TelemetryRegistry* r = new TelemetryRegistry;
  return *r;
}

}  // namespace

WindowedSeries& telemetry_series(const std::string& name) {
  TelemetryRegistry& r = telemetry_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.series.find(name);
  if (it == r.series.end()) {
    if (r.counters.count(name) > 0) {
      throw std::invalid_argument("telemetry '" + name + "' is a counter");
    }
    it = r.series.emplace(name, std::make_unique<WindowedSeries>(name)).first;
  }
  return *it->second;
}

WindowedCounter& telemetry_counter(const std::string& name) {
  TelemetryRegistry& r = telemetry_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    if (r.series.count(name) > 0) {
      throw std::invalid_argument("telemetry '" + name + "' is a series");
    }
    it = r.counters.emplace(name, std::make_unique<WindowedCounter>(name))
             .first;
  }
  return *it->second;
}

void telemetry_reset() {
  TelemetryRegistry& r = telemetry_registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [_, s] : r.series) s->reset();
  for (auto& [_, c] : r.counters) c->reset();
}

// -- Snapshot / exposition ------------------------------------------------

namespace {

TelemetryWindowStats window_stats(const LogHistogram& h) {
  TelemetryWindowStats s;
  s.count = h.count();
  s.mean = h.mean();
  s.min = h.min();
  s.max = h.max();
  s.p50 = h.quantile(0.50);
  s.p95 = h.quantile(0.95);
  s.p99 = h.quantile(0.99);
  s.p999 = h.quantile(0.999);
  return s;
}

}  // namespace

TelemetrySnapshot telemetry_snapshot(std::uint64_t now_us) {
  // Collect stable handles under the registry lock, then advance/read each
  // object under its own lock (registered objects are never deleted).
  std::vector<WindowedSeries*> series;
  std::vector<WindowedCounter*> counters;
  {
    TelemetryRegistry& r = telemetry_registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    series.reserve(r.series.size());
    counters.reserve(r.counters.size());
    for (auto& [_, s] : r.series) series.push_back(s.get());
    for (auto& [_, c] : r.counters) counters.push_back(c.get());
  }

  TelemetrySnapshot snap;
  snap.generated_us = now_us;
  snap.trace_dropped_events = trace_dropped_events();
  for (WindowedSeries* s : series) {
    s->advance(now_us);
    TelemetrySeriesSnapshot out;
    out.name = s->name();
    out.total = window_stats(s->total());
    for (std::size_t i = 0; i < kTelemetryWindowsS.size(); ++i) {
      out.windows[i] = window_stats(s->window(kTelemetryWindowsS[i]));
    }
    snap.series.push_back(std::move(out));
  }
  for (WindowedCounter* c : counters) {
    c->advance(now_us);
    TelemetryCounterSnapshot out;
    out.name = c->name();
    out.total = c->total();
    for (std::size_t i = 0; i < kTelemetryWindowsS.size(); ++i) {
      out.windows[i] = c->window(kTelemetryWindowsS[i]);
    }
    snap.counters.push_back(std::move(out));
  }
  // std::map iteration is already name-sorted; keep the invariant explicit.
  std::sort(snap.series.begin(), snap.series.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

namespace {

std::string window_label(int seconds) {
  return std::to_string(seconds) + "s";
}

void write_window_stats(util::JsonWriter& w, const TelemetryWindowStats& s) {
  w.begin_object();
  w.kv("count", static_cast<std::uint64_t>(s.count));
  w.kv("mean", s.mean);
  w.kv("min", static_cast<std::uint64_t>(s.min));
  w.kv("max", static_cast<std::uint64_t>(s.max));
  w.kv("p50", static_cast<std::uint64_t>(s.p50));
  w.kv("p95", static_cast<std::uint64_t>(s.p95));
  w.kv("p99", static_cast<std::uint64_t>(s.p99));
  w.kv("p999", static_cast<std::uint64_t>(s.p999));
  w.end_object();
}

}  // namespace

void telemetry_to_json(const TelemetrySnapshot& snap, util::JsonWriter& w) {
  w.begin_object();
  w.kv("bench", "odq_telemetry");
  w.kv("schema_version", kTelemetrySchemaVersion);
  w.kv("generated_us", static_cast<std::uint64_t>(snap.generated_us));
  w.kv("flush_seq", static_cast<std::uint64_t>(snap.flush_seq));
  w.kv("trace_dropped_events",
       static_cast<std::uint64_t>(snap.trace_dropped_events));
  w.key("windows_s");
  w.begin_array();
  for (int s : kTelemetryWindowsS) w.value(s);
  w.end_array();
  w.key("series");
  w.begin_object();
  for (const TelemetrySeriesSnapshot& s : snap.series) {
    w.key(s.name);
    w.begin_object();
    w.key("total");
    write_window_stats(w, s.total);
    for (std::size_t i = 0; i < kTelemetryWindowsS.size(); ++i) {
      w.key(window_label(kTelemetryWindowsS[i]));
      write_window_stats(w, s.windows[i]);
    }
    w.end_object();
  }
  w.end_object();
  w.key("counters");
  w.begin_object();
  for (const TelemetryCounterSnapshot& c : snap.counters) {
    w.key(c.name);
    w.begin_object();
    w.kv("total", c.total);
    for (std::size_t i = 0; i < kTelemetryWindowsS.size(); ++i) {
      w.kv(window_label(kTelemetryWindowsS[i]), c.windows[i]);
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

namespace {

// "serve.latency_us" -> "odq_serve_latency_us": Prometheus metric names
// allow [a-zA-Z0-9_:]; everything else becomes '_'.
std::string prom_name(const std::string& name) {
  std::string out = "odq_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

}  // namespace

std::string telemetry_to_prometheus(const TelemetrySnapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const TelemetrySeriesSnapshot& s : snap.series) {
    const std::string m = prom_name(s.name);
    out += "# TYPE " + m + " summary\n";
    struct QLine {
      const char* q;
      std::uint64_t TelemetryWindowStats::* field;
    };
    static constexpr QLine kQ[] = {
        {"0.5", &TelemetryWindowStats::p50},
        {"0.95", &TelemetryWindowStats::p95},
        {"0.99", &TelemetryWindowStats::p99},
        {"0.999", &TelemetryWindowStats::p999},
    };
    auto emit = [&](const std::string& window,
                    const TelemetryWindowStats& ws) {
      for (const QLine& q : kQ) {
        out += m + "{window=\"" + window + "\",quantile=\"" + q.q + "\"} ";
        append_u64(out, ws.*(q.field));
        out += '\n';
      }
      out += m + "_count{window=\"" + window + "\"} ";
      append_u64(out, ws.count);
      out += '\n';
      out += m + "_sum{window=\"" + window + "\"} ";
      append_u64(out,
                 static_cast<std::uint64_t>(ws.mean * double(ws.count) + 0.5));
      out += '\n';
    };
    emit("total", s.total);
    for (std::size_t i = 0; i < kTelemetryWindowsS.size(); ++i) {
      emit(window_label(kTelemetryWindowsS[i]), s.windows[i]);
    }
  }
  for (const TelemetryCounterSnapshot& c : snap.counters) {
    const std::string m = prom_name(c.name) + "_total";
    out += "# TYPE " + m + " counter\n";
    out += m + ' ' + std::to_string(c.total) + '\n';
    for (std::size_t i = 0; i < kTelemetryWindowsS.size(); ++i) {
      out += prom_name(c.name) + "{window=\"" +
             window_label(kTelemetryWindowsS[i]) + "\"} " +
             std::to_string(c.windows[i]) + '\n';
    }
  }
  out += "# TYPE odq_trace_dropped_events_total counter\n";
  out += "odq_trace_dropped_events_total " +
         std::to_string(snap.trace_dropped_events) + '\n';
  return out;
}

// -- Exporter -------------------------------------------------------------

namespace {

// tmp + rename, same valid-or-absent contract as write_chrome_trace and the
// v3 checkpoint writer. Throws on I/O failure.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("telemetry export: cannot open " + tmp);
  }
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (n != content.size() || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("telemetry export: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("telemetry export: cannot rename to " + path);
  }
}

std::uint64_t steady_now_us() {
  using clock_type = std::chrono::steady_clock;
  static const clock_type::time_point epoch = clock_type::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock_type::now() -
                                                            epoch)
          .count());
}

}  // namespace

TelemetryExporter::TelemetryExporter(TelemetryExporterConfig cfg)
    : cfg_(std::move(cfg)) {
  if (!cfg_.now_us) cfg_.now_us = steady_now_us;
}

TelemetryExporter::~TelemetryExporter() { stop(); }

TelemetrySnapshot TelemetryExporter::flush_once() {
  TelemetrySnapshot snap = telemetry_snapshot(cfg_.now_us());
  snap.flush_seq = flush_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!cfg_.json_path.empty()) {
    util::JsonWriter w;
    telemetry_to_json(snap, w);
    write_file_atomic(cfg_.json_path, w.take());
  }
  if (!cfg_.prom_path.empty()) {
    write_file_atomic(cfg_.prom_path, telemetry_to_prometheus(snap));
  }
  return snap;
}

void TelemetryExporter::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { run(); });
}

void TelemetryExporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = false;
  }
  // Final drain: everything recorded before stop() was called is advanced
  // into the ring and on disk after this flush.
  try {
    flush_once();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "odq telemetry flush: %s\n", e.what());
  }
}

void TelemetryExporter::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    lock.unlock();
    try {
      flush_once();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "odq telemetry flush: %s\n", e.what());
    }
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(cfg_.flush_interval_ms),
                 [this] { return stopping_; });
  }
}

}  // namespace odq::obs
