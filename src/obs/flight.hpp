// Anomaly flight recorder: a bounded ring of "what exactly was the model
// looking at" snapshots for the serving quality monitor.
//
// When the drift detector (obs/quality.hpp) flags a layer, the shadow lane
// records the offending request — its input tensor plus the per-layer
// fidelity stats of that single request — into a fixed-capacity ring
// (oldest record overwritten first, bounded memory under a drift storm).
// dump() serializes the ring to a v3-checkpoint-style binary artifact:
// magic + version, a header naming the model/scheme/threshold/checkpoint
// the stats were produced under, length-prefixed records, and a trailing
// CRC32 over the payload, written tmp+rename so the file on disk is always
// valid or absent. load() verifies magic, size, and CRC before parsing, so
// a truncated or bit-flipped dump is a typed kCorruption error, never a
// crash.
//
// `odq_fidelity --replay <dump>` rebuilds the model from the header,
// re-evaluates each recorded input under a FidelityScope, and checks the
// recomputed per-layer stats against the recorded ones bit-for-bit — the
// offline end of the live-quality loop (docs/observability.md).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/fidelity.hpp"
#include "tensor/tensor.hpp"
#include "util/status.hpp"

namespace odq::obs {

// Provenance the replay tool needs to rebuild the evaluation environment.
struct FlightContext {
  std::string model;       // model zoo name ("lenet5", "resnet20", ...)
  std::string scheme;      // executor scheme ("odq", "drq", ...)
  std::string checkpoint;  // v3 checkpoint path; "" = deterministic init
  std::int64_t width = 8;  // model width parameter
  float threshold = 0.0f;  // ODQ sensitivity threshold
};

// One recorded anomaly: the request input and the per-layer fidelity stats
// of exactly that request (what --replay reproduces bit-identically).
struct FlightRecord {
  std::uint64_t request_id = 0;
  std::string reason;        // human-readable trigger, e.g. "hist_drift"
  int layer = -1;            // flagged conv id
  double distance = 0.0;     // histogram distance that tripped the alarm
  double sens_delta = 0.0;   // |observed - baseline| sensitive fraction
  tensor::Tensor input;      // [1,C,H,W] request input
  std::vector<FidelityLayerSnapshot> layers;  // per-request stats
};

struct FlightDump {
  FlightContext context;
  std::vector<FlightRecord> records;
};

inline constexpr std::size_t kDefaultFlightCapacity = 8;

// Thread-safe bounded ring. record() is called from the shadow lane
// thread; dump()/records() from the tool's main thread after drain.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultFlightCapacity);

  void set_context(FlightContext ctx);

  // Append, overwriting the oldest record once `capacity` is reached.
  void record(FlightRecord rec);

  // Oldest-first copy of the ring.
  std::vector<FlightRecord> records() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  // Records accepted since construction (>= size() once the ring wraps).
  std::uint64_t total_recorded() const;

  // Serialize the ring (possibly empty) to `path`, valid-or-absent.
  util::Status dump(const std::string& path) const;

  // Parse and CRC-verify a dump file.
  static util::StatusOr<FlightDump> load(const std::string& path);

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  FlightContext context_;
  std::vector<FlightRecord> ring_;  // ring_[ (head_ + i) % size ] oldest-first
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace odq::obs
