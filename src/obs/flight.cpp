#include "obs/flight.hpp"

#include <cstdio>
#include <cstring>

#include "util/crc32.hpp"
#include "util/fault.hpp"

namespace odq::obs {

using util::Status;
using util::StatusCode;
using util::StatusOr;

namespace {

// "DOQF" + version + payload + CRC32(payload). Little-endian fixed-width
// scalars (the same assumption the v3 checkpoint writer makes).
constexpr char kMagic[4] = {'D', 'O', 'Q', 'F'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_i64(std::string& out, std::int64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_f32(std::string& out, float v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_f64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void put_accum(std::string& out, const ErrorAccum& a) {
  put_i64(out, a.count);
  put_f64(out, a.ref_sq);
  put_f64(out, a.out_sq);
  put_f64(out, a.dot);
  put_f64(out, a.err_sq);
  put_f64(out, a.err_abs);
  put_f64(out, a.err_max);
}

// Bounds-checked read cursor: every get_* reports corruption instead of
// walking off the end of a truncated dump.
struct Cursor {
  const char* p;
  std::size_t left;
  bool ok = true;

  bool take(void* dst, std::size_t n) {
    if (!ok || left < n) {
      ok = false;
      return false;
    }
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    take(&v, sizeof v);
    return v;
  }
  float f32() {
    float v = 0;
    take(&v, sizeof v);
    return v;
  }
  double f64() {
    double v = 0;
    take(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || left < n) {
      ok = false;
      return {};
    }
    std::string s(p, n);
    p += n;
    left -= n;
    return s;
  }
  ErrorAccum accum() {
    ErrorAccum a;
    a.count = i64();
    a.ref_sq = f64();
    a.out_sq = f64();
    a.dot = f64();
    a.err_sq = f64();
    a.err_abs = f64();
    a.err_max = f64();
    return a;
  }
};

void serialize_record(std::string& out, const FlightRecord& rec) {
  put_u64(out, rec.request_id);
  put_str(out, rec.reason);
  put_i64(out, rec.layer);
  put_f64(out, rec.distance);
  put_f64(out, rec.sens_delta);
  const tensor::Shape& sh = rec.input.shape();
  put_u32(out, static_cast<std::uint32_t>(sh.rank()));
  for (std::size_t d = 0; d < sh.rank(); ++d) put_i64(out, sh[d]);
  out.append(reinterpret_cast<const char*>(rec.input.data()),
             static_cast<std::size_t>(rec.input.numel()) * sizeof(float));
  put_u32(out, static_cast<std::uint32_t>(rec.layers.size()));
  for (const FidelityLayerSnapshot& s : rec.layers) {
    put_str(out, s.scheme);
    put_i64(out, s.layer);
    put_i64(out, s.calls);
    put_f32(out, s.threshold);
    put_accum(out, s.total);
    put_accum(out, s.predictor);
    put_accum(out, s.sensitive);
    put_accum(out, s.insensitive);
    put_f64(out, s.hist_lo);
    put_f64(out, s.hist_hi);
    put_u32(out, static_cast<std::uint32_t>(s.hist.size()));
    for (std::uint64_t c : s.hist) put_u64(out, c);
  }
}

bool parse_record(Cursor& c, FlightRecord& rec) {
  rec.request_id = c.u64();
  rec.reason = c.str();
  rec.layer = static_cast<int>(c.i64());
  rec.distance = c.f64();
  rec.sens_delta = c.f64();
  const std::uint32_t rank = c.u32();
  if (!c.ok || rank > 8) return false;
  std::vector<std::int64_t> dims(rank);
  std::int64_t numel = 1;
  for (std::uint32_t d = 0; d < rank; ++d) {
    dims[d] = c.i64();
    if (!c.ok || dims[d] <= 0 || dims[d] > (1 << 24)) return false;
    numel *= dims[d];
  }
  if (numel < 0 ||
      c.left < static_cast<std::size_t>(numel) * sizeof(float)) {
    return false;
  }
  std::vector<float> data(static_cast<std::size_t>(numel));
  if (!c.take(data.data(), data.size() * sizeof(float))) return false;
  rec.input = tensor::Tensor(tensor::Shape(std::move(dims)), std::move(data));
  const std::uint32_t nlayers = c.u32();
  if (!c.ok || nlayers > 4096) return false;
  rec.layers.resize(nlayers);
  for (std::uint32_t l = 0; l < nlayers; ++l) {
    FidelityLayerSnapshot& s = rec.layers[l];
    s.scheme = c.str();
    s.layer = static_cast<int>(c.i64());
    s.calls = c.i64();
    s.threshold = c.f32();
    s.total = c.accum();
    s.predictor = c.accum();
    s.sensitive = c.accum();
    s.insensitive = c.accum();
    s.hist_lo = c.f64();
    s.hist_hi = c.f64();
    const std::uint32_t nbins = c.u32();
    if (!c.ok || nbins > 65536) return false;
    s.hist.resize(nbins);
    for (std::uint32_t b = 0; b < nbins; ++b) s.hist[b] = c.u64();
  }
  return c.ok;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void FlightRecorder::set_context(FlightContext ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  context_ = std::move(ctx);
}

void FlightRecorder::record(FlightRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
    return;
  }
  ring_[head_] = std::move(rec);
  head_ = (head_ + 1) % capacity_;
}

std::vector<FlightRecord> FlightRecorder::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

util::Status FlightRecorder::dump(const std::string& path) const {
  std::string payload;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    put_u32(payload, kVersion);
    put_str(payload, context_.model);
    put_str(payload, context_.scheme);
    put_str(payload, context_.checkpoint);
    put_i64(payload, context_.width);
    put_f32(payload, context_.threshold);
    put_u32(payload, static_cast<std::uint32_t>(ring_.size()));
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      serialize_record(payload, ring_[(head_ + i) % ring_.size()]);
    }
  }
  const std::uint32_t crc =
      util::crc32(payload.data(), payload.size());

  const std::string tmp = path + ".tmp";
  if (util::fault_fire("flight.dump")) {
    return Status(StatusCode::kIoError, "injected flight.dump fault");
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status(StatusCode::kIoError, "flight dump: cannot open " + tmp);
  }
  bool ok = std::fwrite(kMagic, 1, sizeof kMagic, f) == sizeof kMagic;
  ok = ok && std::fwrite(payload.data(), 1, payload.size(), f) ==
                 payload.size();
  ok = ok && std::fwrite(&crc, 1, sizeof crc, f) == sizeof crc;
  ok = ok && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kIoError, "flight dump: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kIoError,
                  "flight dump: cannot rename to " + path);
  }
  return Status::Ok();
}

StatusOr<FlightDump> FlightRecorder::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status(StatusCode::kNotFound, "flight dump: cannot open " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    return Status(StatusCode::kIoError, "flight dump: read error on " + path);
  }
  if (bytes.size() < sizeof kMagic + sizeof(std::uint32_t) * 2 ||
      std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return Status(StatusCode::kCorruption,
                  "flight dump: bad magic or truncated header in " + path);
  }
  const std::size_t payload_size =
      bytes.size() - sizeof kMagic - sizeof(std::uint32_t);
  const char* payload = bytes.data() + sizeof kMagic;
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof stored_crc,
              sizeof stored_crc);
  if (util::crc32(payload, payload_size) != stored_crc) {
    return Status(StatusCode::kCorruption,
                  "flight dump: CRC mismatch in " + path);
  }

  Cursor c{payload, payload_size};
  FlightDump dump;
  const std::uint32_t version = c.u32();
  if (!c.ok || version != kVersion) {
    return Status(StatusCode::kCorruption,
                  "flight dump: unsupported version in " + path);
  }
  dump.context.model = c.str();
  dump.context.scheme = c.str();
  dump.context.checkpoint = c.str();
  dump.context.width = c.i64();
  dump.context.threshold = c.f32();
  const std::uint32_t nrecords = c.u32();
  if (!c.ok || nrecords > 65536) {
    return Status(StatusCode::kCorruption,
                  "flight dump: implausible record count in " + path);
  }
  dump.records.resize(nrecords);
  for (std::uint32_t i = 0; i < nrecords; ++i) {
    if (!parse_record(c, dump.records[i])) {
      return Status(StatusCode::kCorruption,
                    "flight dump: malformed record " + std::to_string(i) +
                        " in " + path);
    }
  }
  if (c.left != 0) {
    return Status(StatusCode::kCorruption,
                  "flight dump: trailing bytes in " + path);
  }
  return dump;
}

}  // namespace odq::obs
