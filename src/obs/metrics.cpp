#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "obs/trace.hpp"
#include "util/json.hpp"

namespace odq::obs {

namespace {

std::atomic<int> g_metrics_enabled{-1};  // -1: read ODQ_METRICS on first use

// Thread-local cache: metric instance -> this thread's shard/cell. One map
// serves every metric kind (instances have distinct addresses). Entries die
// with the thread; the shards they point to are owned by the metric and
// keep their accumulated values.
thread_local std::unordered_map<const void*, void*> t_shards;

struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Distribution>> distributions;
};

// Leaked on purpose: worker threads may record during static destruction.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

}  // namespace

bool metrics_enabled() {
  int v = g_metrics_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("ODQ_METRICS");
    v = (env != nullptr && env[0] != '\0' && std::string(env) != "0") ? 1 : 0;
    g_metrics_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_metrics_enabled(bool on) {
  g_metrics_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::atomic<std::int64_t>& Counter::cell() {
  void*& p = t_shards[this];
  if (p == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    cells_.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
    p = cells_.back().get();
  }
  return *static_cast<std::atomic<std::int64_t>*>(p);
}

std::int64_t Counter::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t sum = 0;
  for (const auto& c : cells_) sum += c->load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& c : cells_) c->store(0, std::memory_order_relaxed);
}

void Gauge::reset() {
  value_.store(0.0, std::memory_order_relaxed);
  watermark_.store(0.0, std::memory_order_relaxed);
  written_.store(false, std::memory_order_relaxed);
}

double Gauge::take_watermark() {
  const double peak = watermark_.load(std::memory_order_relaxed);
  // Re-arm at the current level; a concurrent note_watermark() of a higher
  // value can only push it back up, never lose a peak after this point.
  watermark_.store(value_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  return peak;
}

Distribution::Shard& Distribution::shard() {
  void*& p = t_shards[this];
  if (p == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->hist = std::make_unique<util::Histogram>(lo_, hi_, bins_);
    p = shards_.back().get();
  }
  return *static_cast<Shard*>(p);
}

void Distribution::record(double x) {
  if (!metrics_enabled()) return;
  Shard& s = shard();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.stats.add(x);
  s.hist->add(x);
}

util::RunningStats Distribution::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::RunningStats merged;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> shard_lock(s->mutex);
    merged.merge(s->stats);
  }
  return merged;
}

util::Histogram Distribution::histogram() const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::Histogram merged(lo_, hi_, bins_);
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> shard_lock(s->mutex);
    for (std::size_t b = 0; b < s->hist->bins(); ++b) {
      if (s->hist->count(b) > 0) {
        merged.add_n((s->hist->bin_lo(b) + s->hist->bin_hi(b)) * 0.5,
                     s->hist->count(b));
      }
    }
  }
  return merged;
}

void Distribution::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> shard_lock(s->mutex);
    s->stats = util::RunningStats{};
    s->hist = std::make_unique<util::Histogram>(lo_, hi_, bins_);
  }
}

namespace {

void check_name_free(const Registry& r, const std::string& name,
                     const void* skip_map) {
  if (skip_map != &r.counters && r.counters.count(name) > 0) {
    throw std::invalid_argument("metric '" + name + "' is a counter");
  }
  if (skip_map != &r.gauges && r.gauges.count(name) > 0) {
    throw std::invalid_argument("metric '" + name + "' is a gauge");
  }
  if (skip_map != &r.distributions && r.distributions.count(name) > 0) {
    throw std::invalid_argument("metric '" + name + "' is a distribution");
  }
}

}  // namespace

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    check_name_free(r, name, &r.counters);
    it = r.counters.emplace(name, std::make_unique<Counter>(name)).first;
  }
  return *it->second;
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end()) {
    check_name_free(r, name, &r.gauges);
    it = r.gauges.emplace(name, std::make_unique<Gauge>(name)).first;
  }
  return *it->second;
}

Distribution& distribution(const std::string& name, double lo, double hi,
                           std::size_t bins) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.distributions.find(name);
  if (it == r.distributions.end()) {
    check_name_free(r, name, &r.distributions);
    it = r.distributions
             .emplace(name, std::make_unique<Distribution>(name, lo, hi, bins))
             .first;
  }
  return *it->second;
}

std::vector<MetricValue> metrics_snapshot() {
  Registry& r = registry();
  std::vector<MetricValue> out;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    out.reserve(r.counters.size() + r.gauges.size() + r.distributions.size());
    for (const auto& [name, c] : r.counters) {
      MetricValue v;
      v.name = name;
      v.kind = MetricValue::Kind::kCounter;
      v.count = c->total();
      out.push_back(std::move(v));
    }
    for (const auto& [name, g] : r.gauges) {
      MetricValue v;
      v.name = name;
      v.kind = MetricValue::Kind::kGauge;
      v.value = g->value();
      v.max = g->take_watermark();
      out.push_back(std::move(v));
    }
    for (const auto& [name, d] : r.distributions) {
      const util::RunningStats s = d->stats();
      MetricValue v;
      v.name = name;
      v.kind = MetricValue::Kind::kDistribution;
      v.count = static_cast<std::int64_t>(s.count());
      v.value = s.mean();
      v.min = s.min();
      v.max = s.max();
      v.stddev = s.stddev();
      v.sum = s.sum();
      out.push_back(std::move(v));
    }
  }
  {
    // Synthetic mirror of the trace buffer saturation counter (see header
    // comment): silent span loss must not look like a fast request.
    MetricValue v;
    v.name = "trace.dropped_events";
    v.kind = MetricValue::Kind::kCounter;
    v.count = static_cast<std::int64_t>(trace_dropped_events());
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

void metrics_reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [_, c] : r.counters) c->reset();
  for (auto& [_, g] : r.gauges) g->reset();
  for (auto& [_, d] : r.distributions) d->reset();
}

void metrics_to_json(util::JsonWriter& w) {
  w.begin_object();
  for (const MetricValue& m : metrics_snapshot()) {
    w.key(m.name);
    w.begin_object();
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        w.kv("type", "counter");
        w.kv("count", m.count);
        break;
      case MetricValue::Kind::kGauge:
        w.kv("type", "gauge");
        w.kv("value", m.value);
        w.kv("max_watermark", m.max);
        break;
      case MetricValue::Kind::kDistribution:
        w.kv("type", "distribution");
        w.kv("count", m.count);
        w.kv("mean", m.value);
        w.kv("min", m.min);
        w.kv("max", m.max);
        w.kv("stddev", m.stddev);
        w.kv("sum", m.sum);
        break;
    }
    w.end_object();
  }
  w.end_object();
}

}  // namespace odq::obs
