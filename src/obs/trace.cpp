#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "util/json.hpp"

namespace odq::obs {

namespace {

std::atomic<int> g_trace_enabled{-1};  // -1: read ODQ_TRACE on first use

using clock_type = std::chrono::steady_clock;

clock_type::time_point trace_epoch() {
  static const clock_type::time_point epoch = clock_type::now();
  return epoch;
}

struct EventBuffer {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

struct Collector {
  std::mutex mutex;
  std::vector<std::unique_ptr<EventBuffer>> buffers;
  std::uint32_t next_tid = 0;
};

// Leaked on purpose: worker threads may record during static destruction.
Collector& collector() {
  static Collector* c = new Collector;
  return *c;
}

EventBuffer& thread_buffer() {
  thread_local EventBuffer* buf = [] {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.buffers.push_back(std::make_unique<EventBuffer>());
    c.buffers.back()->tid = c.next_tid++;
    return c.buffers.back().get();
  }();
  return *buf;
}

}  // namespace

bool trace_enabled() {
  int v = g_trace_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("ODQ_TRACE");
    v = (env != nullptr && env[0] != '\0' && std::string(env) != "0") ? 1 : 0;
    g_trace_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_trace_enabled(bool on) {
  if (on) trace_epoch();  // anchor the timeline before the first span
  g_trace_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(clock_type::now() -
                                                   trace_epoch())
      .count();
}

std::uint32_t trace_thread_id() { return thread_buffer().tid; }

void trace_record(std::string name, double ts_us, double dur_us,
                  const char* arg_name, std::int64_t arg_value) {
  if (!trace_enabled()) return;
  EventBuffer& buf = thread_buffer();
  TraceEvent ev;
  ev.name = std::move(name);
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = buf.tid;
  ev.arg_name = arg_name;
  ev.arg_value = arg_value;
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(std::move(ev));
}

void TraceSpan::begin(const char* name) {
  active_ = true;
  name_ = name;
  start_us_ = trace_now_us();
}

void TraceSpan::begin_owned(std::string name) {
  active_ = true;
  name_ = std::move(name);
  start_us_ = trace_now_us();
}

void TraceSpan::end() {
  // Record even if tracing was switched off mid-span: a started span must
  // not dangle, and flush-after-disable is the normal tool shutdown order.
  const double now = trace_now_us();
  EventBuffer& buf = thread_buffer();
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.ts_us = start_us_;
  ev.dur_us = now - start_us_;
  ev.tid = buf.tid;
  ev.arg_name = arg_name_;
  ev.arg_value = arg_value_;
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(std::move(ev));
}

std::vector<TraceEvent> trace_events() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  std::vector<TraceEvent> out;
  for (const auto& buf : c.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

void trace_clear() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  for (const auto& buf : c.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
  }
}

std::string trace_to_json() {
  util::JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  for (const TraceEvent& ev : trace_events()) {
    w.begin_object();
    w.kv("name", ev.name);
    w.kv("ph", "X");
    w.kv("ts", ev.ts_us);
    w.kv("dur", ev.dur_us);
    w.kv("pid", std::int64_t{1});
    w.kv("tid", static_cast<std::int64_t>(ev.tid));
    if (ev.arg_name != nullptr) {
      w.key("args");
      w.begin_object();
      w.kv(ev.arg_name, ev.arg_value);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void write_chrome_trace(const std::string& path) {
  const std::string json = trace_to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("write_chrome_trace: cannot open " + path);
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) {
    throw std::runtime_error("write_chrome_trace: short write to " + path);
  }
}

}  // namespace odq::obs
