#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string_view>

#include "util/json.hpp"

namespace odq::obs {

namespace {

std::atomic<int> g_trace_enabled{-1};  // -1: read ODQ_TRACE on first use
std::atomic<std::uint64_t> g_dropped_events{0};

// Per-thread span-buffer capacity; saturation increments the dropped-events
// counter instead of growing without bound (or silently losing data).
std::size_t trace_max_events() {
  static const std::size_t cap = [] {
    const char* env = std::getenv("ODQ_TRACE_MAX_EVENTS");
    if (env != nullptr && env[0] != '\0') {
      const long long v = std::atoll(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return static_cast<std::size_t>(1) << 20;  // 1M events per thread
  }();
  return cap;
}

// At-exit flush destination (guarded by its own mutex: tools may set it
// while workers record).
struct FlushState {
  std::mutex mutex;
  std::string path;
  bool atexit_registered = false;
};

FlushState& flush_state() {
  static FlushState* s = new FlushState;  // leaked: used during exit
  return *s;
}

void flush_trace_at_exit() {
  std::string path;
  {
    FlushState& s = flush_state();
    std::lock_guard<std::mutex> lock(s.mutex);
    path = s.path;
  }
  if (path.empty()) return;
  try {
    write_chrome_trace(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "odq trace flush: %s\n", e.what());
  }
}

// True when an ODQ_TRACE value names an output file rather than acting as
// a pure on/off switch.
bool env_value_is_path(const std::string& v) {
  return v.find('/') != std::string::npos ||
         (v.size() > 5 && v.compare(v.size() - 5, 5, ".json") == 0);
}

using clock_type = std::chrono::steady_clock;

clock_type::time_point trace_epoch() {
  static const clock_type::time_point epoch = clock_type::now();
  return epoch;
}

struct EventBuffer {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

struct Collector {
  std::mutex mutex;
  std::vector<std::unique_ptr<EventBuffer>> buffers;
  std::uint32_t next_tid = 0;
};

// Leaked on purpose: worker threads may record during static destruction.
Collector& collector() {
  static Collector* c = new Collector;
  return *c;
}

EventBuffer& thread_buffer() {
  thread_local EventBuffer* buf = [] {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.buffers.push_back(std::make_unique<EventBuffer>());
    c.buffers.back()->tid = c.next_tid++;
    return c.buffers.back().get();
  }();
  return *buf;
}

// Active request id for this thread; -1 outside any TraceRequestScope.
thread_local std::int64_t t_req_id = -1;

// Attach "req_id" to the event's first free argument slot when a request
// scope is active. An explicit req_id argument wins (no duplicate key).
void attach_request_id(TraceEvent& ev) {
  if (t_req_id < 0) return;
  constexpr const char* kReqIdKey = "req_id";
  auto is_req_id = [](const char* n) {
    return n != nullptr && std::string_view(n) == "req_id";
  };
  if (is_req_id(ev.arg_name) || is_req_id(ev.arg2_name)) return;
  if (ev.arg_name == nullptr) {
    ev.arg_name = kReqIdKey;
    ev.arg_value = t_req_id;
  } else if (ev.arg2_name == nullptr) {
    ev.arg2_name = kReqIdKey;
    ev.arg2_value = t_req_id;
  }
}

}  // namespace

std::int64_t trace_request_id() { return t_req_id; }

TraceRequestScope::TraceRequestScope(std::int64_t req_id) : prev_(t_req_id) {
  t_req_id = req_id;
}

TraceRequestScope::~TraceRequestScope() { t_req_id = prev_; }

bool trace_enabled() {
  int v = g_trace_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("ODQ_TRACE");
    const std::string val = env != nullptr ? env : "";
    v = (!val.empty() && val != "0") ? 1 : 0;
    if (v != 0 && env_value_is_path(val)) trace_set_flush_path(val);
    g_trace_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

namespace {

// Probe ODQ_TRACE at static init so a file-valued setting registers its
// at-exit flush even when the process throws before the first span —
// the run then leaves an empty-but-valid trace instead of nothing.
const bool g_trace_env_probe = trace_enabled();

}  // namespace

void set_trace_enabled(bool on) {
  if (on) trace_epoch();  // anchor the timeline before the first span
  g_trace_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void trace_set_flush_path(const std::string& path) {
  FlushState& s = flush_state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.path = path;
  if (!path.empty() && !s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit(flush_trace_at_exit);
  }
}

std::uint64_t trace_dropped_events() {
  return g_dropped_events.load(std::memory_order_relaxed);
}

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(clock_type::now() -
                                                   trace_epoch())
      .count();
}

std::uint32_t trace_thread_id() { return thread_buffer().tid; }

void trace_record(std::string name, double ts_us, double dur_us,
                  const char* arg_name, std::int64_t arg_value,
                  const char* arg2_name, std::int64_t arg2_value) {
  if (!trace_enabled()) return;
  EventBuffer& buf = thread_buffer();
  TraceEvent ev;
  ev.name = std::move(name);
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = buf.tid;
  ev.arg_name = arg_name;
  ev.arg_value = arg_value;
  ev.arg2_name = arg2_name;
  ev.arg2_value = arg2_value;
  attach_request_id(ev);
  std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.events.size() >= trace_max_events()) {
    g_dropped_events.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(std::move(ev));
}

void TraceSpan::begin(const char* name) {
  active_ = true;
  name_ = name;
  start_us_ = trace_now_us();
}

void TraceSpan::begin_owned(std::string name) {
  active_ = true;
  name_ = std::move(name);
  start_us_ = trace_now_us();
}

void TraceSpan::end() {
  // Record even if tracing was switched off mid-span: a started span must
  // not dangle, and flush-after-disable is the normal tool shutdown order.
  const double now = trace_now_us();
  EventBuffer& buf = thread_buffer();
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.ts_us = start_us_;
  ev.dur_us = now - start_us_;
  ev.tid = buf.tid;
  ev.arg_name = arg_name_;
  ev.arg_value = arg_value_;
  ev.arg2_name = arg2_name_;
  ev.arg2_value = arg2_value_;
  attach_request_id(ev);
  std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.events.size() >= trace_max_events()) {
    g_dropped_events.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(std::move(ev));
}

std::vector<TraceEvent> trace_events() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  std::vector<TraceEvent> out;
  for (const auto& buf : c.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

void trace_clear() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  for (const auto& buf : c.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
  }
  g_dropped_events.store(0, std::memory_order_relaxed);
}

std::string trace_to_json() {
  util::JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  // Extra top-level key; trace viewers ignore unknown members.
  w.kv("droppedEvents", static_cast<std::uint64_t>(trace_dropped_events()));
  w.key("traceEvents");
  w.begin_array();
  for (const TraceEvent& ev : trace_events()) {
    w.begin_object();
    w.kv("name", ev.name);
    w.kv("ph", "X");
    w.kv("ts", ev.ts_us);
    w.kv("dur", ev.dur_us);
    w.kv("pid", std::int64_t{1});
    w.kv("tid", static_cast<std::int64_t>(ev.tid));
    if (ev.arg_name != nullptr || ev.arg2_name != nullptr) {
      w.key("args");
      w.begin_object();
      if (ev.arg_name != nullptr) w.kv(ev.arg_name, ev.arg_value);
      if (ev.arg2_name != nullptr) w.kv(ev.arg2_name, ev.arg2_value);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void write_chrome_trace(const std::string& path) {
  // Write-to-temp + rename: a crash or full disk mid-write leaves the old
  // file (or nothing) behind, never a truncated, unloadable document.
  const std::string json = trace_to_json();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("write_chrome_trace: cannot open " + tmp);
  }
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (n != json.size() || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_chrome_trace: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_chrome_trace: cannot rename to " + path);
  }
}

}  // namespace odq::obs
