// Scoped trace-span profiler with Chrome Trace Event Format output.
//
// Spans record onto per-thread buffers (one buffer-local mutex each, only
// ever contended by a concurrent flush) and are written out as "X"
// (complete) events loadable by chrome://tracing and https://ui.perfetto.dev.
// Tracing defaults to off and costs one relaxed atomic load per
// ODQ_TRACE_SPAN when disabled; enable with the ODQ_TRACE environment
// variable (any non-empty value except "0") or set_trace_enabled(true).
//
// Usage:
//
//   void step() {
//     ODQ_TRACE_SPAN("odq.predictor");       // whole-scope span
//     ...
//   }
//   ...
//   obs::write_chrome_trace("out.trace.json");
//
// Span naming follows the "<subsystem>.<phase>" convention described in
// docs/observability.md. Timestamps are microseconds on a steady clock
// anchored at the first trace-subsystem touch, so spans from every thread
// share one timeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace odq::obs {

// Global tracing switch. Initialized from ODQ_TRACE on first query. When
// the ODQ_TRACE value names a file (contains '/' or ends in ".json"),
// tracing is enabled AND the trace is flushed to that file at process exit
// (see trace_set_flush_path), so a tool that returns early after an error
// still leaves a valid, loadable trace behind.
bool trace_enabled();
void set_trace_enabled(bool on);

// Register `path` as an at-exit flush destination (empty disables). The
// flush handler runs once via std::atexit, writes with write_chrome_trace
// (tmp file + rename, so the file is valid-or-absent, never truncated) and
// reports failures on stderr instead of throwing.
void trace_set_flush_path(const std::string& path);

// Events dropped because a per-thread span buffer reached its capacity
// (ODQ_TRACE_MAX_EVENTS per thread, default 1M). Monotonic until
// trace_clear(); also emitted as the top-level "droppedEvents" key of the
// Chrome trace JSON.
std::uint64_t trace_dropped_events();

struct TraceEvent {
  std::string name;
  double ts_us = 0.0;   // start, microseconds since trace epoch
  double dur_us = 0.0;  // duration, microseconds
  std::uint32_t tid = 0;  // compact per-process thread id
  // Up to two optional numeric arguments (emitted under "args"); a null
  // name means the slot is unused. Names must point at string literals.
  const char* arg_name = nullptr;
  std::int64_t arg_value = 0;
  const char* arg2_name = nullptr;
  std::int64_t arg2_value = 0;
};

// Microseconds since the trace epoch on the shared steady clock.
double trace_now_us();

// Compact id of the calling thread (stable for the thread's lifetime).
std::uint32_t trace_thread_id();

// Append a finished span to the calling thread's buffer. No-op when
// tracing is disabled. `name` is copied. If a TraceRequestScope is active
// on the calling thread and an argument slot is free, a "req_id" argument
// is attached automatically.
void trace_record(std::string name, double ts_us, double dur_us,
                  const char* arg_name = nullptr, std::int64_t arg_value = 0,
                  const char* arg2_name = nullptr,
                  std::int64_t arg2_value = 0);

// Request id attached to spans recorded on the calling thread, or -1 when
// no TraceRequestScope is active.
std::int64_t trace_request_id();

// Tags every span that *ends* on the calling thread while the scope is
// alive with a "req_id" argument (into the first free slot), linking a
// request's queue/batch/exec/conv-phase spans in the Chrome trace. Scopes
// nest: the previous id is restored on destruction. The serving engine
// opens one around each per-request session run.
class TraceRequestScope {
 public:
  explicit TraceRequestScope(std::int64_t req_id);
  ~TraceRequestScope();

  TraceRequestScope(const TraceRequestScope&) = delete;
  TraceRequestScope& operator=(const TraceRequestScope&) = delete;

 private:
  std::int64_t prev_;
};

// RAII span: measures construction->destruction and records it.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (trace_enabled()) begin(name);
  }
  explicit TraceSpan(std::string name) {
    if (trace_enabled()) begin_owned(std::move(name));
  }
  ~TraceSpan() {
    if (active_) end();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attach a numeric argument shown in the trace viewer; fills the first
  // free of the two slots (re-using a key overwrites its slot). `key` must
  // be a string literal (stored by pointer).
  void arg(const char* key, std::int64_t value) {
    if (arg_name_ == nullptr || arg_name_ == key) {
      arg_name_ = key;
      arg_value_ = value;
    } else {
      arg2_name_ = key;
      arg2_value_ = value;
    }
  }

 private:
  void begin(const char* name);
  void begin_owned(std::string name);
  void end();

  bool active_ = false;
  std::string name_;
  double start_us_ = 0.0;
  const char* arg_name_ = nullptr;
  std::int64_t arg_value_ = 0;
  const char* arg2_name_ = nullptr;
  std::int64_t arg2_value_ = 0;
};

#define ODQ_TRACE_CONCAT_(a, b) a##b
#define ODQ_TRACE_CONCAT(a, b) ODQ_TRACE_CONCAT_(a, b)
// Whole-scope span; `name` may be a literal or a std::string expression.
#define ODQ_TRACE_SPAN(name) \
  ::odq::obs::TraceSpan ODQ_TRACE_CONCAT(odq_trace_span_, __LINE__)(name)

// Snapshot of every recorded event (all threads), in recording order per
// thread. Used by tests; flushing to JSON is the normal consumption path.
std::vector<TraceEvent> trace_events();

// Drop all recorded events (buffers stay registered).
void trace_clear();

// Chrome Trace Event Format, {"traceEvents":[...]} flavor. Returns the
// serialized JSON; write_chrome_trace() saves it to a file (throws
// std::runtime_error when the file cannot be written).
std::string trace_to_json();
void write_chrome_trace(const std::string& path);

}  // namespace odq::obs
