#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_map>

namespace odq::obs {

namespace {

constexpr std::uint64_t kLinear = std::uint64_t{1} << kLogHistSubBits;
constexpr std::uint64_t kMaxValue = (std::uint64_t{1} << kLogHistMaxPow) - 1;

}  // namespace

std::size_t log_bucket_index(std::uint64_t v) {
  if (v < kLinear) return static_cast<std::size_t>(v);
  if (v > kMaxValue) v = kMaxValue;
  // msb in [kLogHistSubBits, kLogHistMaxPow): the octave; the next
  // kLogHistSubBits bits below it pick the sub-bucket.
  const int msb = 63 - std::countl_zero(v);
  const std::uint64_t sub = (v >> (msb - kLogHistSubBits)) - kLinear;
  return static_cast<std::size_t>(
      kLinear + static_cast<std::uint64_t>(msb - kLogHistSubBits) * kLinear +
      sub);
}

std::uint64_t log_bucket_lo(std::size_t index) {
  if (index < kLinear) return index;
  const std::uint64_t octave = (index - kLinear) / kLinear;
  const std::uint64_t sub = (index - kLinear) % kLinear;
  return (kLinear + sub) << octave;
}

std::uint64_t log_bucket_hi(std::size_t index) {
  if (index < kLinear) return index + 1;
  const std::uint64_t octave = (index - kLinear) / kLinear;
  return log_bucket_lo(index) + (std::uint64_t{1} << octave);
}

void LogHistogram::add(std::uint64_t v, std::uint64_t n) {
  if (n == 0) return;
  if (counts_.empty()) counts_.assign(kLogHistBuckets, 0);
  counts_[log_bucket_index(v)] += n;
  count_ += n;
  sum_ += v * n;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(kLogHistBuckets, 0);
  for (std::size_t i = 0; i < kLogHistBuckets; ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::subtract(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(kLogHistBuckets, 0);
  for (std::size_t i = 0; i < kLogHistBuckets; ++i) {
    const std::uint64_t o = other.counts_[i];
    counts_[i] = counts_[i] > o ? counts_[i] - o : 0;
  }
  count_ = count_ > other.count_ ? count_ - other.count_ : 0;
  sum_ = sum_ > other.sum_ ? sum_ - other.sum_ : 0;
}

double LogHistogram::mean() const {
  return count_ > 0
             ? static_cast<double>(sum_) / static_cast<double>(count_)
             : 0.0;
}

std::uint64_t LogHistogram::min() const {
  if (count_ == 0) return 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) return log_bucket_lo(i);
  }
  return 0;
}

std::uint64_t LogHistogram::max() const {
  if (count_ == 0) return 0;
  for (std::size_t i = counts_.size(); i-- > 0;) {
    if (counts_[i] > 0) return log_bucket_hi(i) - 1;
  }
  return 0;
}

std::uint64_t LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based: ceil(q * count), at least 1.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) return log_bucket_hi(i) - 1;
  }
  return max();
}

std::uint64_t LogHistogram::bucket_count(std::size_t index) const {
  if (index >= counts_.size()) return 0;
  return counts_[index];
}

void LogHistogram::add_in_bucket(std::size_t index, std::uint64_t n) {
  if (n == 0 || index >= kLogHistBuckets) return;
  if (counts_.empty()) counts_.assign(kLogHistBuckets, 0);
  counts_[index] += n;
  count_ += n;
}

namespace {

// Thread-local shard cache, same idiom as the metrics registry: one map for
// every ShardedLogHistogram instance; entries die with the thread, the
// shards they point to are owned by the histogram and keep their counts.
// Entries carry the owner's generation id: a histogram constructed at a
// recycled address (short-lived instances in tests/tools) fails the check
// and gets a fresh shard instead of a dangling pointer.
struct ShardRef {
  std::uint64_t gen = 0;
  void* shard = nullptr;
};
thread_local std::unordered_map<const void*, ShardRef> t_hist_shards;

std::uint64_t next_hist_generation() {
  static std::atomic<std::uint64_t> gen{0};
  return gen.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

ShardedLogHistogram::ShardedLogHistogram() : gen_(next_hist_generation()) {}

ShardedLogHistogram::Shard& ShardedLogHistogram::shard() {
  ShardRef& r = t_hist_shards[this];
  if (r.shard == nullptr || r.gen != gen_) {
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    r.gen = gen_;
    r.shard = shards_.back().get();
  }
  return *static_cast<Shard*>(r.shard);
}

void ShardedLogHistogram::record(std::uint64_t v) {
  Shard& s = shard();
  s.counts[log_bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
}

LogHistogram ShardedLogHistogram::merged() const {
  // Counts and sums are read with relaxed loads while writers keep
  // recording: a sample mid-record may appear in the sum but not yet the
  // buckets (or vice versa) for one snapshot — telemetry-grade, not a
  // linearizable cut. Once writers quiesce, merged() is exact.
  LogHistogram out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& s : shards_) {
    for (std::size_t i = 0; i < kLogHistBuckets; ++i) {
      const std::uint64_t c = s->counts[i].load(std::memory_order_relaxed);
      if (c > 0) out.add_in_bucket(i, c);
    }
    out.add_to_sum(s->sum.load(std::memory_order_relaxed));
  }
  return out;
}

void ShardedLogHistogram::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& s : shards_) {
    for (std::size_t i = 0; i < kLogHistBuckets; ++i) {
      s->counts[i].store(0, std::memory_order_relaxed);
    }
    s->sum.store(0, std::memory_order_relaxed);
  }
}

}  // namespace odq::obs
