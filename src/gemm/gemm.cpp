#include "gemm/gemm.hpp"

#include "tensor/ops.hpp"

namespace odq::gemm {

using tensor::Shape;
using tensor::Tensor;
using tensor::TensorI32;

TensorI32 gemm_conv_i8(const PackedIm2col& cols, const PackedWeights& wts,
                       int shift) {
  TensorI32 out(Shape{cols.batches, wts.oc, cols.oh, cols.ow});
  gemm_conv_int<std::int32_t>(cols, wts, shift, out.data());
  return out;
}

void gemm_conv_f32(const PackedIm2colF& cols, const PackedWeightsF& wts,
                   const Tensor& bias, Tensor& out) {
  detail::check_operands(cols.k, cols.k_padded, wts.k, wts.k_padded);
  const std::int64_t rows = cols.rows;
  const std::int64_t kp = cols.k_padded;
  const std::int64_t oc = wts.oc;
  if (out.numel() != cols.batches * oc * rows) {
    throw std::invalid_argument("gemm_conv_f32: bad output shape");
  }
  const float* bp = bias.empty() ? nullptr : bias.data();
  float* dst = out.data();
  // Same (batch, out-channel) tiling as conv2d_direct; each tile owns one
  // output plane. The single sequential accumulator per output keeps float
  // results bit-identical to the direct oracle at any pool size.
  util::parallel_for(
      cols.batches * oc,
      [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t b = t / oc;
          const std::int64_t f = t % oc;
          const float bv = bp != nullptr ? bp[f] : 0.0f;
          const float* wrow = wts.row(f);
          float* orow = dst + t * rows;
          for (std::int64_t r = 0; r < rows; ++r) {
            const float* a = cols.row(b, r);
            float acc = bv;
            for (std::int64_t p = 0; p < kp; ++p) acc += a[p] * wrow[p];
            orow[r] = acc;
          }
        }
      },
      /*grain=*/1);
}

Tensor conv2d_f32(const Tensor& input, const Tensor& weight,
                  const Tensor& bias, std::int64_t stride, std::int64_t pad) {
  const Shape& is = input.shape();
  const Shape& ws = weight.shape();
  if (is.rank() != 4 || ws.rank() != 4) {
    throw std::invalid_argument("gemm::conv2d_f32: need NCHW input, OIHW "
                                "weight");
  }
  if (is[1] != ws[1]) {
    throw std::invalid_argument("gemm::conv2d_f32: channel mismatch");
  }
  PackedIm2colF cols = pack_im2col_f32(input, ws[2], ws[3], stride, pad);
  PackedWeightsF wts = pack_weights_f32(weight);
  Tensor out(Shape{cols.batches, wts.oc, cols.oh, cols.ow});
  gemm_conv_f32(cols, wts, bias, out);
  return out;
}

}  // namespace odq::gemm
