// Packed im2col operands for the shared conv-GEMM core.
//
// Every quantized conv scheme in this library (ODQ predictor + result
// generation, DRQ, static INT-N, and the FP32-surrogate executors) reduces
// to the same computation: an im2col matrix [OH*OW, C*KH*KW] per batch
// element multiplied against a filter panel [OC, C*KH*KW]. The structs here
// hold both operands in one cache-blocked layout shared by all of them:
//
//   * Rows are *output pixels* (receptive fields), stored contiguously —
//     the transpose of the [CKK, OHW] matrix quant::im2col_i8 produces.
//     A GEMM dot product then reads two contiguous byte runs, and the
//     mask-aware sparse epilogue can gather an arbitrary subset of output
//     pixels with perfect locality (one contiguous row per sensitive
//     output, no per-element branching).
//   * The depth K = C*KH*KW is zero-padded to a multiple of kKTile so the
//     microkernels never handle a remainder. Zero entries contribute
//     nothing to any integer partial product, so padding is invisible to
//     the accumulators (and to float sums, modulo the sign of zero).
//   * ODQ operands are *digit-split at pack time*: one packed plane for the
//     high-order digits (HBS) and one for the low-order digits (LBS) of
//     each code (quant::high_part / low_part), produced in a single pass
//     over the input. The predictor multiplies high x high; Eq. (3) result
//     generation reads all four plane pairs. This is the layout ROADMAP
//     item 1's bit-packed SIMD kernels will consume multiple-per-lane.
//
// Packing is lossless: unpack_* recover exactly the im2col matrix (and the
// split digits) the scalar reference paths compute, which the
// tests/gemm round-trip fuzz suite asserts.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/bitsplit.hpp"
#include "tensor/tensor.hpp"

namespace odq::gemm {

// Depth-padding quantum: K is rounded up to a multiple of this so the
// microkernel's unrolled accumulator loop needs no tail handling. 16 int8
// lanes is one SSE register / half a NEON quad-pair — the natural quantum
// for the planned bit-packed SIMD kernels.
inline constexpr std::int64_t kKTile = 16;

// Output-pixel cache block: a GEMM task walks rows in blocks of this many
// receptive fields so the filter panel stays hot in L1 across the block.
inline constexpr std::int64_t kRowTile = 64;

// Filters per register block: each packed column row is read once and
// dotted against this many filter rows before moving on.
inline constexpr std::int64_t kOcTile = 4;

inline std::int64_t pad_k(std::int64_t k) {
  return (k + kKTile - 1) / kKTile * kKTile;
}

// One packed im2col operand (a single digit plane, or full codes).
// data[(b * rows + r) * k_padded + p] is entry p of output pixel r of batch
// element b; entries beyond `k` are zero.
template <typename T>
struct PackedIm2colT {
  std::int64_t batches = 0;
  std::int64_t rows = 0;      // OH * OW
  std::int64_t k = 0;         // C * KH * KW (logical depth)
  std::int64_t k_padded = 0;  // k rounded up to kKTile
  std::int64_t oh = 0, ow = 0;
  std::vector<T> data;

  const T* row(std::int64_t b, std::int64_t r) const {
    return data.data() + static_cast<std::size_t>((b * rows + r) * k_padded);
  }
  T* row(std::int64_t b, std::int64_t r) {
    return data.data() + static_cast<std::size_t>((b * rows + r) * k_padded);
  }
};

using PackedIm2col = PackedIm2colT<std::int8_t>;
using PackedIm2colF = PackedIm2colT<float>;

// A packed filter panel: row f holds filter f's C*KH*KW taps in im2col
// order, zero-padded to k_padded.
template <typename T>
struct PackedWeightsT {
  std::int64_t oc = 0;
  std::int64_t k = 0;
  std::int64_t k_padded = 0;
  std::vector<T> data;

  const T* row(std::int64_t f) const {
    return data.data() + static_cast<std::size_t>(f * k_padded);
  }
  T* row(std::int64_t f) {
    return data.data() + static_cast<std::size_t>(f * k_padded);
  }
};

using PackedWeights = PackedWeightsT<std::int8_t>;
using PackedWeightsF = PackedWeightsT<float>;

// Digit-split operand pairs (ODQ). `high` and `low` share one geometry.
struct PackedSplitIm2col {
  PackedIm2col high;
  PackedIm2col low;
  int low_bits = 2;
};

struct PackedSplitWeights {
  PackedWeights high;
  PackedWeights low;
  int low_bits = 2;
};

// --- Packers -------------------------------------------------------------

// Full-code int8 activations [N,C,H,W] -> packed receptive-field rows.
PackedIm2col pack_im2col_i8(const tensor::TensorI8& input, std::int64_t kh,
                            std::int64_t kw, std::int64_t stride,
                            std::int64_t pad);

// Digit-split packer: one pass over the codes produces the HBS and LBS
// planes (quant::high_part / low_part with `low_bits` low bits).
PackedSplitIm2col pack_im2col_split(const tensor::TensorI8& input,
                                    int low_bits, std::int64_t kh,
                                    std::int64_t kw, std::int64_t stride,
                                    std::int64_t pad);

// Float activations (DRQ / static fake-quantized baselines / FP32).
PackedIm2colF pack_im2col_f32(const tensor::Tensor& input, std::int64_t kh,
                              std::int64_t kw, std::int64_t stride,
                              std::int64_t pad);

// Filter panels from OIHW weights.
PackedWeights pack_weights_i8(const tensor::TensorI8& weight);
PackedSplitWeights pack_weights_split(const tensor::TensorI8& weight,
                                      int low_bits);
PackedWeightsF pack_weights_f32(const tensor::Tensor& weight);

// --- Unpackers (round-trip validation) -----------------------------------

// Recover the [N, C*KH*KW, OH*OW] matrix quant::im2col_i8 would produce
// (transposes the packed rows back, drops the depth padding).
tensor::TensorI8 unpack_im2col_i8(const PackedIm2col& packed, std::int64_t c,
                                  std::int64_t kh, std::int64_t kw);

// Recompose a digit-split pair back into full codes, same layout as
// unpack_im2col_i8. Exact for any codes the split came from.
tensor::TensorI8 unpack_im2col_split(const PackedSplitIm2col& packed,
                                     std::int64_t c, std::int64_t kh,
                                     std::int64_t kw);

}  // namespace odq::gemm
