// Mask-aware sparse result generation for ODQ (paper Eq. 3, step 4).
//
// Given the (already shifted) predictor accumulators, one fused pass per
// (batch, out-channel) tile:
//   1. thresholds |dequantized predictor| against the sensitivity threshold
//      and writes the bit mask,
//   2. compacts the sensitive output-pixel indices into an ascending
//      per-tile list (the executor PE's work queue), and
//   3. runs the three remaining Eq. (3) partial products
//      (I_HBS*W_LBS + I_LBS*W_HBS) << N_LBS + I_LBS*W_LBS
//      as dense packed-row dot products over the compacted list only — no
//      per-element branching inside the MAC loops; insensitive outputs are
//      never touched.
//
// The packed rows include zero-padded taps (image border + depth padding);
// integer zeros add nothing, so accumulators are bit-identical to the
// direct-conv result generation. MACs are counted analytically from the conv
// geometry (in-bounds taps only) so executor_macs matches the direct oracle
// exactly even though the packed dot also multiplies the padded lanes.
#pragma once

#include <cstdint>
#include <vector>

#include "gemm/packed.hpp"
#include "tensor/tensor.hpp"

namespace odq::gemm {

// Compacted sensitive-output indices, one ascending list per
// (batch, out-channel) tile. Indices are output-pixel offsets in [0, rows).
struct SensitiveLists {
  std::int64_t batches = 0;
  std::int64_t channels = 0;
  std::int64_t rows = 0;  // output pixels per tile (OH * OW)
  std::vector<std::vector<std::int32_t>> lists;

  const std::vector<std::int32_t>& tile(std::int64_t b, std::int64_t ch) const {
    return lists[static_cast<std::size_t>(b * channels + ch)];
  }

  std::int64_t total() const {
    std::int64_t n = 0;
    for (const auto& l : lists) n += static_cast<std::int64_t>(l.size());
    return n;
  }
};

// Conv geometry the epilogue needs for oracle-exact MAC accounting.
struct ConvShape {
  std::int64_t c = 0, h = 0, w = 0;    // input channels / spatial size
  std::int64_t kh = 0, kw = 0;         // kernel
  std::int64_t stride = 1, pad = 0;
};

// In-bounds MAC count per output pixel, row-major over [oh, ow]:
// c * ki_n(oy) * kj_n(ox), the taps the direct oracle actually visits.
std::vector<std::int64_t> valid_macs_per_row(const ConvShape& g,
                                             std::int64_t oh, std::int64_t ow);

struct SparseEpilogueStats {
  std::int64_t sensitive = 0;
  std::int64_t executor_macs = 0;
};

// Fused mask + compaction + Eq. (3) result generation. `acc` must start as a
// copy of `predictor_acc` (the remainders are added in place for sensitive
// outputs); `mask` must be preshaped [N, OC, OH, OW];
// `sensitive_per_channel` must be pre-sized to OC (zeroed). Parallel over
// (batch, out-channel) tiles with per-tile counters — bit-exact and
// count-exact at any pool size.
SparseEpilogueStats sparse_result_generation(
    const PackedSplitIm2col& cols, const PackedSplitWeights& wts,
    const ConvShape& geom, const tensor::TensorI32& predictor_acc, float scale,
    float threshold, tensor::TensorI32& acc, tensor::TensorU8& mask,
    std::vector<std::int64_t>& sensitive_per_channel, SensitiveLists& lists);

}  // namespace odq::gemm
