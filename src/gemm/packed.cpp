#include "gemm/packed.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace odq::gemm {

using tensor::Shape;
using tensor::Tensor;
using tensor::TensorI8;

namespace {

struct ConvGeometry {
  std::int64_t n, c, h, w, oh, ow, k;
};

ConvGeometry check_geometry(const Shape& s, std::int64_t kh, std::int64_t kw,
                            std::int64_t stride, std::int64_t pad) {
  if (s.rank() != 4) {
    throw std::invalid_argument("gemm::pack_im2col: input must be NCHW");
  }
  ConvGeometry g;
  g.n = s[0];
  g.c = s[1];
  g.h = s[2];
  g.w = s[3];
  g.oh = tensor::conv_out_dim(g.h, kh, stride, pad);
  g.ow = tensor::conv_out_dim(g.w, kw, stride, pad);
  if (g.oh <= 0 || g.ow <= 0) {
    throw std::invalid_argument(
        "gemm::pack_im2col: kernel larger than padded input");
  }
  g.k = g.c * kh * kw;
  return g;
}

template <typename T>
void init_packed(PackedIm2colT<T>& p, const ConvGeometry& g) {
  p.batches = g.n;
  p.rows = g.oh * g.ow;
  p.k = g.k;
  p.k_padded = pad_k(g.k);
  p.oh = g.oh;
  p.ow = g.ow;
  p.data.assign(static_cast<std::size_t>(g.n * p.rows * p.k_padded), T{});
}

// Shared row walker: for each packed row (one output pixel), visit the
// receptive field in im2col order (ic, ki, kj) and call emit(p, value) for
// in-bounds taps; out-of-bounds and depth-padding entries stay zero from
// init_packed. Tiled over (batch, output-row blocks): every tile writes a
// disjoint slice of rows, so results are identical at any pool size.
template <typename Src, typename Emit>
void walk_rows(const ConvGeometry& g, std::int64_t kh, std::int64_t kw,
               std::int64_t stride, std::int64_t pad, std::int64_t rows,
               const Src* src, const Emit& emit) {
  const std::int64_t row_blocks = (rows + kRowTile - 1) / kRowTile;
  util::parallel_for(
      g.n * row_blocks,
      [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t b = t / row_blocks;
          const std::int64_t r0 = (t % row_blocks) * kRowTile;
          const std::int64_t r1 = std::min(rows, r0 + kRowTile);
          const Src* img = src + b * g.c * g.h * g.w;
          for (std::int64_t r = r0; r < r1; ++r) {
            const std::int64_t oy = r / g.ow;
            const std::int64_t ox = r % g.ow;
            const std::int64_t iy0 = oy * stride - pad;
            const std::int64_t ix0 = ox * stride - pad;
            std::int64_t p = 0;
            for (std::int64_t ic = 0; ic < g.c; ++ic) {
              const Src* plane = img + ic * g.h * g.w;
              for (std::int64_t ki = 0; ki < kh; ++ki) {
                const std::int64_t iy = iy0 + ki;
                if (iy < 0 || iy >= g.h) {
                  p += kw;
                  continue;
                }
                const Src* line = plane + iy * g.w;
                for (std::int64_t kj = 0; kj < kw; ++kj, ++p) {
                  const std::int64_t ix = ix0 + kj;
                  if (ix >= 0 && ix < g.w) emit(b, r, p, line[ix]);
                }
              }
            }
          }
        }
      },
      /*grain=*/1);
}

}  // namespace

PackedIm2col pack_im2col_i8(const TensorI8& input, std::int64_t kh,
                            std::int64_t kw, std::int64_t stride,
                            std::int64_t pad) {
  const ConvGeometry g = check_geometry(input.shape(), kh, kw, stride, pad);
  PackedIm2col out;
  init_packed(out, g);
  const std::int64_t kp = out.k_padded;
  std::int8_t* dst = out.data.data();
  walk_rows(g, kh, kw, stride, pad, out.rows, input.data(),
            [&](std::int64_t b, std::int64_t r, std::int64_t p,
                std::int8_t v) { dst[(b * out.rows + r) * kp + p] = v; });
  return out;
}

PackedSplitIm2col pack_im2col_split(const TensorI8& input, int low_bits,
                                    std::int64_t kh, std::int64_t kw,
                                    std::int64_t stride, std::int64_t pad) {
  const ConvGeometry g = check_geometry(input.shape(), kh, kw, stride, pad);
  PackedSplitIm2col out;
  out.low_bits = low_bits;
  init_packed(out.high, g);
  init_packed(out.low, g);
  const std::int64_t kp = out.high.k_padded;
  std::int8_t* hi = out.high.data.data();
  std::int8_t* lo = out.low.data.data();
  walk_rows(g, kh, kw, stride, pad, out.high.rows, input.data(),
            [&](std::int64_t b, std::int64_t r, std::int64_t p,
                std::int8_t v) {
              const std::int64_t at = (b * out.high.rows + r) * kp + p;
              hi[at] = quant::high_part(v, low_bits);
              lo[at] = quant::low_part(v, low_bits);
            });
  return out;
}

PackedIm2colF pack_im2col_f32(const Tensor& input, std::int64_t kh,
                              std::int64_t kw, std::int64_t stride,
                              std::int64_t pad) {
  const ConvGeometry g = check_geometry(input.shape(), kh, kw, stride, pad);
  PackedIm2colF out;
  init_packed(out, g);
  const std::int64_t kp = out.k_padded;
  float* dst = out.data.data();
  walk_rows(g, kh, kw, stride, pad, out.rows, input.data(),
            [&](std::int64_t b, std::int64_t r, std::int64_t p, float v) {
              dst[(b * out.rows + r) * kp + p] = v;
            });
  return out;
}

namespace {

template <typename T, typename Src, typename Emit>
PackedWeightsT<T> pack_weights_impl(const Shape& ws, const Src* src,
                                    const Emit& emit) {
  if (ws.rank() != 4) {
    throw std::invalid_argument("gemm::pack_weights: weight must be OIHW");
  }
  PackedWeightsT<T> out;
  out.oc = ws[0];
  out.k = ws[1] * ws[2] * ws[3];
  out.k_padded = pad_k(out.k);
  out.data.assign(static_cast<std::size_t>(out.oc * out.k_padded), T{});
  for (std::int64_t f = 0; f < out.oc; ++f) {
    for (std::int64_t p = 0; p < out.k; ++p) {
      emit(out.row(f), p, src[f * out.k + p]);
    }
  }
  return out;
}

}  // namespace

PackedWeights pack_weights_i8(const TensorI8& weight) {
  return pack_weights_impl<std::int8_t>(
      weight.shape(), weight.data(),
      [](std::int8_t* row, std::int64_t p, std::int8_t v) { row[p] = v; });
}

PackedSplitWeights pack_weights_split(const TensorI8& weight, int low_bits) {
  PackedSplitWeights out;
  out.low_bits = low_bits;
  out.high = pack_weights_impl<std::int8_t>(
      weight.shape(), weight.data(),
      [low_bits](std::int8_t* row, std::int64_t p, std::int8_t v) {
        row[p] = quant::high_part(v, low_bits);
      });
  out.low = pack_weights_impl<std::int8_t>(
      weight.shape(), weight.data(),
      [low_bits](std::int8_t* row, std::int64_t p, std::int8_t v) {
        row[p] = quant::low_part(v, low_bits);
      });
  return out;
}

PackedWeightsF pack_weights_f32(const Tensor& weight) {
  return pack_weights_impl<float>(
      weight.shape(), weight.data(),
      [](float* row, std::int64_t p, float v) { row[p] = v; });
}

TensorI8 unpack_im2col_i8(const PackedIm2col& packed, std::int64_t c,
                          std::int64_t kh, std::int64_t kw) {
  if (c * kh * kw != packed.k) {
    throw std::invalid_argument("gemm::unpack_im2col: c*kh*kw != k");
  }
  TensorI8 out(Shape{packed.batches, packed.k, packed.rows});
  for (std::int64_t b = 0; b < packed.batches; ++b) {
    for (std::int64_t r = 0; r < packed.rows; ++r) {
      const std::int8_t* row = packed.row(b, r);
      for (std::int64_t p = 0; p < packed.k; ++p) {
        out[(b * packed.k + p) * packed.rows + r] = row[p];
      }
    }
  }
  return out;
}

TensorI8 unpack_im2col_split(const PackedSplitIm2col& packed, std::int64_t c,
                             std::int64_t kh, std::int64_t kw) {
  TensorI8 hi = unpack_im2col_i8(packed.high, c, kh, kw);
  TensorI8 lo = unpack_im2col_i8(packed.low, c, kh, kw);
  TensorI8 out(hi.shape());
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] = static_cast<std::int8_t>(
        quant::recompose(hi[i], lo[i], packed.low_bits));
  }
  return out;
}

}  // namespace odq::gemm
