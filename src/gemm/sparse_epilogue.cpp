#include "gemm/sparse_epilogue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simd/dispatch.hpp"
#include "util/thread_pool.hpp"

namespace odq::gemm {

std::vector<std::int64_t> valid_macs_per_row(const ConvShape& g,
                                             std::int64_t oh, std::int64_t ow) {
  std::vector<std::int64_t> ki_n(static_cast<std::size_t>(oh));
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    const std::int64_t iy0 = oy * g.stride - g.pad;
    const std::int64_t lo = std::max<std::int64_t>(0, -iy0);
    const std::int64_t hi = std::min(g.kh, g.h - iy0);
    ki_n[static_cast<std::size_t>(oy)] = std::max<std::int64_t>(0, hi - lo);
  }
  std::vector<std::int64_t> kj_n(static_cast<std::size_t>(ow));
  for (std::int64_t ox = 0; ox < ow; ++ox) {
    const std::int64_t ix0 = ox * g.stride - g.pad;
    const std::int64_t lo = std::max<std::int64_t>(0, -ix0);
    const std::int64_t hi = std::min(g.kw, g.w - ix0);
    kj_n[static_cast<std::size_t>(ox)] = std::max<std::int64_t>(0, hi - lo);
  }
  std::vector<std::int64_t> out(static_cast<std::size_t>(oh * ow));
  for (std::int64_t oy = 0; oy < oh; ++oy) {
    for (std::int64_t ox = 0; ox < ow; ++ox) {
      out[static_cast<std::size_t>(oy * ow + ox)] =
          g.c * ki_n[static_cast<std::size_t>(oy)] *
          kj_n[static_cast<std::size_t>(ox)];
    }
  }
  return out;
}

SparseEpilogueStats sparse_result_generation(
    const PackedSplitIm2col& cols, const PackedSplitWeights& wts,
    const ConvShape& geom, const tensor::TensorI32& predictor_acc, float scale,
    float threshold, tensor::TensorI32& acc, tensor::TensorU8& mask,
    std::vector<std::int64_t>& sensitive_per_channel, SensitiveLists& lists) {
  const std::int64_t n = cols.high.batches;
  const std::int64_t rows = cols.high.rows;
  const std::int64_t kp = cols.high.k_padded;
  const std::int64_t oc = wts.high.oc;
  const int lb = cols.low_bits;
  if (wts.low_bits != lb) {
    throw std::invalid_argument("sparse_result_generation: low_bits mismatch");
  }
  if (cols.high.k != wts.high.k || cols.high.k_padded != wts.high.k_padded) {
    throw std::invalid_argument("sparse_result_generation: depth mismatch");
  }
  if (kp > simd::kMaxDotDepth) {
    throw std::invalid_argument(
        "sparse_result_generation: depth exceeds the int32 accumulator "
        "budget");
  }
  if (predictor_acc.numel() != n * oc * rows ||
      acc.numel() != predictor_acc.numel() ||
      mask.numel() != predictor_acc.numel()) {
    throw std::invalid_argument("sparse_result_generation: bad output shape");
  }
  if (sensitive_per_channel.size() != static_cast<std::size_t>(oc)) {
    throw std::invalid_argument(
        "sparse_result_generation: bad per-channel buffer");
  }

  lists.batches = n;
  lists.channels = oc;
  lists.rows = rows;
  lists.lists.assign(static_cast<std::size_t>(n * oc), {});

  const std::vector<std::int64_t> row_macs =
      valid_macs_per_row(geom, cols.high.oh, cols.high.ow);

  const std::int64_t tiles = n * oc;
  std::vector<std::int64_t> tile_macs(static_cast<std::size_t>(tiles), 0);

  const std::int32_t* pred_base = predictor_acc.data();
  std::int32_t* acc_base = acc.data();
  std::uint8_t* mask_base = mask.data();
  // One kernel-table fetch for the whole epilogue; the packed-row dots over
  // the compacted lists are the Eq. (3) hot loop.
  const simd::Kernels& kk = simd::active_kernels();

  util::parallel_for(
      tiles,
      [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t b = t / oc;
          const std::int64_t f = t % oc;
          const std::int32_t* pred = pred_base + t * rows;
          std::uint8_t* m = mask_base + t * rows;
          std::vector<std::int32_t>& list =
              lists.lists[static_cast<std::size_t>(t)];

          // Pass 1: threshold + compaction (ascending by construction).
          for (std::int64_t r = 0; r < rows; ++r) {
            const float mag =
                std::abs(static_cast<float>(pred[r]) * scale);
            const bool sens = mag >= threshold;
            m[r] = sens ? 1 : 0;
            if (sens) list.push_back(static_cast<std::int32_t>(r));
          }

          // Pass 2: dense Eq. (3) dots over the compacted list only.
          const std::int8_t* bh = wts.high.row(f);
          const std::int8_t* bl = wts.low.row(f);
          std::int32_t* a = acc_base + t * rows;
          std::int64_t macs = 0;
          for (const std::int32_t r : list) {
            const std::int8_t* ah = cols.high.row(b, r);
            const std::int8_t* al = cols.low.row(b, r);
            std::int32_t cross = 0;  // ah*bl + al*bh
            std::int32_t low = 0;    // al*bl
            kk.dot_i8_split(ah, al, bh, bl, kp, &cross, &low);
            a[r] += (cross << lb) + low;
            macs += row_macs[static_cast<std::size_t>(r)];
          }
          tile_macs[static_cast<std::size_t>(t)] = macs;
        }
      },
      /*grain=*/1);

  // Serial reduction of the per-tile counters.
  SparseEpilogueStats stats;
  for (std::int64_t t = 0; t < tiles; ++t) {
    const std::int64_t sens =
        static_cast<std::int64_t>(lists.lists[static_cast<std::size_t>(t)]
                                      .size());
    stats.sensitive += sens;
    stats.executor_macs += tile_macs[static_cast<std::size_t>(t)];
    sensitive_per_channel[static_cast<std::size_t>(t % oc)] += sens;
  }
  return stats;
}

}  // namespace odq::gemm
