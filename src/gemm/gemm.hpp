// Tiled conv-GEMM microkernels over packed im2col operands (gemm/packed.hpp).
//
// One integer kernel serves every scheme that needs exact accumulators — the
// ODQ sensitivity predictor (with the 2*N_LBS shift folded into the store),
// static INT-N codes, and the differential test harness — with a pluggable
// accumulate type so tests can prove the tiling is overflow-safe headroom
// aside (int32 vs int64 instantiations must agree bit-for-bit). Integer
// addition is associative, so any tiling/unroll order is bit-identical to
// the direct-conv oracle at any thread count.
//
// The float kernel is deliberately NOT register-blocked over K: it seeds the
// accumulator with the bias and adds products in packed-row order with a
// single running sum — exactly the order tensor::conv2d_direct uses — so the
// DRQ and static fake-quantized baselines stay bit-identical to the retained
// direct-conv oracle (zero-padded taps contribute exact ±0.0 terms).
#pragma once

#include <algorithm>
#include <stdexcept>
#include <type_traits>

#include "gemm/packed.hpp"
#include "simd/dispatch.hpp"
#include "tensor/tensor.hpp"
#include "util/thread_pool.hpp"

namespace odq::gemm {

// The kKTile packing quantum is exactly the SIMD kernels' lane-block size;
// the depth budget below keeps every int32 lane accumulation exact.
static_assert(kKTile == simd::kKTileLanes,
              "packed depth quantum must match the SIMD lane block");

namespace detail {

inline void check_operands(std::int64_t cols_k, std::int64_t cols_kp,
                           std::int64_t wts_k, std::int64_t wts_kp) {
  if (cols_k != wts_k || cols_kp != wts_kp) {
    throw std::invalid_argument("gemm_conv: operand depth mismatch");
  }
  if (cols_kp > simd::kMaxDotDepth) {
    throw std::invalid_argument(
        "gemm_conv: depth exceeds the int32 accumulator budget");
  }
}

}  // namespace detail

// out[((b*oc + f)*rows) + r] = (cols.row(b,r) . wts.row(f)) << shift,
// accumulated in Acc. `out` must hold cols.batches * wts.oc * cols.rows
// elements. Parallel over (batch, filter-block) tiles; each tile owns
// disjoint output planes.
template <typename Acc>
void gemm_conv_int(const PackedIm2col& cols, const PackedWeights& wts,
                   int shift, Acc* out) {
  static_assert(std::is_same_v<Acc, std::int32_t> ||
                    std::is_same_v<Acc, std::int64_t>,
                "gemm_conv_int: Acc must be int32 or int64");
  detail::check_operands(cols.k, cols.k_padded, wts.k, wts.k_padded);
  const std::int64_t rows = cols.rows;
  const std::int64_t kp = cols.k_padded;
  const std::int64_t oc = wts.oc;
  const std::int64_t oc_blocks = (oc + kOcTile - 1) / kOcTile;
  // One kernel-table fetch per call (not per dot): backend flips between
  // calls (tests, ODQ_SIMD) without an indirect branch in the MAC loop.
  // k_padded is a multiple of kKTile (16), so the kernels never handle a
  // tail; integer sums reassociate freely, so every backend stores the
  // same accumulator bit-for-bit.
  const simd::Kernels& kk = simd::active_kernels();
  util::parallel_for(
      cols.batches * oc_blocks,
      [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t b = t / oc_blocks;
          const std::int64_t f0 = (t % oc_blocks) * kOcTile;
          const std::int64_t f1 = std::min(oc, f0 + kOcTile);
          for (std::int64_t r0 = 0; r0 < rows; r0 += kRowTile) {
            const std::int64_t r1 = std::min(rows, r0 + kRowTile);
            for (std::int64_t r = r0; r < r1; ++r) {
              const std::int8_t* a = cols.row(b, r);
              for (std::int64_t f = f0; f < f1; ++f) {
                const std::int8_t* wrow = wts.row(f);
                Acc s;
                if constexpr (std::is_same_v<Acc, std::int64_t>) {
                  s = kk.dot_i8_acc64(a, wrow, kp);
                } else {
                  s = kk.dot_i8(a, wrow, kp);
                }
                out[(b * oc + f) * rows + r] = s << shift;
              }
            }
          }
        }
      },
      /*grain=*/1);
}

// Convenience: fresh int32 accumulators shaped [N, OC, OH, OW].
tensor::TensorI32 gemm_conv_i8(const PackedIm2col& cols,
                               const PackedWeights& wts, int shift = 0);

// Float GEMM, bit-identical to tensor::conv2d_direct: per output, one
// accumulator seeded with the bias, products added in im2col order.
// `out` must be preshaped [N, OC, OH, OW].
void gemm_conv_f32(const PackedIm2colF& cols, const PackedWeightsF& wts,
                   const tensor::Tensor& bias, tensor::Tensor& out);

// Pack + float GEMM in one call: drop-in for tensor::conv2d_direct on the
// DRQ / static fake-quantized hot paths (the direct path remains the test
// oracle). input [N,C,H,W], weight [O,C,KH,KW], bias [O] (may be empty).
tensor::Tensor conv2d_f32(const tensor::Tensor& input,
                          const tensor::Tensor& weight,
                          const tensor::Tensor& bias, std::int64_t stride,
                          std::int64_t pad);

}  // namespace odq::gemm
