// Model summary: per-layer output shapes, parameter counts and conv MACs
// for a given input geometry (the usual `model.summary()` table).
#pragma once

#include <string>

#include "nn/model.hpp"

namespace odq::nn {

struct LayerSummary {
  std::string name;
  tensor::Shape output_shape;
  std::int64_t parameters = 0;
  std::int64_t macs = 0;  // conv/linear multiply-accumulates, 0 otherwise
};

struct ModelSummary {
  std::vector<LayerSummary> layers;
  std::int64_t total_parameters = 0;
  std::int64_t total_macs = 0;

  // Render as an aligned text table.
  std::string str() const;
};

// Runs one forward pass (eval mode) over a zero batch of `input_shape` to
// discover output shapes. `input_shape` is a full NCHW shape.
ModelSummary summarize(Model& model, const tensor::Shape& input_shape);

}  // namespace odq::nn
