// Softmax cross-entropy loss (fused, numerically stabilized).
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace odq::nn {

struct LossResult {
  float loss = 0.0f;           // mean over the batch
  tensor::Tensor grad_logits;  // d(mean loss)/d(logits), [N, K]
};

// logits [N, K], labels in [0, K).
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<int>& labels);

}  // namespace odq::nn
