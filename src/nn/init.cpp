#include "nn/init.hpp"

#include <cmath>
#include <cstring>

namespace odq::nn {

void kaiming_init(Model& model, std::uint64_t seed) {
  util::Rng rng(seed);
  for (Param* p : model.params()) {
    const auto& shape = p->value.shape();
    const bool is_weight = p->name.find(".weight") != std::string::npos;
    const bool is_gamma = p->name.find(".gamma") != std::string::npos;
    if (is_weight && shape.rank() >= 2) {
      // fan_in = product of all dims except dim 0.
      std::int64_t fan_in = 1;
      for (std::size_t d = 1; d < shape.rank(); ++d) fan_in *= shape[d];
      const float std_dev =
          std::sqrt(2.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
      for (std::int64_t i = 0; i < p->value.numel(); ++i) {
        p->value[i] = rng.normal_f(0.0f, std_dev);
      }
    } else if (is_gamma) {
      p->value.fill(1.0f);
    } else {
      p->value.fill(0.0f);
    }
  }
}

}  // namespace odq::nn
