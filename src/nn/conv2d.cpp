#include "nn/conv2d.hpp"

#include <stdexcept>

#include "nn/epilogue.hpp"
#include "tensor/ops.hpp"

namespace odq::nn {

using tensor::Shape;
using tensor::Tensor;

namespace {

Tensor transpose2d(const Tensor& m) {
  const std::int64_t r = m.shape()[0], c = m.shape()[1];
  Tensor out(Shape{c, r});
  for (std::int64_t i = 0; i < r; ++i) {
    for (std::int64_t j = 0; j < c; ++j) out.at2(j, i) = m.at2(i, j);
  }
  return out;
}

}  // namespace

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t k, std::int64_t stride, std::int64_t pad,
               bool bias, std::string label)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      k_(k),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      label_(std::move(label)),
      weight_(label_ + ".weight", Shape{out_channels, in_channels, k, k}),
      bias_(label_ + ".bias", Shape{bias ? out_channels : 0}) {}

void Conv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

std::int64_t Conv2d::macs_for(std::int64_t in_h, std::int64_t in_w) const {
  const std::int64_t oh = tensor::conv_out_dim(in_h, k_, stride_, pad_);
  const std::int64_t ow = tensor::conv_out_dim(in_w, k_, stride_, pad_);
  return oh * ow * out_channels_ * in_channels_ * k_ * k_;
}

Tensor Conv2d::forward(const Tensor& x, bool train) {
  if (x.shape().rank() != 4 || x.shape()[1] != in_channels_) {
    throw std::invalid_argument(label_ + ": bad input shape " +
                                x.shape().str());
  }
  if (executor_ == nullptr) return forward_fp32(x, train);

  // Quantized path: the executor produces the forward value; backward uses
  // the straight-through estimator on the cached FP32 input.
  cached_input_ = x;
  have_cols_ = false;
  return executor_->run(x, weight_.value, bias_.value, stride_, pad_,
                        conv_id_);
}

Tensor Conv2d::forward_fp32(const Tensor& x, bool train) {
  const std::int64_t n = x.shape()[0];
  const std::int64_t oh = tensor::conv_out_dim(x.shape()[2], k_, stride_, pad_);
  const std::int64_t ow = tensor::conv_out_dim(x.shape()[3], k_, stride_, pad_);

  Tensor cols = tensor::im2col(x, k_, k_, stride_, pad_);
  const std::int64_t ckk = in_channels_ * k_ * k_;
  Tensor w2d = weight_.value.reshaped(Shape{out_channels_, ckk});

  Tensor out(Shape{n, out_channels_, oh, ow});
  for (std::int64_t b = 0; b < n; ++b) {
    Tensor col_b(Shape{ckk, oh * ow},
                 std::vector<float>(cols.data() + b * ckk * oh * ow,
                                    cols.data() + (b + 1) * ckk * oh * ow));
    Tensor prod(Shape{out_channels_, oh * ow});
    tensor::matmul_into(w2d, col_b, prod, /*accumulate=*/false);
    std::copy(prod.data(), prod.data() + prod.numel(),
              out.data() + b * out_channels_ * oh * ow);
  }
  if (has_bias_) {
    // Shared conv epilogue (nn/epilogue.hpp): the bias-only case is the
    // exact `p[i] += bias[oc]` loop this file used to duplicate.
    ConvEpilogue e;
    e.bias = bias_.value;
    apply_conv_epilogue(out, e);
  }

  if (train) {
    cached_input_ = x;
    cached_cols_ = std::move(cols);
    have_cols_ = true;
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) {
    throw std::logic_error(label_ + ": backward before forward");
  }
  const Tensor& x = cached_input_;
  const std::int64_t n = x.shape()[0];
  const std::int64_t h = x.shape()[2], w = x.shape()[3];
  const std::int64_t oh = grad_out.shape()[2], ow = grad_out.shape()[3];
  const std::int64_t ckk = in_channels_ * k_ * k_;

  if (!have_cols_) {
    // STE path (executor forward): recompute the FP32 columns.
    cached_cols_ = tensor::im2col(x, k_, k_, stride_, pad_);
    have_cols_ = true;
  }

  Tensor w2d = weight_.value.reshaped(Shape{out_channels_, ckk});
  Tensor w2d_t = transpose2d(w2d);
  Tensor dw2d(Shape{out_channels_, ckk});
  Tensor dcols(Shape{n, ckk, oh * ow});

  for (std::int64_t b = 0; b < n; ++b) {
    Tensor go_b(Shape{out_channels_, oh * ow},
                std::vector<float>(grad_out.data() + b * out_channels_ * oh * ow,
                                   grad_out.data() +
                                       (b + 1) * out_channels_ * oh * ow));
    Tensor col_b(Shape{ckk, oh * ow},
                 std::vector<float>(cached_cols_.data() + b * ckk * oh * ow,
                                    cached_cols_.data() +
                                        (b + 1) * ckk * oh * ow));
    // dW += gradOut(b) * cols(b)^T
    Tensor col_b_t = transpose2d(col_b);
    tensor::matmul_into(go_b, col_b_t, dw2d, /*accumulate=*/true);
    // dcols(b) = W^T * gradOut(b)
    Tensor dcol_b(Shape{ckk, oh * ow});
    tensor::matmul_into(w2d_t, go_b, dcol_b, /*accumulate=*/false);
    std::copy(dcol_b.data(), dcol_b.data() + dcol_b.numel(),
              dcols.data() + b * ckk * oh * ow);
  }

  // Accumulate parameter grads.
  for (std::int64_t i = 0; i < dw2d.numel(); ++i) weight_.grad[i] += dw2d[i];
  if (has_bias_) {
    for (std::int64_t b = 0; b < n; ++b) {
      for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
        const float* p =
            grad_out.data() + (b * out_channels_ + oc) * oh * ow;
        float acc = 0.0f;
        for (std::int64_t i = 0; i < oh * ow; ++i) acc += p[i];
        bias_.grad[oc] += acc;
      }
    }
  }

  return tensor::col2im(dcols, in_channels_, h, w, k_, k_, stride_, pad_);
}

}  // namespace odq::nn
