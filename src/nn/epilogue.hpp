// Shared conv epilogue: one helper for the per-channel affine + activation
// work every conv path used to duplicate (bias add in Conv2d::forward_fp32,
// bias-in-dequantize in the ODQ executor, folded batchnorm + ReLU in the
// fused inference paths). All variants apply, per output channel ch:
//
//   y = bn_scale[ch] * x + bn_shift[ch] + bias[ch],   then y = max(y, 0)
//
// with absent terms dropping out exactly (empty bias -> + 0.0f, empty bn ->
// identity), so routing an existing path through the helper is bit-identical
// to the loop it replaces.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace odq::nn {

struct ConvEpilogue {
  tensor::Tensor bias;      // [OC] or empty
  tensor::Tensor bn_scale;  // [OC] or empty (empty => identity)
  tensor::Tensor bn_shift;  // [OC] or empty
  bool relu = false;

  bool has_bias() const { return !bias.empty(); }
  bool has_bn() const { return !bn_scale.empty(); }

  // Inference-mode batchnorm folded to a per-channel affine:
  //   scale = gamma / sqrt(running_var + eps), shift = beta - scale * mean.
  static ConvEpilogue from_batchnorm(const tensor::Tensor& gamma,
                                     const tensor::Tensor& beta,
                                     const tensor::Tensor& running_mean,
                                     const tensor::Tensor& running_var,
                                     float eps, bool relu);
};

// Apply the epilogue in place to conv output [N, OC, OH, OW]. A default
// ConvEpilogue is the identity. Plain bias-only epilogues add bias[ch] with
// the same `y += bv` the unfused loops used (bit-identical).
void apply_conv_epilogue(tensor::Tensor& x, const ConvEpilogue& e);

// Dequantize int32 accumulators through the epilogue into a float tensor:
// y = float(acc) * scale, then the per-channel affine + activation. The
// bias-only case reproduces the ODQ executor's fused
// `float(acc) * scale + bias[ch]` expression exactly. Tiled over
// (batch, channel) planes on the global pool.
tensor::Tensor dequantize_epilogue(const tensor::TensorI32& acc, float scale,
                                   const ConvEpilogue& e);

}  // namespace odq::nn
