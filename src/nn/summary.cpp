#include "nn/summary.hpp"

#include <cstdio>
#include <memory>

#include "nn/linear.hpp"
#include "tensor/ops.hpp"

namespace odq::nn {

namespace {

std::int64_t param_count(Layer& layer) {
  std::vector<Param*> ps;
  layer.collect_params(ps);
  std::int64_t n = 0;
  for (Param* p : ps) n += p->value.numel();
  return n;
}

// Pass-through FP32 executor that records the exact MACs of every conv call
// it sees, attributing them to the enclosing top-level layer.
class CountingExecutor : public ConvExecutor {
 public:
  tensor::Tensor run(const tensor::Tensor& input, const tensor::Tensor& weight,
                     const tensor::Tensor& bias, std::int64_t stride,
                     std::int64_t pad, int /*conv_id*/) override {
    const std::int64_t oh =
        tensor::conv_out_dim(input.shape()[2], weight.shape()[2], stride, pad);
    const std::int64_t ow =
        tensor::conv_out_dim(input.shape()[3], weight.shape()[3], stride, pad);
    // Per image (divide out the batch dimension).
    macs_ += oh * ow * weight.shape()[0] * weight.shape()[1] *
             weight.shape()[2] * weight.shape()[3];
    return tensor::conv2d_direct(input, weight, bias, stride, pad);
  }

  std::string name() const override { return "counting"; }

  std::int64_t take() {
    const std::int64_t m = macs_;
    macs_ = 0;
    return m;
  }

 private:
  std::int64_t macs_ = 0;
};

}  // namespace

ModelSummary summarize(Model& model, const tensor::Shape& input_shape) {
  ModelSummary s;
  auto counter = std::make_shared<CountingExecutor>();
  model.set_conv_executor(counter);

  tensor::Tensor x(input_shape);
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    Layer& layer = model.layer(i);
    const tensor::Shape in_shape = x.shape();
    x = layer.forward(x, /*train=*/false);

    LayerSummary ls;
    ls.name = layer.name();
    ls.output_shape = x.shape();
    ls.parameters = param_count(layer);
    ls.macs = counter->take();
    // Linear layers are MACs too.
    if (auto* fc = dynamic_cast<Linear*>(&layer)) {
      ls.macs += fc->in_features() * fc->out_features();
    }
    s.total_parameters += ls.parameters;
    s.total_macs += ls.macs;
    s.layers.push_back(std::move(ls));
  }
  model.set_conv_executor(nullptr);
  return s;
}

std::string ModelSummary::str() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %-20s %12s %14s\n", "layer",
                "output shape", "params", "MACs");
  out += line;
  out += std::string(76, '-') + "\n";
  for (const auto& l : layers) {
    std::snprintf(line, sizeof(line), "%-28s %-20s %12lld %14lld\n",
                  l.name.c_str(), l.output_shape.str().c_str(),
                  static_cast<long long>(l.parameters),
                  static_cast<long long>(l.macs));
    out += line;
  }
  out += std::string(76, '-') + "\n";
  std::snprintf(line, sizeof(line), "%-28s %-20s %12lld %14lld\n", "total", "",
                static_cast<long long>(total_parameters),
                static_cast<long long>(total_macs));
  out += line;
  return out;
}

}  // namespace odq::nn
