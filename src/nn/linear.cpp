#include "nn/linear.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace odq::nn {

using tensor::Shape;
using tensor::Tensor;

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               std::string label)
    : in_(in_features),
      out_(out_features),
      label_(std::move(label)),
      weight_(label_ + ".weight", Shape{out_features, in_features}),
      bias_(label_ + ".bias", Shape{out_features}) {}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

Tensor Linear::forward(const Tensor& x, bool train) {
  if (x.shape().rank() != 2 || x.shape()[1] != in_) {
    throw std::invalid_argument(label_ + ": bad input shape " +
                                x.shape().str());
  }
  const std::int64_t n = x.shape()[0];
  Tensor out(Shape{n, out_});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* xi = x.data() + i * in_;
    float* oi = out.data() + i * out_;
    for (std::int64_t o = 0; o < out_; ++o) {
      const float* wr = weight_.value.data() + o * in_;
      float acc = bias_.value[o];
      for (std::int64_t f = 0; f < in_; ++f) acc += xi[f] * wr[f];
      oi[o] = acc;
    }
  }
  if (train) cached_input_ = x;
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) {
    throw std::logic_error(label_ + ": backward before forward");
  }
  const Tensor& x = cached_input_;
  const std::int64_t n = x.shape()[0];
  Tensor dx(x.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const float* gi = grad_out.data() + i * out_;
    const float* xi = x.data() + i * in_;
    float* dxi = dx.data() + i * in_;
    for (std::int64_t o = 0; o < out_; ++o) {
      const float g = gi[o];
      bias_.grad[o] += g;
      float* wg = weight_.grad.data() + o * in_;
      const float* wr = weight_.value.data() + o * in_;
      for (std::int64_t f = 0; f < in_; ++f) {
        wg[f] += g * xi[f];
        dxi[f] += g * wr[f];
      }
    }
  }
  return dx;
}

}  // namespace odq::nn
