#include "nn/activations.hpp"

#include <stdexcept>

namespace odq::nn {

using tensor::Tensor;
using tensor::TensorU8;

Tensor ReLU::forward(const Tensor& x, bool train) {
  Tensor out(x.shape());
  if (train) mask_ = TensorU8(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const bool pos = x[i] > 0.0f;
    out[i] = pos ? x[i] : 0.0f;
    if (train) mask_[i] = pos ? 1 : 0;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (mask_.empty()) {
    throw std::logic_error(label_ + ": backward before train-mode forward");
  }
  Tensor dx(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    dx[i] = mask_[i] != 0 ? grad_out[i] : 0.0f;
  }
  return dx;
}

}  // namespace odq::nn
