// SGD trainer with momentum, weight decay and a step LR schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace odq::nn {

enum class Optimizer { kSgd, kAdam };

struct TrainConfig {
  std::int64_t epochs = 10;
  std::int64_t batch_size = 32;
  Optimizer optimizer = Optimizer::kSgd;
  float lr = 0.05f;
  float momentum = 0.9f;       // SGD momentum
  float adam_beta1 = 0.9f;
  float adam_beta2 = 0.999f;
  float adam_eps = 1e-8f;
  float weight_decay = 1e-4f;
  // Multiply lr by lr_decay every lr_step epochs (0 = no schedule).
  std::int64_t lr_step = 0;
  float lr_decay = 0.1f;
  std::uint64_t shuffle_seed = 42;
  bool verbose = false;
  // Optional in-place batch transform applied before the forward pass
  // (e.g. data::augment_batch bound to an Rng).
  std::function<void(tensor::Tensor&)> augment;
};

struct EpochStats {
  float loss = 0.0f;
  double train_accuracy = 0.0;
};

class SgdTrainer {
 public:
  explicit SgdTrainer(TrainConfig cfg) : cfg_(cfg) {}

  // One epoch over (images, labels); returns mean loss / accuracy.
  EpochStats train_epoch(Model& model, const tensor::Tensor& images,
                         const std::vector<int>& labels, std::int64_t epoch);

  // Full run; invokes `on_epoch` (if set) after every epoch.
  void train(Model& model, const tensor::Tensor& images,
             const std::vector<int>& labels,
             const std::function<void(std::int64_t, const EpochStats&)>&
                 on_epoch = nullptr);

  const TrainConfig& config() const { return cfg_; }

 private:
  void sgd_step(Model& model, float lr);
  void adam_step(Model& model, float lr);

  TrainConfig cfg_;
  std::int64_t adam_t_ = 0;  // Adam bias-correction step counter
};

}  // namespace odq::nn
