#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace odq::nn {

using tensor::Tensor;

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  const std::int64_t n = logits.shape()[0];
  const std::int64_t k = logits.shape()[1];
  if (static_cast<std::int64_t>(labels.size()) != n) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  LossResult res;
  res.grad_logits = tensor::softmax(logits);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= k) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    float* row = res.grad_logits.data() + i * k;
    loss -= std::log(std::max(row[y], 1e-12f));
    row[y] -= 1.0f;
    for (std::int64_t j = 0; j < k; ++j) row[j] *= inv_n;
  }
  res.loss = static_cast<float>(loss / static_cast<double>(n));
  return res;
}

}  // namespace odq::nn
