// Model zoo: the paper's evaluation networks (ResNet-20/56, VGG-16,
// DenseNet) plus LeNet-5 for the Figure-1 motivation experiment.
//
// Every constructor takes the input geometry and a width parameter so the
// same topologies run both at paper scale and at the laptop scale the
// benches default to (see DESIGN.md §4 on the width substitution).
#pragma once

#include <cstdint>

#include "nn/model.hpp"

namespace odq::nn {

// LeNet-5 for 1-channel 28x28 inputs (MNIST-like).
Model make_lenet5(std::int64_t num_classes = 10);

// CIFAR-style ResNet (He et al.): depth = 6n+2 with n blocks per stage.
// depth must be one of {8, 14, 20, 26, ..., 56, ...}. `base_width` is the
// stage-1 channel count (16 in the paper's full-size models).
Model make_resnet(std::int64_t depth, std::int64_t num_classes,
                  std::int64_t base_width = 16, std::int64_t in_channels = 3);

inline Model make_resnet20(std::int64_t num_classes = 10,
                           std::int64_t base_width = 16) {
  return make_resnet(20, num_classes, base_width);
}

inline Model make_resnet56(std::int64_t num_classes = 10,
                           std::int64_t base_width = 16) {
  return make_resnet(56, num_classes, base_width);
}

// VGG-16 (CIFAR variant: 13 conv layers, global pooling head + 1 FC).
// Channel counts are {64,128,256,512,512} scaled by width_mult/64.
Model make_vgg16(std::int64_t num_classes = 10, std::int64_t width_mult = 64,
                 std::int64_t in_channels = 3);

// DenseNet-BC-style network for 32x32 inputs: 3 dense blocks of
// `layers_per_block` layers with growth rate `growth`, transitions between.
Model make_densenet(std::int64_t num_classes = 10, std::int64_t growth = 12,
                    std::int64_t layers_per_block = 4,
                    std::int64_t in_channels = 3);

}  // namespace odq::nn
