// Activation layers.
#pragma once

#include "nn/layer.hpp"

namespace odq::nn {

class ReLU : public Layer {
 public:
  explicit ReLU(std::string label = "relu") : label_(std::move(label)) {}

  tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return label_; }

 private:
  std::string label_;
  tensor::TensorU8 mask_;  // 1 where input > 0
};

}  // namespace odq::nn
