#include "nn/blocks.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace odq::nn {

using tensor::Shape;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// ResidualBlock
// ---------------------------------------------------------------------------

ResidualBlock::ResidualBlock(std::int64_t in_channels,
                             std::int64_t out_channels, std::int64_t stride,
                             std::string label)
    : label_(std::move(label)),
      conv1_(in_channels, out_channels, 3, stride, 1, /*bias=*/false,
             label_ + ".conv1"),
      bn1_(out_channels, 0.1f, 1e-5f, label_ + ".bn1"),
      relu1_(label_ + ".relu1"),
      conv2_(out_channels, out_channels, 3, 1, 1, /*bias=*/false,
             label_ + ".conv2"),
      bn2_(out_channels, 0.1f, 1e-5f, label_ + ".bn2"),
      relu2_(label_ + ".relu2"),
      has_projection_(stride != 1 || in_channels != out_channels) {
  if (has_projection_) {
    proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride,
                                          0, /*bias=*/false,
                                          label_ + ".proj_conv");
    proj_bn_ = std::make_unique<BatchNorm2d>(out_channels, 0.1f, 1e-5f,
                                             label_ + ".proj_bn");
  }
}

Tensor ResidualBlock::forward(const Tensor& x, bool train) {
  Tensor main = bn2_.forward(
      conv2_.forward(relu1_.forward(bn1_.forward(conv1_.forward(x, train),
                                                 train),
                                    train),
                     train),
      train);
  Tensor shortcut =
      has_projection_
          ? proj_bn_->forward(proj_conv_->forward(x, train), train)
          : x;
  tensor::add_inplace(main, shortcut);
  return relu2_.forward(main, train);
}

Tensor ResidualBlock::backward(const Tensor& grad_out) {
  Tensor g = relu2_.backward(grad_out);  // grad at (main + shortcut)
  // Main path.
  Tensor gmain = conv1_.backward(
      bn1_.backward(relu1_.backward(conv2_.backward(bn2_.backward(g)))));
  // Shortcut path.
  Tensor gshort =
      has_projection_ ? proj_conv_->backward(proj_bn_->backward(g)) : g;
  tensor::add_inplace(gmain, gshort);
  return gmain;
}

void ResidualBlock::collect_params(std::vector<Param*>& out) {
  conv1_.collect_params(out);
  bn1_.collect_params(out);
  conv2_.collect_params(out);
  bn2_.collect_params(out);
  if (has_projection_) {
    proj_conv_->collect_params(out);
    proj_bn_->collect_params(out);
  }
}

void ResidualBlock::collect_buffers(std::vector<tensor::Tensor*>& out) {
  bn1_.collect_buffers(out);
  bn2_.collect_buffers(out);
  if (has_projection_) proj_bn_->collect_buffers(out);
}

void ResidualBlock::visit_convs(const std::function<void(Conv2d&)>& fn) {
  fn(conv1_);
  fn(conv2_);
  if (has_projection_) fn(*proj_conv_);
}

// ---------------------------------------------------------------------------
// DenseBlock
// ---------------------------------------------------------------------------

DenseBlock::DenseBlock(std::int64_t in_channels, std::int64_t growth,
                       std::int64_t num_layers, std::string label)
    : label_(std::move(label)),
      in_channels_(in_channels),
      growth_(growth),
      num_layers_(num_layers) {
  std::int64_t c = in_channels;
  for (std::int64_t l = 0; l < num_layers; ++l) {
    Inner inner;
    const std::string base = label_ + ".l" + std::to_string(l);
    inner.bn = std::make_unique<BatchNorm2d>(c, 0.1f, 1e-5f, base + ".bn");
    inner.relu = std::make_unique<ReLU>(base + ".relu");
    inner.conv = std::make_unique<Conv2d>(c, growth, 3, 1, 1, /*bias=*/false,
                                          base + ".conv");
    layers_.push_back(std::move(inner));
    c += growth;
  }
}

Tensor DenseBlock::forward(const Tensor& x, bool train) {
  cached_concat_.clear();
  Tensor features = x;
  for (auto& inner : layers_) {
    if (train) cached_concat_.push_back(features);
    Tensor f = inner.conv->forward(
        inner.relu->forward(inner.bn->forward(features, train), train), train);
    features = tensor::concat_channels(features, f);
  }
  return features;
}

Tensor DenseBlock::backward(const Tensor& grad_out) {
  if (cached_concat_.size() != layers_.size()) {
    throw std::logic_error(label_ + ": backward before train-mode forward");
  }
  // grad over the full concatenated output [in + L*growth channels].
  Tensor grad = grad_out;
  const Shape& s = grad.shape();
  const std::int64_t n = s[0], h = s[2], w = s[3];
  const std::int64_t hw = h * w;

  for (std::int64_t l = static_cast<std::int64_t>(layers_.size()) - 1; l >= 0;
       --l) {
    auto& inner = layers_[static_cast<std::size_t>(l)];
    const std::int64_t cin = in_channels_ + growth_ * l;
    const std::int64_t ctot = cin + growth_;
    // Split grad into [grad_prefix (cin ch), grad_f (growth ch)].
    Tensor gprefix(Shape{n, cin, h, w});
    Tensor gf(Shape{n, growth_, h, w});
    for (std::int64_t b = 0; b < n; ++b) {
      const float* src = grad.data() + b * ctot * hw;
      std::copy(src, src + cin * hw, gprefix.data() + b * cin * hw);
      std::copy(src + cin * hw, src + ctot * hw,
                gf.data() + b * growth_ * hw);
    }
    // Backprop the layer's output grad to its (concatenated) input and fold
    // into the prefix grad.
    Tensor gin = inner.bn->backward(
        inner.relu->backward(inner.conv->backward(gf)));
    tensor::add_inplace(gprefix, gin);
    grad = std::move(gprefix);
  }
  return grad;
}

void DenseBlock::collect_params(std::vector<Param*>& out) {
  for (auto& inner : layers_) {
    inner.bn->collect_params(out);
    inner.conv->collect_params(out);
  }
}

void DenseBlock::collect_buffers(std::vector<tensor::Tensor*>& out) {
  for (auto& inner : layers_) inner.bn->collect_buffers(out);
}

void DenseBlock::visit_convs(const std::function<void(Conv2d&)>& fn) {
  for (auto& inner : layers_) fn(*inner.conv);
}

// ---------------------------------------------------------------------------
// TransitionLayer
// ---------------------------------------------------------------------------

TransitionLayer::TransitionLayer(std::int64_t in_channels,
                                 std::int64_t out_channels, std::string label)
    : label_(std::move(label)),
      bn_(in_channels, 0.1f, 1e-5f, label_ + ".bn"),
      relu_(label_ + ".relu"),
      conv_(in_channels, out_channels, 1, 1, 0, /*bias=*/false,
            label_ + ".conv"),
      pool_(2, label_ + ".pool") {}

Tensor TransitionLayer::forward(const Tensor& x, bool train) {
  return pool_.forward(
      conv_.forward(relu_.forward(bn_.forward(x, train), train), train),
      train);
}

Tensor TransitionLayer::backward(const Tensor& grad_out) {
  return bn_.backward(relu_.backward(conv_.backward(pool_.backward(grad_out))));
}

void TransitionLayer::collect_params(std::vector<Param*>& out) {
  bn_.collect_params(out);
  conv_.collect_params(out);
}

void TransitionLayer::collect_buffers(std::vector<tensor::Tensor*>& out) {
  bn_.collect_buffers(out);
}

void TransitionLayer::visit_convs(const std::function<void(Conv2d&)>& fn) {
  fn(conv_);
}

}  // namespace odq::nn
