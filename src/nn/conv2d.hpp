// 2-D convolution layer (NCHW x OIHW), im2col + matmul forward, exact
// backward, and pluggable quantized executors.
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace odq::nn {

class Conv2d : public Layer {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t k,
         std::int64_t stride, std::int64_t pad, bool bias = true,
         std::string label = "conv");

  tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

  std::string name() const override { return label_; }
  void collect_params(std::vector<Param*>& out) override;
  void visit_convs(const std::function<void(Conv2d&)>& fn) override {
    fn(*this);
  }

  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param* bias() { return has_bias_ ? &bias_ : nullptr; }

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return k_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

  // Identifier assigned by Model::assign_conv_ids (C1 = id 0, ...).
  int conv_id() const { return conv_id_; }
  void set_conv_id(int id) { conv_id_ = id; }

  // Numeric scheme. Null restores the FP32 im2col path. Quantized executors
  // are used for forward only; backward uses the straight-through estimator
  // (gradients of the FP32 surrogate).
  void set_executor(std::shared_ptr<ConvExecutor> executor) {
    executor_ = std::move(executor);
  }
  ConvExecutor* executor() const { return executor_.get(); }

  // The most recent input (needed by instrumentation harnesses). Valid after
  // a forward with train=true.
  const tensor::Tensor& cached_input() const { return cached_input_; }

  // MACs per forward for a given input spatial size (used by the accelerator
  // workload extraction).
  std::int64_t macs_for(std::int64_t in_h, std::int64_t in_w) const;

 private:
  tensor::Tensor forward_fp32(const tensor::Tensor& x, bool train);

  std::int64_t in_channels_, out_channels_, k_, stride_, pad_;
  bool has_bias_;
  std::string label_;
  Param weight_;
  Param bias_;
  int conv_id_ = -1;

  std::shared_ptr<ConvExecutor> executor_;

  // Backward caches.
  tensor::Tensor cached_input_;
  tensor::Tensor cached_cols_;  // im2col of cached_input_
  bool have_cols_ = false;
};

}  // namespace odq::nn
