#include "nn/pooling.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace odq::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor MaxPool2d::forward(const Tensor& x, bool train) {
  input_shape_ = x.shape();
  return tensor::maxpool2d(x, k_, train ? &argmax_ : nullptr);
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (argmax_.empty()) {
    throw std::logic_error(label_ + ": backward before train-mode forward");
  }
  Tensor dx(input_shape_);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    dx[argmax_[i]] += grad_out[i];
  }
  return dx;
}

Tensor AvgPool2d::forward(const Tensor& x, bool /*train*/) {
  input_shape_ = x.shape();
  return tensor::avgpool2d(x, k_);
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  const Shape& s = grad_out.shape();
  const std::int64_t n = s[0], c = s[1], oh = s[2], ow = s[3];
  Tensor dx(input_shape_);
  const float inv = 1.0f / static_cast<float>(k_ * k_);
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          const float g = grad_out.at4(b, ch, oy, ox) * inv;
          for (std::int64_t ki = 0; ki < k_; ++ki) {
            for (std::int64_t kj = 0; kj < k_; ++kj) {
              dx.at4(b, ch, oy * k_ + ki, ox * k_ + kj) += g;
            }
          }
        }
      }
    }
  }
  return dx;
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool /*train*/) {
  input_shape_ = x.shape();
  return tensor::global_avg_pool(x);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  const std::int64_t n = input_shape_[0], c = input_shape_[1];
  const std::int64_t hw = input_shape_[2] * input_shape_[3];
  Tensor dx(input_shape_);
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.at2(b, ch) * inv;
      float* p = dx.data() + (b * c + ch) * hw;
      for (std::int64_t i = 0; i < hw; ++i) p[i] = g;
    }
  }
  return dx;
}

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  input_shape_ = x.shape();
  const std::int64_t n = x.shape()[0];
  return x.reshaped(Shape{n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(input_shape_);
}

}  // namespace odq::nn
