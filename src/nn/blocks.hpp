// Composite blocks: residual basic block (ResNet) and dense block /
// transition (DenseNet). Each block owns its sub-layers and routes gradients
// through both data paths explicitly.
#pragma once

#include <memory>
#include <vector>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/pooling.hpp"

namespace odq::nn {

// conv3x3-bn-relu-conv3x3-bn + shortcut, then relu (He et al. basic block).
// When stride > 1 or channel counts differ, the shortcut is conv1x1-bn.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                std::int64_t stride, std::string label = "resblock");

  tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return label_; }
  void collect_params(std::vector<Param*>& out) override;
  void collect_buffers(std::vector<tensor::Tensor*>& out) override;
  void visit_convs(const std::function<void(Conv2d&)>& fn) override;

 private:
  std::string label_;
  Conv2d conv1_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  ReLU relu2_;
  bool has_projection_;
  std::unique_ptr<Conv2d> proj_conv_;
  std::unique_ptr<BatchNorm2d> proj_bn_;
};

// One DenseNet layer: bn-relu-conv3x3 producing `growth` channels; the block
// concatenates its output onto the running feature stack.
class DenseBlock : public Layer {
 public:
  DenseBlock(std::int64_t in_channels, std::int64_t growth,
             std::int64_t num_layers, std::string label = "denseblock");

  tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return label_; }
  void collect_params(std::vector<Param*>& out) override;
  void collect_buffers(std::vector<tensor::Tensor*>& out) override;
  void visit_convs(const std::function<void(Conv2d&)>& fn) override;

  std::int64_t out_channels() const {
    return in_channels_ + growth_ * num_layers_;
  }

 private:
  std::string label_;
  std::int64_t in_channels_, growth_, num_layers_;
  struct Inner {
    std::unique_ptr<BatchNorm2d> bn;
    std::unique_ptr<ReLU> relu;
    std::unique_ptr<Conv2d> conv;
  };
  std::vector<Inner> layers_;
  // Concatenated inputs seen by each inner layer during the last forward.
  std::vector<tensor::Tensor> cached_concat_;
};

// DenseNet transition: bn-relu-conv1x1 (channel reduction) - avgpool2.
class TransitionLayer : public Layer {
 public:
  TransitionLayer(std::int64_t in_channels, std::int64_t out_channels,
                  std::string label = "transition");

  tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return label_; }
  void collect_params(std::vector<Param*>& out) override;
  void collect_buffers(std::vector<tensor::Tensor*>& out) override;
  void visit_convs(const std::function<void(Conv2d&)>& fn) override;

 private:
  std::string label_;
  BatchNorm2d bn_;
  ReLU relu_;
  Conv2d conv_;
  AvgPool2d pool_;
};

}  // namespace odq::nn
