// Fully connected layer: y = x W^T + b for x [N, in], W [out, in].
#pragma once

#include "nn/layer.hpp"

namespace odq::nn {

class Linear : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features,
         std::string label = "fc");

  tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

  std::string name() const override { return label_; }
  void collect_params(std::vector<Param*>& out) override;

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_, out_;
  std::string label_;
  Param weight_;
  Param bias_;
  tensor::Tensor cached_input_;
};

}  // namespace odq::nn
