#include "nn/epilogue.hpp"

#include <cmath>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace odq::nn {

using tensor::Shape;
using tensor::Tensor;
using tensor::TensorI32;

ConvEpilogue ConvEpilogue::from_batchnorm(const Tensor& gamma,
                                          const Tensor& beta,
                                          const Tensor& running_mean,
                                          const Tensor& running_var, float eps,
                                          bool relu) {
  const std::int64_t c = gamma.numel();
  if (beta.numel() != c || running_mean.numel() != c ||
      running_var.numel() != c) {
    throw std::invalid_argument("ConvEpilogue: batchnorm param size mismatch");
  }
  ConvEpilogue e;
  e.bn_scale = Tensor(Shape{c});
  e.bn_shift = Tensor(Shape{c});
  for (std::int64_t i = 0; i < c; ++i) {
    const float s = gamma[i] / std::sqrt(running_var[i] + eps);
    e.bn_scale[i] = s;
    e.bn_shift[i] = beta[i] - s * running_mean[i];
  }
  e.relu = relu;
  return e;
}

namespace {

void check_channels(const ConvEpilogue& e, std::int64_t oc) {
  if (e.has_bias() && e.bias.numel() != oc) {
    throw std::invalid_argument("ConvEpilogue: bias size mismatch");
  }
  if (e.has_bn() &&
      (e.bn_scale.numel() != oc || e.bn_shift.numel() != oc)) {
    throw std::invalid_argument("ConvEpilogue: batchnorm size mismatch");
  }
}

}  // namespace

void apply_conv_epilogue(Tensor& x, const ConvEpilogue& e) {
  const Shape& s = x.shape();
  if (s.rank() != 4) {
    throw std::invalid_argument("apply_conv_epilogue: need NCHW output");
  }
  const std::int64_t oc = s[1], ohw = s[2] * s[3];
  check_channels(e, oc);
  if (!e.has_bias() && !e.has_bn() && !e.relu) return;
  float* base = x.data();
  util::parallel_for(
      s[0] * oc,
      [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t ch = t % oc;
          float* p = base + t * ohw;
          if (e.has_bn()) {
            const float sc = e.bn_scale[ch];
            const float sh =
                e.bn_shift[ch] + (e.has_bias() ? e.bias[ch] : 0.0f);
            for (std::int64_t i = 0; i < ohw; ++i) p[i] = sc * p[i] + sh;
          } else if (e.has_bias()) {
            const float bv = e.bias[ch];
            for (std::int64_t i = 0; i < ohw; ++i) p[i] += bv;
          }
          if (e.relu) {
            for (std::int64_t i = 0; i < ohw; ++i) {
              p[i] = p[i] > 0.0f ? p[i] : 0.0f;
            }
          }
        }
      },
      /*grain=*/1);
}

Tensor dequantize_epilogue(const TensorI32& acc, float scale,
                           const ConvEpilogue& e) {
  const Shape& s = acc.shape();
  if (s.rank() != 4) {
    throw std::invalid_argument("dequantize_epilogue: need NCHW accumulators");
  }
  const std::int64_t oc = s[1], ohw = s[2] * s[3];
  check_channels(e, oc);
  Tensor out(s);
  const std::int32_t* src = acc.data();
  float* dst = out.data();
  util::parallel_for(
      s[0] * oc,
      [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t ch = t % oc;
          const std::int32_t* a = src + t * ohw;
          float* o = dst + t * ohw;
          if (!e.has_bn()) {
            // The ODQ executor's historical fused expression, kept verbatim
            // so routing it through the shared helper stays bit-identical.
            const float bv = e.has_bias() ? e.bias[ch] : 0.0f;
            for (std::int64_t i = 0; i < ohw; ++i) {
              o[i] = static_cast<float>(a[i]) * scale + bv;
            }
          } else {
            const float sc = e.bn_scale[ch];
            const float sh =
                e.bn_shift[ch] + (e.has_bias() ? e.bias[ch] : 0.0f);
            for (std::int64_t i = 0; i < ohw; ++i) {
              o[i] = sc * (static_cast<float>(a[i]) * scale) + sh;
            }
          }
          if (e.relu) {
            for (std::int64_t i = 0; i < ohw; ++i) {
              o[i] = o[i] > 0.0f ? o[i] : 0.0f;
            }
          }
        }
      },
      /*grain=*/1);
  return out;
}

}  // namespace odq::nn
