#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace odq::nn {

using tensor::Shape;
using tensor::Tensor;

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps,
                         std::string label)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      label_(std::move(label)),
      gamma_(label_ + ".gamma", Shape{channels}),
      beta_(label_ + ".beta", Shape{channels}),
      running_mean_(Shape{channels}),
      running_var_(Shape{channels}, 1.0f) {
  gamma_.value.fill(1.0f);
}

void BatchNorm2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  const Shape& s = x.shape();
  if (s.rank() != 4 || s[1] != channels_) {
    throw std::invalid_argument(label_ + ": bad input shape " + s.str());
  }
  const std::int64_t n = s[0], c = s[1], hw = s[2] * s[3];
  Tensor out(s);

  if (train) {
    cached_xhat_ = Tensor(s);
    cached_inv_std_ = Tensor(Shape{c});
    cached_n_ = n * hw;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      double mean = 0.0;
      for (std::int64_t b = 0; b < n; ++b) {
        const float* p = x.data() + (b * c + ch) * hw;
        for (std::int64_t i = 0; i < hw; ++i) mean += p[i];
      }
      mean /= static_cast<double>(cached_n_);
      double var = 0.0;
      for (std::int64_t b = 0; b < n; ++b) {
        const float* p = x.data() + (b * c + ch) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          const double d = p[i] - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(cached_n_);
      const float inv_std =
          1.0f / std::sqrt(static_cast<float>(var) + eps_);
      cached_inv_std_[ch] = inv_std;
      running_mean_[ch] = (1.0f - momentum_) * running_mean_[ch] +
                          momentum_ * static_cast<float>(mean);
      running_var_[ch] = (1.0f - momentum_) * running_var_[ch] +
                         momentum_ * static_cast<float>(var);
      const float g = gamma_.value[ch], bt = beta_.value[ch];
      for (std::int64_t b = 0; b < n; ++b) {
        const float* p = x.data() + (b * c + ch) * hw;
        float* xh = cached_xhat_.data() + (b * c + ch) * hw;
        float* op = out.data() + (b * c + ch) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          xh[i] = (p[i] - static_cast<float>(mean)) * inv_std;
          op[i] = g * xh[i] + bt;
        }
      }
    }
  } else {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float inv_std = 1.0f / std::sqrt(running_var_[ch] + eps_);
      const float g = gamma_.value[ch], bt = beta_.value[ch];
      const float mean = running_mean_[ch];
      for (std::int64_t b = 0; b < n; ++b) {
        const float* p = x.data() + (b * c + ch) * hw;
        float* op = out.data() + (b * c + ch) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          op[i] = g * (p[i] - mean) * inv_std + bt;
        }
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  if (cached_xhat_.empty()) {
    throw std::logic_error(label_ + ": backward before train-mode forward");
  }
  const Shape& s = grad_out.shape();
  const std::int64_t n = s[0], c = s[1], hw = s[2] * s[3];
  const auto m = static_cast<float>(cached_n_);
  Tensor dx(s);

  for (std::int64_t ch = 0; ch < c; ++ch) {
    // Reductions over the channel.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t b = 0; b < n; ++b) {
      const float* dy = grad_out.data() + (b * c + ch) * hw;
      const float* xh = cached_xhat_.data() + (b * c + ch) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    gamma_.grad[ch] += static_cast<float>(sum_dy_xhat);
    beta_.grad[ch] += static_cast<float>(sum_dy);

    const float g = gamma_.value[ch];
    const float inv_std = cached_inv_std_[ch];
    const auto sdy = static_cast<float>(sum_dy);
    const auto sdyx = static_cast<float>(sum_dy_xhat);
    for (std::int64_t b = 0; b < n; ++b) {
      const float* dy = grad_out.data() + (b * c + ch) * hw;
      const float* xh = cached_xhat_.data() + (b * c + ch) * hw;
      float* dxp = dx.data() + (b * c + ch) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        dxp[i] = g * inv_std / m * (m * dy[i] - sdy - xh[i] * sdyx);
      }
    }
  }
  return dx;
}

}  // namespace odq::nn
