// Model: an owning sequence of layers with save/load, parameter access,
// conv enumeration and executor plumbing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/layer.hpp"
#include "util/status.hpp"

namespace odq::nn {

class Model {
 public:
  Model() = default;
  explicit Model(std::string name) : name_(std::move(name)) {}

  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // Add a layer; returns a typed reference for further configuration.
  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  tensor::Tensor forward(const tensor::Tensor& x, bool train = false);
  // Backward through the whole stack; returns grad w.r.t. the model input.
  tensor::Tensor backward(const tensor::Tensor& grad_out);

  std::vector<Param*> params();
  // Non-trainable serialized state (BatchNorm running statistics).
  std::vector<tensor::Tensor*> buffers();
  void zero_grad();
  std::int64_t num_parameters();

  // Enumerate conv layers in definition order and assign ids 0..K-1
  // (the paper's C1..CK). Returns the conv pointers in id order.
  std::vector<Conv2d*> assign_conv_ids();
  std::vector<Conv2d*> convs();

  // Install the same executor on every conv layer (null resets to FP32).
  void set_conv_executor(const std::shared_ptr<ConvExecutor>& executor);

  // Binary parameter serialization (values only; architecture must match).
  //
  // save() writes checkpoint format v3: a versioned header with per-tensor
  // dtype/shape records, a CRC32 over the payload, and an atomic tmp+rename
  // commit (a crash mid-save never destroys an existing checkpoint). load()
  // reads v3 and legacy v2 files (distinguished by magic). The try_* forms
  // return a typed util::Status — corruption, truncation and architecture
  // mismatch are distinguishable — and a failed v3 try_load leaves the
  // model's tensors untouched (the payload is staged and CRC-verified
  // before being committed). save()/load() wrap them and throw
  // std::runtime_error on failure. Fault-injection sites on every
  // open/read/write are listed in docs/robustness.md.
  util::Status try_save(const std::string& path);
  util::Status try_load(const std::string& path);
  void save(const std::string& path);
  void load(const std::string& path);

  // Legacy v2 writer (magic + counts + raw tensor payloads, no shape
  // records, no checksum), kept so v2 back-compat stays testable against
  // freshly written bytes. Every fwrite is checked, but the commit is
  // in-place — v2 readers/writers predate atomic saves.
  util::Status save_v2(const std::string& path);

 private:
  std::string name_;
  std::vector<LayerPtr> layers_;
};

// Top-1 accuracy of `model` on (images, labels): images [N,C,H,W] evaluated
// in minibatches of `batch`.
double evaluate_accuracy(Model& model, const tensor::Tensor& images,
                         const std::vector<int>& labels,
                         std::int64_t batch = 32);

}  // namespace odq::nn
