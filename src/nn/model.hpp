// Model: an owning sequence of layers with save/load, parameter access,
// conv enumeration and executor plumbing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/conv2d.hpp"
#include "nn/layer.hpp"

namespace odq::nn {

class Model {
 public:
  Model() = default;
  explicit Model(std::string name) : name_(std::move(name)) {}

  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // Add a layer; returns a typed reference for further configuration.
  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  tensor::Tensor forward(const tensor::Tensor& x, bool train = false);
  // Backward through the whole stack; returns grad w.r.t. the model input.
  tensor::Tensor backward(const tensor::Tensor& grad_out);

  std::vector<Param*> params();
  // Non-trainable serialized state (BatchNorm running statistics).
  std::vector<tensor::Tensor*> buffers();
  void zero_grad();
  std::int64_t num_parameters();

  // Enumerate conv layers in definition order and assign ids 0..K-1
  // (the paper's C1..CK). Returns the conv pointers in id order.
  std::vector<Conv2d*> assign_conv_ids();
  std::vector<Conv2d*> convs();

  // Install the same executor on every conv layer (null resets to FP32).
  void set_conv_executor(const std::shared_ptr<ConvExecutor>& executor);

  // Binary parameter serialization (values only; architecture must match).
  void save(const std::string& path);
  void load(const std::string& path);

 private:
  std::string name_;
  std::vector<LayerPtr> layers_;
};

// Top-1 accuracy of `model` on (images, labels): images [N,C,H,W] evaluated
// in minibatches of `batch`.
double evaluate_accuracy(Model& model, const tensor::Tensor& images,
                         const std::vector<int>& labels,
                         std::int64_t batch = 32);

}  // namespace odq::nn
