// Batch normalization over NCHW activations (per-channel statistics).
#pragma once

#include "nn/layer.hpp"

namespace odq::nn {

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f, std::string label = "bn");

  tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;

  std::string name() const override { return label_; }
  void collect_params(std::vector<Param*>& out) override;
  void collect_buffers(std::vector<tensor::Tensor*>& out) override {
    out.push_back(&running_mean_);
    out.push_back(&running_var_);
  }

  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  tensor::Tensor& running_mean() { return running_mean_; }
  tensor::Tensor& running_var() { return running_var_; }

 private:
  std::int64_t channels_;
  float momentum_, eps_;
  std::string label_;
  Param gamma_, beta_;
  tensor::Tensor running_mean_, running_var_;

  // Backward caches (train mode).
  tensor::Tensor cached_xhat_;
  tensor::Tensor cached_inv_std_;  // [C]
  std::int64_t cached_n_ = 0;      // N*H*W per channel
};

}  // namespace odq::nn
