// Pooling and reshaping layers.
#pragma once

#include "nn/layer.hpp"

namespace odq::nn {

// k x k max pooling with stride k.
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::int64_t k, std::string label = "maxpool")
      : k_(k), label_(std::move(label)) {}

  tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return label_; }

 private:
  std::int64_t k_;
  std::string label_;
  tensor::TensorI32 argmax_;
  tensor::Shape input_shape_;
};

// k x k average pooling with stride k.
class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(std::int64_t k, std::string label = "avgpool")
      : k_(k), label_(std::move(label)) {}

  tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return label_; }

 private:
  std::int64_t k_;
  std::string label_;
  tensor::Shape input_shape_;
};

// Global average pooling: [N,C,H,W] -> [N,C].
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string label = "gap") : label_(std::move(label)) {}

  tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return label_; }

 private:
  std::string label_;
  tensor::Shape input_shape_;
};

// [N,C,H,W] -> [N, C*H*W].
class Flatten : public Layer {
 public:
  explicit Flatten(std::string label = "flatten") : label_(std::move(label)) {}

  tensor::Tensor forward(const tensor::Tensor& x, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_out) override;
  std::string name() const override { return label_; }

 private:
  std::string label_;
  tensor::Shape input_shape_;
};

}  // namespace odq::nn
