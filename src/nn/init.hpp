// Weight initialization (Kaiming/He for conv and linear layers).
#pragma once

#include "nn/model.hpp"
#include "util/rng.hpp"

namespace odq::nn {

// He-normal initialization of all conv/linear weights; BN gamma=1, beta=0;
// biases zero. Deterministic given `seed`.
void kaiming_init(Model& model, std::uint64_t seed);

}  // namespace odq::nn
