// Layer abstraction for the CNN substrate.
//
// Layers implement forward and backward explicitly (no tape autograd): each
// layer caches exactly what its backward needs. Composite layers (residual
// and dense blocks) own their sub-layers and route gradients internally.
//
// Convolution layers evaluate through a pluggable ConvExecutor so the same
// model definition runs in FP32, static INT16/INT8/INT4, DRQ, or ODQ mode —
// executors implement the numeric scheme, Conv2d implements the layer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace odq::nn {

// A trainable parameter and its gradient accumulator.
struct Param {
  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;
  // Optimizer state, lazily sized: SGD uses `momentum`; Adam uses
  // `momentum` (first moment) and `velocity` (second moment).
  tensor::Tensor momentum;
  tensor::Tensor velocity;

  explicit Param(std::string n, tensor::Shape shape)
      : name(std::move(n)), value(shape), grad(std::move(shape)) {}

  void zero_grad() { grad.fill(0.0f); }
};

class Conv2d;

// Numeric scheme used by a Conv2d forward pass. run() must return the conv
// output (bias already applied) in float. `conv_id` identifies the layer for
// per-layer statistics.
class ConvExecutor {
 public:
  virtual ~ConvExecutor() = default;

  virtual tensor::Tensor run(const tensor::Tensor& input,
                             const tensor::Tensor& weight,
                             const tensor::Tensor& bias, std::int64_t stride,
                             std::int64_t pad, int conv_id) = 0;

  virtual std::string name() const = 0;
};

class Layer {
 public:
  virtual ~Layer() = default;

  // `train` selects batch statistics (BatchNorm) and enables caching for
  // backward. Evaluation passes may skip caches where indicated.
  virtual tensor::Tensor forward(const tensor::Tensor& x, bool train) = 0;

  // Consumes d(loss)/d(output), returns d(loss)/d(input), accumulating
  // parameter gradients. Must be called after a forward with train=true.
  virtual tensor::Tensor backward(const tensor::Tensor& grad_out) = 0;

  virtual std::string name() const = 0;

  // Collect trainable parameters (default: none).
  virtual void collect_params(std::vector<Param*>& out) { (void)out; }

  // Collect non-trainable state that must survive serialization (e.g.
  // BatchNorm running statistics). Default: none.
  virtual void collect_buffers(std::vector<tensor::Tensor*>& out) {
    (void)out;
  }

  // Visit every Conv2d beneath this layer (default: none).
  virtual void visit_convs(const std::function<void(Conv2d&)>& fn) {
    (void)fn;
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace odq::nn
