#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/loss.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"

namespace odq::nn {

using tensor::Shape;
using tensor::Tensor;

void SgdTrainer::sgd_step(Model& model, float lr) {
  for (Param* p : model.params()) {
    if (p->momentum.numel() != p->value.numel()) {
      p->momentum = Tensor(p->value.shape());
    }
    const std::int64_t n = p->value.numel();
    float* v = p->value.data();
    float* g = p->grad.data();
    float* m = p->momentum.data();
    for (std::int64_t i = 0; i < n; ++i) {
      const float grad = g[i] + cfg_.weight_decay * v[i];
      m[i] = cfg_.momentum * m[i] + grad;
      v[i] -= lr * m[i];
    }
  }
}

void SgdTrainer::adam_step(Model& model, float lr) {
  ++adam_t_;
  const float b1 = cfg_.adam_beta1, b2 = cfg_.adam_beta2;
  const float bc1 =
      1.0f - std::pow(b1, static_cast<float>(adam_t_));
  const float bc2 =
      1.0f - std::pow(b2, static_cast<float>(adam_t_));
  for (Param* p : model.params()) {
    if (p->momentum.numel() != p->value.numel()) {
      p->momentum = Tensor(p->value.shape());
    }
    if (p->velocity.numel() != p->value.numel()) {
      p->velocity = Tensor(p->value.shape());
    }
    const std::int64_t n = p->value.numel();
    float* v = p->value.data();
    float* g = p->grad.data();
    float* m1 = p->momentum.data();
    float* m2 = p->velocity.data();
    for (std::int64_t i = 0; i < n; ++i) {
      const float grad = g[i] + cfg_.weight_decay * v[i];
      m1[i] = b1 * m1[i] + (1.0f - b1) * grad;
      m2[i] = b2 * m2[i] + (1.0f - b2) * grad * grad;
      const float mhat = m1[i] / bc1;
      const float vhat = m2[i] / bc2;
      v[i] -= lr * mhat / (std::sqrt(vhat) + cfg_.adam_eps);
    }
  }
}

EpochStats SgdTrainer::train_epoch(Model& model, const Tensor& images,
                                   const std::vector<int>& labels,
                                   std::int64_t epoch) {
  const std::int64_t n = images.shape()[0];
  const std::int64_t c = images.shape()[1], h = images.shape()[2],
                     w = images.shape()[3];
  const std::int64_t chw = c * h * w;

  float lr = cfg_.lr;
  if (cfg_.lr_step > 0) {
    lr *= std::pow(cfg_.lr_decay,
                   static_cast<float>(epoch / cfg_.lr_step));
  }

  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(cfg_.shuffle_seed + static_cast<std::uint64_t>(epoch));
  std::shuffle(order.begin(), order.end(), rng);

  double loss_sum = 0.0;
  std::int64_t batches = 0;
  std::int64_t correct = 0;

  for (std::int64_t start = 0; start < n; start += cfg_.batch_size) {
    const std::int64_t bs = std::min(cfg_.batch_size, n - start);
    Tensor x(Shape{bs, c, h, w});
    std::vector<int> y(static_cast<std::size_t>(bs));
    for (std::int64_t i = 0; i < bs; ++i) {
      const std::int64_t src = order[static_cast<std::size_t>(start + i)];
      std::copy(images.data() + src * chw, images.data() + (src + 1) * chw,
                x.data() + i * chw);
      y[static_cast<std::size_t>(i)] = labels[static_cast<std::size_t>(src)];
    }

    if (cfg_.augment) cfg_.augment(x);

    model.zero_grad();
    Tensor logits = model.forward(x, /*train=*/true);
    LossResult lr_res = softmax_cross_entropy(logits, y);
    model.backward(lr_res.grad_logits);
    if (cfg_.optimizer == Optimizer::kAdam) {
      adam_step(model, lr);
    } else {
      sgd_step(model, lr);
    }

    loss_sum += lr_res.loss;
    ++batches;
    for (std::int64_t i = 0; i < bs; ++i) {
      if (tensor::argmax_row(logits, i) == y[static_cast<std::size_t>(i)]) {
        ++correct;
      }
    }
  }

  EpochStats stats;
  stats.loss = batches > 0 ? static_cast<float>(loss_sum /
                                                static_cast<double>(batches))
                           : 0.0f;
  stats.train_accuracy = static_cast<double>(correct) / static_cast<double>(n);
  return stats;
}

void SgdTrainer::train(
    Model& model, const Tensor& images, const std::vector<int>& labels,
    const std::function<void(std::int64_t, const EpochStats&)>& on_epoch) {
  for (std::int64_t e = 0; e < cfg_.epochs; ++e) {
    EpochStats stats = train_epoch(model, images, labels, e);
    if (cfg_.verbose) {
      ODQ_LOG_INFO("%s epoch %lld/%lld loss=%.4f acc=%.3f",
                   model.name().c_str(), static_cast<long long>(e + 1),
                   static_cast<long long>(cfg_.epochs), stats.loss,
                   stats.train_accuracy);
    }
    if (on_epoch) on_epoch(e, stats);
  }
}

}  // namespace odq::nn
