#include "nn/model.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "tensor/ops.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"

namespace odq::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor Model::forward(const Tensor& x, bool train) {
  Tensor cur = x;
  for (auto& layer : layers_) cur = layer->forward(cur, train);
  return cur;
}

Tensor Model::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Model::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) layer->collect_params(out);
  return out;
}

std::vector<tensor::Tensor*> Model::buffers() {
  std::vector<tensor::Tensor*> out;
  for (auto& layer : layers_) layer->collect_buffers(out);
  return out;
}

void Model::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::int64_t Model::num_parameters() {
  std::int64_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

std::vector<Conv2d*> Model::assign_conv_ids() {
  std::vector<Conv2d*> out;
  for (auto& layer : layers_) {
    layer->visit_convs([&out](Conv2d& c) {
      c.set_conv_id(static_cast<int>(out.size()));
      out.push_back(&c);
    });
  }
  return out;
}

std::vector<Conv2d*> Model::convs() {
  std::vector<Conv2d*> out;
  for (auto& layer : layers_) {
    layer->visit_convs([&out](Conv2d& c) { out.push_back(&c); });
  }
  return out;
}

void Model::set_conv_executor(const std::shared_ptr<ConvExecutor>& executor) {
  for (Conv2d* c : convs()) c->set_executor(executor);
}

namespace {

using util::Status;
using util::StatusCode;

// Checkpoint formats.
//
// v2 (legacy): magic "NQDO", u64 param count, params, u64 buffer count,
// buffers (BatchNorm running statistics). Each tensor: u64 numel + float
// payload. No shape records, no checksum, in-place writes.
//
// v3: magic "DOQ3", then a header — u32 version, u64 param count, u64
// buffer count, one record per tensor (params then buffers: u8 dtype,
// u8 rank, u64 dims[rank]), u64 payload byte count, u32 CRC32 over the
// payload — followed by the payload (raw float data, tensors in record
// order). Saves go through a tmp file and a rename so a crash mid-save
// leaves the previous checkpoint (or nothing) behind, never a torn file.
// The full layout and its failure taxonomy live in docs/robustness.md.
constexpr std::uint32_t kMagicV2 = 0x4F44514EU;  // bytes "NQDO"
constexpr std::uint32_t kMagicV3 = 0x33514F44U;  // bytes "DOQ3"
constexpr std::uint32_t kVersion3 = 3;
constexpr std::uint8_t kDtypeF32 = 0;
constexpr std::uint8_t kMaxRank = 8;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// fwrite with failure and short-write injection sites; a real or injected
// short write surfaces as a typed error naming what was being written.
Status checked_write(std::FILE* f, const void* data, std::size_t bytes,
                     const char* what, const std::string& path) {
  if (util::fault_fire("ckpt.write")) {
    return {StatusCode::kIoError, std::string("injected write failure (") +
                                      what + ") in " + path};
  }
  std::size_t want = bytes;
  if (util::fault_fire("ckpt.short_write") && want > 0) want = bytes - 1;
  const std::size_t n = std::fwrite(data, 1, want, f);
  if (n != bytes) {
    return {StatusCode::kIoError, std::string("short write (") + what +
                                      ", wrote " + std::to_string(n) + " of " +
                                      std::to_string(bytes) + " bytes) in " +
                                      path};
  }
  return Status::Ok();
}

// fread with failure and short-read injection sites. A short read without a
// stream error is a truncated file -> corruption; a stream error -> I/O.
Status checked_read(std::FILE* f, void* data, std::size_t bytes,
                    const char* what, const std::string& path) {
  if (util::fault_fire("ckpt.read")) {
    return {StatusCode::kIoError, std::string("injected read failure (") +
                                      what + ") in " + path};
  }
  std::size_t want = bytes;
  if (util::fault_fire("ckpt.short_read") && want > 0) want = bytes - 1;
  const std::size_t n = std::fread(data, 1, want, f);
  if (n != bytes) {
    if (std::ferror(f) != 0) {
      return {StatusCode::kIoError,
              std::string("read error (") + what + ") in " + path};
    }
    return {StatusCode::kCorruption, std::string("truncated file (") + what +
                                         ", got " + std::to_string(n) +
                                         " of " + std::to_string(bytes) +
                                         " bytes) in " + path};
  }
  return Status::Ok();
}

std::size_t tensor_bytes(const tensor::Tensor& t) {
  return static_cast<std::size_t>(t.numel()) * sizeof(float);
}

// Tensor payload write shared by v2/v3, with the bit-flip injection site:
// when armed, the nth payload write lands on disk with one bit flipped
// *after* the CRC was computed — the way real media corruption looks to a
// reader. The save itself still reports success.
Status write_payload(std::FILE* f, const tensor::Tensor& t,
                     const std::string& path) {
  const std::size_t bytes = tensor_bytes(t);
  if (util::fault_fire("ckpt.bitflip") && bytes > 0) {
    std::vector<unsigned char> corrupt(bytes);
    std::memcpy(corrupt.data(), t.data(), bytes);
    corrupt[0] ^= 1U;
    return checked_write(f, corrupt.data(), bytes, "tensor payload", path);
  }
  return checked_write(f, t.data(), bytes, "tensor payload", path);
}

// Gather params-then-buffers in serialization order.
std::vector<const tensor::Tensor*> serialized_tensors(
    std::vector<Param*>& ps, std::vector<tensor::Tensor*>& bs) {
  std::vector<const tensor::Tensor*> out;
  out.reserve(ps.size() + bs.size());
  for (Param* p : ps) out.push_back(&p->value);
  for (tensor::Tensor* b : bs) out.push_back(b);
  return out;
}

}  // namespace

util::Status Model::try_save(const std::string& path) {
  auto ps = params();
  auto bs = buffers();
  const auto tensors = serialized_tensors(ps, bs);

  // Pre-pass: payload size + CRC, streamed tensor-by-tensor.
  std::uint64_t payload_bytes = 0;
  std::uint32_t crc = util::crc32_init();
  for (const tensor::Tensor* t : tensors) {
    payload_bytes += tensor_bytes(*t);
    crc = util::crc32_update(crc, t->data(), tensor_bytes(*t));
  }
  const std::uint32_t payload_crc = util::crc32_final(crc);

  const std::string tmp = path + ".tmp";
  if (util::fault_fire("ckpt.open_w")) {
    return {StatusCode::kIoError, "injected open failure for " + tmp};
  }
  FilePtr f(std::fopen(tmp.c_str(), "wb"));
  if (f == nullptr) {
    return {StatusCode::kIoError, "Model::save: cannot open " + tmp};
  }

  const auto pcount = static_cast<std::uint64_t>(ps.size());
  const auto bcount = static_cast<std::uint64_t>(bs.size());
  Status st = [&] {
    Status s = checked_write(f.get(), &kMagicV3, sizeof(kMagicV3), "magic",
                             tmp);
    if (!s.ok()) return s;
    s = checked_write(f.get(), &kVersion3, sizeof(kVersion3), "version", tmp);
    if (!s.ok()) return s;
    s = checked_write(f.get(), &pcount, sizeof(pcount), "param count", tmp);
    if (!s.ok()) return s;
    s = checked_write(f.get(), &bcount, sizeof(bcount), "buffer count", tmp);
    if (!s.ok()) return s;
    for (const tensor::Tensor* t : tensors) {
      const std::uint8_t dtype = kDtypeF32;
      const auto rank = static_cast<std::uint8_t>(t->shape().rank());
      s = checked_write(f.get(), &dtype, sizeof(dtype), "tensor dtype", tmp);
      if (!s.ok()) return s;
      s = checked_write(f.get(), &rank, sizeof(rank), "tensor rank", tmp);
      if (!s.ok()) return s;
      for (std::int64_t d : t->shape().dims()) {
        const auto dim = static_cast<std::uint64_t>(d);
        s = checked_write(f.get(), &dim, sizeof(dim), "tensor dim", tmp);
        if (!s.ok()) return s;
      }
    }
    s = checked_write(f.get(), &payload_bytes, sizeof(payload_bytes),
                      "payload size", tmp);
    if (!s.ok()) return s;
    s = checked_write(f.get(), &payload_crc, sizeof(payload_crc),
                      "payload crc", tmp);
    if (!s.ok()) return s;
    for (const tensor::Tensor* t : tensors) {
      s = write_payload(f.get(), *t, tmp);
      if (!s.ok()) return s;
    }
    return Status::Ok();
  }();

  if (st.ok() && std::fflush(f.get()) != 0) {
    st = Status(StatusCode::kIoError, "Model::save: cannot flush " + tmp);
  }
  f.reset();  // close before rename
  if (!st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  if (util::fault_fire("ckpt.rename") ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return {StatusCode::kIoError, "Model::save: cannot rename " + tmp +
                                      " to " + path};
  }
  return Status::Ok();
}

util::Status Model::save_v2(const std::string& path) {
  auto ps = params();
  auto bs = buffers();
  if (util::fault_fire("ckpt.open_w")) {
    return {StatusCode::kIoError, "injected open failure for " + path};
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return {StatusCode::kIoError, "Model::save: cannot open " + path};
  }
  const auto pcount = static_cast<std::uint64_t>(ps.size());
  const auto bcount = static_cast<std::uint64_t>(bs.size());
  auto write_tensor_v2 = [&](const tensor::Tensor& t) {
    const auto n = static_cast<std::uint64_t>(t.numel());
    Status s = checked_write(f.get(), &n, sizeof(n), "tensor size", path);
    if (!s.ok()) return s;
    return write_payload(f.get(), t, path);
  };
  Status s = checked_write(f.get(), &kMagicV2, sizeof(kMagicV2), "magic",
                           path);
  if (!s.ok()) return s;
  s = checked_write(f.get(), &pcount, sizeof(pcount), "param count", path);
  if (!s.ok()) return s;
  for (Param* p : ps) {
    s = write_tensor_v2(p->value);
    if (!s.ok()) return s;
  }
  s = checked_write(f.get(), &bcount, sizeof(bcount), "buffer count", path);
  if (!s.ok()) return s;
  for (tensor::Tensor* b : bs) {
    s = write_tensor_v2(*b);
    if (!s.ok()) return s;
  }
  if (std::fflush(f.get()) != 0) {
    return {StatusCode::kIoError, "Model::save: cannot flush " + path};
  }
  return Status::Ok();
}

namespace {

// Legacy v2 body (magic already consumed). Streams straight into the model
// tensors — a failed v2 load may leave the model partially updated, which
// is why v3 stages instead.
Status load_v2_body(std::FILE* f, const std::string& path,
                    std::vector<Param*>& ps, std::vector<tensor::Tensor*>& bs) {
  auto read_tensor_v2 = [&](tensor::Tensor& t, const char* what) {
    std::uint64_t n = 0;
    Status s = checked_read(f, &n, sizeof(n), "tensor size", path);
    if (!s.ok()) return s;
    if (n != static_cast<std::uint64_t>(t.numel())) {
      return Status(StatusCode::kFailedPrecondition,
                    std::string("Model::load: ") + what +
                        " size mismatch in " + path);
    }
    return checked_read(f, t.data(), tensor_bytes(t), what, path);
  };
  std::uint64_t pcount = 0;
  Status s = checked_read(f, &pcount, sizeof(pcount), "param count", path);
  if (!s.ok()) return s;
  if (pcount != ps.size()) {
    return Status(StatusCode::kFailedPrecondition,
                  "Model::load: parameter count mismatch in " + path);
  }
  for (Param* p : ps) {
    s = read_tensor_v2(p->value, "parameter");
    if (!s.ok()) return s;
  }
  std::uint64_t bcount = 0;
  s = checked_read(f, &bcount, sizeof(bcount), "buffer count", path);
  if (!s.ok()) return s;
  if (bcount != bs.size()) {
    return Status(StatusCode::kFailedPrecondition,
                  "Model::load: buffer count mismatch in " + path);
  }
  for (tensor::Tensor* b : bs) {
    s = read_tensor_v2(*b, "buffer");
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace

util::Status Model::try_load(const std::string& path) {
  auto ps = params();
  auto bs = buffers();
  if (util::fault_fire("ckpt.open_r")) {
    return {StatusCode::kIoError, "injected open failure for " + path};
  }
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return {StatusCode::kNotFound, "Model::load: cannot open " + path};
  }

  std::uint32_t magic = 0;
  Status s = checked_read(f.get(), &magic, sizeof(magic), "magic", path);
  if (!s.ok()) return s;
  if (magic == kMagicV2) return load_v2_body(f.get(), path, ps, bs);
  if (magic != kMagicV3) {
    return {StatusCode::kCorruption, "Model::load: bad magic in " + path};
  }

  std::uint32_t version = 0;
  s = checked_read(f.get(), &version, sizeof(version), "version", path);
  if (!s.ok()) return s;
  if (version != kVersion3) {
    return {StatusCode::kFailedPrecondition,
            "Model::load: unsupported checkpoint version " +
                std::to_string(version) + " in " + path};
  }

  std::uint64_t pcount = 0, bcount = 0;
  s = checked_read(f.get(), &pcount, sizeof(pcount), "param count", path);
  if (!s.ok()) return s;
  s = checked_read(f.get(), &bcount, sizeof(bcount), "buffer count", path);
  if (!s.ok()) return s;
  if (pcount != ps.size() || bcount != bs.size()) {
    return {StatusCode::kFailedPrecondition,
            "Model::load: tensor count mismatch in " + path + " (file has " +
                std::to_string(pcount) + " params / " + std::to_string(bcount) +
                " buffers, model has " + std::to_string(ps.size()) + " / " +
                std::to_string(bs.size()) + ")"};
  }

  const auto tensors = serialized_tensors(ps, bs);
  std::uint64_t expected_payload = 0;
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    const tensor::Shape& shape = tensors[i]->shape();
    std::uint8_t dtype = 0, rank = 0;
    s = checked_read(f.get(), &dtype, sizeof(dtype), "tensor dtype", path);
    if (!s.ok()) return s;
    if (dtype != kDtypeF32) {
      return {StatusCode::kCorruption,
              "Model::load: unknown dtype " + std::to_string(dtype) +
                  " for tensor #" + std::to_string(i) + " in " + path};
    }
    s = checked_read(f.get(), &rank, sizeof(rank), "tensor rank", path);
    if (!s.ok()) return s;
    if (rank > kMaxRank) {
      return {StatusCode::kCorruption,
              "Model::load: implausible rank " + std::to_string(rank) +
                  " for tensor #" + std::to_string(i) + " in " + path};
    }
    if (rank != shape.rank()) {
      return {StatusCode::kFailedPrecondition,
              "Model::load: rank mismatch for tensor #" + std::to_string(i) +
                  " in " + path + " (file " + std::to_string(rank) +
                  ", model " + std::to_string(shape.rank()) + ")"};
    }
    for (std::size_t d = 0; d < rank; ++d) {
      std::uint64_t dim = 0;
      s = checked_read(f.get(), &dim, sizeof(dim), "tensor dim", path);
      if (!s.ok()) return s;
      if (dim != static_cast<std::uint64_t>(shape[d])) {
        return {StatusCode::kFailedPrecondition,
                "Model::load: shape mismatch for tensor #" +
                    std::to_string(i) + " dim " + std::to_string(d) + " in " +
                    path + " (file " + std::to_string(dim) + ", model " +
                    shape.str() + ")"};
      }
    }
    expected_payload += tensor_bytes(*tensors[i]);
  }

  std::uint64_t payload_bytes = 0;
  std::uint32_t payload_crc = 0;
  s = checked_read(f.get(), &payload_bytes, sizeof(payload_bytes),
                   "payload size", path);
  if (!s.ok()) return s;
  s = checked_read(f.get(), &payload_crc, sizeof(payload_crc), "payload crc",
                   path);
  if (!s.ok()) return s;
  if (payload_bytes != expected_payload) {
    return {StatusCode::kCorruption,
            "Model::load: payload size mismatch in " + path + " (header " +
                std::to_string(payload_bytes) + ", expected " +
                std::to_string(expected_payload) + " bytes)"};
  }

  // Cheap truncation / trailing-garbage check before reading the payload:
  // the header pins the exact file size, so a truncated checkpoint is
  // rejected without scanning (the corruption-matrix test sweeps every
  // byte offset of a real checkpoint and leans on this being O(header)).
  const long header_end = std::ftell(f.get());
  if (header_end < 0 || std::fseek(f.get(), 0, SEEK_END) != 0) {
    return {StatusCode::kIoError, "Model::load: cannot seek in " + path};
  }
  const long file_size = std::ftell(f.get());
  if (file_size < 0 ||
      std::fseek(f.get(), header_end, SEEK_SET) != 0) {
    return {StatusCode::kIoError, "Model::load: cannot seek in " + path};
  }
  const auto expected_size =
      static_cast<std::uint64_t>(header_end) + payload_bytes;
  if (static_cast<std::uint64_t>(file_size) != expected_size) {
    return {StatusCode::kCorruption,
            "Model::load: file size mismatch in " + path + " (" +
                std::to_string(file_size) + " bytes, header implies " +
                std::to_string(expected_size) +
                "; truncated or trailing garbage)"};
  }

  // Stage the payload and verify the CRC before touching the model: a load
  // that fails from here on leaves the previous weights fully intact.
  std::vector<float> staged(static_cast<std::size_t>(payload_bytes) /
                            sizeof(float));
  s = checked_read(f.get(), staged.data(),
                   static_cast<std::size_t>(payload_bytes), "payload", path);
  if (!s.ok()) return s;
  const std::uint32_t crc = util::crc32(
      staged.data(), static_cast<std::size_t>(payload_bytes));
  if (crc != payload_crc) {
    return {StatusCode::kCorruption,
            "Model::load: payload crc mismatch in " + path};
  }

  const float* src = staged.data();
  for (const tensor::Tensor* t : tensors) {
    auto* dst = const_cast<tensor::Tensor*>(t);
    std::memcpy(dst->data(), src, tensor_bytes(*t));
    src += t->numel();
  }
  return Status::Ok();
}

void Model::save(const std::string& path) { try_save(path).throw_if_error(); }

void Model::load(const std::string& path) { try_load(path).throw_if_error(); }

double evaluate_accuracy(Model& model, const Tensor& images,
                         const std::vector<int>& labels, std::int64_t batch) {
  const std::int64_t n = images.shape()[0];
  if (static_cast<std::int64_t>(labels.size()) != n) {
    throw std::invalid_argument("evaluate_accuracy: label count mismatch");
  }
  const std::int64_t c = images.shape()[1], h = images.shape()[2],
                     w = images.shape()[3];
  const std::int64_t chw = c * h * w;
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < n; start += batch) {
    const std::int64_t bs = std::min(batch, n - start);
    Tensor x(Shape{bs, c, h, w},
             std::vector<float>(images.data() + start * chw,
                                images.data() + (start + bs) * chw));
    Tensor logits = model.forward(x, /*train=*/false);
    for (std::int64_t i = 0; i < bs; ++i) {
      if (tensor::argmax_row(logits, i) == labels[static_cast<std::size_t>(
                                               start + i)]) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace odq::nn
