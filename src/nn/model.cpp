#include "nn/model.hpp"

#include <cstdint>
#include <cstdio>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace odq::nn {

using tensor::Shape;
using tensor::Tensor;

Tensor Model::forward(const Tensor& x, bool train) {
  Tensor cur = x;
  for (auto& layer : layers_) cur = layer->forward(cur, train);
  return cur;
}

Tensor Model::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Model::params() {
  std::vector<Param*> out;
  for (auto& layer : layers_) layer->collect_params(out);
  return out;
}

std::vector<tensor::Tensor*> Model::buffers() {
  std::vector<tensor::Tensor*> out;
  for (auto& layer : layers_) layer->collect_buffers(out);
  return out;
}

void Model::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::int64_t Model::num_parameters() {
  std::int64_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

std::vector<Conv2d*> Model::assign_conv_ids() {
  std::vector<Conv2d*> out;
  for (auto& layer : layers_) {
    layer->visit_convs([&out](Conv2d& c) {
      c.set_conv_id(static_cast<int>(out.size()));
      out.push_back(&c);
    });
  }
  return out;
}

std::vector<Conv2d*> Model::convs() {
  std::vector<Conv2d*> out;
  for (auto& layer : layers_) {
    layer->visit_convs([&out](Conv2d& c) { out.push_back(&c); });
  }
  return out;
}

void Model::set_conv_executor(const std::shared_ptr<ConvExecutor>& executor) {
  for (Conv2d* c : convs()) c->set_executor(executor);
}

namespace {

// Format v2: magic, param count, params, buffer count, buffers (BatchNorm
// running statistics). Each tensor: u64 numel + float payload.
constexpr std::uint32_t kMagic = 0x4F44514EU;  // "ODQN"

void write_tensor(std::FILE* f, const tensor::Tensor& t) {
  const auto n = static_cast<std::uint64_t>(t.numel());
  std::fwrite(&n, sizeof(n), 1, f);
  std::fwrite(t.data(), sizeof(float), static_cast<std::size_t>(n), f);
}

void read_tensor(std::FILE* f, tensor::Tensor& t, const std::string& path,
                 const char* what) {
  std::uint64_t n = 0;
  if (std::fread(&n, sizeof(n), 1, f) != 1 ||
      n != static_cast<std::uint64_t>(t.numel())) {
    std::fclose(f);
    throw std::runtime_error(std::string("Model::load: ") + what +
                             " size mismatch in " + path);
  }
  if (std::fread(t.data(), sizeof(float), static_cast<std::size_t>(n), f) !=
      n) {
    std::fclose(f);
    throw std::runtime_error("Model::load: truncated data in " + path);
  }
}

}  // namespace

void Model::save(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("Model::save: cannot open " + path);
  auto ps = params();
  auto bs = buffers();
  const std::uint32_t magic = kMagic;
  const auto pcount = static_cast<std::uint64_t>(ps.size());
  const auto bcount = static_cast<std::uint64_t>(bs.size());
  std::fwrite(&magic, sizeof(magic), 1, f);
  std::fwrite(&pcount, sizeof(pcount), 1, f);
  for (Param* p : ps) write_tensor(f, p->value);
  std::fwrite(&bcount, sizeof(bcount), 1, f);
  for (tensor::Tensor* b : bs) write_tensor(f, *b);
  std::fclose(f);
}

void Model::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("Model::load: cannot open " + path);
  std::uint32_t magic = 0;
  std::uint64_t pcount = 0;
  if (std::fread(&magic, sizeof(magic), 1, f) != 1 || magic != kMagic) {
    std::fclose(f);
    throw std::runtime_error("Model::load: bad magic in " + path);
  }
  auto ps = params();
  if (std::fread(&pcount, sizeof(pcount), 1, f) != 1 || pcount != ps.size()) {
    std::fclose(f);
    throw std::runtime_error("Model::load: parameter count mismatch in " +
                             path);
  }
  for (Param* p : ps) read_tensor(f, p->value, path, "parameter");

  auto bs = buffers();
  std::uint64_t bcount = 0;
  if (std::fread(&bcount, sizeof(bcount), 1, f) != 1 || bcount != bs.size()) {
    std::fclose(f);
    throw std::runtime_error("Model::load: buffer count mismatch in " + path);
  }
  for (tensor::Tensor* b : bs) read_tensor(f, *b, path, "buffer");
  std::fclose(f);
}

double evaluate_accuracy(Model& model, const Tensor& images,
                         const std::vector<int>& labels, std::int64_t batch) {
  const std::int64_t n = images.shape()[0];
  if (static_cast<std::int64_t>(labels.size()) != n) {
    throw std::invalid_argument("evaluate_accuracy: label count mismatch");
  }
  const std::int64_t c = images.shape()[1], h = images.shape()[2],
                     w = images.shape()[3];
  const std::int64_t chw = c * h * w;
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < n; start += batch) {
    const std::int64_t bs = std::min(batch, n - start);
    Tensor x(Shape{bs, c, h, w},
             std::vector<float>(images.data() + start * chw,
                                images.data() + (start + bs) * chw));
    Tensor logits = model.forward(x, /*train=*/false);
    for (std::int64_t i = 0; i < bs; ++i) {
      if (tensor::argmax_row(logits, i) == labels[static_cast<std::size_t>(
                                               start + i)]) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace odq::nn
