#include "nn/models.hpp"

#include <stdexcept>
#include <string>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/blocks.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace odq::nn {

Model make_lenet5(std::int64_t num_classes) {
  Model m("lenet5");
  m.add<Conv2d>(1, 6, 5, 1, 2, true, "c1");
  m.add<ReLU>("relu1");
  m.add<MaxPool2d>(2, "pool1");
  m.add<Conv2d>(6, 16, 5, 1, 0, true, "c2");
  m.add<ReLU>("relu2");
  m.add<MaxPool2d>(2, "pool2");
  m.add<Flatten>();
  m.add<Linear>(16 * 5 * 5, 120, "fc1");
  m.add<ReLU>("relu3");
  m.add<Linear>(120, 84, "fc2");
  m.add<ReLU>("relu4");
  m.add<Linear>(84, num_classes, "fc3");
  m.assign_conv_ids();
  return m;
}

Model make_resnet(std::int64_t depth, std::int64_t num_classes,
                  std::int64_t base_width, std::int64_t in_channels) {
  if ((depth - 2) % 6 != 0 || depth < 8) {
    throw std::invalid_argument("make_resnet: depth must be 6n+2, n>=1");
  }
  const std::int64_t n = (depth - 2) / 6;
  Model m("resnet" + std::to_string(depth));
  const std::int64_t w1 = base_width, w2 = base_width * 2, w3 = base_width * 4;

  m.add<Conv2d>(in_channels, w1, 3, 1, 1, false, "stem.conv");
  m.add<BatchNorm2d>(w1, 0.1f, 1e-5f, "stem.bn");
  m.add<ReLU>("stem.relu");

  auto add_stage = [&m, n](std::int64_t cin, std::int64_t cout,
                           std::int64_t stride, const std::string& tag) {
    for (std::int64_t b = 0; b < n; ++b) {
      m.add<ResidualBlock>(b == 0 ? cin : cout, cout, b == 0 ? stride : 1,
                           tag + ".b" + std::to_string(b));
    }
  };
  add_stage(w1, w1, 1, "s1");
  add_stage(w1, w2, 2, "s2");
  add_stage(w2, w3, 2, "s3");

  m.add<GlobalAvgPool>();
  m.add<Linear>(w3, num_classes, "fc");
  m.assign_conv_ids();
  return m;
}

Model make_vgg16(std::int64_t num_classes, std::int64_t width_mult,
                 std::int64_t in_channels) {
  // Standard VGG-16 plan: 2x64, 2x128, 3x256, 3x512, 3x512 with maxpools.
  const std::int64_t u = width_mult;  // 64 at paper scale
  struct StagePlan {
    std::int64_t convs;
    std::int64_t channels;
  };
  const StagePlan plan[] = {{2, u}, {2, 2 * u}, {3, 4 * u}, {3, 8 * u},
                            {3, 8 * u}};
  Model m("vgg16");
  std::int64_t cin = in_channels;
  int idx = 1;
  for (const auto& stage : plan) {
    for (std::int64_t i = 0; i < stage.convs; ++i) {
      const std::string tag = "c" + std::to_string(idx++);
      m.add<Conv2d>(cin, stage.channels, 3, 1, 1, false, tag);
      m.add<BatchNorm2d>(stage.channels, 0.1f, 1e-5f, tag + ".bn");
      m.add<ReLU>(tag + ".relu");
      cin = stage.channels;
    }
    m.add<MaxPool2d>(2, "pool" + std::to_string(idx));
  }
  m.add<GlobalAvgPool>();
  m.add<Linear>(cin, num_classes, "fc");
  m.assign_conv_ids();
  return m;
}

Model make_densenet(std::int64_t num_classes, std::int64_t growth,
                    std::int64_t layers_per_block, std::int64_t in_channels) {
  Model m("densenet");
  const std::int64_t stem = 2 * growth;
  m.add<Conv2d>(in_channels, stem, 3, 1, 1, false, "stem.conv");

  std::int64_t c = stem;
  for (int block = 0; block < 3; ++block) {
    auto& db = m.add<DenseBlock>(c, growth, layers_per_block,
                                 "db" + std::to_string(block));
    c = db.out_channels();
    if (block < 2) {
      const std::int64_t cout = c / 2;
      m.add<TransitionLayer>(c, cout, "tr" + std::to_string(block));
      c = cout;
    }
  }
  m.add<BatchNorm2d>(c, 0.1f, 1e-5f, "head.bn");
  m.add<ReLU>("head.relu");
  m.add<GlobalAvgPool>();
  m.add<Linear>(c, num_classes, "fc");
  m.assign_conv_ids();
  return m;
}

}  // namespace odq::nn
