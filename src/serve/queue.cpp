#include "serve/queue.hpp"

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace odq::serve {

using util::Status;
using util::StatusCode;

namespace {

// Resolved once; the registry returns the same object for the process
// lifetime, so every RequestQueue shares one depth gauge (the engine only
// ever constructs one queue).
obs::Gauge& depth_gauge() {
  static obs::Gauge& g = obs::gauge("serve.queue_depth");
  return g;
}

// Windowed depth samples for the live exporter, alongside the gauge.
obs::WindowedSeries& depth_series() {
  static obs::WindowedSeries& s = obs::telemetry_series("serve.queue_depth");
  return s;
}

void note_depth(std::size_t depth) {
  depth_gauge().set(static_cast<double>(depth));
  depth_series().record(depth);
}

}  // namespace

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Status RequestQueue::push(PendingRequest&& req) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    space_cv_.wait(lock,
                   [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) {
      return Status(StatusCode::kUnavailable, "request queue closed");
    }
    items_.push_back(std::move(req));
    note_depth(items_.size());
  }
  nonempty_cv_.notify_one();
  return Status::Ok();
}

Status RequestQueue::try_push(PendingRequest&& req) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) {
      return Status(StatusCode::kUnavailable, "request queue closed");
    }
    if (items_.size() >= capacity_) {
      return Status(StatusCode::kUnavailable, "request queue full");
    }
    items_.push_back(std::move(req));
    note_depth(items_.size());
  }
  nonempty_cv_.notify_one();
  return Status::Ok();
}

bool RequestQueue::pop_batch(std::vector<PendingRequest>& out,
                             std::size_t max_batch,
                             std::int64_t flush_timeout_us) {
  out.clear();
  if (max_batch == 0) max_batch = 1;

  std::unique_lock<std::mutex> lock(mutex_);
  nonempty_cv_.wait(lock, [&] { return !items_.empty() || closed_; });
  if (items_.empty()) return false;  // closed and drained

  // Flush deadline anchored at the *oldest* request: a request never waits
  // in the batcher more than flush_timeout_us past its enqueue, and a
  // backlog (front already past deadline) flushes without waiting.
  const auto deadline =
      items_.front().enqueue_tp + std::chrono::microseconds(flush_timeout_us);

  auto take_available = [&] {
    while (!items_.empty() && out.size() < max_batch) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
  };
  take_available();

  while (out.size() < max_batch && !closed_) {
    const bool more = nonempty_cv_.wait_until(
        lock, deadline, [&] { return !items_.empty() || closed_; });
    if (!more) break;  // deadline expired with no new arrivals
    take_available();
  }
  if (closed_) take_available();  // closing flushes whatever arrived

  note_depth(items_.size());
  lock.unlock();
  space_cv_.notify_all();
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  nonempty_cv_.notify_all();
  space_cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

}  // namespace odq::serve
