#include "serve/session.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "drq/drq.hpp"
#include "quant/static_executor.hpp"
#include "tensor/shape.hpp"

namespace odq::serve {

std::shared_ptr<nn::ConvExecutor> make_conv_executor(
    const std::string& scheme, const core::OdqConfig& odq_cfg) {
  if (scheme == "odq") {
    return std::make_shared<core::OdqConvExecutor>(odq_cfg);
  }
  if (scheme == "drq") {
    return std::make_shared<drq::DrqConvExecutor>(drq::DrqConfig{});
  }
  if (scheme == "static_int8") {
    return std::make_shared<quant::StaticQuantConvExecutor>(8);
  }
  if (scheme == "fp32") {
    return nullptr;
  }
  throw std::invalid_argument("make_conv_executor: unknown scheme \"" +
                              scheme + "\" (odq|drq|static_int8|fp32)");
}

ModelSession::ModelSession(nn::Model model,
                           std::shared_ptr<nn::ConvExecutor> executor,
                           std::string scheme)
    : model_(std::move(model)),
      executor_(std::move(executor)),
      scheme_(std::move(scheme)) {
  model_.assign_conv_ids();
  model_.set_conv_executor(executor_);
}

void ModelSession::set_degraded_executor(
    std::shared_ptr<nn::ConvExecutor> executor, std::string scheme) {
  degraded_executor_ = std::move(executor);
  degraded_scheme_ = std::move(scheme);
}

tensor::Tensor ModelSession::run_degraded(const tensor::Tensor& input) {
  if (degraded_scheme_.empty()) return run(input);
  // Swap-run-restore: the restore must happen even when the forward throws,
  // or the session would keep serving full-scheme requests degraded.
  model_.set_conv_executor(degraded_executor_);
  try {
    tensor::Tensor out = run(input);
    model_.set_conv_executor(executor_);
    return out;
  } catch (...) {
    model_.set_conv_executor(executor_);
    throw;
  }
}

tensor::Tensor ModelSession::run(const tensor::Tensor& input) {
  if (input.shape().rank() == 3) {
    // Promote CHW to [1,C,H,W] — a single-sample request.
    tensor::Tensor batched = input.reshaped(tensor::Shape{
        1, input.shape()[0], input.shape()[1], input.shape()[2]});
    return model_.forward(batched, /*train=*/false);
  }
  if (input.shape().rank() != 4 || input.shape()[0] != 1) {
    throw std::invalid_argument(
        "ModelSession::run: expected one sample ([1,C,H,W] or [C,H,W]), got " +
        input.shape().str());
  }
  return model_.forward(input, /*train=*/false);
}

}  // namespace odq::serve
