// ServeEngine: an in-process batched inference serving engine.
//
// Architecture (docs/testing.md and README "Serving" describe usage):
//
//   submit() ──► RequestQueue (bounded, backpressure) ──► worker threads
//                                                            │
//                  dynamic batcher: flush on max_batch       │
//                  or deadline timeout, whichever first      ▼
//                                              InferenceSession (per worker)
//
// Each worker owns its own session (model replica + executor) and pops
// dynamic batches off the shared queue. A batch is evaluated one request
// at a time — see session.hpp for why coalescing must never couple
// requests numerically — and every request's promise is fulfilled with an
// InferResponse whose util::Status carries any failure (bad input shape,
// injected fault, executor error) without taking the worker down.
//
// Shutdown is drain-and-join: shutdown() closes the queue to new
// submissions (they get kUnavailable), workers finish everything already
// accepted, then exit. The destructor calls shutdown(), so no accepted
// request is ever dropped with an unfulfilled promise.
//
// Observability (all off unless ODQ_METRICS / ODQ_TRACE are enabled):
//   serve.queue_depth        gauge     queue occupancy after each push/pop
//                                      (snapshot max carries the peak since
//                                      the previous snapshot)
//   serve.in_flight          gauge     accepted but unanswered requests
//   serve.requests           counter   requests accepted
//   serve.errors             counter   responses with !status.ok()
//   serve.batches            counter   batches executed
//   serve.batch_size         distribution  requests per batch
//   serve.latency_us         distribution  enqueue -> response latency
//   serve.batch / serve.request   trace spans (batch execution, per-request
//                                 enqueue->complete latency)
//
// Live telemetry (off unless ODQ_TELEMETRY is enabled; see
// obs/telemetry.hpp for window semantics and the exporter):
//   serve.latency_us             windowed series, enqueue -> response µs
//   serve.latency_us.<scheme>    same, split per session scheme
//   serve.batch_size             windowed series, requests per batch
//   serve.queue_depth            windowed series, depth after push/pop
//   serve.in_flight              windowed series, level after +-1
//   serve.requests / serve.errors / serve.batches / serve.rejected /
//   serve.slo_violations / serve.deadline_exceeded / serve.degraded
//                                windowed counters
//   serve.rejected.<tenant>      per-tenant rejection attribution (only for
//                                submits that named a tenant)
//
// Per-request tracing: every request gets a trace id (its request id,
// allocated at submit). The worker wraps each session run in a
// TraceRequestScope, so the serve.exec span and every conv-phase span it
// encloses carry a req_id argument; retrospective serve.request and
// serve.queue_wait spans carry the same id, linking the full
// queue -> batch -> exec -> gemm path in the Chrome trace. When
// EngineConfig::slo_us is set, over-SLO requests additionally log one
// rate-limited (1/s) exemplar line with their full phase breakdown.
//
// Fault injection (docs/robustness.md):
//   serve.submit   submit() refuses with kUnavailable before enqueueing
//   serve.batch    one whole batch fails; every request in it gets
//                  kUnavailable and the worker keeps serving
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/session.hpp"

namespace odq::serve {

class ShadowLane;

struct EngineConfig {
  int num_workers = 1;
  std::size_t queue_capacity = 256;  // backpressure bound
  std::size_t max_batch = 8;         // flush a batch at this size...
  std::int64_t flush_timeout_us = 2000;  // ...or this long after the oldest
                                         // request arrived, whichever first
  std::int64_t slo_us = 0;  // latency SLO; requests over it count as
                            // violations and emit a rate-limited exemplar
                            // log (0 disables)
  // Optional shadow quality-sampling lane (serve/shadow.hpp). Not owned;
  // must outlive the engine. Workers offer each successfully served
  // request's (tag, input) to it — a no-op when null or rate == 0.
  ShadowLane* shadow = nullptr;
};

// Aggregate counters, kept engine-side (independent of ODQ_METRICS) so
// tests and the load generator can assert on batching behavior exactly.
struct EngineStats {
  std::uint64_t submitted = 0;  // accepted into the queue
  std::uint64_t rejected = 0;   // refused by submit (closed / fault / full)
  std::uint64_t completed = 0;  // responses delivered
  std::uint64_t errors = 0;     // responses with !status.ok()
  std::uint64_t batches = 0;
  std::uint64_t multi_request_batches = 0;  // batches with more than 1
  std::uint64_t max_batch_observed = 0;
  std::uint64_t slo_violations = 0;  // responses over EngineConfig::slo_us
  // Accepted requests whose deadline passed before execution: answered
  // kDeadlineExceeded without running the model (load shedding).
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t degraded = 0;  // requests served via run_degraded
  // Per-tenant rejection attribution (mirrors the serve.rejected.<tenant>
  // telemetry counters); only tenants named in SubmitOptions appear.
  std::map<std::string, std::uint64_t> rejected_by_tenant;
  // batch_size_hist[k] = batches that carried exactly k requests
  // (index 0 unused). Sized max_batch + 1.
  std::vector<std::uint64_t> batch_size_hist;
};

class ServeEngine {
 public:
  // One session per worker, built by `factory` (called with worker ids
  // 0..num_workers-1 on the constructing thread, so factory errors throw
  // here, not inside a worker). Workers start immediately.
  using SessionFactory =
      std::function<std::unique_ptr<InferenceSession>(int worker_id)>;

  ServeEngine(EngineConfig cfg, const SessionFactory& factory);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  // Enqueue one request. Blocks while the queue is at capacity
  // (backpressure). Returns the future the worker fulfills, or a Status:
  // kUnavailable after shutdown()/close or from the serve.submit fault site.
  // `tag` is the client identity the shadow lane samples on; the default
  // sentinel falls back to the engine-assigned request id.
  util::StatusOr<std::future<InferResponse>> submit(
      tensor::Tensor input, std::uint64_t tag = kNoRequestTag);

  // Non-blocking variant: kUnavailable immediately when the queue is full.
  util::StatusOr<std::future<InferResponse>> try_submit(
      tensor::Tensor input, std::uint64_t tag = kNoRequestTag);

  // Full-metadata variants (tenant attribution, deadline, degradation
  // hint) — the networked front end's entry points. Rejections are charged
  // to opts.tenant in both EngineStats and the serve.rejected.<tenant>
  // telemetry counter.
  util::StatusOr<std::future<InferResponse>> submit(tensor::Tensor input,
                                                    const SubmitOptions& opts);
  util::StatusOr<std::future<InferResponse>> try_submit(
      tensor::Tensor input, const SubmitOptions& opts);

  // Submit with a caller-owned promise (the front end's dispatch path: the
  // caller handed out the matching future at admission time, possibly long
  // before this call). On rejection the promise is fulfilled with the
  // rejection status — every admitted request always gets exactly one
  // response — and the returned Status mirrors it.
  util::Status submit_with_promise(tensor::Tensor input,
                                   const SubmitOptions& opts,
                                   std::promise<InferResponse> promise,
                                   bool blocking = true);

  // Stop accepting, drain everything already accepted, join workers.
  // Idempotent; also run by the destructor.
  void shutdown();

  EngineStats stats() const;
  const EngineConfig& config() const { return cfg_; }
  std::size_t queue_depth() const { return queue_.size(); }

  // Microseconds since engine construction on a steady clock — the
  // timebase of every InferResponse timestamp.
  double now_us() const;

 private:
  util::StatusOr<std::future<InferResponse>> submit_impl(
      tensor::Tensor input, const SubmitOptions& opts, bool blocking);
  void worker_loop(int worker_id);

  EngineConfig cfg_;
  RequestQueue queue_;
  std::vector<std::unique_ptr<InferenceSession>> sessions_;
  std::vector<std::thread> workers_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> next_batch_id_{0};
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::int64_t> last_slo_log_s_{-1};  // exemplar rate limiter
  std::atomic<bool> shut_down_{false};

  mutable std::mutex stats_mutex_;
  EngineStats stats_;
};

}  // namespace odq::serve
