// Request/response types for the in-process batched inference engine.
//
// A request is one sample (an NCHW tensor with N == 1, or an unbatched
// CHW tensor the session promotes). The engine answers every accepted
// request with an InferResponse carrying a typed util::Status — errors
// (bad shape, injected faults, executor failures) travel back to the
// caller instead of taking a worker down.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <string>

#include "tensor/tensor.hpp"
#include "util/status.hpp"

namespace odq::serve {

// submit() tag sentinel: "no client tag, use the engine-assigned id".
inline constexpr std::uint64_t kNoRequestTag = ~0ULL;

// "No deadline": requests without one never expire.
inline constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

struct InferResponse {
  util::Status status;    // OK iff `output` is valid
  tensor::Tensor output;  // model output for this sample ([1, classes])

  // Scheduling metadata, for latency accounting and batching tests.
  std::uint64_t request_id = 0;
  std::size_t batch_size = 0;  // how many requests shared the batch
  int worker_id = -1;
  double enqueue_us = 0.0;  // microseconds on the engine's steady clock
  double start_us = 0.0;    // batch execution began
  double done_us = 0.0;     // response delivered
  // Scheme the session actually evaluated under ("odq", and under load-shed
  // degradation the session's degraded scheme, e.g. "static_int8").
  std::string scheme;
  bool degraded = false;  // true when the degraded path served the request

  double latency_us() const { return done_us - enqueue_us; }
};

// Per-request submit metadata. Defaults reproduce the plain submit(input)
// behavior: engine-assigned tag, no tenant attribution, no deadline, full
// scheme.
struct SubmitOptions {
  std::uint64_t tag = kNoRequestTag;
  // Tenant identity for admission attribution (serve.rejected.<tenant>
  // telemetry and the front end's per-tenant accounting). Empty = untracked.
  std::string tenant;
  // Absolute shed point: a request whose deadline passed before execution
  // is answered kDeadlineExceeded without running the model.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
  // Load-shed hint: evaluate under the session's degraded scheme
  // (predictor-only / static-INT8) instead of the full one.
  bool degraded = false;
};

// A queued request: input plus the promise the worker fulfills. Internal to
// the engine/queue; callers hold the matching std::future<InferResponse>.
struct PendingRequest {
  std::uint64_t id = 0;
  // Client-supplied identity for the shadow sampling lane. Engine ids are
  // allocated in arrival order (nondeterministic under concurrent
  // submitters), so deterministic 1-in-N sampling keys on this instead;
  // defaults to the engine id when the caller passes kNoRequestTag.
  std::uint64_t tag = 0;
  std::string tenant;
  tensor::Tensor input;
  double enqueue_us = 0.0;
  std::chrono::steady_clock::time_point enqueue_tp;
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
  bool degraded = false;
  std::promise<InferResponse> promise;
};

}  // namespace odq::serve
