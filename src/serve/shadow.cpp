#include "serve/shadow.hpp"

#include <exception>
#include <utility>

#include "obs/telemetry.hpp"
#include "util/logging.hpp"

namespace odq::serve {

namespace {

// SplitMix64 finalizer: a cheap, well-mixed hash so "1 in N by tag" picks
// an unbiased, deterministic subset even for sequential tags.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

ShadowLane::ShadowLane(ShadowConfig cfg,
                       std::unique_ptr<InferenceSession> session)
    : cfg_(cfg), session_(std::move(session)), monitor_(cfg.quality) {
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
  if (cfg_.rate > 0) {
    thread_ = std::thread([this] { run(); });
  }
}

ShadowLane::~ShadowLane() { stop(); }

bool ShadowLane::sampled(std::uint64_t tag) const {
  if (cfg_.rate == 0) return false;
  if (cfg_.rate == 1) return true;
  return mix64(tag + 0x9E3779B97F4A7C15ULL * (cfg_.seed + 1)) % cfg_.rate == 0;
}

void ShadowLane::offer(std::uint64_t tag, const tensor::Tensor& input) {
  if (cfg_.rate == 0) return;
  if (!sampled(tag)) return;
  obs::telemetry_counter("quality.shadow_samples").increment();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++samples_;
    if (stopping_ || queue_.size() >= cfg_.queue_capacity) {
      ++dropped_;
      obs::telemetry_counter("quality.shadow_dropped").increment();
      return;
    }
    queue_.push_back(Item{tag, input});  // copies the tensor
  }
  cv_.notify_one();
}

void ShadowLane::run() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      obs::FidelityScope scope;
      (void)session_->run(item.input);
      monitor_.observe(item.tag, item.input, scope.snapshot());
      obs::telemetry_counter("quality.shadow_evaluated").increment();
      std::lock_guard<std::mutex> lock(mutex_);
      ++evaluated_;
    } catch (const std::exception& e) {
      ODQ_LOG_WARN("shadow: reference evaluation failed for tag %llu: %s",
                   static_cast<unsigned long long>(item.tag), e.what());
      obs::telemetry_counter("quality.shadow_errors").increment();
      std::lock_guard<std::mutex> lock(mutex_);
      ++errors_;
    }
  }
}

void ShadowLane::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // First caller owns the join; a second stop() (e.g. destructor after
      // an explicit stop) must not touch the thread again.
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::uint64_t ShadowLane::samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

std::uint64_t ShadowLane::evaluated() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evaluated_;
}

std::uint64_t ShadowLane::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::uint64_t ShadowLane::errors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return errors_;
}

}  // namespace odq::serve
