// Tenant-aware serving front end: admission control, weighted fair
// queueing, deadline shedding, and graceful degradation — the policy layer
// the network server (net/server.hpp) drops requests into.
//
//   submit(tenant) ──► per-tenant bounded FIFO ──► WFQ dispatcher thread
//                       (admission control)              │
//                                                        ▼
//                                        ServeEngine::submit_with_promise
//                                        (blocking — engine backpressure
//                                         stalls the dispatcher, never
//                                         drops an admitted request)
//
// Admission (under one mutex, so decisions are totally ordered):
//   * unknown tenant                 -> kInvalidArgument
//   * best-effort tenant, level 2    -> kUnavailable   (overload shed)
//   * tenant backlog at queue_limit  -> kResourceExhausted, charged to the
//                                       serve.rejected.<tenant> counter
//
// Scheduling is classic virtual-time weighted fair queueing: request k of
// tenant t gets finish tag max(vtime, t.last_finish) + 1/weight, and the
// dispatcher always forwards the smallest head tag. A tenant with weight 2
// drains twice as fast as a tenant with weight 1 under contention, and an
// idle tenant's first request is tagged from the current virtual time, so
// sleeping never accumulates credit (no burst after idle).
//
// Deadlines: a request whose deadline has already passed when the
// dispatcher reaches it is answered kDeadlineExceeded right there —
// expired work never occupies an engine queue slot. (The engine repeats
// the check at execution time for requests that expire in its own queue.)
//
// Degradation: the LoadShedController (serve/degrade.hpp) watches the
// front-end backlog. At level >= 1, best-effort tenants are dispatched
// with the degraded flag (the session serves them under its cheap scheme);
// at level 2 they are refused at admission. Guaranteed tenants are never
// degraded or shed — overload costs best-effort traffic first, exactly.
//
// shutdown() stops admission, lets the dispatcher drain every queued
// request into the engine (fulfilling each promise), and joins. It does
// NOT shut the engine down — the engine outlives its front end, and the
// caller sequences engine shutdown after.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/degrade.hpp"
#include "serve/engine.hpp"
#include "serve/request.hpp"
#include "util/status.hpp"

namespace odq::serve {

struct TenantSpec {
  std::string name;
  double weight = 1.0;           // WFQ share (relative drain rate)
  std::size_t queue_limit = 64;  // per-tenant backlog bound (admission)
  // Best-effort tenants absorb overload: degraded at level 1, shed at
  // level 2. Guaranteed (false) tenants always get the full scheme.
  bool best_effort = false;
};

struct TenantStats {
  std::uint64_t accepted = 0;       // admitted into the tenant queue
  std::uint64_t rejected = 0;       // queue_limit admission refusals
  std::uint64_t shed = 0;           // level-2 overload refusals
  std::uint64_t deadline_shed = 0;  // expired before dispatch
  std::uint64_t degraded = 0;       // dispatched on the degraded path
  std::uint64_t dispatched = 0;     // forwarded into the engine
};

struct FrontEndConfig {
  std::vector<TenantSpec> tenants;
  DegradeConfig degrade;
};

class ServeFrontEnd {
 public:
  // `engine` is not owned and must outlive the front end.
  ServeFrontEnd(ServeEngine& engine, FrontEndConfig cfg);
  ~ServeFrontEnd();

  ServeFrontEnd(const ServeFrontEnd&) = delete;
  ServeFrontEnd& operator=(const ServeFrontEnd&) = delete;

  // Admit one request under `tenant`'s quota. Returns the future the
  // engine worker (or a shed path) fulfills, or the admission refusal.
  // opts.tenant is overwritten with `tenant`; opts.deadline and opts.tag
  // are honored. Never blocks: admission is a queue-limit check, the
  // dispatcher absorbs engine backpressure.
  util::StatusOr<std::future<InferResponse>> submit(
      tensor::Tensor input, const std::string& tenant,
      SubmitOptions opts = {});

  // Stop admission, drain queued requests into the engine, join the
  // dispatcher. Idempotent; also run by the destructor.
  void shutdown();

  int degrade_level() const { return shed_.level(); }
  std::size_t backlog() const;

  TenantStats tenant_stats(const std::string& tenant) const;
  std::map<std::string, TenantStats> all_tenant_stats() const;

  // One-glance health for the readiness probe.
  struct Snapshot {
    bool ready = false;     // accepting new requests
    bool draining = false;  // shutdown drain in progress
    int degrade_level = 0;
    std::size_t backlog = 0;   // queued ahead of the engine
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;  // queue_limit refusals, all tenants
    std::uint64_t shed = 0;      // overload refusals, all tenants
  };
  Snapshot snapshot() const;

 private:
  struct QueuedRequest {
    tensor::Tensor input;
    SubmitOptions opts;
    std::promise<InferResponse> promise;
    double finish_tag = 0.0;
  };

  struct Tenant {
    TenantSpec spec;
    std::deque<QueuedRequest> queue;
    double last_finish = 0.0;  // finish tag of this tenant's newest request
    TenantStats stats;
  };

  void dispatcher_loop();

  ServeEngine& engine_;
  LoadShedController shed_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  // unique_ptr because QueuedRequest (a promise) is move-only, which makes
  // Tenant itself unfit for vector relocation.
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::map<std::string, std::size_t> tenant_index_;
  double vtime_ = 0.0;        // WFQ virtual time
  std::size_t backlog_ = 0;   // total queued across tenants
  bool stop_ = false;

  std::mutex shutdown_mutex_;  // serializes shutdown() callers
  std::atomic<bool> draining_{false};

  std::thread dispatcher_;
};

}  // namespace odq::serve
