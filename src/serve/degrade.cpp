#include "serve/degrade.hpp"

namespace odq::serve {

int LoadShedController::observe(std::size_t pending) {
  int target = 0;
  if (cfg_.shed_high > 0 && pending >= cfg_.shed_high) {
    target = 2;
  } else if (cfg_.degrade_high > 0 && pending >= cfg_.degrade_high) {
    target = 1;
  }
  int level = level_.load(std::memory_order_relaxed);
  if (target > level) {
    // Escalate straight to the target: a queue deep enough to shed is deep
    // enough that passing through "degrade" first would only add latency.
    level = target;
    low_streak_ = 0;
    level_.store(level, std::memory_order_relaxed);
    transitions_.fetch_add(1, std::memory_order_relaxed);
  } else if (level > 0) {
    if (pending <= cfg_.low_water) {
      if (++low_streak_ >= cfg_.down_hold) {
        --level;
        low_streak_ = 0;
        level_.store(level, std::memory_order_relaxed);
        transitions_.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      low_streak_ = 0;  // recovery must be contiguous
    }
  }
  return level;
}

}  // namespace odq::serve
