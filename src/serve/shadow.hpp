// Shadow-FP32 quality sampling lane for the serving engine.
//
// A ShadowLane owns one extra InferenceSession and a single low-priority
// background thread. Engine workers call offer(tag, input) after each
// successful request; the lane
//
//   * decides deterministically whether the request is sampled — a
//     SplitMix64 finalizer over the caller-supplied tag and the configured
//     seed, taken modulo `rate` (1-in-N). The decision depends only on
//     (seed, rate, tag), never on arrival order, worker count, or time, so
//     a replayed load samples the identical request set;
//   * if sampled, copies the input into a bounded queue. offer() never
//     blocks the serving hot path: a full queue drops the sample and bumps
//     quality.shadow_dropped. With rate == 0 the lane is fully off and
//     offer() is a single branch;
//   * the lane thread re-runs each queued input under a FidelityScope
//     (fidelity force-enabled and redirected thread-locally, so the global
//     registry and the serving workers are untouched), which makes the
//     instrumented executor compare every conv against the FP32 reference,
//     then hands the per-request cells to the QualityMonitor for
//     accumulation, telemetry, and drift detection (obs/quality.hpp).
//
// stop() drains everything already accepted and joins, so after stop()
// the monitor has seen every sampled request — CI asserts exact sample
// counts. Counters: quality.shadow_samples (sampled), .shadow_evaluated
// (reference runs completed), .shadow_dropped (queue-full drops),
// .shadow_errors (reference run threw).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/quality.hpp"
#include "serve/session.hpp"
#include "tensor/tensor.hpp"

namespace odq::serve {

struct ShadowConfig {
  // Sample 1 in `rate` requests by tag; 0 disables the lane entirely.
  std::uint64_t rate = 0;
  std::uint64_t seed = 0;  // decorrelates sampling across deployments
  std::size_t queue_capacity = 256;  // pending shadow evaluations
  obs::QualityConfig quality;
};

class ShadowLane {
 public:
  // `session` is the reference-evaluation replica (same model/scheme as
  // the serving sessions; its instrumented executor is what produces the
  // fidelity cells). The lane thread starts immediately unless rate == 0.
  ShadowLane(ShadowConfig cfg, std::unique_ptr<InferenceSession> session);
  ~ShadowLane();

  ShadowLane(const ShadowLane&) = delete;
  ShadowLane& operator=(const ShadowLane&) = delete;

  // Deterministic sampling predicate (pure; exposed for tests and tools).
  bool sampled(std::uint64_t tag) const;

  // Called by engine workers per successful request. Never blocks.
  void offer(std::uint64_t tag, const tensor::Tensor& input);

  // Drain the queue, evaluate everything accepted, join. Idempotent.
  void stop();

  obs::QualityMonitor& monitor() { return monitor_; }
  const obs::QualityMonitor& monitor() const { return monitor_; }

  std::uint64_t samples() const;    // offered & sampled (incl. dropped)
  std::uint64_t evaluated() const;  // reference runs completed
  std::uint64_t dropped() const;    // sampled but queue was full
  std::uint64_t errors() const;     // reference runs that threw

 private:
  struct Item {
    std::uint64_t tag = 0;
    tensor::Tensor input;
  };

  void run();

  ShadowConfig cfg_;
  std::unique_ptr<InferenceSession> session_;
  obs::QualityMonitor monitor_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool stopping_ = false;
  std::uint64_t samples_ = 0;
  std::uint64_t evaluated_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t errors_ = 0;
  std::thread thread_;
};

}  // namespace odq::serve
