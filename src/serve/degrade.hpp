// Load-shed controller: graceful degradation under overload.
//
// The front end (serve/frontend.hpp) feeds it one observation per
// dispatch — the number of requests pending ahead of the engine — and it
// answers with a degradation level:
//
//   level 0   normal: everyone gets the full scheme
//   level 1   degrade: best-effort tenants run the session's degraded
//             scheme (static INT8 — cheap, no per-batch analysis pass)
//   level 2   shed: best-effort tenants are refused at admission
//             (kUnavailable) so guaranteed tenants keep their SLO
//
// Escalation is immediate (one observation over the threshold trips the
// level), de-escalation is hysteretic: the level steps down one notch only
// after `down_hold` *consecutive* observations at or below `low_water`.
// That asymmetry is deliberate — flapping between levels under a sawtooth
// load would re-admit a thundering herd exactly when the queue just
// drained. The controller is pure state-machine arithmetic (no clocks, no
// randomness), so a fixed observation sequence always produces the same
// level trace — the determinism the overload bench and the unit tests pin.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace odq::serve {

struct DegradeConfig {
  // Pending-depth thresholds. 0 disables the transition entirely.
  std::size_t degrade_high = 0;  // >= this -> at least level 1
  std::size_t shed_high = 0;     // >= this -> level 2
  std::size_t low_water = 0;     // <= this counts toward stepping down
  int down_hold = 4;             // consecutive low observations per step-down
};

class LoadShedController {
 public:
  explicit LoadShedController(DegradeConfig cfg) : cfg_(cfg) {}

  // Feed one pending-depth observation; returns the level now in force.
  // Callers must serialize observe() against itself (the front end calls
  // it under its admission mutex); level() is safe from any thread.
  int observe(std::size_t pending);

  int level() const { return level_.load(std::memory_order_relaxed); }
  std::uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }
  const DegradeConfig& config() const { return cfg_; }

 private:
  DegradeConfig cfg_;
  std::atomic<int> level_{0};
  std::atomic<std::uint64_t> transitions_{0};
  int low_streak_ = 0;
};

}  // namespace odq::serve
