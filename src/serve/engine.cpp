#include "serve/engine.hpp"

#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

namespace odq::serve {

using util::Status;
using util::StatusCode;
using util::StatusOr;

namespace {

struct ServeMetrics {
  obs::Gauge& in_flight = obs::gauge("serve.in_flight");
  obs::Counter& requests = obs::counter("serve.requests");
  obs::Counter& errors = obs::counter("serve.errors");
  obs::Counter& batches = obs::counter("serve.batches");
  obs::Distribution& batch_size =
      obs::distribution("serve.batch_size", 0.0, 64.0, 64);
  obs::Distribution& latency_us =
      obs::distribution("serve.latency_us", 0.0, 1e6, 64);
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m;
  return m;
}

}  // namespace

ServeEngine::ServeEngine(EngineConfig cfg, const SessionFactory& factory)
    : cfg_(cfg),
      queue_(cfg.queue_capacity),
      epoch_(std::chrono::steady_clock::now()) {
  if (cfg_.num_workers < 1) cfg_.num_workers = 1;
  if (cfg_.max_batch < 1) cfg_.max_batch = 1;
  if (cfg_.flush_timeout_us < 0) cfg_.flush_timeout_us = 0;
  stats_.batch_size_hist.assign(cfg_.max_batch + 1, 0);

  sessions_.reserve(static_cast<std::size_t>(cfg_.num_workers));
  for (int i = 0; i < cfg_.num_workers; ++i) {
    std::unique_ptr<InferenceSession> session = factory(i);
    if (session == nullptr) {
      throw std::invalid_argument(
          "ServeEngine: session factory returned null for worker " +
          std::to_string(i));
    }
    sessions_.push_back(std::move(session));
  }
  workers_.reserve(sessions_.size());
  for (int i = 0; i < cfg_.num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ServeEngine::~ServeEngine() { shutdown(); }

double ServeEngine::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

StatusOr<std::future<InferResponse>> ServeEngine::submit(
    tensor::Tensor input) {
  return submit_impl(std::move(input), /*blocking=*/true);
}

StatusOr<std::future<InferResponse>> ServeEngine::try_submit(
    tensor::Tensor input) {
  return submit_impl(std::move(input), /*blocking=*/false);
}

StatusOr<std::future<InferResponse>> ServeEngine::submit_impl(
    tensor::Tensor input, bool blocking) {
  auto reject = [&](Status s) -> StatusOr<std::future<InferResponse>> {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.rejected;
    return s;
  };
  if (util::fault_fire("serve.submit")) {
    return reject(
        Status(StatusCode::kUnavailable, "injected serve.submit fault"));
  }

  PendingRequest req;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req.input = std::move(input);
  req.enqueue_us = now_us();
  req.enqueue_tp = std::chrono::steady_clock::now();
  std::future<InferResponse> future = req.promise.get_future();

  Status pushed = blocking ? queue_.push(std::move(req))
                           : queue_.try_push(std::move(req));
  if (!pushed.ok()) return reject(pushed);

  serve_metrics().in_flight.add(1.0);
  serve_metrics().requests.increment();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }
  return future;
}

void ServeEngine::worker_loop(int worker_id) {
  InferenceSession& session = *sessions_[static_cast<std::size_t>(worker_id)];
  std::vector<PendingRequest> batch;
  while (queue_.pop_batch(batch, cfg_.max_batch, cfg_.flush_timeout_us)) {
    obs::TraceSpan batch_span("serve.batch");
    batch_span.arg("batch_size", static_cast<std::int64_t>(batch.size()));
    serve_metrics().batches.increment();
    serve_metrics().batch_size.record(static_cast<double>(batch.size()));
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
      if (batch.size() > 1) ++stats_.multi_request_batches;
      if (batch.size() > stats_.max_batch_observed) {
        stats_.max_batch_observed = batch.size();
      }
      if (batch.size() < stats_.batch_size_hist.size()) {
        ++stats_.batch_size_hist[batch.size()];
      }
    }

    // One fault check per batch: the whole coalescing unit fails together,
    // the way a wedged replica would take out everything riding on it.
    const bool batch_fault = util::fault_fire("serve.batch");
    if (batch_fault) {
      ODQ_LOG_WARN("serve: injected serve.batch fault, failing %zu request(s)",
                   batch.size());
    }

    for (PendingRequest& req : batch) {
      InferResponse res;
      res.request_id = req.id;
      res.batch_size = batch.size();
      res.worker_id = worker_id;
      res.enqueue_us = req.enqueue_us;
      res.start_us = now_us();
      if (batch_fault) {
        res.status =
            Status(StatusCode::kUnavailable, "injected serve.batch fault");
      } else {
        try {
          res.output = session.run(req.input);
        } catch (const std::exception& e) {
          res.status = Status(StatusCode::kInvalidArgument, e.what());
        } catch (...) {
          res.status = Status(StatusCode::kInvalidArgument,
                              "unknown inference failure");
        }
      }
      res.done_us = now_us();

      serve_metrics().in_flight.add(-1.0);
      serve_metrics().latency_us.record(res.latency_us());
      if (!res.status.ok()) serve_metrics().errors.increment();
      if (obs::trace_enabled()) {
        // Enqueue->complete latency span on the trace timeline, so queue
        // wait + batching delay + execution show up as one bar per request.
        obs::trace_record("serve.request",
                          obs::trace_now_us() - res.latency_us(),
                          res.latency_us(), "batch_size",
                          static_cast<std::int64_t>(res.batch_size));
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.completed;
        if (!res.status.ok()) ++stats_.errors;
      }
      req.promise.set_value(std::move(res));
    }
    batch.clear();
  }
}

void ServeEngine::shutdown() {
  bool expected = false;
  if (!shut_down_.compare_exchange_strong(expected, true)) {
    // Another caller already ran (or is running) the drain; joining again
    // would race on workers_, and the first caller guarantees the drain.
    return;
  }
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

EngineStats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace odq::serve
