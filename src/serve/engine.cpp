#include "serve/engine.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "serve/shadow.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

namespace odq::serve {

using util::Status;
using util::StatusCode;
using util::StatusOr;

namespace {

struct ServeMetrics {
  obs::Gauge& in_flight = obs::gauge("serve.in_flight");
  obs::Counter& requests = obs::counter("serve.requests");
  obs::Counter& errors = obs::counter("serve.errors");
  obs::Counter& batches = obs::counter("serve.batches");
  obs::Distribution& batch_size =
      obs::distribution("serve.batch_size", 0.0, 64.0, 64);
  obs::Distribution& latency_us =
      obs::distribution("serve.latency_us", 0.0, 1e6, 64);
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m;
  return m;
}

// Windowed live telemetry (obs/telemetry.hpp); separate from ServeMetrics
// so ODQ_METRICS and ODQ_TELEMETRY stay independently switchable.
struct ServeTelemetry {
  obs::WindowedSeries& latency_us = obs::telemetry_series("serve.latency_us");
  obs::WindowedSeries& batch_size = obs::telemetry_series("serve.batch_size");
  obs::WindowedSeries& in_flight = obs::telemetry_series("serve.in_flight");
  obs::WindowedCounter& requests = obs::telemetry_counter("serve.requests");
  obs::WindowedCounter& errors = obs::telemetry_counter("serve.errors");
  obs::WindowedCounter& batches = obs::telemetry_counter("serve.batches");
  obs::WindowedCounter& rejected = obs::telemetry_counter("serve.rejected");
  obs::WindowedCounter& slo_violations =
      obs::telemetry_counter("serve.slo_violations");
  obs::WindowedCounter& deadline_exceeded =
      obs::telemetry_counter("serve.deadline_exceeded");
  obs::WindowedCounter& degraded = obs::telemetry_counter("serve.degraded");
};

ServeTelemetry& serve_telemetry() {
  static ServeTelemetry t;
  return t;
}

std::uint64_t clamp_u64(double v) {
  return v > 0.0 ? static_cast<std::uint64_t>(v) : 0;
}

}  // namespace

ServeEngine::ServeEngine(EngineConfig cfg, const SessionFactory& factory)
    : cfg_(cfg),
      queue_(cfg.queue_capacity),
      epoch_(std::chrono::steady_clock::now()) {
  if (cfg_.num_workers < 1) cfg_.num_workers = 1;
  if (cfg_.max_batch < 1) cfg_.max_batch = 1;
  if (cfg_.flush_timeout_us < 0) cfg_.flush_timeout_us = 0;
  stats_.batch_size_hist.assign(cfg_.max_batch + 1, 0);

  sessions_.reserve(static_cast<std::size_t>(cfg_.num_workers));
  for (int i = 0; i < cfg_.num_workers; ++i) {
    std::unique_ptr<InferenceSession> session = factory(i);
    if (session == nullptr) {
      throw std::invalid_argument(
          "ServeEngine: session factory returned null for worker " +
          std::to_string(i));
    }
    sessions_.push_back(std::move(session));
  }
  workers_.reserve(sessions_.size());
  for (int i = 0; i < cfg_.num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ServeEngine::~ServeEngine() { shutdown(); }

double ServeEngine::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

StatusOr<std::future<InferResponse>> ServeEngine::submit(
    tensor::Tensor input, std::uint64_t tag) {
  SubmitOptions opts;
  opts.tag = tag;
  return submit_impl(std::move(input), opts, /*blocking=*/true);
}

StatusOr<std::future<InferResponse>> ServeEngine::try_submit(
    tensor::Tensor input, std::uint64_t tag) {
  SubmitOptions opts;
  opts.tag = tag;
  return submit_impl(std::move(input), opts, /*blocking=*/false);
}

StatusOr<std::future<InferResponse>> ServeEngine::submit(
    tensor::Tensor input, const SubmitOptions& opts) {
  return submit_impl(std::move(input), opts, /*blocking=*/true);
}

StatusOr<std::future<InferResponse>> ServeEngine::try_submit(
    tensor::Tensor input, const SubmitOptions& opts) {
  return submit_impl(std::move(input), opts, /*blocking=*/false);
}

StatusOr<std::future<InferResponse>> ServeEngine::submit_impl(
    tensor::Tensor input, const SubmitOptions& opts, bool blocking) {
  std::promise<InferResponse> promise;
  std::future<InferResponse> future = promise.get_future();
  const Status s = submit_with_promise(std::move(input), opts,
                                       std::move(promise), blocking);
  if (!s.ok()) return s;
  return future;
}

util::Status ServeEngine::submit_with_promise(
    tensor::Tensor input, const SubmitOptions& opts,
    std::promise<InferResponse> promise, bool blocking) {
  PendingRequest req;
  req.promise = std::move(promise);
  auto reject = [&](const Status& s) -> Status {
    serve_telemetry().rejected.increment();
    // Per-tenant attribution so admission-control decisions show up as
    // serve.rejected.<tenant> in odq_top, not just one global number.
    if (!opts.tenant.empty()) {
      obs::telemetry_counter("serve.rejected." + opts.tenant).increment();
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected;
      if (!opts.tenant.empty()) ++stats_.rejected_by_tenant[opts.tenant];
    }
    InferResponse res;
    res.status = s;
    req.promise.set_value(std::move(res));
    return s;
  };
  if (util::fault_fire("serve.submit")) {
    return reject(
        Status(StatusCode::kUnavailable, "injected serve.submit fault"));
  }

  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req.tag = opts.tag == kNoRequestTag ? req.id : opts.tag;
  req.tenant = opts.tenant;
  req.deadline = opts.deadline;
  req.degraded = opts.degraded;
  req.input = std::move(input);
  req.enqueue_us = now_us();
  req.enqueue_tp = std::chrono::steady_clock::now();

  Status pushed = blocking ? queue_.push(std::move(req))
                           : queue_.try_push(std::move(req));
  if (!pushed.ok()) return reject(pushed);

  serve_metrics().in_flight.add(1.0);
  serve_metrics().requests.increment();
  serve_telemetry().requests.increment();
  serve_telemetry().in_flight.record(static_cast<std::uint64_t>(
      in_flight_.fetch_add(1, std::memory_order_relaxed) + 1));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }
  return Status::Ok();
}

void ServeEngine::worker_loop(int worker_id) {
  InferenceSession& session = *sessions_[static_cast<std::size_t>(worker_id)];
  // Per-scheme latency split, resolved once per worker (registry lookup
  // takes a lock; the handle is process-lifetime).
  obs::WindowedSeries& scheme_latency =
      obs::telemetry_series("serve.latency_us." + session.scheme());
  std::vector<PendingRequest> batch;
  while (queue_.pop_batch(batch, cfg_.max_batch, cfg_.flush_timeout_us)) {
    const std::uint64_t batch_id =
        next_batch_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    obs::TraceSpan batch_span("serve.batch");
    batch_span.arg("batch_size", static_cast<std::int64_t>(batch.size()));
    batch_span.arg("batch_id", static_cast<std::int64_t>(batch_id));
    serve_metrics().batches.increment();
    serve_metrics().batch_size.record(static_cast<double>(batch.size()));
    serve_telemetry().batches.increment();
    serve_telemetry().batch_size.record(batch.size());
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
      if (batch.size() > 1) ++stats_.multi_request_batches;
      if (batch.size() > stats_.max_batch_observed) {
        stats_.max_batch_observed = batch.size();
      }
      if (batch.size() < stats_.batch_size_hist.size()) {
        ++stats_.batch_size_hist[batch.size()];
      }
    }

    // One fault check per batch: the whole coalescing unit fails together,
    // the way a wedged replica would take out everything riding on it.
    const bool batch_fault = util::fault_fire("serve.batch");
    if (batch_fault) {
      ODQ_LOG_WARN("serve: injected serve.batch fault, failing %zu request(s)",
                   batch.size());
    }

    for (PendingRequest& req : batch) {
      InferResponse res;
      res.request_id = req.id;
      res.batch_size = batch.size();
      res.worker_id = worker_id;
      res.enqueue_us = req.enqueue_us;
      res.start_us = now_us();
      const bool expired = req.deadline != kNoDeadline &&
                           std::chrono::steady_clock::now() > req.deadline;
      if (batch_fault) {
        res.status =
            Status(StatusCode::kUnavailable, "injected serve.batch fault");
      } else if (expired) {
        // Shed before execution: a request that already missed its deadline
        // would only burn capacity the queue behind it needs.
        res.status = Status(StatusCode::kDeadlineExceeded,
                            "deadline passed before execution");
        serve_telemetry().deadline_exceeded.increment();
      } else {
        // The request scope tags the exec span and every span the session
        // run emits underneath it (conv phases: odq.pack/gemm/...) with
        // this request's id, linking the whole path in the trace.
        obs::TraceRequestScope req_scope(static_cast<std::int64_t>(req.id));
        obs::TraceSpan exec_span("serve.exec");
        exec_span.arg("worker", worker_id);
        try {
          if (req.degraded) {
            res.output = session.run_degraded(req.input);
            res.scheme = session.degraded_scheme();
            res.degraded = true;
            serve_telemetry().degraded.increment();
          } else {
            res.output = session.run(req.input);
            res.scheme = session.scheme();
          }
        } catch (const std::exception& e) {
          res.status = Status(StatusCode::kInvalidArgument, e.what());
        } catch (...) {
          res.status = Status(StatusCode::kInvalidArgument,
                              "unknown inference failure");
        }
      }
      res.done_us = now_us();
      const double queue_wait_us = res.start_us - res.enqueue_us;
      if (cfg_.shadow != nullptr && res.status.ok()) {
        cfg_.shadow->offer(req.tag, req.input);
      }

      serve_metrics().in_flight.add(-1.0);
      serve_metrics().latency_us.record(res.latency_us());
      if (!res.status.ok()) serve_metrics().errors.increment();
      serve_telemetry().in_flight.record(static_cast<std::uint64_t>(std::max(
          in_flight_.fetch_sub(1, std::memory_order_relaxed) - 1,
          std::int64_t{0})));
      serve_telemetry().latency_us.record(clamp_u64(res.latency_us()));
      scheme_latency.record(clamp_u64(res.latency_us()));
      if (!res.status.ok()) serve_telemetry().errors.increment();
      if (obs::trace_enabled()) {
        // Retrospective spans on the trace timeline, so queue wait +
        // batching delay + execution show up per request; both carry the
        // request id explicitly (the scope above has already closed).
        const double end_ts = obs::trace_now_us();
        const auto req_id = static_cast<std::int64_t>(req.id);
        obs::trace_record("serve.request", end_ts - res.latency_us(),
                          res.latency_us(), "batch_size",
                          static_cast<std::int64_t>(res.batch_size), "req_id",
                          req_id);
        obs::trace_record("serve.queue_wait", end_ts - res.latency_us(),
                          queue_wait_us, "req_id", req_id);
      }
      const bool over_slo = cfg_.slo_us > 0 &&
                            res.latency_us() > static_cast<double>(cfg_.slo_us);
      if (over_slo) {
        serve_telemetry().slo_violations.increment();
        // Exemplar: one full phase breakdown per second, not one per
        // violation — an overloaded engine must not drown in its own logs.
        const auto now_s = static_cast<std::int64_t>(res.done_us / 1e6);
        std::int64_t last = last_slo_log_s_.load(std::memory_order_relaxed);
        if (now_s != last &&
            last_slo_log_s_.compare_exchange_strong(
                last, now_s, std::memory_order_relaxed)) {
          ODQ_LOG_WARN(
              "serve: req %llu over SLO (%lld us): latency %.0f us = queue "
              "%.0f us + exec %.0f us, batch %zu (id %llu), worker %d, "
              "scheme %s",
              static_cast<unsigned long long>(req.id),
              static_cast<long long>(cfg_.slo_us), res.latency_us(),
              queue_wait_us, res.done_us - res.start_us, res.batch_size,
              static_cast<unsigned long long>(batch_id), worker_id,
              session.scheme().c_str());
        }
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.completed;
        if (!res.status.ok()) ++stats_.errors;
        if (over_slo) ++stats_.slo_violations;
        if (expired && !batch_fault) ++stats_.deadline_exceeded;
        if (res.degraded) ++stats_.degraded;
      }
      req.promise.set_value(std::move(res));
    }
    batch.clear();
  }
}

void ServeEngine::shutdown() {
  bool expected = false;
  if (!shut_down_.compare_exchange_strong(expected, true)) {
    // Another caller already ran (or is running) the drain; joining again
    // would race on workers_, and the first caller guarantees the drain.
    return;
  }
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

EngineStats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace odq::serve
