// Thread-safe bounded request queue with backpressure and dynamic batching.
//
// Producers push PendingRequests; worker threads pop *batches*: pop_batch
// blocks for the first request, then keeps gathering until the batch
// reaches `max_batch` or the oldest request has waited `flush_timeout_us`
// microseconds since enqueue — whichever comes first. Measuring the
// deadline from the oldest request's enqueue time (not from the pop) bounds
// the batching delay any request can experience, and makes a backlogged
// queue flush immediately.
//
// Backpressure: the queue holds at most `capacity` requests. push() blocks
// until space frees up; try_push() refuses immediately with kUnavailable.
// close() rejects all further pushes but lets pop_batch drain what was
// already accepted — the engine's graceful-shutdown contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/request.hpp"
#include "util/status.hpp"

namespace odq::serve {

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  // Block until the request is accepted or the queue is closed
  // (kUnavailable). FIFO: requests pop in push order.
  util::Status push(PendingRequest&& req);

  // Non-blocking: kUnavailable when full or closed. On failure `req` is
  // untouched (the caller still owns the promise).
  util::Status try_push(PendingRequest&& req);

  // Pop 1..max_batch requests into `out` (cleared first). Blocks until at
  // least one request is available; returns false only when the queue is
  // closed AND drained — the worker-exit signal. After the first request,
  // gathers more until max_batch or the flush deadline (oldest request's
  // enqueue + flush_timeout_us); a closed queue flushes immediately.
  bool pop_batch(std::vector<PendingRequest>& out, std::size_t max_batch,
                 std::int64_t flush_timeout_us);

  // Refuse new pushes, wake every waiter. Idempotent.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable nonempty_cv_;
  std::condition_variable space_cv_;
  std::deque<PendingRequest> items_;
  bool closed_ = false;
};

}  // namespace odq::serve
