#include "serve/frontend.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/telemetry.hpp"

namespace odq::serve {

using util::Status;
using util::StatusCode;
using util::StatusOr;

ServeFrontEnd::ServeFrontEnd(ServeEngine& engine, FrontEndConfig cfg)
    : engine_(engine), shed_(cfg.degrade) {
  if (cfg.tenants.empty()) {
    throw std::invalid_argument("ServeFrontEnd needs at least one tenant");
  }
  tenants_.reserve(cfg.tenants.size());
  for (auto& spec : cfg.tenants) {
    if (spec.name.empty()) {
      throw std::invalid_argument("tenant name must be nonempty");
    }
    if (!(spec.weight > 0.0)) {
      throw std::invalid_argument("tenant weight must be positive: " +
                                  spec.name);
    }
    if (spec.queue_limit == 0) {
      throw std::invalid_argument("tenant queue_limit must be nonzero: " +
                                  spec.name);
    }
    if (!tenant_index_.emplace(spec.name, tenants_.size()).second) {
      throw std::invalid_argument("duplicate tenant: " + spec.name);
    }
    auto t = std::make_unique<Tenant>();
    t->spec = std::move(spec);
    tenants_.push_back(std::move(t));
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

ServeFrontEnd::~ServeFrontEnd() { shutdown(); }

StatusOr<std::future<InferResponse>> ServeFrontEnd::submit(
    tensor::Tensor input, const std::string& tenant, SubmitOptions opts) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (stop_) {
    return Status(StatusCode::kUnavailable, "front end shutting down");
  }
  const auto it = tenant_index_.find(tenant);
  if (it == tenant_index_.end()) {
    return Status(StatusCode::kInvalidArgument, "unknown tenant: " + tenant);
  }
  Tenant& t = *tenants_[it->second];
  if (t.spec.best_effort && shed_.level() >= 2) {
    ++t.stats.shed;
    obs::telemetry_counter("serve.shed").increment();
    return Status(StatusCode::kUnavailable,
                  "overload: best-effort traffic shed for " + tenant);
  }
  if (t.queue.size() >= t.spec.queue_limit) {
    ++t.stats.rejected;
    obs::telemetry_counter("serve.rejected." + t.spec.name).increment();
    return Status(StatusCode::kResourceExhausted,
                  "tenant queue limit reached for " + tenant);
  }

  QueuedRequest q;
  q.input = std::move(input);
  q.opts = std::move(opts);
  q.opts.tenant = t.spec.name;
  std::future<InferResponse> future = q.promise.get_future();
  // WFQ finish tag: start from the virtual time (an idle tenant earns no
  // credit) or this tenant's own newest tag, whichever is later.
  const double start = std::max(vtime_, t.last_finish);
  q.finish_tag = start + 1.0 / t.spec.weight;
  t.last_finish = q.finish_tag;
  t.queue.push_back(std::move(q));
  ++backlog_;
  ++t.stats.accepted;
  shed_.observe(backlog_);
  lock.unlock();
  cv_.notify_one();
  return future;
}

void ServeFrontEnd::dispatcher_loop() {
  for (;;) {
    QueuedRequest req;
    bool expired = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || backlog_ > 0; });
      if (backlog_ == 0) {
        if (stop_) return;  // drained — admission is closed, nothing left
        continue;
      }
      // Forward the smallest head finish tag (WFQ dispatch order).
      Tenant* pick = nullptr;
      for (auto& t : tenants_) {
        if (t->queue.empty()) continue;
        if (pick == nullptr ||
            t->queue.front().finish_tag < pick->queue.front().finish_tag) {
          pick = t.get();
        }
      }
      req = std::move(pick->queue.front());
      pick->queue.pop_front();
      --backlog_;
      vtime_ = std::max(vtime_, req.finish_tag);
      const int level = shed_.observe(backlog_);
      expired = req.opts.deadline != kNoDeadline &&
                std::chrono::steady_clock::now() > req.opts.deadline;
      if (expired) {
        ++pick->stats.deadline_shed;
      } else {
        // Degrade at dispatch time, not admission: requests admitted just
        // before the level rose still ride the cheap path.
        if (level >= 1 && pick->spec.best_effort) req.opts.degraded = true;
        ++pick->stats.dispatched;
        if (req.opts.degraded) ++pick->stats.degraded;
      }
    }
    if (expired) {
      obs::telemetry_counter("serve.deadline_exceeded").increment();
      InferResponse res;
      res.status = Status(StatusCode::kDeadlineExceeded,
                          "deadline passed before dispatch");
      req.promise.set_value(std::move(res));
      continue;
    }
    // Blocking submit: a full engine queue stalls the dispatcher (the
    // per-tenant queues absorb the burst) instead of dropping work. On
    // rejection (engine shut down, serve.submit fault) the engine fulfills
    // the promise with the refusal — nothing is ever silently dropped.
    engine_.submit_with_promise(std::move(req.input), req.opts,
                                std::move(req.promise),
                                /*blocking=*/true);
  }
}

void ServeFrontEnd::shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  draining_.store(true, std::memory_order_relaxed);
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  draining_.store(false, std::memory_order_relaxed);
}

std::size_t ServeFrontEnd::backlog() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backlog_;
}

TenantStats ServeFrontEnd::tenant_stats(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenant_index_.find(tenant);
  if (it == tenant_index_.end()) return TenantStats{};
  return tenants_[it->second]->stats;
}

std::map<std::string, TenantStats> ServeFrontEnd::all_tenant_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, TenantStats> out;
  for (const auto& t : tenants_) out[t->spec.name] = t->stats;
  return out;
}

ServeFrontEnd::Snapshot ServeFrontEnd::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.ready = !stop_;
  s.draining = draining_.load(std::memory_order_relaxed);
  s.degrade_level = shed_.level();
  s.backlog = backlog_;
  for (const auto& t : tenants_) {
    s.accepted += t->stats.accepted;
    s.rejected += t->stats.rejected;
    s.shed += t->stats.shed;
  }
  return s;
}

}  // namespace odq::serve
