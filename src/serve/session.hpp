// Inference sessions: the pluggable per-worker evaluation unit.
//
// Each engine worker owns one InferenceSession (model forward passes are
// not thread-safe — Conv2d caches its input even in eval mode — so workers
// never share a session). A ModelSession wraps an nn::Model with one of
// the numeric schemes (ODQ / DRQ / static-INT8 / FP32 reference) installed
// as its ConvExecutor.
//
// Batch-invariance contract: the engine evaluates a coalesced batch by
// running each request through run() independently, one sample at a time.
// The quantized executors calibrate activation scales per-tensor at run
// time, so stacking k requests into one [k,C,H,W] forward would couple a
// request's quantization scale (and ODQ sensitivity decisions) to whatever
// neighbors the batcher happened to coalesce with it — outputs would change
// with arrival timing. Per-sample evaluation makes coalescing a pure
// scheduling decision: outputs are bit-identical to the single-request
// path no matter how requests were batched, the invariant the serve test
// harness hammers (see docs/testing.md).
#pragma once

#include <memory>
#include <string>

#include "core/odq.hpp"
#include "nn/layer.hpp"
#include "nn/model.hpp"
#include "tensor/tensor.hpp"

namespace odq::serve {

class InferenceSession {
 public:
  virtual ~InferenceSession() = default;

  // Evaluate one sample: input [1,C,H,W] (a CHW tensor is promoted).
  // Throws std::invalid_argument on unusable inputs; the engine converts
  // escaped exceptions into per-request error Statuses.
  virtual tensor::Tensor run(const tensor::Tensor& input) = 0;

  // Evaluate under the session's degraded (cheaper) scheme — the load-shed
  // controller's downgrade target. Sessions without one serve the full
  // path, so degradation is always safe to request.
  virtual tensor::Tensor run_degraded(const tensor::Tensor& input) {
    return run(input);
  }

  // Numeric scheme tag ("odq", "drq", "static_int8", "fp32").
  virtual std::string scheme() const = 0;

  // Scheme run_degraded evaluates under; equals scheme() when the session
  // has no cheaper path.
  virtual std::string degraded_scheme() const { return scheme(); }
};

// Build a conv executor by scheme name. "fp32" returns nullptr (the model's
// native im2col path); unknown names throw std::invalid_argument. The ODQ
// config parameterizes the "odq" scheme and is ignored by the others.
std::shared_ptr<nn::ConvExecutor> make_conv_executor(
    const std::string& scheme, const core::OdqConfig& odq_cfg = {});

// An nn::Model replica evaluating under `executor` (nullptr = FP32).
// Takes ownership of the model; assigns conv ids and installs the executor.
class ModelSession : public InferenceSession {
 public:
  ModelSession(nn::Model model, std::shared_ptr<nn::ConvExecutor> executor,
               std::string scheme);

  tensor::Tensor run(const tensor::Tensor& input) override;
  std::string scheme() const override { return scheme_; }

  // Install a cheaper executor for load-shed degradation (e.g.
  // static-INT8 under an ODQ primary). run_degraded swaps it onto the
  // model for the call and restores the primary afterwards — safe because
  // each engine worker owns its session and runs single-threaded.
  void set_degraded_executor(std::shared_ptr<nn::ConvExecutor> executor,
                             std::string scheme);
  tensor::Tensor run_degraded(const tensor::Tensor& input) override;
  std::string degraded_scheme() const override {
    return degraded_scheme_.empty() ? scheme_ : degraded_scheme_;
  }

  nn::Model& model() { return model_; }
  const std::shared_ptr<nn::ConvExecutor>& executor() const {
    return executor_;
  }

 private:
  nn::Model model_;
  std::shared_ptr<nn::ConvExecutor> executor_;
  std::string scheme_;
  std::shared_ptr<nn::ConvExecutor> degraded_executor_;
  std::string degraded_scheme_;
};

}  // namespace odq::serve
