#include "quant/packing.hpp"

#include <stdexcept>
#include <string>

namespace odq::quant {

namespace {

void check_bits(int bits) {
  if (bits != 1 && bits != 2 && bits != 4 && bits != 8) {
    throw std::invalid_argument("packing: bits must be 1, 2, 4 or 8");
  }
}

}  // namespace

std::int64_t packed_size_bytes(std::int64_t count, int bits) {
  check_bits(bits);
  return (count * bits + 7) / 8;
}

std::vector<std::uint8_t> pack_codes(const tensor::TensorI8& codes, int bits,
                                     bool is_signed) {
  check_bits(bits);
  const std::int32_t lo = is_signed ? -(1 << (bits - 1)) : 0;
  const std::int32_t hi = is_signed ? (1 << (bits - 1)) - 1 : (1 << bits) - 1;
  const std::uint32_t mask = (bits == 8) ? 0xFFu : ((1u << bits) - 1u);
  const int per_byte = 8 / bits;

  std::vector<std::uint8_t> out(
      static_cast<std::size_t>(packed_size_bytes(codes.numel(), bits)), 0);
  for (std::int64_t i = 0; i < codes.numel(); ++i) {
    const std::int32_t v = codes[i];
    if (v < lo || v > hi) {
      throw std::out_of_range("pack_codes: code " + std::to_string(v) +
                              " does not fit in " + std::to_string(bits) +
                              " bits");
    }
    const auto field = static_cast<std::uint32_t>(v) & mask;
    const std::size_t byte = static_cast<std::size_t>(i / per_byte);
    const int shift = static_cast<int>(i % per_byte) * bits;
    out[byte] |= static_cast<std::uint8_t>(field << shift);
  }
  return out;
}

tensor::TensorI8 unpack_codes(const std::vector<std::uint8_t>& packed,
                              std::int64_t count, int bits, bool is_signed,
                              tensor::Shape shape) {
  check_bits(bits);
  if (shape.numel() != count) {
    throw std::invalid_argument("unpack_codes: shape/count mismatch");
  }
  if (static_cast<std::int64_t>(packed.size()) <
      packed_size_bytes(count, bits)) {
    throw std::invalid_argument("unpack_codes: packed buffer too small");
  }
  const std::uint32_t mask = (bits == 8) ? 0xFFu : ((1u << bits) - 1u);
  const int per_byte = 8 / bits;
  const std::int32_t sign_bit = 1 << (bits - 1);

  tensor::TensorI8 out(std::move(shape));
  for (std::int64_t i = 0; i < count; ++i) {
    const std::size_t byte = static_cast<std::size_t>(i / per_byte);
    const int shift = static_cast<int>(i % per_byte) * bits;
    auto field = static_cast<std::int32_t>((packed[byte] >> shift) & mask);
    if (is_signed && (field & sign_bit) != 0) {
      field -= (1 << bits);  // sign-extend the two's-complement field
    }
    out[i] = static_cast<std::int8_t>(field);
  }
  return out;
}

std::vector<std::uint8_t> pack(const QTensor& q) {
  return pack_codes(q.q, q.bits, q.is_signed);
}

QTensor unpack(const std::vector<std::uint8_t>& packed, const QTensor& like) {
  QTensor out;
  out.scale = like.scale;
  out.bits = like.bits;
  out.is_signed = like.is_signed;
  out.q = unpack_codes(packed, like.q.numel(), like.bits, like.is_signed,
                       like.q.shape());
  return out;
}

}  // namespace odq::quant
