// Bit-split arithmetic underlying ODQ's Equation (3).
//
// A 4-bit code v is decomposed into a high-order 2-bit part and a low-order
// 2-bit part with  v == (high << 2) + low,  where
//   high = v >> 2   (arithmetic shift: signed high part for signed codes)
//   low  = v & 3    (always unsigned, in [0, 3])
//
// For a product of two 4-bit codes a (activation) and b (weight):
//   a*b == ((ah*bh) << 4) + ((ah*bl + al*bh) << 2) + al*bl        -- Eq. (3)
//
// ODQ's sensitivity predictor evaluates only the (ah*bh) << 4 term; the
// result executor supplies the remaining three terms for sensitive outputs.
#pragma once

#include <cstdint>

#include "quant/qtensor.hpp"
#include "tensor/tensor.hpp"

namespace odq::quant {

// High-order part of a code with `low_bits` low bits (arithmetic shift, so
// signed codes produce signed high parts).
constexpr std::int8_t high_part(std::int8_t v, int low_bits = 2) {
  return static_cast<std::int8_t>(v >> low_bits);
}

// Low-order part (always non-negative).
constexpr std::int8_t low_part(std::int8_t v, int low_bits = 2) {
  return static_cast<std::int8_t>(v & ((1 << low_bits) - 1));
}

// Recompose: (high << low_bits) + low.
constexpr std::int32_t recompose(std::int8_t high, std::int8_t low,
                                 int low_bits = 2) {
  return (static_cast<std::int32_t>(high) << low_bits) +
         static_cast<std::int32_t>(low);
}

// The two halves of a quantized tensor.
struct SplitTensor {
  tensor::TensorI8 high;
  tensor::TensorI8 low;
  int low_bits = 2;
};

// Split every code of `q` into high/low parts.
SplitTensor split(const QTensor& q, int low_bits = 2);
SplitTensor split_codes(const tensor::TensorI8& codes, int low_bits = 2);

// Exact product decomposition of two codes (for tests and the accelerator
// model): returns the four partial products of Eq. (3) already shifted.
struct ProductParts {
  std::int32_t hh_shifted;  // (ah*bh) << (2*low_bits)  -- predictor term
  std::int32_t hl_shifted;  // (ah*bl) << low_bits
  std::int32_t lh_shifted;  // (al*bh) << low_bits
  std::int32_t ll;          // al*bl
  std::int32_t total() const { return hh_shifted + hl_shifted + lh_shifted + ll; }
};

ProductParts product_parts(std::int8_t a, std::int8_t b, int low_bits = 2);

}  // namespace odq::quant
