#include "quant/quantizer.hpp"

#include "gemm/gemm.hpp"
#include "gemm/packed.hpp"
#include "tensor/ops.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace odq::quant {

using tensor::Shape;
using tensor::Tensor;
using tensor::TensorI32;
using tensor::TensorI8;

tensor::Tensor QTensor::dequantize() const {
  Tensor out(q.shape());
  const std::int8_t* src = q.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < q.numel(); ++i) {
    dst[i] = static_cast<float>(src[i]) * scale;
  }
  return out;
}

namespace {

float max_abs(const Tensor& t) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < t.numel(); ++i) m = std::max(m, std::abs(t[i]));
  return m;
}

std::int8_t clamp_code(float v, std::int32_t lo, std::int32_t hi) {
  const float r = std::nearbyint(v);
  const auto c = static_cast<std::int32_t>(r);
  return static_cast<std::int8_t>(std::clamp(c, lo, hi));
}

}  // namespace

QTensor quantize_weights(const Tensor& w, int bits, WeightTransform transform) {
  if (bits < 2 || bits > 8) {
    throw std::invalid_argument("quantize_weights: bits must be in [2,8]");
  }
  QTensor out;
  out.bits = bits;
  out.is_signed = true;
  out.q = TensorI8(w.shape());
  const std::int32_t qmax = out.qmax();

  if (transform == WeightTransform::kDoReFa) {
    // DoReFa: normalize through tanh, code the normalized weights, then fold
    // the normalization magnitude back into the scale so dequantize()
    // approximates the original weights.
    Tensor t(w.shape());
    for (std::int64_t i = 0; i < w.numel(); ++i) t[i] = std::tanh(w[i]);
    const float tmax = max_abs(t);
    const float denom = tmax > 0.0f ? tmax : 1.0f;
    out.scale = denom / static_cast<float>(qmax);
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      out.q[i] = clamp_code(t[i] / out.scale, -qmax, qmax);
    }
  } else {
    const float wmax = max_abs(w);
    out.scale = (wmax > 0.0f ? wmax : 1.0f) / static_cast<float>(qmax);
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      out.q[i] = clamp_code(w[i] / out.scale, -qmax, qmax);
    }
  }
  return out;
}

QTensor quantize_activations(const Tensor& x, int bits, float clip) {
  // Unsigned codes live in int8 storage, so at most 7 bits here. Wider
  // activations (INT8/INT16 baselines) use fake_quantize_activations.
  if (bits < 2 || bits > 7) {
    throw std::invalid_argument("quantize_activations: bits must be in [2,7]");
  }
  QTensor out;
  out.bits = bits;
  out.is_signed = false;
  out.q = TensorI8(x.shape());
  const std::int32_t qmax = out.qmax();
  float xmax = clip;
  if (xmax <= 0.0f) {
    xmax = 0.0f;
    for (std::int64_t i = 0; i < x.numel(); ++i) xmax = std::max(xmax, x[i]);
  }
  out.scale = (xmax > 0.0f ? xmax : 1.0f) / static_cast<float>(qmax);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out.q[i] = clamp_code(std::max(x[i], 0.0f) / out.scale, 0, qmax);
  }
  return out;
}

float activation_clip_from_percentile(const Tensor& x, float percentile) {
  if (percentile <= 0.0f || x.numel() == 0) return -1.0f;
  std::vector<float> mags;
  const std::int64_t stride = std::max<std::int64_t>(1, x.numel() / 4096);
  mags.reserve(static_cast<std::size_t>(x.numel() / stride) + 2);
  for (std::int64_t i = 0; i < x.numel(); i += stride) {
    mags.push_back(x[i] > 0.0f ? x[i] : 0.0f);
  }
  // The strided walk stops short of the last element whenever
  // (numel - 1) % stride != 0; sample it explicitly so a tail maximum
  // cannot silently fall out of the estimate.
  if ((x.numel() - 1) % stride != 0) {
    const float tail = x[x.numel() - 1];
    mags.push_back(tail > 0.0f ? tail : 0.0f);
  }
  const float clip = static_cast<float>(
      util::percentile(std::move(mags), static_cast<double>(percentile)));
  return clip > 0.0f ? clip : -1.0f;
}

QTensor quantize_signed(const Tensor& x, int bits) {
  if (bits < 2 || bits > 8) {
    throw std::invalid_argument("quantize_signed: bits must be in [2,8]");
  }
  QTensor out;
  out.bits = bits;
  out.is_signed = true;
  out.q = TensorI8(x.shape());
  const std::int32_t qmax = out.qmax();
  const float xmax = max_abs(x);
  out.scale = (xmax > 0.0f ? xmax : 1.0f) / static_cast<float>(qmax);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out.q[i] = clamp_code(x[i] / out.scale, -qmax, qmax);
  }
  return out;
}

Tensor fake_quantize_weights(const Tensor& w, int bits,
                             WeightTransform transform) {
  if (bits < 2 || bits > 16) {
    throw std::invalid_argument("fake_quantize_weights: bits must be in [2,16]");
  }
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  Tensor out(w.shape());
  if (transform == WeightTransform::kDoReFa) {
    Tensor t(w.shape());
    float tmax = 0.0f;
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      t[i] = std::tanh(w[i]);
      tmax = std::max(tmax, std::abs(t[i]));
    }
    const float scale = (tmax > 0.0f ? tmax : 1.0f) / qmax;
    util::parallel_for(
        w.numel(),
        [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            out[i] =
                std::clamp(std::nearbyint(t[i] / scale), -qmax, qmax) * scale;
          }
        },
        /*grain=*/1 << 13);
  } else {
    const float wmax = max_abs(w);
    const float scale = (wmax > 0.0f ? wmax : 1.0f) / qmax;
    util::parallel_for(
        w.numel(),
        [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            out[i] =
                std::clamp(std::nearbyint(w[i] / scale), -qmax, qmax) * scale;
          }
        },
        /*grain=*/1 << 13);
  }
  return out;
}

Tensor fake_quantize_activations(const Tensor& x, int bits, float clip) {
  if (bits < 2 || bits > 16) {
    throw std::invalid_argument(
        "fake_quantize_activations: bits must be in [2,16]");
  }
  const float qmax = static_cast<float>((1 << bits) - 1);
  float xmax = clip;
  if (xmax <= 0.0f) {
    xmax = 0.0f;
    for (std::int64_t i = 0; i < x.numel(); ++i) xmax = std::max(xmax, x[i]);
  }
  const float scale = (xmax > 0.0f ? xmax : 1.0f) / qmax;
  Tensor out(x.shape());
  util::parallel_for(
      x.numel(),
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          out[i] = std::clamp(std::nearbyint(std::max(x[i], 0.0f) / scale),
                              0.0f, qmax) *
                   scale;
        }
      },
      /*grain=*/1 << 13);
  return out;
}

tensor::Tensor QTensorPerChannel::dequantize() const {
  Tensor out(q.shape());
  const std::int64_t oc = q.shape()[0];
  const std::int64_t per = q.numel() / std::max<std::int64_t>(oc, 1);
  for (std::int64_t c = 0; c < oc; ++c) {
    const float s = scales[static_cast<std::size_t>(c)];
    for (std::int64_t i = 0; i < per; ++i) {
      out[c * per + i] = static_cast<float>(q[c * per + i]) * s;
    }
  }
  return out;
}

QTensorPerChannel quantize_weights_per_channel(const Tensor& w, int bits,
                                               WeightTransform transform) {
  if (bits < 2 || bits > 8) {
    throw std::invalid_argument(
        "quantize_weights_per_channel: bits must be in [2,8]");
  }
  if (w.shape().rank() < 2) {
    throw std::invalid_argument(
        "quantize_weights_per_channel: need an OIHW/OI tensor");
  }
  QTensorPerChannel out;
  out.bits = bits;
  out.q = TensorI8(w.shape());
  const std::int64_t oc = w.shape()[0];
  const std::int64_t per = w.numel() / oc;
  out.scales.resize(static_cast<std::size_t>(oc));
  const auto qmax = static_cast<std::int32_t>((1 << (bits - 1)) - 1);

  // DoReFa's tanh normalization is a per-tensor transform; apply it first,
  // then scale each filter independently.
  Tensor t = w;
  if (transform == WeightTransform::kDoReFa) {
    float tmax = 0.0f;
    for (std::int64_t i = 0; i < w.numel(); ++i) {
      t[i] = std::tanh(w[i]);
      tmax = std::max(tmax, std::abs(t[i]));
    }
    if (tmax > 0.0f) {
      for (std::int64_t i = 0; i < w.numel(); ++i) t[i] /= tmax;
    }
  }
  for (std::int64_t c = 0; c < oc; ++c) {
    float cmax = 0.0f;
    for (std::int64_t i = 0; i < per; ++i) {
      cmax = std::max(cmax, std::abs(t[c * per + i]));
    }
    const float scale = (cmax > 0.0f ? cmax : 1.0f) / static_cast<float>(qmax);
    out.scales[static_cast<std::size_t>(c)] = scale;
    for (std::int64_t i = 0; i < per; ++i) {
      out.q[c * per + i] = clamp_code(t[c * per + i] / scale, -qmax, qmax);
    }
  }
  return out;
}

Tensor fake_quantize_weights_per_channel(const Tensor& w, int bits,
                                         WeightTransform transform) {
  return quantize_weights_per_channel(w, bits, transform).dequantize();
}

TensorI32 conv2d_i8(const TensorI8& input, const TensorI8& weight,
                    std::int64_t stride, std::int64_t pad) {
  const Shape& is = input.shape();
  const Shape& ws = weight.shape();
  const std::int64_t oh = tensor::conv_out_dim(is[2], ws[2], stride, pad);
  const std::int64_t ow = tensor::conv_out_dim(is[3], ws[3], stride, pad);
  TensorI32 out(Shape{is[0], ws[0], oh, ow});
  conv2d_i8_accum(input, weight, stride, pad, /*shift=*/0, out);
  return out;
}

void conv2d_i8_accum(const TensorI8& input, const TensorI8& weight,
                     std::int64_t stride, std::int64_t pad, int shift,
                     TensorI32& out) {
  const Shape& is = input.shape();
  const Shape& ws = weight.shape();
  if (is.rank() != 4 || ws.rank() != 4) {
    throw std::invalid_argument("conv2d_i8: need NCHW input, OIHW weight");
  }
  if (is[1] != ws[1]) {
    throw std::invalid_argument("conv2d_i8: channel mismatch");
  }
  const std::int64_t n = is[0], c = is[1], h = is[2], w = is[3];
  const std::int64_t o = ws[0], kh = ws[2], kw = ws[3];
  const std::int64_t oh = tensor::conv_out_dim(h, kh, stride, pad);
  const std::int64_t ow = tensor::conv_out_dim(w, kw, stride, pad);
  if (out.shape() != Shape{n, o, oh, ow}) {
    throw std::invalid_argument("conv2d_i8_accum: bad output shape");
  }

  // Tiled over (batch, out-channel) planes; each tile accumulates into its
  // own output plane, so the integer result is thread-count independent.
  util::parallel_for(
      n * o,
      [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t b = t / o;
          const std::int64_t oc = t % o;
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              std::int32_t acc = 0;
              for (std::int64_t ic = 0; ic < c; ++ic) {
                for (std::int64_t ki = 0; ki < kh; ++ki) {
                  const std::int64_t iy = oy * stride - pad + ki;
                  if (iy < 0 || iy >= h) continue;
                  const std::int8_t* irow =
                      input.data() + ((b * c + ic) * h + iy) * w;
                  const std::int8_t* wrow =
                      weight.data() + ((oc * c + ic) * kh + ki) * kw;
                  for (std::int64_t kj = 0; kj < kw; ++kj) {
                    const std::int64_t ix = ox * stride - pad + kj;
                    if (ix < 0 || ix >= w) continue;
                    acc += static_cast<std::int32_t>(irow[ix]) *
                           static_cast<std::int32_t>(wrow[kj]);
                  }
                }
              }
              out.at4(b, oc, oy, ox) += acc << shift;
            }
          }
        }
      },
      /*grain=*/1);
}

TensorI8 im2col_i8(const TensorI8& input, std::int64_t kh, std::int64_t kw,
                   std::int64_t stride, std::int64_t pad) {
  const Shape& s = input.shape();
  if (s.rank() != 4) {
    throw std::invalid_argument("im2col_i8: input must be NCHW");
  }
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const std::int64_t oh = tensor::conv_out_dim(h, kh, stride, pad);
  const std::int64_t ow = tensor::conv_out_dim(w, kw, stride, pad);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("im2col_i8: kernel larger than padded input");
  }
  TensorI8 cols(Shape{n, c * kh * kw, oh * ow});
  const std::int64_t col_stride = oh * ow;
  // One tile per (batch, input-channel) plane; tiles write disjoint rows.
  util::parallel_for(
      n * c,
      [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t b = t / c;
          const std::int64_t ch = t % c;
          const std::int8_t* img = input.data() + (b * c + ch) * h * w;
          std::int8_t* dst = cols.data() + b * c * kh * kw * col_stride;
          for (std::int64_t ki = 0; ki < kh; ++ki) {
            for (std::int64_t kj = 0; kj < kw; ++kj) {
              std::int8_t* row = dst + ((ch * kh + ki) * kw + kj) * col_stride;
              std::int64_t idx = 0;
              for (std::int64_t oy = 0; oy < oh; ++oy) {
                const std::int64_t iy = oy * stride - pad + ki;
                for (std::int64_t ox = 0; ox < ow; ++ox, ++idx) {
                  const std::int64_t ix = ox * stride - pad + kj;
                  row[idx] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                 ? img[iy * w + ix]
                                 : static_cast<std::int8_t>(0);
                }
              }
            }
          }
        }
      },
      /*grain=*/2);
  return cols;
}

TensorI32 conv2d_i8_fast(const TensorI8& input, const TensorI8& weight,
                         std::int64_t stride, std::int64_t pad) {
  const Shape& is = input.shape();
  const Shape& ws = weight.shape();
  if (is.rank() != 4 || ws.rank() != 4 || is[1] != ws[1]) {
    throw std::invalid_argument("conv2d_i8_fast: bad shapes");
  }
  // Pack into the shared cache-blocked layout, then run the tiled INT-GEMM
  // microkernel. Integer accumulation is order-independent, so the result
  // stays bit-identical to conv2d_i8 at any tiling and pool size.
  gemm::PackedIm2col cols =
      gemm::pack_im2col_i8(input, ws[2], ws[3], stride, pad);
  gemm::PackedWeights wts = gemm::pack_weights_i8(weight);
  return gemm::gemm_conv_i8(cols, wts, /*shift=*/0);
}

}  // namespace odq::quant
