// Static quantization executor: DoReFa-Net-style INT16 / INT8 / INT4
// inference (the paper's static baselines). Weights and activations are
// quantized per-tensor at a fixed bit width for every conv layer.
#pragma once

#include "nn/layer.hpp"
#include "quant/quantizer.hpp"

namespace odq::quant {

class StaticQuantConvExecutor : public nn::ConvExecutor {
 public:
  // The DoReFa tanh transform is a *training-time* normalization; applying
  // it post-hoc to FP32-trained weights distorts them, so post-training
  // executors default to linear quantization. `per_channel` quantizes
  // weights with one scale per output channel.
  explicit StaticQuantConvExecutor(
      int bits, WeightTransform transform = WeightTransform::kLinear,
      bool per_channel = false)
      : bits_(bits), transform_(transform), per_channel_(per_channel) {}

  tensor::Tensor run(const tensor::Tensor& input, const tensor::Tensor& weight,
                     const tensor::Tensor& bias, std::int64_t stride,
                     std::int64_t pad, int conv_id) override;

  std::string name() const override {
    return "static_int" + std::to_string(bits_);
  }

  int bits() const { return bits_; }

 private:
  int bits_;
  WeightTransform transform_;
  bool per_channel_;
};

}  // namespace odq::quant
