#include "quant/static_executor.hpp"

#include "gemm/gemm.hpp"
#include "obs/fidelity.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace odq::quant {

tensor::Tensor StaticQuantConvExecutor::run(const tensor::Tensor& input,
                                            const tensor::Tensor& weight,
                                            const tensor::Tensor& bias,
                                            std::int64_t stride,
                                            std::int64_t pad,
                                            int conv_id) {
  obs::TraceSpan span("static_quant.conv");
  span.arg("conv_id", conv_id);
  if (obs::metrics_enabled()) {
    static obs::Counter& calls = obs::counter("static_quant.conv.calls");
    calls.increment();
  }
  // Both the fake-quantize passes and the packed float GEMM run tiled on
  // the global thread pool, so this baseline is benchmarked on the same
  // footing as the parallel ODQ and DRQ executors. gemm::conv2d_f32 is
  // bit-identical to the conv2d_direct oracle (tests/gemm pins this).
  tensor::Tensor qin = fake_quantize_activations(input, bits_);
  tensor::Tensor qw =
      per_channel_
          ? fake_quantize_weights_per_channel(weight, bits_, transform_)
          : fake_quantize_weights(weight, bits_, transform_);
  tensor::Tensor out = gemm::conv2d_f32(qin, qw, bias, stride, pad);
  if (obs::fidelity_enabled()) {
    const tensor::Tensor ref =
        tensor::conv2d_direct(input, weight, bias, stride, pad);
    obs::fidelity_record(name(), conv_id, ref.data(), out.data(), out.numel());
  }
  return out;
}

}  // namespace odq::quant
