// Quantized checkpoint format: every conv weight tensor packed at its
// quantized width (two INT4 codes per byte) plus its scale, with all other
// parameters (biases, BN affine/running stats, FC weights) in float.
//
// This is the artifact a deployment flow ships to the accelerator: weights
// are stored exactly as the PE arrays consume them. Loading re-expands codes
// and installs the dequantized weights, so a loaded model reproduces the
// quantized forward pass bit-for-bit (the codes, not the float originals,
// are the source of truth).
#pragma once

#include <string>

#include "nn/model.hpp"
#include "quant/quantizer.hpp"

namespace odq::quant {

struct QModelSaveOptions {
  int weight_bits = 4;
  WeightTransform transform = WeightTransform::kLinear;
};

// Serialize `model` with conv weights quantized+packed. Returns bytes
// written. Throws on I/O failure.
std::int64_t save_quantized_model(nn::Model& model, const std::string& path,
                                  const QModelSaveOptions& opts = {});

// Load a quantized checkpoint produced by save_quantized_model into a model
// of identical architecture. Conv weights become the *dequantized* codes.
void load_quantized_model(nn::Model& model, const std::string& path);

// Size in bytes a quantized checkpoint of this model would occupy
// (for compression-ratio reporting).
std::int64_t quantized_checkpoint_bytes(nn::Model& model, int weight_bits = 4);

}  // namespace odq::quant
