#include "quant/bitsplit.hpp"

namespace odq::quant {

SplitTensor split_codes(const tensor::TensorI8& codes, int low_bits) {
  SplitTensor out;
  out.low_bits = low_bits;
  out.high = tensor::TensorI8(codes.shape());
  out.low = tensor::TensorI8(codes.shape());
  const std::int8_t* src = codes.data();
  std::int8_t* hi = out.high.data();
  std::int8_t* lo = out.low.data();
  for (std::int64_t i = 0; i < codes.numel(); ++i) {
    hi[i] = high_part(src[i], low_bits);
    lo[i] = low_part(src[i], low_bits);
  }
  return out;
}

SplitTensor split(const QTensor& q, int low_bits) {
  return split_codes(q.q, low_bits);
}

ProductParts product_parts(std::int8_t a, std::int8_t b, int low_bits) {
  const std::int32_t ah = high_part(a, low_bits);
  const std::int32_t al = low_part(a, low_bits);
  const std::int32_t bh = high_part(b, low_bits);
  const std::int32_t bl = low_part(b, low_bits);
  ProductParts p;
  p.hh_shifted = (ah * bh) << (2 * low_bits);
  p.hl_shifted = (ah * bl) << low_bits;
  p.lh_shifted = (al * bh) << low_bits;
  p.ll = al * bl;
  return p;
}

}  // namespace odq::quant
