// Bit-packing for quantized tensors.
//
// QTensor keeps one code per byte for fast compute; storage and the
// accelerator's DRAM traffic use packed layouts (2 codes per byte at INT4,
// 4 at INT2). Packing is lossless for codes within the declared width;
// signed codes are stored in two's complement within their field.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/qtensor.hpp"
#include "tensor/tensor.hpp"

namespace odq::quant {

// Number of bytes needed to pack `count` codes of `bits` width (bits must
// divide 8: 1, 2, 4, or 8).
std::int64_t packed_size_bytes(std::int64_t count, int bits);

// Pack codes (one per int8 element) into a dense bit stream. Codes must fit
// in `bits` (signed: [-2^(b-1), 2^(b-1)-1]; unsigned: [0, 2^b-1]); out-of-
// range codes throw.
std::vector<std::uint8_t> pack_codes(const tensor::TensorI8& codes, int bits,
                                     bool is_signed);

// Inverse of pack_codes. `count` is the number of codes to extract.
tensor::TensorI8 unpack_codes(const std::vector<std::uint8_t>& packed,
                              std::int64_t count, int bits, bool is_signed,
                              tensor::Shape shape);

// Convenience round-trip for a QTensor's payload.
std::vector<std::uint8_t> pack(const QTensor& q);
QTensor unpack(const std::vector<std::uint8_t>& packed, const QTensor& like);

}  // namespace odq::quant
