#include "quant/qmodel_io.hpp"

#include <cstdio>
#include <cstring>
#include <set>
#include <stdexcept>
#include <vector>

#include "quant/packing.hpp"

namespace odq::quant {

namespace {

constexpr std::uint32_t kQMagic = 0x4F445151U;  // "ODQQ"

// Record kinds in the stream.
constexpr std::uint8_t kFloatTensor = 0;
constexpr std::uint8_t kPackedTensor = 1;

void fwrite_checked(const void* data, std::size_t size, std::size_t n,
                    std::FILE* f, const std::string& path) {
  if (std::fwrite(data, size, n, f) != n) {
    std::fclose(f);
    throw std::runtime_error("qmodel_io: short write to " + path);
  }
}

void fread_checked(void* data, std::size_t size, std::size_t n, std::FILE* f,
                   const std::string& path) {
  if (std::fread(data, size, n, f) != n) {
    std::fclose(f);
    throw std::runtime_error("qmodel_io: truncated read from " + path);
  }
}

// Conv weight params are the 4-D ".weight" tensors of conv layers.
std::set<const nn::Param*> conv_weight_params(nn::Model& model) {
  std::set<const nn::Param*> out;
  for (nn::Conv2d* conv : model.convs()) out.insert(&conv->weight());
  return out;
}

}  // namespace

std::int64_t save_quantized_model(nn::Model& model, const std::string& path,
                                  const QModelSaveOptions& opts) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("save_quantized_model: cannot open " + path);
  }
  const auto conv_weights = conv_weight_params(model);
  auto params = model.params();
  auto buffers = model.buffers();

  fwrite_checked(&kQMagic, sizeof(kQMagic), 1, f, path);
  const auto pcount = static_cast<std::uint64_t>(params.size());
  const auto bcount = static_cast<std::uint64_t>(buffers.size());
  const auto bits = static_cast<std::uint8_t>(opts.weight_bits);
  fwrite_checked(&pcount, sizeof(pcount), 1, f, path);
  fwrite_checked(&bcount, sizeof(bcount), 1, f, path);
  fwrite_checked(&bits, sizeof(bits), 1, f, path);

  auto write_float_tensor = [&](const tensor::Tensor& t) {
    const std::uint8_t kind = kFloatTensor;
    const auto n = static_cast<std::uint64_t>(t.numel());
    fwrite_checked(&kind, sizeof(kind), 1, f, path);
    fwrite_checked(&n, sizeof(n), 1, f, path);
    fwrite_checked(t.data(), sizeof(float), static_cast<std::size_t>(n), f,
                   path);
  };

  for (nn::Param* p : params) {
    if (conv_weights.count(p) != 0) {
      QTensor q = quantize_weights(p->value, opts.weight_bits, opts.transform);
      const std::vector<std::uint8_t> packed = pack(q);
      const std::uint8_t kind = kPackedTensor;
      const auto n = static_cast<std::uint64_t>(q.q.numel());
      const auto bytes = static_cast<std::uint64_t>(packed.size());
      fwrite_checked(&kind, sizeof(kind), 1, f, path);
      fwrite_checked(&n, sizeof(n), 1, f, path);
      fwrite_checked(&q.scale, sizeof(q.scale), 1, f, path);
      fwrite_checked(&bytes, sizeof(bytes), 1, f, path);
      fwrite_checked(packed.data(), 1, packed.size(), f, path);
    } else {
      write_float_tensor(p->value);
    }
  }
  for (tensor::Tensor* b : buffers) write_float_tensor(*b);

  const long pos = std::ftell(f);
  std::fclose(f);
  return pos;
}

void load_quantized_model(nn::Model& model, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("load_quantized_model: cannot open " + path);
  }
  std::uint32_t magic = 0;
  fread_checked(&magic, sizeof(magic), 1, f, path);
  if (magic != kQMagic) {
    std::fclose(f);
    throw std::runtime_error("load_quantized_model: bad magic in " + path);
  }
  std::uint64_t pcount = 0, bcount = 0;
  std::uint8_t bits = 0;
  fread_checked(&pcount, sizeof(pcount), 1, f, path);
  fread_checked(&bcount, sizeof(bcount), 1, f, path);
  fread_checked(&bits, sizeof(bits), 1, f, path);

  auto params = model.params();
  auto buffers = model.buffers();
  if (pcount != params.size() || bcount != buffers.size()) {
    std::fclose(f);
    throw std::runtime_error("load_quantized_model: architecture mismatch in " +
                             path);
  }

  auto read_into = [&](tensor::Tensor& dst) {
    std::uint8_t kind = 0;
    std::uint64_t n = 0;
    fread_checked(&kind, sizeof(kind), 1, f, path);
    fread_checked(&n, sizeof(n), 1, f, path);
    if (n != static_cast<std::uint64_t>(dst.numel())) {
      std::fclose(f);
      throw std::runtime_error("load_quantized_model: size mismatch in " +
                               path);
    }
    if (kind == kFloatTensor) {
      fread_checked(dst.data(), sizeof(float), static_cast<std::size_t>(n), f,
                    path);
    } else if (kind == kPackedTensor) {
      float scale = 0.0f;
      std::uint64_t bytes = 0;
      fread_checked(&scale, sizeof(scale), 1, f, path);
      fread_checked(&bytes, sizeof(bytes), 1, f, path);
      std::vector<std::uint8_t> packed(static_cast<std::size_t>(bytes));
      fread_checked(packed.data(), 1, packed.size(), f, path);
      tensor::TensorI8 codes =
          unpack_codes(packed, static_cast<std::int64_t>(n), bits,
                       /*is_signed=*/true, dst.shape());
      for (std::int64_t i = 0; i < dst.numel(); ++i) {
        dst[i] = static_cast<float>(codes[i]) * scale;
      }
    } else {
      std::fclose(f);
      throw std::runtime_error("load_quantized_model: bad record kind in " +
                               path);
    }
  };

  for (nn::Param* p : params) read_into(p->value);
  for (tensor::Tensor* b : buffers) read_into(*b);
  std::fclose(f);
}

std::int64_t quantized_checkpoint_bytes(nn::Model& model, int weight_bits) {
  const auto conv_weights = conv_weight_params(model);
  std::int64_t bytes = 4 + 8 + 8 + 1;  // header
  for (nn::Param* p : model.params()) {
    if (conv_weights.count(p) != 0) {
      bytes += 1 + 8 + 4 + 8 + packed_size_bytes(p->value.numel(), weight_bits);
    } else {
      bytes += 1 + 8 + p->value.numel() * 4;
    }
  }
  for (tensor::Tensor* b : model.buffers()) {
    bytes += 1 + 8 + b->numel() * 4;
  }
  return bytes;
}

}  // namespace odq::quant
