// Quantized tensors: integer codes plus a per-tensor scale.
//
// Real value ≈ code * scale. Signed tensors use symmetric ranges
// [-(2^(b-1)-1), 2^(b-1)-1]; unsigned tensors use [0, 2^b - 1]. INT4 and
// INT2 codes are stored widened in int8 (one code per byte) — the simulator
// and accelerator model account for true bit widths separately.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace odq::quant {

struct QTensor {
  tensor::TensorI8 q;    // integer codes
  float scale = 1.0f;    // dequantization scale
  int bits = 8;          // nominal bit width of the codes
  bool is_signed = true; // signed (weights) vs unsigned (post-ReLU activations)

  // Largest representable code magnitude.
  std::int32_t qmax() const {
    return is_signed ? ((1 << (bits - 1)) - 1) : ((1 << bits) - 1);
  }

  std::int32_t qmin() const { return is_signed ? -qmax() : 0; }

  // Dequantize back to float.
  tensor::Tensor dequantize() const;
};

}  // namespace odq::quant
