// Quantizers: linear symmetric (per-tensor max calibration) and
// DoReFa-Net-style (tanh-normalized weights, clipped activations).
//
// The paper builds ODQ on top of DoReFa-Net [27]: weights and activations
// are first quantized to INT4, then split into high/low 2-bit halves. Both
// quantizers here produce QTensors with exact integer codes so the bit-split
// identity of Eq. (3) holds bit-exactly.
#pragma once

#include <cstdint>

#include "quant/qtensor.hpp"
#include "tensor/tensor.hpp"

namespace odq::quant {

enum class WeightTransform {
  kLinear,  // plain symmetric linear quantization
  kDoReFa,  // w -> tanh(w) / max|tanh(w)| before linear quantization
};

// Quantize weights to `bits` signed levels.
// With kDoReFa the tanh-normalized weights are the values being coded (as in
// DoReFa-Net training); `scale` maps codes back to the normalized range
// rescaled by max|tanh(w)| so dequantize() approximates the original tensor.
QTensor quantize_weights(const tensor::Tensor& w, int bits,
                         WeightTransform transform = WeightTransform::kLinear);

// Quantize activations (assumed >= 0 after ReLU; negatives are clipped) to
// `bits` unsigned levels using per-tensor max calibration. If `clip` > 0 it
// overrides the calibrated maximum (DoReFa uses a fixed clip of 1.0).
// bits must be in [2,7] (codes are stored in int8); wider baselines use
// fake_quantize_activations.
QTensor quantize_activations(const tensor::Tensor& x, int bits,
                             float clip = -1.0f);

// Quantize a tensor with signed symmetric levels (used when a conv input can
// be negative, e.g. the raw image at the first layer).
QTensor quantize_signed(const tensor::Tensor& x, int bits);

// Clip value for activation quantization: the `percentile` quantile of the
// ReLU'd activations, estimated from a strided subsample of ~4096 points
// that always includes the final element (a tail maximum must not be
// dropped). Returns -1 ("use the per-tensor max") when `percentile` <= 0,
// the tensor is empty, or the distribution is degenerate — no positive
// activations, as in an all-negative pre-ReLU map.
float activation_clip_from_percentile(const tensor::Tensor& x,
                                      float percentile);

// Per-output-channel weight quantization: one scale per filter (dim 0 of an
// OIHW tensor). Strictly tighter than the per-tensor scale whenever filter
// magnitudes differ, at the cost of a per-channel multiplier at
// dequantization — standard practice for low-bit deployment.
struct QTensorPerChannel {
  tensor::TensorI8 q;          // codes, same shape as the weights
  std::vector<float> scales;   // one per output channel
  int bits = 8;

  tensor::Tensor dequantize() const;
};

QTensorPerChannel quantize_weights_per_channel(
    const tensor::Tensor& w, int bits,
    WeightTransform transform = WeightTransform::kLinear);

// Fake quantization through per-channel scales.
tensor::Tensor fake_quantize_weights_per_channel(
    const tensor::Tensor& w, int bits,
    WeightTransform transform = WeightTransform::kLinear);

// Round a float tensor through a b-bit quantizer and back (fake
// quantization). Supports 2..16 bits (codes are held in float, so they are
// exact up to 16 bits). Used by the static INT16/INT8 baselines and by
// quantization-aware training with a straight-through estimator.
tensor::Tensor fake_quantize_weights(const tensor::Tensor& w, int bits,
                                     WeightTransform transform);
tensor::Tensor fake_quantize_activations(const tensor::Tensor& x, int bits,
                                         float clip = -1.0f);

// Integer convolution: input codes [N,C,H,W] (* signedness irrelevant; codes
// are int8), weight codes [O,C,KH,KW], int32 accumulators out.
tensor::TensorI32 conv2d_i8(const tensor::TensorI8& input,
                            const tensor::TensorI8& weight,
                            std::int64_t stride, std::int64_t pad);

// As conv2d_i8 but accumulates into `out` (which must be pre-shaped),
// optionally left-shifting each product sum by `shift` bits.
void conv2d_i8_accum(const tensor::TensorI8& input,
                     const tensor::TensorI8& weight, std::int64_t stride,
                     std::int64_t pad, int shift, tensor::TensorI32& out);

// Cache-friendly integer convolution: im2col into an int8 column matrix,
// then an integer GEMM tiled over (batch, out-channel) planes on the global
// thread pool. Bit-identical to conv2d_i8 at any pool size (integer math,
// disjoint output planes; tested), ~2-4x faster on larger layers; the ODQ
// predictor uses it.
tensor::TensorI32 conv2d_i8_fast(const tensor::TensorI8& input,
                                 const tensor::TensorI8& weight,
                                 std::int64_t stride, std::int64_t pad);

// im2col over int8 codes (zero padding). Output shape [N, C*KH*KW, OH*OW].
tensor::TensorI8 im2col_i8(const tensor::TensorI8& input, std::int64_t kh,
                           std::int64_t kw, std::int64_t stride,
                           std::int64_t pad);

}  // namespace odq::quant
