#include "accel/workload.hpp"

#include <memory>

#include "tensor/ops.hpp"

namespace odq::accel {

using tensor::Tensor;

std::vector<ConvWorkload> extract_workloads(nn::Model& model,
                                            const Tensor& sample,
                                            const core::OdqConfig& odq_cfg,
                                            const drq::DrqConfig& drq_cfg) {
  std::vector<nn::Conv2d*> convs = model.assign_conv_ids();

  // Pass 1: ODQ executor collects masks and sensitive fractions.
  auto odq_exec = std::make_shared<core::OdqConvExecutor>(odq_cfg);
  model.set_conv_executor(odq_exec);
  (void)model.forward(sample, /*train=*/false);

  // Pass 2: DRQ executor collects input-sensitivity fractions.
  auto drq_exec = std::make_shared<drq::DrqConvExecutor>(drq_cfg);
  model.set_conv_executor(drq_exec);
  (void)model.forward(sample, /*train=*/false);
  model.set_conv_executor(nullptr);

  const std::int64_t batch = sample.shape()[0];
  std::vector<ConvWorkload> out;
  out.reserve(convs.size());
  for (nn::Conv2d* conv : convs) {
    const int id = conv->conv_id();
    ConvWorkload wl;
    wl.name = conv->name();
    wl.out_channels = conv->out_channels();

    // Geometry from the cached input of the DRQ pass.
    const Tensor& input = conv->cached_input();
    const std::int64_t ih = input.shape()[2], iw = input.shape()[3];
    const std::int64_t oh =
        tensor::conv_out_dim(ih, conv->kernel(), conv->stride(), conv->pad());
    const std::int64_t ow =
        tensor::conv_out_dim(iw, conv->kernel(), conv->stride(), conv->pad());
    wl.out_elems = conv->out_channels() * oh * ow;
    wl.macs_per_out = conv->in_channels() * conv->kernel() * conv->kernel();
    wl.total_macs = wl.out_elems * wl.macs_per_out;
    wl.input_elems = conv->in_channels() * ih * iw;
    wl.weight_elems = conv->weight().value.numel();

    wl.odq_sensitive_fraction =
        odq_exec->layer_stats(id).sensitive_fraction();
    wl.drq_sensitive_input_fraction =
        drq_exec->layer_stats(id).sensitive_input_fraction;
    wl.sensitive_per_channel = odq_exec->last_sensitive_per_channel(id);
    // Normalize channel counts to one image.
    for (auto& c : wl.sensitive_per_channel) c /= batch;
    out.push_back(std::move(wl));
  }
  return out;
}

}  // namespace odq::accel
