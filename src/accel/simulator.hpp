// Cycle/energy simulator for the four Table-2 accelerators.
//
// Timing model (per conv layer, per image):
//
//  INT16: one 16-bit MAC per PE per cycle on 120 PEs.
//  INT8 : BitFusion-style INT4 units; an 8x8 MAC occupies a PE 4 cycles.
//  DRQ  : INT4 units; sensitive input regions compute 8x8 (4 cycles/MAC),
//         insensitive regions 4x8 (2 cycles/MAC); plus a 1-add/input
//         region-mean prediction pass.
//  ODQ  : INT2 units grouped in a 27-array slice. Predictor arrays spend
//         1 cycle per 2x2 MAC over every output; executor arrays spend
//         3 cycles per MAC over sensitive outputs only. Predictor and
//         executor run pipelined; per-layer cycles are the slower stage plus
//         executor imbalance from the cluster schedule.
//
//  Every design overlaps compute with DRAM traffic; a layer is bound by
//  max(compute cycles, DRAM cycles) at its operand widths.
//
// Energy model: per-MAC energy scaled by operand width (quadratic), SRAM
// buffer energy for every operand fetched into a PE, DRAM energy per byte
// moved, and leakage per PE-cycle (see EnergyParams).
#pragma once

#include <vector>

#include "accel/allocation.hpp"
#include "accel/config.hpp"
#include "accel/energy.hpp"
#include "accel/scheduler.hpp"
#include "accel/workload.hpp"

namespace odq::accel {

struct SimOptions {
  // ODQ only: choose the PE split per layer from Table 1 (true) or use one
  // fixed split for the whole network (false; `static_allocation` below).
  bool dynamic_allocation = true;
  PeAllocation static_allocation{12, 15};
  // ODQ only: dynamic workload scheduling across executor arrays (Fig. 16)
  // vs static channel assignment (Fig. 14).
  bool dynamic_workload_schedule = true;
  EnergyParams energy;
  SliceConfig slice;
};

struct LayerSimResult {
  std::string name;
  double cycles = 0.0;
  double compute_cycles = 0.0;
  double dram_cycles = 0.0;
  double predictor_cycles = 0.0;  // ODQ only
  double executor_cycles = 0.0;   // ODQ only
  double idle_pe_fraction = 0.0;
  double predictor_idle_fraction = 0.0;  // ODQ only
  double executor_idle_fraction = 0.0;   // ODQ only
  double dram_bytes = 0.0;
  EnergyBreakdown energy;
  PeAllocation allocation;  // ODQ only
};

struct SimResult {
  std::string accelerator;
  double total_cycles = 0.0;
  double idle_pe_fraction = 0.0;  // cycle-weighted mean over layers
  EnergyBreakdown energy;
  std::vector<LayerSimResult> layers;
};

// Simulate one inference (one image) of `workloads` on `cfg`.
SimResult simulate(const AcceleratorConfig& cfg,
                   const std::vector<ConvWorkload>& workloads,
                   const SimOptions& opts = {});

}  // namespace odq::accel
