// PE-array allocation between the sensitivity predictor and the result
// executor (paper §4.2, Table 1).
//
// The predictor produces one output partial sum per macs_per_out INT2 MACs
// (1 cycle each). The executor spends 3 cycles per MAC but only on the
// sensitive fraction s of outputs. With P predictor arrays and E executor
// arrays (same PEs per array), the pipeline has no bubbles iff the executor
// keeps up with the predictor:
//
//     3 * s / E  <=  1 / P      =>      s  <=  E / (3 P)
//
// which reproduces the paper's Table 1 exactly:
//   (P=9,  E=18) -> 66%     (P=12, E=15) -> 41%    (P=15, E=12) -> 26%
//   (P=18, E=9)  -> 16%     (P=21, E=6)  -> 9%
#pragma once

#include <vector>

#include "accel/config.hpp"

namespace odq::accel {

struct PeAllocation {
  int predictor_arrays = 9;
  int executor_arrays = 18;
};

// Max sensitive-output fraction a (P, E) split sustains without pipeline
// bubbles.
double max_bubble_free_sensitive_fraction(int predictor_arrays,
                                          int executor_arrays);

// The five allocations reachable by reconfiguring the 12 middle arrays
// (Table 1), ordered by increasing predictor share.
std::vector<PeAllocation> valid_allocations(const SliceConfig& slice = {});

// Dynamic allocation: the bubble-free split with the largest predictor share
// for a measured sensitive fraction (falls back to the most
// executor-heavy split when s exceeds 66%).
PeAllocation choose_allocation(double sensitive_fraction,
                               const SliceConfig& slice = {});

}  // namespace odq::accel
