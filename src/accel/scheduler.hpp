// Executor workload scheduling across PE arrays and clusters
// (paper §4.3, Figs. 14-16).
//
// Sensitive outputs are irregularly distributed across output channels, so a
// static channel->array assignment leaves arrays idle once their channels
// drain (Fig. 14). The dynamic scheme lets every cluster cover all output
// channels and, each time an array frees up, feeds it the pending channel
// with the largest remaining workload through a crossbar (Fig. 16).
#pragma once

#include <cstdint>
#include <vector>

namespace odq::accel {

struct ScheduleResult {
  // Cycles until the last array finishes.
  std::int64_t makespan = 0;
  // Sum over arrays of (makespan - busy_cycles).
  std::int64_t idle_cycles = 0;
  // idle / (arrays * makespan).
  double idle_fraction = 0.0;
  std::vector<std::int64_t> array_busy;
};

// `work_per_channel[c]` is the executor cycle count channel c contributes.
//
// Static: whole channels are assigned round-robin to arrays up front — an
// array whose channels drain early sits idle (Fig. 14).
//
// Dynamic: a channel's remaining workload may be reallocated to free arrays
// (Fig. 15), at the granularity of one output computation (`granularity`
// cycles, 3 per output on the executor). Chunks are handed
// longest-remaining-workload-first to the least-loaded array — the crossbar
// winner rule of Fig. 16. With the paper's example ({21,12,12,12} over 4
// arrays, granularity 3) this completes in 15 cycles, matching §4.3.
ScheduleResult schedule_static(const std::vector<std::int64_t>& work_per_channel,
                               int arrays);
ScheduleResult schedule_dynamic(const std::vector<std::int64_t>& work_per_channel,
                                int arrays, std::int64_t granularity = 1);

}  // namespace odq::accel
