#include "accel/allocation.hpp"

namespace odq::accel {

double max_bubble_free_sensitive_fraction(int predictor_arrays,
                                          int executor_arrays) {
  if (predictor_arrays <= 0) return 0.0;
  return static_cast<double>(executor_arrays) /
         (3.0 * static_cast<double>(predictor_arrays));
}

std::vector<PeAllocation> valid_allocations(const SliceConfig& slice) {
  // Reconfigurable arrays move in steps of 3 between the two roles
  // (Table 1 enumerates 9/12/15/18/21 predictor arrays).
  std::vector<PeAllocation> out;
  for (int extra = 0; extra <= slice.reconfigurable; extra += 3) {
    PeAllocation a;
    a.predictor_arrays = slice.fixed_predictor + extra;
    a.executor_arrays =
        slice.fixed_executor + (slice.reconfigurable - extra);
    out.push_back(a);
  }
  return out;
}

PeAllocation choose_allocation(double sensitive_fraction,
                               const SliceConfig& slice) {
  // Prefer the most predictor-heavy split that is still bubble-free.
  const auto allocs = valid_allocations(slice);
  PeAllocation best = allocs.front();  // most executor-heavy (66% capable)
  for (const auto& a : allocs) {
    if (max_bubble_free_sensitive_fraction(a.predictor_arrays,
                                           a.executor_arrays) >=
        sensitive_fraction) {
      best = a;  // allocs are ordered by increasing predictor share
    }
  }
  return best;
}

}  // namespace odq::accel
