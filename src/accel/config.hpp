// Accelerator configurations (paper Table 2) and ODQ PE-slice geometry
// (paper §4.2-4.3).
//
// All four accelerators are normalized to the same silicon area
// (0.17 mm^2 of on-chip memory, PE counts from Table 2): an INT16 MAC unit
// is large, so the INT16 design fits only 120 PEs; the INT4-granular fusion
// designs (INT8 DoReFa, DRQ) fit 1692; ODQ's INT2 PEs fit 4860.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace odq::accel {

enum class AcceleratorKind {
  kInt16Static,  // DoReFa INT16, 1 MAC/PE/cycle at 16 bit
  kInt8Static,   // DoReFa INT8 on INT4 fusion PEs: 4 cycles / MAC
  kDrq,          // input-directed dynamic INT8/INT4 mix on INT4 PEs
  kOdq,          // output-directed dynamic INT4/INT2 on INT2 PEs
};

struct AcceleratorConfig {
  AcceleratorKind kind = AcceleratorKind::kOdq;
  std::string name = "ODQ";
  int num_pes = 4860;
  int pe_bits = 2;              // native MAC width of one PE
  double onchip_mem_mb = 0.17;  // same across designs (Table 2)
  double freq_ghz = 1.0;
  // Off-chip bandwidth available per cycle (bytes). 64 B/cycle at 1 GHz is
  // a 64 GB/s interface; the paper's global buffers hide DRAM latency, so
  // layers are compute-bound except at extreme sparsity.
  double dram_bytes_per_cycle = 64.0;
};

// The four Table-2 configurations.
AcceleratorConfig int16_accelerator();
AcceleratorConfig int8_accelerator();
AcceleratorConfig drq_accelerator();
AcceleratorConfig odq_accelerator();
std::vector<AcceleratorConfig> table2_configs();

// ODQ PE-slice geometry (paper §4.2): 27 PE arrays; the leftmost 9 are
// dedicated predictor arrays, the rightmost 6 dedicated executor arrays, and
// the middle 12 are reconfigurable to either role. Executor arrays are
// grouped into 3 clusters fed round-robin from the line buffers.
struct SliceConfig {
  int arrays = 27;
  int fixed_predictor = 9;
  int fixed_executor = 6;
  int reconfigurable = 12;
  int executor_clusters = 3;

  int pes_per_array(int total_pes) const { return total_pes / arrays; }
};

}  // namespace odq::accel
