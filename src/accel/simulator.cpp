#include "accel/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace odq::accel {

namespace {

// Energy of a MAC with a-bit and b-bit operands (quadratic multiplier model;
// mac_base * 8 * 8 reproduces the INT8 reference point).
double mac_pj(const EnergyParams& e, int a_bits, int b_bits) {
  return e.mac_base_pj * static_cast<double>(a_bits) *
         static_cast<double>(b_bits);
}

// Buffer traffic per MAC: two operands at the given widths, discounted for
// weight/input reuse (weights stay in PE registers; line buffers broadcast
// inputs across arrays, so each operand byte is fetched from SRAM far less
// than once per MAC). The discount is identical across designs, so
// normalized comparisons depend only on operand widths.
constexpr double kReuseDiscount = 0.05;

double buffer_pj_for_macs(const EnergyParams& e, double macs, int a_bits,
                          int b_bits) {
  const double bytes = macs * (a_bits + b_bits) / 8.0 * kReuseDiscount;
  return bytes * e.sram_pj_per_byte;
}

// Off-chip traffic for one layer. Weights always stream from DRAM; input
// and output feature maps round-trip through DRAM only when they do not fit
// in the global buffer (half the 0.17 MB is reserved for activations, the
// rest for weights and masks) — the latency-hiding role the paper assigns
// to the global weight/input buffer.
double dram_bytes_for(const AcceleratorConfig& cfg, const ConvWorkload& wl,
                      double in_bits, double w_bits, double out_bits) {
  const double w_bytes = static_cast<double>(wl.weight_elems) * w_bits / 8.0;
  const double fm_bytes = (static_cast<double>(wl.input_elems) * in_bits +
                           static_cast<double>(wl.out_elems) * out_bits) /
                          8.0;
  const double fm_capacity = cfg.onchip_mem_mb * 1e6 * 0.5;
  return w_bytes + (fm_bytes <= fm_capacity ? 0.0 : fm_bytes);
}

LayerSimResult simulate_uniform(const AcceleratorConfig& cfg,
                                const ConvWorkload& wl,
                                const SimOptions& opts,
                                double cycles_per_mac, int a_bits, int b_bits,
                                double dram_bytes) {
  LayerSimResult r;
  r.name = wl.name;
  const double macs = static_cast<double>(wl.total_macs);
  r.compute_cycles = macs * cycles_per_mac / cfg.num_pes;
  r.dram_bytes = dram_bytes;
  r.dram_cycles = dram_bytes / cfg.dram_bytes_per_cycle;
  r.cycles = std::max(r.compute_cycles, r.dram_cycles);
  // When DRAM-bound, PEs wait for data.
  r.idle_pe_fraction =
      r.cycles > 0.0 ? 1.0 - r.compute_cycles / r.cycles : 0.0;

  r.energy.core_pj = macs * mac_pj(opts.energy, a_bits, b_bits) +
                     r.cycles * cfg.num_pes *
                         opts.energy.leakage_pj_per_pe_cycle;
  r.energy.buffer_pj = buffer_pj_for_macs(opts.energy, macs, a_bits, b_bits) +
                       r.cycles * opts.energy.buffer_static_pj_per_cycle;
  r.energy.dram_pj = dram_bytes * opts.energy.dram_pj_per_byte +
                     r.cycles * opts.energy.dram_static_pj_per_cycle;
  return r;
}

LayerSimResult simulate_drq_layer(const AcceleratorConfig& cfg,
                                  const ConvWorkload& wl,
                                  const SimOptions& opts) {
  // DRQ INT8/INT4 mix: sensitive input regions are 8x8 MACs (4 cycles on
  // INT4 fusion units), insensitive are 4x8 (2 cycles).
  const double s = wl.drq_sensitive_input_fraction;
  const double macs = static_cast<double>(wl.total_macs);
  const double cycles_per_mac = s * 4.0 + (1.0 - s) * 2.0;
  // Sensitivity analysis: one add per input element (region accumulation).
  const double predict_cycles =
      static_cast<double>(wl.input_elems) / cfg.num_pes;

  const double in_bits = s * 8.0 + (1.0 - s) * 4.0;
  LayerSimResult r;
  r.name = wl.name;
  const double dram_bytes = dram_bytes_for(cfg, wl, in_bits, 8.0, 8.0);
  r.compute_cycles = macs * cycles_per_mac / cfg.num_pes + predict_cycles;
  r.dram_bytes = dram_bytes;
  r.dram_cycles = dram_bytes / cfg.dram_bytes_per_cycle;
  r.cycles = std::max(r.compute_cycles, r.dram_cycles);
  r.idle_pe_fraction =
      r.cycles > 0.0 ? 1.0 - r.compute_cycles / r.cycles : 0.0;

  r.energy.core_pj = macs * (s * mac_pj(opts.energy, 8, 8) +
                             (1.0 - s) * mac_pj(opts.energy, 4, 8)) +
                     r.cycles * cfg.num_pes *
                         opts.energy.leakage_pj_per_pe_cycle;
  r.energy.buffer_pj =
      buffer_pj_for_macs(opts.energy, macs, static_cast<int>(in_bits + 0.5),
                         8) +
      r.cycles * opts.energy.buffer_static_pj_per_cycle;
  r.energy.dram_pj = dram_bytes * opts.energy.dram_pj_per_byte +
                     r.cycles * opts.energy.dram_static_pj_per_cycle;
  return r;
}

LayerSimResult simulate_odq_layer(const AcceleratorConfig& cfg,
                                  const ConvWorkload& wl,
                                  const SimOptions& opts) {
  const int pes_per_array = opts.slice.pes_per_array(cfg.num_pes);
  const double s = wl.odq_sensitive_fraction;

  const PeAllocation alloc = opts.dynamic_allocation
                                 ? choose_allocation(s, opts.slice)
                                 : opts.static_allocation;
  const double p_arrays = alloc.predictor_arrays;
  const double e_arrays = alloc.executor_arrays;

  // Predictor: 1 INT2 MAC per PE per cycle over every output.
  const double macs = static_cast<double>(wl.total_macs);
  const double pred_cycles = macs / (p_arrays * pes_per_array);

  // Executor: 3 cycles per MAC for sensitive outputs. Distribute per-channel
  // workloads across executor arrays with the selected schedule.
  std::vector<std::int64_t> work_per_channel;
  if (!wl.sensitive_per_channel.empty()) {
    work_per_channel.reserve(wl.sensitive_per_channel.size());
    for (std::int64_t cnt : wl.sensitive_per_channel) {
      work_per_channel.push_back(
          (cnt * wl.macs_per_out * 3 + pes_per_array - 1) / pes_per_array);
    }
  } else {
    // No mask data: assume an even split over channels.
    const std::int64_t per_channel = static_cast<std::int64_t>(
        s * static_cast<double>(wl.total_macs) * 3.0 /
        (static_cast<double>(std::max<std::int64_t>(wl.out_channels, 1)) *
         pes_per_array));
    work_per_channel.assign(
        static_cast<std::size_t>(std::max<std::int64_t>(wl.out_channels, 1)),
        per_channel);
  }
  // One output occupies an executor array for 3 cycles per MAC spread over
  // its PEs — the migration granularity of the dynamic schedule.
  const std::int64_t out_granularity =
      std::max<std::int64_t>(1, wl.macs_per_out * 3 / pes_per_array);
  const ScheduleResult sched =
      opts.dynamic_workload_schedule
          ? schedule_dynamic(work_per_channel, alloc.executor_arrays,
                             out_granularity)
          : schedule_static(work_per_channel, alloc.executor_arrays);
  const double exec_cycles = static_cast<double>(sched.makespan);

  LayerSimResult r;
  r.name = wl.name;
  r.allocation = alloc;
  r.predictor_cycles = pred_cycles;
  r.executor_cycles = exec_cycles;
  // Pipelined stages: the layer drains at the slower stage's pace.
  r.compute_cycles = std::max(pred_cycles, exec_cycles);

  // Operands move at INT4 plus the bit mask (1 bit per output).
  const double dram_bytes =
      dram_bytes_for(cfg, wl, 4.0, 4.0, 4.0) +
      static_cast<double>(wl.out_elems) / 8.0;
  r.dram_bytes = dram_bytes;
  r.dram_cycles = dram_bytes / cfg.dram_bytes_per_cycle;
  r.cycles = std::max(r.compute_cycles, r.dram_cycles);

  // Idle accounting over (P+E) arrays for the layer's duration.
  const double t = std::max(r.cycles, 1e-9);
  const double pred_busy = pred_cycles * p_arrays;
  const double exec_busy =
      (exec_cycles * e_arrays) - static_cast<double>(sched.idle_cycles);
  r.predictor_idle_fraction = 1.0 - pred_busy / (t * p_arrays);
  r.executor_idle_fraction = 1.0 - exec_busy / (t * e_arrays);
  r.idle_pe_fraction =
      1.0 - (pred_busy + exec_busy) / (t * (p_arrays + e_arrays));

  // Energy: predictor MACs are 2x2; executor remainder is 3 INT2-grade
  // sub-MACs per sensitive MAC; threshold compare per output.
  const double exec_macs = macs * s;
  r.energy.core_pj =
      macs * mac_pj(opts.energy, 2, 2) +
      exec_macs * 3.0 * mac_pj(opts.energy, 2, 2) +
      static_cast<double>(wl.out_elems) * 0.01 +
      r.cycles * cfg.num_pes * opts.energy.leakage_pj_per_pe_cycle;
  r.energy.buffer_pj = buffer_pj_for_macs(opts.energy, macs, 2, 2) +
                       buffer_pj_for_macs(opts.energy, exec_macs * 3.0, 2, 2) +
                       r.cycles * opts.energy.buffer_static_pj_per_cycle;
  r.energy.dram_pj = dram_bytes * opts.energy.dram_pj_per_byte +
                     r.cycles * opts.energy.dram_static_pj_per_cycle;
  return r;
}

}  // namespace

SimResult simulate(const AcceleratorConfig& cfg,
                   const std::vector<ConvWorkload>& workloads,
                   const SimOptions& opts) {
  obs::TraceSpan span("sim.network." + cfg.name);
  span.arg("layers", static_cast<std::int64_t>(workloads.size()));
  SimResult res;
  res.accelerator = cfg.name;
  double idle_weighted = 0.0;

  for (const ConvWorkload& wl : workloads) {
    LayerSimResult lr;
    switch (cfg.kind) {
      case AcceleratorKind::kInt16Static:
        lr = simulate_uniform(cfg, wl, opts, /*cycles_per_mac=*/1.0, 16, 16,
                              dram_bytes_for(cfg, wl, 16.0, 16.0, 16.0));
        break;
      case AcceleratorKind::kInt8Static:
        lr = simulate_uniform(cfg, wl, opts, /*cycles_per_mac=*/4.0, 8, 8,
                              dram_bytes_for(cfg, wl, 8.0, 8.0, 8.0));
        break;
      case AcceleratorKind::kDrq:
        lr = simulate_drq_layer(cfg, wl, opts);
        break;
      case AcceleratorKind::kOdq:
        lr = simulate_odq_layer(cfg, wl, opts);
        break;
      default:
        throw std::logic_error("simulate: unknown accelerator kind");
    }
    res.total_cycles += lr.cycles;
    idle_weighted += lr.idle_pe_fraction * lr.cycles;
    res.energy += lr.energy;
    res.layers.push_back(std::move(lr));
  }
  res.idle_pe_fraction =
      res.total_cycles > 0.0 ? idle_weighted / res.total_cycles : 0.0;
  if (obs::metrics_enabled()) {
    static obs::Counter& runs = obs::counter("sim.runs");
    static obs::Counter& layers = obs::counter("sim.layers");
    static obs::Counter& cycles = obs::counter("sim.cycles");
    static obs::Distribution& idle =
        obs::distribution("sim.layer_idle_fraction", 0.0, 1.0, 50);
    runs.increment();
    layers.add(static_cast<std::int64_t>(res.layers.size()));
    cycles.add(static_cast<std::int64_t>(res.total_cycles));
    for (const LayerSimResult& lr : res.layers) {
      idle.record(lr.idle_pe_fraction);
    }
  }
  return res;
}

}  // namespace odq::accel
