#include "accel/scheduler.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

namespace odq::accel {

namespace {

ScheduleResult finish(std::vector<std::int64_t> busy) {
  ScheduleResult r;
  r.makespan = busy.empty() ? 0 : *std::max_element(busy.begin(), busy.end());
  for (std::int64_t b : busy) r.idle_cycles += r.makespan - b;
  const std::int64_t denom =
      r.makespan * static_cast<std::int64_t>(busy.size());
  r.idle_fraction =
      denom > 0 ? static_cast<double>(r.idle_cycles) /
                      static_cast<double>(denom)
                : 0.0;
  r.array_busy = std::move(busy);
  return r;
}

}  // namespace

ScheduleResult schedule_static(
    const std::vector<std::int64_t>& work_per_channel, int arrays) {
  std::vector<std::int64_t> busy(static_cast<std::size_t>(std::max(arrays, 1)),
                                 0);
  for (std::size_t c = 0; c < work_per_channel.size(); ++c) {
    busy[c % busy.size()] += work_per_channel[c];
  }
  return finish(std::move(busy));
}

ScheduleResult schedule_dynamic(
    const std::vector<std::int64_t>& work_per_channel, int arrays,
    std::int64_t granularity) {
  std::vector<std::int64_t> busy(static_cast<std::size_t>(std::max(arrays, 1)),
                                 0);
  granularity = std::max<std::int64_t>(granularity, 1);
  // Split each channel's workload into output-sized chunks (a channel's
  // remaining outputs can migrate to free arrays), then assign
  // longest-remaining-first to the least-loaded array — the greedy rule the
  // crossbar implements by picking the winning (largest-workload) channel
  // whenever an array frees up.
  std::vector<std::int64_t> chunks;
  for (std::int64_t w : work_per_channel) {
    while (w > 0) {
      const std::int64_t c = std::min(w, granularity);
      chunks.push_back(c);
      w -= c;
    }
  }
  std::sort(chunks.begin(), chunks.end(), std::greater<>());
  for (std::int64_t c : chunks) {
    auto it = std::min_element(busy.begin(), busy.end());
    *it += c;
  }
  return finish(std::move(busy));
}

}  // namespace odq::accel
