#include "accel/config.hpp"

namespace odq::accel {

AcceleratorConfig int16_accelerator() {
  AcceleratorConfig c;
  c.kind = AcceleratorKind::kInt16Static;
  c.name = "INT16";
  c.num_pes = 120;
  c.pe_bits = 16;
  return c;
}

AcceleratorConfig int8_accelerator() {
  AcceleratorConfig c;
  c.kind = AcceleratorKind::kInt8Static;
  c.name = "INT8";
  c.num_pes = 1692;
  c.pe_bits = 4;  // BitFusion-style INT4 units, 4 cycles per INT8 MAC
  return c;
}

AcceleratorConfig drq_accelerator() {
  AcceleratorConfig c;
  c.kind = AcceleratorKind::kDrq;
  c.name = "DRQ";
  c.num_pes = 1692;
  c.pe_bits = 4;
  return c;
}

AcceleratorConfig odq_accelerator() {
  AcceleratorConfig c;
  c.kind = AcceleratorKind::kOdq;
  c.name = "ODQ";
  c.num_pes = 4860;
  c.pe_bits = 2;
  return c;
}

std::vector<AcceleratorConfig> table2_configs() {
  return {int16_accelerator(), int8_accelerator(), drq_accelerator(),
          odq_accelerator()};
}

}  // namespace odq::accel
