// Energy model (CACTI-flavoured constants, 45nm class).
//
// The paper measures power with CACTI [14] and Design Compiler on a 45nm
// TSMC library; this repo substitutes a parametric model with the standard
// relative costs (Horowitz, ISSCC'14): multiplier energy grows ~quadratically
// with operand width, SRAM access is an order of magnitude above a MAC, and
// DRAM access is two orders above SRAM. Figure 21 reports *normalized*
// energy, which depends only on these ratios.
#pragma once

#include <cstdint>

namespace odq::accel {

struct EnergyParams {
  // pJ for a b-bit MAC: mac_base * b^2 (mult) + add overhead folded in.
  double mac_base_pj = 0.0035;  // INT8 MAC ~ 0.22 pJ, INT16 ~ 0.90 pJ
  double sram_pj_per_byte = 0.6;
  double dram_pj_per_byte = 25.0;
  double leakage_pj_per_pe_cycle = 0.002;
  // Background (static) power of the DRAM interface and on-chip buffers,
  // charged per cycle of execution. The paper's Fig. 21 discussion: the
  // DRAM/Buffer savings come largely from the shorter execution time, which
  // "accounts for static energy consumption".
  double dram_static_pj_per_cycle = 30.0;
  double buffer_static_pj_per_cycle = 10.0;

  double mac_pj(int bits) const {
    return mac_base_pj * static_cast<double>(bits) * static_cast<double>(bits);
  }
};

struct EnergyBreakdown {
  double dram_pj = 0.0;
  double buffer_pj = 0.0;
  double core_pj = 0.0;  // PE slices: MACs + leakage

  double total_pj() const { return dram_pj + buffer_pj + core_pj; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o) {
    dram_pj += o.dram_pj;
    buffer_pj += o.buffer_pj;
    core_pj += o.core_pj;
    return *this;
  }
};

}  // namespace odq::accel
