// Conv-layer workload descriptors feeding the accelerator simulator.
//
// The paper dumps binary mask maps from PyTorch inference and feeds them to
// its accelerator simulator (§5.2). extract_workloads() reproduces that
// methodology: it runs one batch through a Model with ODQ and DRQ executors
// installed and records, per conv layer, the MAC counts, the ODQ
// output-sensitive fraction with per-channel counts (workload balance), and
// the DRQ input-sensitive fraction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/odq.hpp"
#include "drq/drq.hpp"
#include "nn/model.hpp"

namespace odq::accel {

struct ConvWorkload {
  std::string name;
  std::int64_t out_channels = 0;
  std::int64_t out_elems = 0;      // outputs per image (C_out * OH * OW)
  std::int64_t macs_per_out = 0;   // C_in * K * K
  std::int64_t total_macs = 0;     // out_elems * macs_per_out
  std::int64_t input_elems = 0;    // per image
  std::int64_t weight_elems = 0;
  double odq_sensitive_fraction = 0.0;
  double drq_sensitive_input_fraction = 0.0;
  // ODQ sensitive outputs per output channel (for one representative image).
  std::vector<std::int64_t> sensitive_per_channel;
};

// Run `sample` (a [N,C,H,W] batch) through the model with ODQ (threshold
// from `odq_cfg`) and DRQ (`drq_cfg`) executors and extract per-layer
// workloads. The model's executors are restored to FP32 afterwards.
std::vector<ConvWorkload> extract_workloads(nn::Model& model,
                                            const tensor::Tensor& sample,
                                            const core::OdqConfig& odq_cfg,
                                            const drq::DrqConfig& drq_cfg);

}  // namespace odq::accel
