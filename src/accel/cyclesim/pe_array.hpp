// A PE array in the cycle-stepped simulator.
//
// Each array holds `pes` processing elements and works on one output
// feature at a time:
//   * predictor role — one INT2 MAC per PE per cycle, so an output with
//     `macs` MACs completes in ceil(macs / pes) cycles;
//   * executor role — the remaining three partial products of Eq. (3)
//     take 3 cycles per MAC (BitFusion-style multi-precision PE), i.e.
//     ceil(3 * macs / pes) cycles per output.
//
// The array stalls when its line buffer has no column for the next output.
#pragma once

#include <cstdint>

#include "accel/cyclesim/line_buffer.hpp"

namespace odq::accel::cyclesim {

enum class ArrayRole { kPredictor, kExecutor };

class PeArray {
 public:
  PeArray(int pes, ArrayRole role) : pes_(pes), role_(role) {}

  ArrayRole role() const { return role_; }
  void set_role(ArrayRole role) { role_ = role; }

  bool busy() const { return cycles_left_ > 0; }

  // Start one output computation (`macs` MACs). Requires !busy().
  // Consumes one input column from `lb`; returns false (and stays idle) on
  // line-buffer underrun.
  bool issue(std::int64_t macs, LineBuffer& lb);

  // As issue(), for work whose input column was already fetched (columns
  // are broadcast to every predictor array, paper Fig. 17).
  bool issue_prefetched(std::int64_t macs);

  // Advance one cycle. Returns true if an output completed this cycle.
  bool step();

  std::int64_t busy_cycles() const { return busy_cycles_; }
  std::int64_t idle_cycles() const { return idle_cycles_; }
  std::int64_t outputs_done() const { return outputs_done_; }

 private:
  int pes_;
  ArrayRole role_;
  std::int64_t cycles_left_ = 0;
  std::int64_t busy_cycles_ = 0;
  std::int64_t idle_cycles_ = 0;
  std::int64_t outputs_done_ = 0;
};

}  // namespace odq::accel::cyclesim
