#include "accel/cyclesim/crossbar.hpp"

#include <algorithm>

namespace odq::accel::cyclesim {

void Crossbar::enqueue(std::int64_t channel, std::int64_t outputs) {
  if (outputs <= 0) return;
  pending_[static_cast<std::size_t>(channel)] += outputs;
  total_ += outputs;
}

std::int64_t Crossbar::pop_winner() {
  std::int64_t channel = -1;
  return pop_winner_n(1, &channel) == 1 ? channel : -1;
}

std::int64_t Crossbar::pop_winner_n(std::int64_t max_n, std::int64_t* channel) {
  *channel = -1;
  if (total_ == 0 || max_n <= 0) return 0;
  const auto it = std::max_element(pending_.begin(), pending_.end());
  if (*it == 0) return 0;
  const std::int64_t take = std::min(max_n, *it);
  *it -= take;
  total_ -= take;
  *channel = static_cast<std::int64_t>(it - pending_.begin());
  return take;
}

}  // namespace odq::accel::cyclesim
