// Bandwidth-limited DRAM channel for the cycle-stepped simulator.
//
// Requests are byte counts; the channel delivers at most
// `bytes_per_cycle` per step, in FIFO order. Consumers poll their request
// handle for completion.
#pragma once

#include <cstdint>
#include <deque>

namespace odq::accel::cyclesim {

class DramChannel {
 public:
  explicit DramChannel(double bytes_per_cycle, std::int64_t latency_cycles = 8)
      : bytes_per_cycle_(bytes_per_cycle), latency_(latency_cycles) {}

  // Issue a request; returns a handle (monotonically increasing id).
  std::int64_t request(double bytes);

  // True once the request has fully arrived.
  bool complete(std::int64_t handle) const;

  // Advance one cycle: pay fixed latency, then drain bandwidth.
  void step();

  double total_bytes_served() const { return served_; }
  std::int64_t cycles_busy() const { return busy_cycles_; }

 private:
  struct Req {
    std::int64_t id;
    double remaining;
    std::int64_t latency_left;
  };

  double bytes_per_cycle_;
  std::int64_t latency_;
  std::deque<Req> queue_;
  std::int64_t next_id_ = 0;
  std::int64_t completed_up_to_ = -1;  // all ids <= this are complete
  double served_ = 0.0;
  std::int64_t busy_cycles_ = 0;
};

}  // namespace odq::accel::cyclesim
