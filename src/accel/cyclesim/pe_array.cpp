#include "accel/cyclesim/pe_array.hpp"

namespace odq::accel::cyclesim {

bool PeArray::issue(std::int64_t macs, LineBuffer& lb) {
  if (busy() || macs <= 0) return false;
  if (!lb.pop()) return false;
  issue_prefetched(macs);
  return true;
}

bool PeArray::issue_prefetched(std::int64_t macs) {
  if (busy() || macs <= 0) return false;
  const std::int64_t work = role_ == ArrayRole::kPredictor ? macs : 3 * macs;
  cycles_left_ = (work + pes_ - 1) / pes_;
  if (cycles_left_ <= 0) cycles_left_ = 1;
  return true;
}

bool PeArray::step() {
  if (cycles_left_ > 0) {
    ++busy_cycles_;
    if (--cycles_left_ == 0) {
      ++outputs_done_;
      return true;
    }
    return false;
  }
  ++idle_cycles_;
  return false;
}

}  // namespace odq::accel::cyclesim
