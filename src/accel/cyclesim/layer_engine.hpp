// Cycle-stepped simulation of one conv layer on the ODQ accelerator
// (paper Fig. 12/17): predictor arrays stream outputs, the threshold unit
// marks sensitive ones into the bit mask, the crossbar feeds them to
// executor arrays grouped in three clusters, line buffers refill through a
// bandwidth-limited DRAM channel.
//
// This is the microarchitectural counterpart of accel::simulate()'s
// analytic model; tests cross-validate the two (busy-cycle conservation,
// makespan agreement within queueing effects).
#pragma once

#include <cstdint>

#include "accel/allocation.hpp"
#include "accel/config.hpp"
#include "accel/workload.hpp"

namespace odq::accel::cyclesim {

struct CycleSimConfig {
  SliceConfig slice;
  int total_pes = 4860;
  // Off-chip: streams each layer's *unique* bytes (weights + input feature
  // map at INT4) once; compute may not run ahead of the prefetch.
  double dram_bytes_per_cycle = 64.0;
  std::int64_t dram_latency = 8;
  // On-chip global buffer ports feeding the line buffers (inputs are reused
  // across output channels and overlapping windows, so line-buffer refills
  // hit SRAM, not DRAM). Multi-banked SRAM sustains a kilobyte-class
  // aggregate width; undersizing this is the dominant stall source.
  double gbuf_bytes_per_cycle = 1024.0;
  std::int64_t gbuf_latency = 1;
  std::int64_t line_buffer_columns = 64;
  bool dynamic_allocation = true;
  PeAllocation static_allocation{12, 15};
  // Safety valve; a well-formed run never reaches it.
  std::int64_t max_cycles = 500'000'000;
};

struct CycleSimResult {
  std::int64_t cycles = 0;
  std::int64_t predictor_busy = 0, predictor_idle = 0;
  std::int64_t executor_busy = 0, executor_idle = 0;
  std::int64_t outputs_predicted = 0;
  std::int64_t outputs_executed = 0;
  std::int64_t line_buffer_underruns = 0;
  double dram_bytes = 0.0;
  PeAllocation allocation;
  bool hit_cycle_limit = false;

  double idle_fraction() const {
    const double busy = static_cast<double>(predictor_busy + executor_busy);
    const double all = busy + static_cast<double>(predictor_idle +
                                                  executor_idle);
    return all > 0.0 ? 1.0 - busy / all : 0.0;
  }
};

// Simulate one layer. Sensitive outputs follow wl.sensitive_per_channel,
// spread evenly within each channel (Bresenham spacing), which matches how
// masks interleave in practice.
CycleSimResult simulate_layer(const ConvWorkload& wl,
                              const CycleSimConfig& cfg);

// Sum over layers (fresh engine per layer; the paper reconfigures between
// layers).
CycleSimResult simulate_network(const std::vector<ConvWorkload>& layers,
                                const CycleSimConfig& cfg);

}  // namespace odq::accel::cyclesim
