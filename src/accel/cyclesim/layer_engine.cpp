#include "accel/cyclesim/layer_engine.hpp"

#include <algorithm>
#include <vector>

#include "accel/cyclesim/crossbar.hpp"
#include "accel/cyclesim/dram_channel.hpp"
#include "accel/cyclesim/line_buffer.hpp"
#include "accel/cyclesim/pe_array.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace odq::accel::cyclesim {

namespace {

// Bresenham-style even spreading: output i of a channel with `sens` of
// `total` sensitive outputs is sensitive iff the running error crosses 1.
class SensitivityPattern {
 public:
  SensitivityPattern(std::int64_t sensitive, std::int64_t total)
      : sensitive_(sensitive), total_(std::max<std::int64_t>(total, 1)) {}

  bool next() {
    acc_ += sensitive_;
    if (acc_ >= total_) {
      acc_ -= total_;
      return true;
    }
    return false;
  }

 private:
  std::int64_t sensitive_;
  std::int64_t total_;
  std::int64_t acc_ = 0;
};

}  // namespace

namespace {

// Per-layer PE-array busy/idle and memory-stall counters, so cycle-sim runs
// show up in metrics snapshots without the caller aggregating by hand.
void record_layer_metrics(const CycleSimResult& r) {
  if (!obs::metrics_enabled()) return;
  static obs::Counter& layers = obs::counter("cyclesim.layers");
  static obs::Counter& cycles = obs::counter("cyclesim.cycles");
  static obs::Counter& pred_busy = obs::counter("cyclesim.predictor_busy");
  static obs::Counter& pred_idle = obs::counter("cyclesim.predictor_idle");
  static obs::Counter& exec_busy = obs::counter("cyclesim.executor_busy");
  static obs::Counter& exec_idle = obs::counter("cyclesim.executor_idle");
  static obs::Counter& underruns = obs::counter("cyclesim.lb_underruns");
  static obs::Counter& dram = obs::counter("cyclesim.dram_bytes");
  layers.increment();
  cycles.add(r.cycles);
  pred_busy.add(r.predictor_busy);
  pred_idle.add(r.predictor_idle);
  exec_busy.add(r.executor_busy);
  exec_idle.add(r.executor_idle);
  underruns.add(r.line_buffer_underruns);
  dram.add(static_cast<std::int64_t>(r.dram_bytes));
}

}  // namespace

CycleSimResult simulate_layer(const ConvWorkload& wl,
                              const CycleSimConfig& cfg) {
  obs::TraceSpan span("cyclesim.layer");
  CycleSimResult res;
  const int pes_per_array = cfg.slice.pes_per_array(cfg.total_pes);
  res.allocation = cfg.dynamic_allocation
                       ? choose_allocation(wl.odq_sensitive_fraction, cfg.slice)
                       : cfg.static_allocation;

  const std::int64_t channels = std::max<std::int64_t>(wl.out_channels, 1);
  const std::int64_t outs_per_channel = wl.out_elems / channels;

  // Per-channel sensitivity patterns.
  std::vector<SensitivityPattern> pattern;
  pattern.reserve(static_cast<std::size_t>(channels));
  for (std::int64_t c = 0; c < channels; ++c) {
    const std::int64_t sens =
        c < static_cast<std::int64_t>(wl.sensitive_per_channel.size())
            ? wl.sensitive_per_channel[static_cast<std::size_t>(c)]
            : static_cast<std::int64_t>(wl.odq_sensitive_fraction *
                                        static_cast<double>(outs_per_channel));
    pattern.emplace_back(std::min(sens, outs_per_channel), outs_per_channel);
  }

  // Off-chip stream: the layer's unique bytes (INT4 inputs + weights + the
  // 1-bit mask), prefetched in order. Compute may not consume outputs whose
  // share of the stream has not arrived yet.
  DramChannel dram(cfg.dram_bytes_per_cycle, cfg.dram_latency);
  const double unique_bytes =
      (static_cast<double>(wl.input_elems) * 4.0 +
       static_cast<double>(wl.weight_elems) * 4.0 +
       static_cast<double>(wl.out_elems)) /
      8.0;
  (void)dram.request(unique_bytes);
  const double fresh_per_output =
      unique_bytes / static_cast<double>(std::max<std::int64_t>(
                         wl.out_elems, 1));

  // On-chip global-buffer ports: line-buffer refills are SRAM traffic.
  DramChannel gbuf(cfg.gbuf_bytes_per_cycle, cfg.gbuf_latency);

  // Line buffers: one shared by the predictor arrays, one per executor
  // cluster (Fig. 17: data is delivered to one cluster per cycle).
  const double pred_col_bytes =
      static_cast<double>(wl.macs_per_out) * 2.0 / 8.0;  // HBS operands
  const double exec_col_bytes =
      static_cast<double>(wl.macs_per_out) * 6.0 / 8.0;  // remaining operands
  LineBuffer pred_lb(cfg.line_buffer_columns, pred_col_bytes);
  std::vector<LineBuffer> exec_lbs(
      static_cast<std::size_t>(cfg.slice.executor_clusters),
      LineBuffer(cfg.line_buffer_columns, exec_col_bytes));

  std::vector<PeArray> pred_arrays(
      static_cast<std::size_t>(res.allocation.predictor_arrays),
      PeArray(pes_per_array, ArrayRole::kPredictor));
  std::vector<PeArray> exec_arrays(
      static_cast<std::size_t>(res.allocation.executor_arrays),
      PeArray(pes_per_array, ArrayRole::kExecutor));

  Crossbar crossbar(channels);

  // Predictor output stream state: channel-major raster order. When one
  // output needs fewer MACs than the array has PEs, the array works on a
  // bundle of outputs in parallel (systolic mapping).
  std::int64_t next_output = 0;
  const std::int64_t total_outputs = outs_per_channel * channels;
  const std::int64_t pred_bundle_max =
      std::max<std::int64_t>(1, pes_per_array / std::max<std::int64_t>(
                                                    wl.macs_per_out, 1));
  const std::int64_t exec_bundle_max = std::max<std::int64_t>(
      1, pes_per_array / std::max<std::int64_t>(3 * wl.macs_per_out, 1));
  // Track which channel / how many outputs each in-flight array carries.
  std::vector<std::int64_t> pred_channel(pred_arrays.size(), -1);
  std::vector<std::int64_t> pred_bundle(pred_arrays.size(), 0);
  std::vector<std::int64_t> exec_bundle(exec_arrays.size(), 0);

  while (res.cycles < cfg.max_cycles) {
    // 1. Memory system.
    pred_lb.refill(gbuf);
    for (auto& lb : exec_lbs) lb.refill(gbuf);
    dram.step();
    gbuf.step();
    pred_lb.step(gbuf);
    for (auto& lb : exec_lbs) lb.step(gbuf);

    // 2. Issue new work to idle predictor arrays (bundled outputs from one
    // channel), gated by the off-chip prefetch stream.
    const auto prefetched_outputs = static_cast<std::int64_t>(
        dram.total_bytes_served() / std::max(fresh_per_output, 1e-12));
    // Input columns are broadcast: one column fetch serves every predictor
    // array issuing this cycle (inputs are shared among the weight filters
    // held by different arrays, Fig. 17).
    bool column_fetched = false;
    for (std::size_t a = 0; a < pred_arrays.size(); ++a) {
      if (pred_arrays[a].busy() || next_output >= total_outputs) continue;
      const std::int64_t ch = next_output / outs_per_channel;
      const std::int64_t left_in_channel =
          (ch + 1) * outs_per_channel - next_output;
      const std::int64_t bundle =
          std::min({pred_bundle_max, left_in_channel,
                    total_outputs - next_output});
      if (next_output + bundle > prefetched_outputs) continue;  // stall
      if (!column_fetched) {
        if (!pred_lb.pop()) break;  // underrun: all remaining arrays stall
        column_fetched = true;
      }
      if (pred_arrays[a].issue_prefetched(wl.macs_per_out * bundle)) {
        pred_channel[a] = ch;
        pred_bundle[a] = bundle;
        next_output += bundle;
      }
    }

    // 3. Issue sensitive outputs to idle executor arrays via the crossbar
    // (winner channel, bundled).
    for (std::size_t a = 0; a < exec_arrays.size(); ++a) {
      if (exec_arrays[a].busy()) continue;
      if (crossbar.pending_total() == 0) continue;
      LineBuffer& lb =
          exec_lbs[a % static_cast<std::size_t>(cfg.slice.executor_clusters)];
      if (lb.empty()) continue;  // stall: no column for this cluster
      std::int64_t ch = -1;
      const std::int64_t took = crossbar.pop_winner_n(exec_bundle_max, &ch);
      if (took == 0) continue;
      if (exec_arrays[a].issue(wl.macs_per_out * took, lb)) {
        exec_bundle[a] = took;
      } else {
        crossbar.enqueue(ch, took);  // shouldn't happen; put it back
      }
    }

    // 4. Step the arrays.
    for (std::size_t a = 0; a < pred_arrays.size(); ++a) {
      if (pred_arrays[a].step()) {
        res.outputs_predicted += pred_bundle[a];
        // Threshold unit: decide sensitivity per output in the bundle,
        // append sensitive ones to the executor's pending queue.
        const std::int64_t ch = pred_channel[a];
        std::int64_t sensitive = 0;
        for (std::int64_t k = 0; k < pred_bundle[a]; ++k) {
          if (pattern[static_cast<std::size_t>(ch)].next()) ++sensitive;
        }
        if (sensitive > 0) crossbar.enqueue(ch, sensitive);
        pred_bundle[a] = 0;
      }
    }
    for (std::size_t a = 0; a < exec_arrays.size(); ++a) {
      if (exec_arrays[a].step()) {
        res.outputs_executed += exec_bundle[a];
        exec_bundle[a] = 0;
      }
    }

    ++res.cycles;

    // Done when every output was predicted, nothing is pending, and all
    // arrays drained.
    if (next_output >= total_outputs && crossbar.pending_total() == 0) {
      const bool pred_idle =
          std::none_of(pred_arrays.begin(), pred_arrays.end(),
                       [](const PeArray& a) { return a.busy(); });
      const bool exec_idle =
          std::none_of(exec_arrays.begin(), exec_arrays.end(),
                       [](const PeArray& a) { return a.busy(); });
      if (pred_idle && exec_idle) break;
    }
  }
  res.hit_cycle_limit = res.cycles >= cfg.max_cycles;

  for (const auto& a : pred_arrays) {
    res.predictor_busy += a.busy_cycles();
    res.predictor_idle += a.idle_cycles();
  }
  for (const auto& a : exec_arrays) {
    res.executor_busy += a.busy_cycles();
    res.executor_idle += a.idle_cycles();
  }
  res.line_buffer_underruns = pred_lb.underruns();
  for (const auto& lb : exec_lbs) res.line_buffer_underruns += lb.underruns();
  res.dram_bytes = dram.total_bytes_served();
  record_layer_metrics(res);
  return res;
}

CycleSimResult simulate_network(const std::vector<ConvWorkload>& layers,
                                const CycleSimConfig& cfg) {
  CycleSimResult total;
  for (const ConvWorkload& wl : layers) {
    const CycleSimResult r = simulate_layer(wl, cfg);
    total.cycles += r.cycles;
    total.predictor_busy += r.predictor_busy;
    total.predictor_idle += r.predictor_idle;
    total.executor_busy += r.executor_busy;
    total.executor_idle += r.executor_idle;
    total.outputs_predicted += r.outputs_predicted;
    total.outputs_executed += r.outputs_executed;
    total.line_buffer_underruns += r.line_buffer_underruns;
    total.dram_bytes += r.dram_bytes;
    total.hit_cycle_limit |= r.hit_cycle_limit;
  }
  return total;
}

}  // namespace odq::accel::cyclesim
