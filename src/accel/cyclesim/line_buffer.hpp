// Line buffer feeding a PE array (paper §4.3, Fig. 17).
//
// The Im2col/Pack engine writes packed input columns into line buffers; a
// PE array consumes one column per issue. The buffer refills from the
// global buffer through the DRAM channel when it runs low. Three line
// buffers feed the three executor clusters round-robin, so a new request is
// made only every three cycles per cluster.
#pragma once

#include <cstdint>

#include "accel/cyclesim/dram_channel.hpp"

namespace odq::accel::cyclesim {

class LineBuffer {
 public:
  // capacity: columns held; bytes_per_column: refill cost per column.
  LineBuffer(std::int64_t capacity, double bytes_per_column)
      : capacity_(capacity), bytes_per_column_(bytes_per_column) {}

  // Columns ready for consumption.
  std::int64_t available() const { return available_; }
  bool empty() const { return available_ == 0; }

  // Consume one column; returns false on underrun (caller stalls).
  bool pop();

  // Issue a refill through `dram` if below the low-water mark and no refill
  // is outstanding. Call once per cycle before stepping consumers.
  void refill(DramChannel& dram);

  // Advance: landed refills become available.
  void step(const DramChannel& dram);

  std::int64_t underruns() const { return underruns_; }

 private:
  std::int64_t capacity_;
  double bytes_per_column_;
  std::int64_t available_ = 0;
  std::int64_t pending_columns_ = 0;
  std::int64_t pending_handle_ = -1;
  std::int64_t underruns_ = 0;
};

}  // namespace odq::accel::cyclesim
