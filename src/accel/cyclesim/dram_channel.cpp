#include "accel/cyclesim/dram_channel.hpp"

namespace odq::accel::cyclesim {

std::int64_t DramChannel::request(double bytes) {
  const std::int64_t id = next_id_++;
  if (bytes <= 0.0) {
    // Zero-byte requests complete immediately if nothing is pending.
    if (queue_.empty() && completed_up_to_ == id - 1) {
      completed_up_to_ = id;
      return id;
    }
  }
  queue_.push_back(Req{id, bytes, latency_});
  return id;
}

bool DramChannel::complete(std::int64_t handle) const {
  return handle <= completed_up_to_;
}

void DramChannel::step() {
  if (queue_.empty()) return;
  ++busy_cycles_;
  double budget = bytes_per_cycle_;
  while (!queue_.empty() && budget > 0.0) {
    Req& head = queue_.front();
    if (head.latency_left > 0) {
      --head.latency_left;
      return;  // latency is not pipelined across requests here
    }
    const double take = head.remaining < budget ? head.remaining : budget;
    head.remaining -= take;
    budget -= take;
    served_ += take;
    if (head.remaining <= 1e-9) {
      completed_up_to_ = head.id;
      queue_.pop_front();
    }
  }
}

}  // namespace odq::accel::cyclesim
