#include "accel/cyclesim/line_buffer.hpp"

namespace odq::accel::cyclesim {

bool LineBuffer::pop() {
  if (available_ == 0) {
    ++underruns_;
    return false;
  }
  --available_;
  return true;
}

void LineBuffer::refill(DramChannel& dram) {
  if (pending_handle_ >= 0) return;  // refill in flight
  const std::int64_t low_water = capacity_ / 2;
  if (available_ > low_water) return;
  const std::int64_t want = capacity_ - available_;
  if (want <= 0) return;
  pending_columns_ = want;
  pending_handle_ =
      dram.request(bytes_per_column_ * static_cast<double>(want));
}

void LineBuffer::step(const DramChannel& dram) {
  if (pending_handle_ >= 0 && dram.complete(pending_handle_)) {
    available_ += pending_columns_;
    if (available_ > capacity_) available_ = capacity_;
    pending_columns_ = 0;
    pending_handle_ = -1;
  }
}

}  // namespace odq::accel::cyclesim
