// Executor crossbar: routes pending output-channel workloads to free
// executor arrays (paper §4.3, Fig. 16).
//
// Each output channel keeps a queue of pending sensitive outputs. When an
// array frees up, the crossbar hands it one output from the channel with
// the largest remaining workload (the "winning candidate"). Channel work
// is therefore splittable across arrays at output granularity, which is
// what lets the dynamic scheme finish Fig. 16's example in 15 cycles.
#pragma once

#include <cstdint>
#include <vector>

namespace odq::accel::cyclesim {

class Crossbar {
 public:
  explicit Crossbar(std::int64_t channels)
      : pending_(static_cast<std::size_t>(channels), 0) {}

  // Enqueue `outputs` sensitive outputs for `channel`.
  void enqueue(std::int64_t channel, std::int64_t outputs);

  // Total outputs still pending.
  std::int64_t pending_total() const { return total_; }
  std::int64_t pending(std::int64_t channel) const {
    return pending_[static_cast<std::size_t>(channel)];
  }

  // Pop one output from the largest-workload channel; returns the channel
  // id or -1 when nothing is pending.
  std::int64_t pop_winner();

  // Pop up to `max_n` outputs from the largest-workload channel; returns
  // the number popped and stores the channel in *channel (-1 if none).
  std::int64_t pop_winner_n(std::int64_t max_n, std::int64_t* channel);

 private:
  std::vector<std::int64_t> pending_;
  std::int64_t total_ = 0;
};

}  // namespace odq::accel::cyclesim
