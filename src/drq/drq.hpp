// DRQ baseline: input-directed, region-based dynamic quantization
// (re-implementation of the comparator the paper evaluates against,
// Song et al., ISCA'20, as described in §2 of the ODQ paper).
//
// The input feature map of every conv layer is partitioned into square
// regions; a region whose mean |activation| exceeds a threshold is
// *sensitive* and is computed with high-precision inputs (hi_bits); other
// regions use low-precision inputs (lo_bits). Weights are quantized at
// hi_bits everywhere. Outputs are therefore produced from a mix of high- and
// low-precision inputs — the inefficiency ODQ is built to remove.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace odq::drq {

struct DrqConfig {
  std::int64_t region = 4;       // square region edge (pixels)
  float input_threshold = 0.3f;  // on region mean |x|
  int hi_bits = 8;               // sensitive-region input precision
  int lo_bits = 4;               // insensitive-region input precision
  // When >= 0: re-derive input_threshold per layer so roughly this fraction
  // of regions is sensitive (quantile calibration; DRQ tunes its threshold
  // per network the same way).
  double calibrate_quantile = -1.0;
};

// Per-element sensitivity mask (1 = sensitive region) from region mean
// magnitude, per channel. Input is NCHW.
tensor::TensorU8 input_sensitivity_mask(const tensor::Tensor& input,
                                        const DrqConfig& cfg);

// Pick an input threshold so that roughly `sensitive_fraction` of region
// means fall above it (quantile calibration over one input batch).
float calibrate_input_threshold(const tensor::Tensor& input,
                                const DrqConfig& cfg,
                                double sensitive_fraction);

// Mixed-precision convolution: inputs are fake-quantized at hi/lo bits
// according to `mask` (computed from cfg when null); weights at hi_bits.
// Returns the float output (bias applied).
tensor::Tensor drq_conv(const tensor::Tensor& input,
                        const tensor::Tensor& weight,
                        const tensor::Tensor& bias, std::int64_t stride,
                        std::int64_t pad, const DrqConfig& cfg,
                        const tensor::TensorU8* mask = nullptr);

// Per-layer statistics accumulated by the executor.
struct DrqLayerStats {
  std::int64_t calls = 0;
  double sensitive_input_fraction = 0.0;  // running mean over calls

  void accumulate(double fraction) {
    sensitive_input_fraction =
        (sensitive_input_fraction * static_cast<double>(calls) + fraction) /
        static_cast<double>(calls + 1);
    ++calls;
  }
};

// ConvExecutor plugging DRQ into any Model.
class DrqConvExecutor : public nn::ConvExecutor {
 public:
  explicit DrqConvExecutor(DrqConfig cfg) : cfg_(cfg) {}

  tensor::Tensor run(const tensor::Tensor& input, const tensor::Tensor& weight,
                     const tensor::Tensor& bias, std::int64_t stride,
                     std::int64_t pad, int conv_id) override;

  std::string name() const override { return "drq"; }

  const DrqConfig& config() const { return cfg_; }
  void set_input_threshold(float t) { cfg_.input_threshold = t; }

  // Stats for conv layer `id` (empty stats if the layer never ran).
  DrqLayerStats layer_stats(int id) const;
  std::size_t num_layers_seen() const;
  void reset_stats();

 private:
  DrqConfig cfg_;
  mutable std::mutex mutex_;
  std::vector<DrqLayerStats> stats_;
};

// ---------------------------------------------------------------------------
// Instrumentation for the motivation study (Figs 2-5).
// ---------------------------------------------------------------------------

struct LayerAnalysis {
  // Fig 2: among *sensitive* outputs, share whose receptive field contains
  // 0-25%, 25-50%, 50-75%, 75-100% low-precision inputs.
  double lowprec_share_hist[4] = {0, 0, 0, 0};
  // Fig 4: among *insensitive* outputs, share whose receptive field contains
  // 0-25%, ..., 75-100% high-precision inputs.
  double highprec_share_hist[4] = {0, 0, 0, 0};
  // Fig 3: mean |O_hi - O_drq| over sensitive outputs — the noise DRQ's
  // low-precision inputs inject into outputs that matter.
  double precision_loss_sensitive = 0.0;
  // Fig 5 / Eq. (1): max |O_drq - O_lo| over insensitive outputs — precision
  // spent on outputs that tolerate noise.
  double extra_precision_insensitive = 0.0;
  double sensitive_output_fraction = 0.0;
  std::int64_t outputs = 0;
};

// Analyze one conv layer under DRQ. `output_threshold` defines output
// sensitivity (|reference output| > threshold), mirroring ODQ's criterion.
LayerAnalysis analyze_layer(const tensor::Tensor& input,
                            const tensor::Tensor& weight,
                            const tensor::Tensor& bias, std::int64_t stride,
                            std::int64_t pad, const DrqConfig& cfg,
                            float output_threshold);

}  // namespace odq::drq
