#include "drq/drq.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gemm/gemm.hpp"
#include "obs/fidelity.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "quant/quantizer.hpp"
#include "tensor/ops.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace odq::drq {

using tensor::Shape;
using tensor::Tensor;
using tensor::TensorU8;

TensorU8 input_sensitivity_mask(const Tensor& input, const DrqConfig& cfg) {
  const Shape& s = input.shape();
  if (s.rank() != 4) {
    throw std::invalid_argument("input_sensitivity_mask: input must be NCHW");
  }
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const std::int64_t r = cfg.region;
  TensorU8 mask(s);
  // One tile per (batch, channel) plane — regions never straddle planes, so
  // tiles write disjoint mask ranges.
  util::parallel_for(
      n * c,
      [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t b = t / c;
          const std::int64_t ch = t % c;
          for (std::int64_t ry = 0; ry < h; ry += r) {
            for (std::int64_t rx = 0; rx < w; rx += r) {
              const std::int64_t ye = std::min(ry + r, h);
              const std::int64_t xe = std::min(rx + r, w);
              double acc = 0.0;
              for (std::int64_t y = ry; y < ye; ++y) {
                for (std::int64_t x = rx; x < xe; ++x) {
                  acc += std::abs(input.at4(b, ch, y, x));
                }
              }
              const double mean =
                  acc / static_cast<double>((ye - ry) * (xe - rx));
              const std::uint8_t bit = mean > cfg.input_threshold ? 1 : 0;
              for (std::int64_t y = ry; y < ye; ++y) {
                for (std::int64_t x = rx; x < xe; ++x) {
                  mask.at4(b, ch, y, x) = bit;
                }
              }
            }
          }
        }
      },
      /*grain=*/1);
  return mask;
}

float calibrate_input_threshold(const Tensor& input, const DrqConfig& cfg,
                                double sensitive_fraction) {
  const Shape& s = input.shape();
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const std::int64_t r = cfg.region;
  // Fixed region count per plane -> write means by index in parallel; the
  // sample multiset (and hence the percentile) is identical to the serial
  // walk.
  const std::int64_t ry_n = (h + r - 1) / r;
  const std::int64_t rx_n = (w + r - 1) / r;
  const std::int64_t per_plane = ry_n * rx_n;
  std::vector<double> means(static_cast<std::size_t>(n * c * per_plane), 0.0);
  util::parallel_for(
      n * c,
      [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t b = t / c;
          const std::int64_t ch = t % c;
          std::int64_t idx = t * per_plane;
          for (std::int64_t ry = 0; ry < h; ry += r) {
            for (std::int64_t rx = 0; rx < w; rx += r) {
              const std::int64_t ye = std::min(ry + r, h);
              const std::int64_t xe = std::min(rx + r, w);
              double acc = 0.0;
              for (std::int64_t y = ry; y < ye; ++y) {
                for (std::int64_t x = rx; x < xe; ++x) {
                  acc += std::abs(input.at4(b, ch, y, x));
                }
              }
              means[static_cast<std::size_t>(idx++)] =
                  acc / static_cast<double>((ye - ry) * (xe - rx));
            }
          }
        }
      },
      /*grain=*/1);
  if (means.empty()) return cfg.input_threshold;
  return static_cast<float>(
      util::percentile(std::move(means), 1.0 - sensitive_fraction));
}

namespace {

// Fake-quantize `input` elementwise: mask==1 -> hi bits, mask==0 -> lo bits.
// Uses the shared per-tensor activation scale so hi/lo grids nest cleanly.
Tensor mixed_quantize_input(const Tensor& input, const TensorU8& mask,
                            int hi_bits, int lo_bits) {
  Tensor hi = quant::fake_quantize_activations(input, hi_bits);
  Tensor lo = quant::fake_quantize_activations(input, lo_bits);
  Tensor out(input.shape());
  util::parallel_for(
      input.numel(),
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          out[i] = mask[i] != 0 ? hi[i] : lo[i];
        }
      },
      /*grain=*/1 << 14);
  return out;
}

}  // namespace

Tensor drq_conv(const Tensor& input, const Tensor& weight, const Tensor& bias,
                std::int64_t stride, std::int64_t pad, const DrqConfig& cfg,
                const TensorU8* mask) {
  TensorU8 local_mask;
  if (mask == nullptr) {
    local_mask = input_sensitivity_mask(input, cfg);
    mask = &local_mask;
  }
  Tensor qin = mixed_quantize_input(input, *mask, cfg.hi_bits, cfg.lo_bits);
  Tensor qw = quant::fake_quantize_weights(weight, cfg.hi_bits,
                                           quant::WeightTransform::kLinear);
  // Packed float GEMM, bit-identical to the conv2d_direct oracle that
  // analyze_layer and the fidelity layer still run.
  return gemm::conv2d_f32(qin, qw, bias, stride, pad);
}

Tensor DrqConvExecutor::run(const Tensor& input, const Tensor& weight,
                            const Tensor& bias, std::int64_t stride,
                            std::int64_t pad, int conv_id) {
  obs::TraceSpan span("drq.conv");
  span.arg("conv_id", conv_id);
  DrqConfig cfg = cfg_;
  if (cfg.calibrate_quantile >= 0.0) {
    cfg.input_threshold =
        calibrate_input_threshold(input, cfg, cfg.calibrate_quantile);
  }
  TensorU8 mask = input_sensitivity_mask(input, cfg);
  double sens = 0.0;
  for (std::int64_t i = 0; i < mask.numel(); ++i) sens += mask[i];
  sens /= static_cast<double>(mask.numel());

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto id = static_cast<std::size_t>(std::max(conv_id, 0));
    if (stats_.size() <= id) stats_.resize(id + 1);
    stats_[id].accumulate(sens);
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& calls = obs::counter("drq.conv.calls");
    static obs::Distribution& frac =
        obs::distribution("drq.conv.sensitive_input_fraction", 0.0, 1.0, 50);
    calls.increment();
    frac.record(sens);
  }
  Tensor out = drq_conv(input, weight, bias, stride, pad, cfg, &mask);
  if (obs::fidelity_enabled()) {
    const Tensor ref = tensor::conv2d_direct(input, weight, bias, stride, pad);
    obs::fidelity_record(name(), conv_id, ref.data(), out.data(), out.numel());
  }
  return out;
}

DrqLayerStats DrqConvExecutor::layer_stats(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto i = static_cast<std::size_t>(id);
  return i < stats_.size() ? stats_[i] : DrqLayerStats{};
}

std::size_t DrqConvExecutor::num_layers_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.size();
}

void DrqConvExecutor::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.clear();
}

LayerAnalysis analyze_layer(const Tensor& input, const Tensor& weight,
                            const Tensor& bias, std::int64_t stride,
                            std::int64_t pad, const DrqConfig& cfg,
                            float output_threshold) {
  TensorU8 mask = input_sensitivity_mask(input, cfg);

  // Reference and scheme outputs.
  Tensor qw = quant::fake_quantize_weights(weight, cfg.hi_bits,
                                           quant::WeightTransform::kLinear);
  Tensor in_hi = quant::fake_quantize_activations(input, cfg.hi_bits);
  Tensor in_lo = quant::fake_quantize_activations(input, cfg.lo_bits);

  Tensor o_hi = tensor::conv2d_direct(in_hi, qw, bias, stride, pad);
  Tensor o_lo = tensor::conv2d_direct(in_lo, qw, bias, stride, pad);
  Tensor o_drq = drq_conv(input, weight, bias, stride, pad, cfg, &mask);

  // Receptive-field share of sensitive inputs per output:
  // conv(mask, ones) / conv(ones, ones) handles borders exactly.
  const Shape& ws = weight.shape();
  Tensor ones_kernel(Shape{1, ws[1], ws[2], ws[3]}, 1.0f);
  Tensor mask_f(input.shape());
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask_f[i] = static_cast<float>(mask[i]);
  }
  Tensor ones_in(input.shape(), 1.0f);
  Tensor empty_bias;
  Tensor hits =
      tensor::conv2d_direct(mask_f, ones_kernel, empty_bias, stride, pad);
  Tensor totals =
      tensor::conv2d_direct(ones_in, ones_kernel, empty_bias, stride, pad);

  LayerAnalysis res;
  const std::int64_t n = o_hi.shape()[0], oc = o_hi.shape()[1],
                     ohw = o_hi.shape()[2] * o_hi.shape()[3];
  std::int64_t sens_count = 0, insens_count = 0;
  std::int64_t lowprec_hist[4] = {0, 0, 0, 0};
  std::int64_t highprec_hist[4] = {0, 0, 0, 0};
  double loss_sum = 0.0;
  double extra_max = 0.0;

  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t c = 0; c < oc; ++c) {
      for (std::int64_t i = 0; i < ohw; ++i) {
        const std::int64_t oi = (b * oc + c) * ohw + i;
        // Receptive-field shares are channel-agnostic (hits/totals have one
        // output channel).
        const std::int64_t ri = b * ohw + i;
        const double frac_hi = hits[ri] / std::max(totals[ri], 1.0f);
        const double frac_lo = 1.0 - frac_hi;
        const bool sensitive = std::abs(o_hi[oi]) > output_threshold;
        auto bin = [](double f) {
          if (f <= 0.25) return 0;
          if (f <= 0.50) return 1;
          if (f <= 0.75) return 2;
          return 3;
        };
        if (sensitive) {
          ++sens_count;
          ++lowprec_hist[bin(frac_lo)];
          loss_sum += std::abs(o_hi[oi] - o_drq[oi]);
        } else {
          ++insens_count;
          ++highprec_hist[bin(frac_hi)];
          extra_max = std::max(
              extra_max, static_cast<double>(std::abs(o_drq[oi] - o_lo[oi])));
        }
      }
    }
  }

  res.outputs = n * oc * ohw;
  res.sensitive_output_fraction =
      res.outputs > 0
          ? static_cast<double>(sens_count) / static_cast<double>(res.outputs)
          : 0.0;
  for (int k = 0; k < 4; ++k) {
    res.lowprec_share_hist[k] =
        sens_count > 0
            ? static_cast<double>(lowprec_hist[k]) /
                  static_cast<double>(sens_count)
            : 0.0;
    res.highprec_share_hist[k] =
        insens_count > 0
            ? static_cast<double>(highprec_hist[k]) /
                  static_cast<double>(insens_count)
            : 0.0;
  }
  res.precision_loss_sensitive =
      sens_count > 0 ? loss_sum / static_cast<double>(sens_count) : 0.0;
  res.extra_precision_insensitive = extra_max;
  return res;
}

}  // namespace odq::drq
