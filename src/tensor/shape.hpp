// Shape: dimension vector with row-major linearization helpers.
//
// Convention throughout the library: activations are NCHW
// (batch, channels, height, width) and conv weights are OIHW
// (out-channels, in-channels, kernel-h, kernel-w).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace odq::tensor {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  std::size_t rank() const { return dims_.size(); }

  std::int64_t dim(std::size_t i) const { return dims_.at(i); }
  std::int64_t operator[](std::size_t i) const { return dims_[i]; }

  std::int64_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(),
                           static_cast<std::int64_t>(1),
                           [](std::int64_t a, std::int64_t b) { return a * b; });
  }

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string str() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  void validate() const {
    for (std::int64_t d : dims_) {
      if (d < 0) throw std::invalid_argument("Shape: negative dimension");
    }
  }

  std::vector<std::int64_t> dims_;
};

}  // namespace odq::tensor
