#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace odq::tensor {

namespace {

void check_matmul_shapes(const Tensor& a, const Tensor& b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    throw std::invalid_argument("matmul: tensors must be rank-2");
  }
  if (a.shape()[1] != b.shape()[0]) {
    throw std::invalid_argument("matmul: inner dimensions mismatch " +
                                a.shape().str() + " x " + b.shape().str());
  }
}

}  // namespace

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out,
                 bool accumulate) {
  check_matmul_shapes(a, b);
  const std::int64_t m = a.shape()[0];
  const std::int64_t k = a.shape()[1];
  const std::int64_t n = b.shape()[1];
  if (out.shape() != Shape{m, n}) {
    throw std::invalid_argument("matmul_into: bad output shape");
  }
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();

  util::parallel_for(
      m,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t i = r0; i < r1; ++i) {
          float* crow = pc + i * n;
          if (!accumulate) std::fill(crow, crow + n, 0.0f);
          const float* arow = pa + i * k;
          for (std::int64_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f) continue;
            const float* brow = pb + p * n;
            for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      /*grain=*/8);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_matmul_shapes(a, b);
  Tensor out(Shape{a.shape()[0], b.shape()[1]});
  matmul_into(a, b, out, /*accumulate=*/false);
  return out;
}

Tensor im2col(const Tensor& input, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad) {
  const Shape& s = input.shape();
  if (s.rank() != 4) throw std::invalid_argument("im2col: input must be NCHW");
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const std::int64_t oh = conv_out_dim(h, kh, stride, pad);
  const std::int64_t ow = conv_out_dim(w, kw, stride, pad);
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("im2col: kernel larger than padded input");
  }
  Tensor cols(Shape{n, c * kh * kw, oh * ow});
  float* dst = cols.data();
  const std::int64_t col_stride = oh * ow;

  for (std::int64_t b = 0; b < n; ++b) {
    const float* img = input.data() + b * c * h * w;
    float* batch_dst = dst + b * c * kh * kw * col_stride;
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t ki = 0; ki < kh; ++ki) {
        for (std::int64_t kj = 0; kj < kw; ++kj) {
          float* row =
              batch_dst + ((ch * kh + ki) * kw + kj) * col_stride;
          std::int64_t idx = 0;
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            const std::int64_t iy = oy * stride - pad + ki;
            for (std::int64_t ox = 0; ox < ow; ++ox, ++idx) {
              const std::int64_t ix = ox * stride - pad + kj;
              row[idx] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                             ? img[(ch * h + iy) * w + ix]
                             : 0.0f;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, std::int64_t channels, std::int64_t height,
              std::int64_t width, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad) {
  const Shape& s = cols.shape();
  if (s.rank() != 3) throw std::invalid_argument("col2im: cols must be rank-3");
  const std::int64_t n = s[0];
  const std::int64_t oh = conv_out_dim(height, kh, stride, pad);
  const std::int64_t ow = conv_out_dim(width, kw, stride, pad);
  if (s[1] != channels * kh * kw || s[2] != oh * ow) {
    throw std::invalid_argument("col2im: shape mismatch");
  }
  Tensor img(Shape{n, channels, height, width});
  const std::int64_t col_stride = oh * ow;

  for (std::int64_t b = 0; b < n; ++b) {
    const float* batch_src = cols.data() + b * channels * kh * kw * col_stride;
    float* out = img.data() + b * channels * height * width;
    for (std::int64_t ch = 0; ch < channels; ++ch) {
      for (std::int64_t ki = 0; ki < kh; ++ki) {
        for (std::int64_t kj = 0; kj < kw; ++kj) {
          const float* row =
              batch_src + ((ch * kh + ki) * kw + kj) * col_stride;
          std::int64_t idx = 0;
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            const std::int64_t iy = oy * stride - pad + ki;
            for (std::int64_t ox = 0; ox < ow; ++ox, ++idx) {
              const std::int64_t ix = ox * stride - pad + kj;
              if (iy >= 0 && iy < height && ix >= 0 && ix < width) {
                out[(ch * height + iy) * width + ix] += row[idx];
              }
            }
          }
        }
      }
    }
  }
  return img;
}

Tensor conv2d_direct(const Tensor& input, const Tensor& weight,
                     const Tensor& bias, std::int64_t stride,
                     std::int64_t pad) {
  const Shape& is = input.shape();
  const Shape& ws = weight.shape();
  if (is.rank() != 4 || ws.rank() != 4) {
    throw std::invalid_argument("conv2d_direct: need NCHW input, OIHW weight");
  }
  if (is[1] != ws[1]) {
    throw std::invalid_argument("conv2d_direct: channel mismatch");
  }
  const std::int64_t n = is[0], c = is[1], h = is[2], w = is[3];
  const std::int64_t o = ws[0], kh = ws[2], kw = ws[3];
  const std::int64_t oh = conv_out_dim(h, kh, stride, pad);
  const std::int64_t ow = conv_out_dim(w, kw, stride, pad);
  Tensor out(Shape{n, o, oh, ow});

  // Tiled over (batch, out-channel) planes — the same decomposition the ODQ
  // executor uses — so the DRQ and static-quant baselines ride the same
  // pool. Per-output accumulation order is unchanged, so results are
  // bit-identical to the serial loop at any pool size.
  util::parallel_for(
      n * o,
      [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const std::int64_t b = t / o;
          const std::int64_t oc = t % o;
          const float bv = bias.empty() ? 0.0f : bias[oc];
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              float acc = bv;
              for (std::int64_t ic = 0; ic < c; ++ic) {
                for (std::int64_t ki = 0; ki < kh; ++ki) {
                  const std::int64_t iy = oy * stride - pad + ki;
                  if (iy < 0 || iy >= h) continue;
                  for (std::int64_t kj = 0; kj < kw; ++kj) {
                    const std::int64_t ix = ox * stride - pad + kj;
                    if (ix < 0 || ix >= w) continue;
                    acc +=
                        input.at4(b, ic, iy, ix) * weight.at4(oc, ic, ki, kj);
                  }
                }
              }
              out.at4(b, oc, oy, ox) = acc;
            }
          }
        }
      },
      /*grain=*/1);
  return out;
}

void relu_inplace(Tensor& x) {
  float* p = x.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("add: shape mismatch " + a.shape().str() +
                                " vs " + b.shape().str());
  }
  float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] += pb[i];
}

void scale_inplace(Tensor& x, float s) {
  float* p = x.data();
  const std::int64_t n = x.numel();
  for (std::int64_t i = 0; i < n; ++i) p[i] *= s;
}

Tensor maxpool2d(const Tensor& input, std::int64_t k, TensorI32* argmax) {
  const Shape& s = input.shape();
  if (s.rank() != 4) throw std::invalid_argument("maxpool2d: input must be NCHW");
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const std::int64_t oh = h / k, ow = w / k;
  Tensor out(Shape{n, c, oh, ow});
  if (argmax != nullptr) *argmax = TensorI32(Shape{n, c, oh, ow});

  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float best = -3.4e38f;
          std::int64_t best_idx = -1;
          for (std::int64_t ki = 0; ki < k; ++ki) {
            for (std::int64_t kj = 0; kj < k; ++kj) {
              const std::int64_t iy = oy * k + ki;
              const std::int64_t ix = ox * k + kj;
              const float v = input.at4(b, ch, iy, ix);
              if (v > best) {
                best = v;
                best_idx = input.index4(b, ch, iy, ix);
              }
            }
          }
          out.at4(b, ch, oy, ox) = best;
          if (argmax != nullptr) {
            argmax->at4(b, ch, oy, ox) = static_cast<std::int32_t>(best_idx);
          }
        }
      }
    }
  }
  return out;
}

Tensor avgpool2d(const Tensor& input, std::int64_t k) {
  const Shape& s = input.shape();
  if (s.rank() != 4) throw std::invalid_argument("avgpool2d: input must be NCHW");
  const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
  const std::int64_t oh = h / k, ow = w / k;
  Tensor out(Shape{n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(k * k);
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (std::int64_t ki = 0; ki < k; ++ki) {
            for (std::int64_t kj = 0; kj < k; ++kj) {
              acc += input.at4(b, ch, oy * k + ki, ox * k + kj);
            }
          }
          out.at4(b, ch, oy, ox) = acc * inv;
        }
      }
    }
  }
  return out;
}

Tensor global_avg_pool(const Tensor& input) {
  const Shape& s = input.shape();
  if (s.rank() != 4) {
    throw std::invalid_argument("global_avg_pool: input must be NCHW");
  }
  const std::int64_t n = s[0], c = s[1], hw = s[2] * s[3];
  Tensor out(Shape{n, c});
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* p = input.data() + (b * c + ch) * hw;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < hw; ++i) acc += p[i];
      out.at2(b, ch) = acc * inv;
    }
  }
  return out;
}

Tensor softmax(const Tensor& logits) {
  const Shape& s = logits.shape();
  if (s.rank() != 2) throw std::invalid_argument("softmax: input must be [N,K]");
  const std::int64_t n = s[0], k = s[1];
  Tensor out(s);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    float* orow = out.data() + i * k;
    float mx = row[0];
    for (std::int64_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (std::int64_t j = 0; j < k; ++j) {
      orow[j] = std::exp(row[j] - mx);
      sum += orow[j];
    }
    const float inv = 1.0f / sum;
    for (std::int64_t j = 0; j < k; ++j) orow[j] *= inv;
  }
  return out;
}

std::int64_t argmax_row(const Tensor& m, std::int64_t row) {
  const std::int64_t k = m.shape()[1];
  const float* p = m.data() + row * k;
  std::int64_t best = 0;
  for (std::int64_t j = 1; j < k; ++j) {
    if (p[j] > p[best]) best = j;
  }
  return best;
}

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  if (sa.rank() != 4 || sb.rank() != 4 || sa[0] != sb[0] || sa[2] != sb[2] ||
      sa[3] != sb[3]) {
    throw std::invalid_argument("concat_channels: incompatible shapes");
  }
  const std::int64_t n = sa[0], ca = sa[1], cb = sb[1], hw = sa[2] * sa[3];
  Tensor out(Shape{n, ca + cb, sa[2], sa[3]});
  for (std::int64_t bt = 0; bt < n; ++bt) {
    std::copy(a.data() + bt * ca * hw, a.data() + (bt + 1) * ca * hw,
              out.data() + bt * (ca + cb) * hw);
    std::copy(b.data() + bt * cb * hw, b.data() + (bt + 1) * cb * hw,
              out.data() + bt * (ca + cb) * hw + ca * hw);
  }
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  float best = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    best = std::max(best, std::abs(a[i] - b[i]));
  }
  return best;
}

float mean_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("mean_abs_diff: shape mismatch");
  }
  if (a.numel() == 0) return 0.0f;
  double acc = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += std::abs(a[i] - b[i]);
  return static_cast<float>(acc / static_cast<double>(a.numel()));
}

}  // namespace odq::tensor
