// Dense float kernels shared by the NN substrate: matmul, im2col, direct
// convolution (reference), pooling, elementwise ops and reductions.
//
// All kernels are deterministic; matmul parallelizes over rows via
// util::parallel_for.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"

namespace odq::tensor {

// C[m,n] = A[m,k] * B[k,n]. Shapes must match exactly.
Tensor matmul(const Tensor& a, const Tensor& b);

// C += A * B into a preallocated output (no allocation on the hot path).
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out,
                 bool accumulate = false);

// im2col for NCHW input, OIHW kernels.
//
// input:  [N, C, H, W]
// output: [N, C*KH*KW, OH*OW] flattened to a 2-D matrix per batch element
//         stored as one tensor [N * (C*KH*KW) * (OH*OW)] with shape
//         [N, C*KH*KW, OH*OW].
// Padding is zero-padding of `pad` pixels on all sides; stride applies to
// both dimensions.
Tensor im2col(const Tensor& input, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad);

// Inverse of im2col: scatter-adds columns back into an image gradient.
Tensor col2im(const Tensor& cols, std::int64_t channels, std::int64_t height,
              std::int64_t width, std::int64_t kh, std::int64_t kw,
              std::int64_t stride, std::int64_t pad);

// Output spatial size for a conv/pool window.
inline std::int64_t conv_out_dim(std::int64_t in, std::int64_t k,
                                 std::int64_t stride, std::int64_t pad) {
  return (in + 2 * pad - k) / stride + 1;
}

// Reference direct convolution (used to validate the im2col path and as the
// float baseline in quantization-error measurements).
// input [N,C,H,W], weight [O,C,KH,KW], bias [O] (may be empty).
Tensor conv2d_direct(const Tensor& input, const Tensor& weight,
                     const Tensor& bias, std::int64_t stride, std::int64_t pad);

// Elementwise.
void relu_inplace(Tensor& x);
Tensor add(const Tensor& a, const Tensor& b);
void add_inplace(Tensor& a, const Tensor& b);
void scale_inplace(Tensor& x, float s);

// 2x2 (or kxk) max pooling with stride == k; also returns argmax indices for
// the backward pass when `argmax` is non-null.
Tensor maxpool2d(const Tensor& input, std::int64_t k,
                 TensorI32* argmax = nullptr);

// Global average pooling: [N,C,H,W] -> [N,C].
Tensor global_avg_pool(const Tensor& input);

// Average pooling with window k, stride k: [N,C,H,W] -> [N,C,OH,OW].
Tensor avgpool2d(const Tensor& input, std::int64_t k);

// Row-wise softmax of a [N, K] matrix (numerically stabilized).
Tensor softmax(const Tensor& logits);

// Index of the max element in row `row` of a [N, K] matrix.
std::int64_t argmax_row(const Tensor& m, std::int64_t row);

// Concatenate two NCHW tensors along the channel axis.
Tensor concat_channels(const Tensor& a, const Tensor& b);

// Max |a - b| over all elements (shapes must match).
float max_abs_diff(const Tensor& a, const Tensor& b);

// Mean |a - b| over all elements.
float mean_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace odq::tensor
