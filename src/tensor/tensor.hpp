// Dense row-major tensor over a trivially-copyable element type.
//
// TensorT owns its storage (std::vector) and provides bounds-checked element
// access in debug paths plus raw data() access for hot kernels. The float
// alias `Tensor` is the workhorse of the NN substrate; int8/int32 aliases
// carry quantized values and accumulators.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "tensor/shape.hpp"

namespace odq::tensor {

template <typename T>
class TensorT {
 public:
  TensorT() = default;

  explicit TensorT(Shape shape, T fill = T{})
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), fill) {}

  TensorT(Shape shape, std::vector<T> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    if (static_cast<std::int64_t>(data_.size()) != shape_.numel()) {
      throw std::invalid_argument("TensorT: data size does not match shape");
    }
  }

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  const T& operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  T& at(std::int64_t i) { return data_.at(static_cast<std::size_t>(i)); }
  const T& at(std::int64_t i) const {
    return data_.at(static_cast<std::size_t>(i));
  }

  // 4-D (NCHW / OIHW) access.
  T& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[static_cast<std::size_t>(index4(n, c, h, w))];
  }
  const T& at4(std::int64_t n, std::int64_t c, std::int64_t h,
               std::int64_t w) const {
    return data_[static_cast<std::size_t>(index4(n, c, h, w))];
  }

  std::int64_t index4(std::int64_t n, std::int64_t c, std::int64_t h,
                      std::int64_t w) const {
    return ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w;
  }

  // 2-D (rows, cols) access.
  T& at2(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  const T& at2(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  void fill(T value) { data_.assign(data_.size(), value); }

  // Reinterpret the buffer with a new shape of identical element count.
  TensorT reshaped(Shape new_shape) const {
    if (new_shape.numel() != shape_.numel()) {
      throw std::invalid_argument("reshaped: element count mismatch");
    }
    return TensorT(std::move(new_shape), data_);
  }

  const std::vector<T>& vec() const { return data_; }

 private:
  Shape shape_;
  std::vector<T> data_;
};

using Tensor = TensorT<float>;
using TensorI8 = TensorT<std::int8_t>;
using TensorI32 = TensorT<std::int32_t>;
using TensorU8 = TensorT<std::uint8_t>;

}  // namespace odq::tensor
