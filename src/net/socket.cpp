#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <utility>

#include "util/fault.hpp"

namespace odq::net {

using util::Status;
using util::StatusCode;
using util::StatusOr;

namespace {

Status io_error(const std::string& what) {
  return Status(StatusCode::kIoError, what + ": " + ::strerror(errno));
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), would_block_last_(other.would_block_last_) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    would_block_last_ = other.would_block_last_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::read_some(void* buf, std::size_t len, std::size_t* n_read) {
  *n_read = 0;
  would_block_last_ = false;
  if (fd_ < 0) return Status(StatusCode::kIoError, "read on closed socket");
  if (util::fault_fire("net.read")) {
    return Status(StatusCode::kIoError, "injected net.read fault");
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, len, 0);
    if (n >= 0) {
      *n_read = static_cast<std::size_t>(n);
      return Status::Ok();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      would_block_last_ = true;
      return Status(StatusCode::kIoError, "read timed out");
    }
    return io_error("recv");
  }
}

Status Socket::write_all(const void* buf, std::size_t len) {
  if (fd_ < 0) return Status(StatusCode::kIoError, "write on closed socket");
  if (util::fault_fire("net.write")) {
    return Status(StatusCode::kIoError, "injected net.write fault");
  }
  const char* p = static_cast<const char*>(buf);
  std::size_t left = len;
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      left -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // A send timeout (if one is ever set) or full socket buffer on a
      // blocking fd: poll for writability rather than spin.
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      if (::poll(&pfd, 1, 1000) <= 0) return io_error("send (stalled)");
      continue;
    }
    return io_error("send");
  }
  return Status::Ok();
}

Status Socket::set_read_timeout_ms(std::int64_t timeout_ms) {
  if (fd_ < 0) return Status(StatusCode::kIoError, "closed socket");
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return io_error("setsockopt(SO_RCVTIMEO)");
  }
  return Status::Ok();
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() { close(); }

Status Listener::bind_and_listen(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return io_error("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s = io_error("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    const Status s = io_error("listen");
    ::close(fd);
    return s;
  }
  socklen_t alen = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &alen) !=
      0) {
    const Status s = io_error("getsockname");
    ::close(fd);
    return s;
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return Status::Ok();
}

StatusOr<Socket> Listener::accept() {
  if (fd_ < 0) {
    return Status(StatusCode::kUnavailable, "listener closed");
  }
  if (util::fault_fire("net.accept")) {
    return Status(StatusCode::kIoError, "injected net.accept fault");
  }
  for (;;) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) {
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(cfd);
    }
    if (errno == EINTR) continue;
    if (errno == EBADF || errno == EINVAL) {
      // close() pulled the fd out from under a blocked accept: the
      // shutdown path, not an error.
      return Status(StatusCode::kUnavailable, "listener closed");
    }
    return io_error("accept");
  }
}

void Listener::close() {
  if (fd_ >= 0) {
    // shutdown() first so a concurrently blocked accept() wakes with an
    // error instead of racing against fd reuse.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<Socket> connect_local(std::uint16_t port, std::int64_t timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return io_error("socket");

  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  // Non-blocking connect with a poll deadline, then back to blocking mode.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc <= 0) {
      ::close(fd);
      return Status(StatusCode::kUnavailable, "connect timed out");
    }
    int err = 0;
    socklen_t elen = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen);
    if (err != 0) {
      ::close(fd);
      errno = err;
      return io_error("connect");
    }
  } else if (rc != 0) {
    const Status s = io_error("connect");
    ::close(fd);
    return s;
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

}  // namespace odq::net
