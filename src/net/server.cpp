#include "net/server.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "net/wire.hpp"
#include "util/logging.hpp"

namespace odq::net {

using util::Status;
using util::StatusCode;

namespace {

// Build the encoded frame for an error (or shed) infer response.
std::vector<std::uint8_t> error_response_frame(std::uint64_t client_req_id,
                                               const Status& status) {
  WireResponse res;
  res.client_req_id = client_req_id;
  res.code = static_cast<std::uint8_t>(status.code());
  res.message = status.message().substr(0, kMaxWireMessageBytes);
  std::vector<std::uint8_t> payload;
  encode_response(res, &payload);
  std::vector<std::uint8_t> frame;
  encode_frame(FrameType::kInferResponse, payload.data(), payload.size(),
               &frame);
  return frame;
}

double us_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

NetServer::NetServer(serve::ServeFrontEnd& frontend, ServerConfig cfg)
    : frontend_(frontend), cfg_(std::move(cfg)) {}

NetServer::~NetServer() { shutdown(); }

Status NetServer::start() {
  Status s = listener_.bind_and_listen(cfg_.port);
  if (!s.ok()) return s;
  acceptor_ = std::thread([this] { accept_loop(); });
  return Status::Ok();
}

void NetServer::accept_loop() {
  for (;;) {
    auto accepted = listener_.accept();
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kUnavailable) break;
      // One failed accept (including the net.accept fault site) never
      // stops the server.
      ODQ_LOG_WARN("net: accept failed: %s",
                   accepted.status().to_string().c_str());
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.accept_errors;
      }
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(accepted.value());
    conn->sock.set_read_timeout_ms(cfg_.read_timeout_ms);
    Connection* c = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      reap_finished_locked();
      conns_.push_back(std::move(conn));
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections;
    }
    c->reader = std::thread([this, c] { reader_loop(c); });
    c->writer = std::thread([this, c] { writer_loop(c); });
  }
}

void NetServer::reader_loop(Connection* conn) {
  std::int64_t idle_ms = 0;
  for (;;) {
    Frame frame;
    Status st;
    const ReadOutcome outcome =
        read_frame(conn->sock, &frame, &st, cfg_.max_payload);
    if (outcome == ReadOutcome::kIdleTimeout) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      idle_ms += cfg_.read_timeout_ms;
      if (cfg_.idle_timeout_ms > 0 && idle_ms >= cfg_.idle_timeout_ms) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.idle_closes;
        break;
      }
      continue;  // idle between frames is not an error
    }
    idle_ms = 0;
    if (outcome == ReadOutcome::kPeerClosed) break;
    if (outcome == ReadOutcome::kError) {
      // Garbage, CRC damage, or a mid-frame stall (slowloris): the stream
      // is unrecoverable. Stop reading; the writer still drains whatever
      // was already admitted.
      ODQ_LOG_WARN("net: connection read error: %s", st.to_string().c_str());
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (st.code() == StatusCode::kCorruption) {
        ++stats_.decode_errors;
      }
      ++stats_.io_closes;
      break;
    }
    handle_frame(conn, frame);
    if (frame.type == FrameType::kShutdown) break;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->reader_done = true;
  }
  conn->cv.notify_all();
  if (conn->exited.fetch_add(1, std::memory_order_acq_rel) + 1 == 2) {
    conn->done.store(true, std::memory_order_release);
  }
}

void NetServer::handle_frame(Connection* conn, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kInferRequest: {
      WireRequest req;
      Status s = decode_request(frame.payload.data(), frame.payload.size(),
                                &req);
      if (!s.ok()) {
        // The frame CRC held, so the framing is intact and the connection
        // can keep serving — answer this one request with its typed error
        // (client_req_id unknown: 0).
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.decode_errors;
        }
        push_control(conn, error_response_frame(0, s));
        return;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.requests;
      }
      const auto now = std::chrono::steady_clock::now();
      serve::SubmitOptions opts;
      opts.tag = req.tag == 0 ? serve::kNoRequestTag : req.tag;
      if (req.deadline_us > 0) {
        opts.deadline = now + std::chrono::microseconds(req.deadline_us);
      }
      const std::string& tenant =
          req.tenant.empty() ? cfg_.default_tenant : req.tenant;
      auto submitted = frontend_.submit(std::move(req.input), tenant, opts);
      if (!submitted.ok()) {
        push_control(conn,
                     error_response_frame(req.client_req_id,
                                          submitted.status()));
        return;
      }
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        Connection::Reply reply;
        reply.client_req_id = req.client_req_id;
        reply.start = now;
        reply.future = std::move(submitted.value());
        conn->replies.push_back(std::move(reply));
      }
      conn->cv.notify_all();
      return;
    }
    case FrameType::kHealthRequest: {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.health_probes;
      }
      const auto snap = frontend_.snapshot();
      WireHealth h;
      h.ready = snap.ready && !stopping_.load(std::memory_order_relaxed);
      h.draining =
          snap.draining || stopping_.load(std::memory_order_relaxed);
      h.degrade_level = static_cast<std::uint32_t>(snap.degrade_level);
      h.queue_depth = snap.backlog;
      h.accepted = snap.accepted;
      h.rejected = snap.rejected;
      h.shed = snap.shed;
      std::vector<std::uint8_t> payload;
      encode_health(h, &payload);
      std::vector<std::uint8_t> bytes;
      encode_frame(FrameType::kHealthResponse, payload.data(),
                   payload.size(), &bytes);
      push_control(conn, std::move(bytes));
      return;
    }
    case FrameType::kShutdown: {
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->ack_shutdown = true;
      }
      shutdown_requested_.store(true, std::memory_order_release);
      shutdown_cv_.notify_all();
      return;
    }
    default: {
      // A response frame sent at the server: a confused peer. Count it,
      // ignore it, keep the connection.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.decode_errors;
      return;
    }
  }
}

void NetServer::push_control(Connection* conn,
                             std::vector<std::uint8_t> bytes) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->control.push_back(std::move(bytes));
  }
  conn->cv.notify_all();
}

void NetServer::writer_loop(Connection* conn) {
  bool dead = false;
  auto write_bytes = [&](const std::vector<std::uint8_t>& bytes) {
    Status s = conn->sock.write_all(bytes.data(), bytes.size());
    if (!s.ok()) {
      ODQ_LOG_WARN("net: connection write error: %s",
                   s.to_string().c_str());
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.io_closes;
      dead = true;
    }
    return !dead;
  };
  // Drain every queued control frame. Returns false when the socket died.
  auto flush_control = [&] {
    std::deque<std::vector<std::uint8_t>> ctl;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      ctl.swap(conn->control);
    }
    for (const auto& bytes : ctl) {
      if (!write_bytes(bytes)) return false;
    }
    return true;
  };

  while (!dead) {
    Connection::Reply reply;
    bool have_reply = false;
    bool drained = false;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock, [&] {
        return !conn->control.empty() || !conn->replies.empty() ||
               conn->reader_done;
      });
      if (conn->control.empty() && conn->replies.empty()) {
        drained = conn->reader_done;
      } else if (!conn->replies.empty() && conn->control.empty()) {
        reply = std::move(conn->replies.front());
        conn->replies.pop_front();
        have_reply = true;
      }
    }
    if (drained) break;
    if (!flush_control()) break;
    if (!have_reply) continue;

    // Wait for the engine's answer — but keep servicing control frames so
    // a health probe is answered even while the engine is backlogged.
    while (reply.future.wait_for(std::chrono::milliseconds(5)) !=
           std::future_status::ready) {
      if (!flush_control()) break;
    }
    if (dead) break;
    serve::InferResponse res = reply.future.get();
    WireResponse wire;
    wire.client_req_id = reply.client_req_id;
    wire.code = static_cast<std::uint8_t>(res.status.code());
    wire.message = res.status.message().substr(0, kMaxWireMessageBytes);
    wire.scheme = res.scheme;
    wire.degraded = res.degraded ? 1 : 0;
    wire.server_latency_us = us_since(reply.start);
    if (res.status.ok()) wire.output = std::move(res.output);
    std::vector<std::uint8_t> payload;
    encode_response(wire, &payload);
    std::vector<std::uint8_t> bytes;
    encode_frame(FrameType::kInferResponse, payload.data(), payload.size(),
                 &bytes);
    if (!write_bytes(bytes)) break;
  }

  if (!dead) {
    bool ack = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      ack = conn->ack_shutdown;
    }
    if (ack) {
      // Everything in flight has been answered: complete the handshake.
      std::vector<std::uint8_t> bytes;
      encode_frame(FrameType::kShutdown, nullptr, 0, &bytes);
      write_bytes(bytes);
    }
  }
  // Wake a reader still blocked in read_some (writer-error path) so both
  // threads wind down and the connection becomes reapable.
  conn->sock.shutdown_read();
  conn->sock.shutdown_write();
  if (conn->exited.fetch_add(1, std::memory_order_acq_rel) + 1 == 2) {
    conn->done.store(true, std::memory_order_release);
  }
}

void NetServer::reap_finished_locked() {
  auto it = conns_.begin();
  while (it != conns_.end()) {
    Connection* c = it->get();
    if (!c->done.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    if (c->reader.joinable()) c->reader.join();
    if (c->writer.joinable()) c->writer.join();
    it = conns_.erase(it);
  }
}

void NetServer::wait_for_shutdown_request() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [&] {
    return shutdown_requested_.load(std::memory_order_acquire) ||
           stopping_.load(std::memory_order_relaxed);
  });
}

void NetServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_relaxed);
  shutdown_cv_.notify_all();
  listener_.close();
  if (acceptor_.joinable()) acceptor_.join();
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (auto& conn : conns_) {
    // EOF the reader; the writer then drains pending replies and exits.
    conn->sock.shutdown_read();
    conn->cv.notify_all();
  }
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
  conns_.clear();
}

ServerStats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace odq::net
