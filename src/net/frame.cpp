#include "net/frame.hpp"

#include <cstring>

#include "util/crc32.hpp"
#include "util/fault.hpp"

namespace odq::net {

using util::Status;
using util::StatusCode;

namespace {

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

Status corruption(const char* what) {
  return Status(StatusCode::kCorruption, what);
}

// Read exactly `len` bytes. Outcomes mirror read_frame's taxonomy via the
// returned code: kOk, or kUnavailable (clean EOF before any byte — only
// meaningful when allow_eof), kCorruption (EOF mid-read), kIoError
// (failure / timeout; sock.would_block_last() says which).
Status read_exact(Socket& sock, std::uint8_t* buf, std::size_t len,
                  bool* clean_eof, bool* idle_timeout) {
  *clean_eof = false;
  *idle_timeout = false;
  std::size_t got = 0;
  while (got < len) {
    std::size_t n = 0;
    const Status s = sock.read_some(buf + got, len - got, &n);
    if (!s.ok()) {
      if (sock.would_block_last() && got == 0) {
        *idle_timeout = true;
        return s;
      }
      // A timeout with a partial frame on the floor is the slowloris
      // signature — surface it as the hard error it is.
      return s;
    }
    if (n == 0) {
      if (got == 0) {
        *clean_eof = true;
        return corruption("peer closed");
      }
      return corruption("truncated frame: peer closed mid-frame");
    }
    got += n;
  }
  return Status::Ok();
}

}  // namespace

void encode_frame(FrameType type, const void* payload, std::size_t len,
                  std::vector<std::uint8_t>* out) {
  const std::size_t base = out->size();
  out->resize(base + kFrameHeaderBytes + len + kFrameTrailerBytes);
  std::uint8_t* h = out->data() + base;
  put_u32(h, kFrameMagic);
  h[4] = static_cast<std::uint8_t>(type);
  h[5] = 0;
  put_u16(h + 6, 0);
  put_u32(h + 8, static_cast<std::uint32_t>(len));
  put_u32(h + 12, util::crc32(h, 12));
  std::uint8_t* body = h + kFrameHeaderBytes;
  if (len > 0) std::memcpy(body, payload, len);
  put_u32(body + len, util::crc32(body, len));
  // Silent-corruption drill: flip one payload bit after both CRCs are in
  // place, so the receiver — never the sender — detects it.
  if (len > 0 && util::fault_fire("net.frame_crc")) {
    body[0] ^= 0x01;
  }
}

Status decode_frame(const std::uint8_t* data, std::size_t len, Frame* out,
                    std::size_t* consumed, std::size_t max_payload) {
  *consumed = 0;
  if (len < kFrameHeaderBytes) return corruption("truncated frame header");
  if (get_u32(data) != kFrameMagic) return corruption("bad frame magic");
  if (get_u32(data + 12) != util::crc32(data, 12)) {
    return corruption("bad frame header crc");
  }
  const std::uint8_t type = data[4];
  if (type < static_cast<std::uint8_t>(FrameType::kInferRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kShutdown)) {
    return corruption("unknown frame type");
  }
  if (data[5] != 0 || data[6] != 0 || data[7] != 0) {
    return corruption("nonzero reserved frame bits");
  }
  const std::uint32_t payload_len = get_u32(data + 8);
  if (payload_len > max_payload) return corruption("oversized frame payload");
  const std::size_t total =
      kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
  if (len < total) return corruption("truncated frame payload");
  const std::uint8_t* body = data + kFrameHeaderBytes;
  if (get_u32(body + payload_len) != util::crc32(body, payload_len)) {
    return corruption("bad frame payload crc");
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(body, body + payload_len);
  *consumed = total;
  return Status::Ok();
}

Status write_frame(Socket& sock, FrameType type, const void* payload,
                   std::size_t len) {
  std::vector<std::uint8_t> buf;
  buf.reserve(kFrameHeaderBytes + len + kFrameTrailerBytes);
  encode_frame(type, payload, len, &buf);
  return sock.write_all(buf.data(), buf.size());
}

ReadOutcome read_frame(Socket& sock, Frame* out, util::Status* status,
                       std::size_t max_payload) {
  std::uint8_t header[kFrameHeaderBytes];
  bool clean_eof = false;
  bool idle = false;
  Status s = read_exact(sock, header, sizeof(header), &clean_eof, &idle);
  if (!s.ok()) {
    if (clean_eof) return ReadOutcome::kPeerClosed;
    if (idle) return ReadOutcome::kIdleTimeout;
    *status = s;
    return ReadOutcome::kError;
  }
  // Validate the header before trusting payload_len — a garbage stream
  // costs 16 bytes of reads, never an attacker-chosen allocation.
  if (get_u32(header) != kFrameMagic) {
    *status = corruption("bad frame magic");
    return ReadOutcome::kError;
  }
  if (get_u32(header + 12) != util::crc32(header, 12)) {
    *status = corruption("bad frame header crc");
    return ReadOutcome::kError;
  }
  const std::uint32_t payload_len = get_u32(header + 8);
  if (payload_len > max_payload) {
    *status = corruption("oversized frame payload");
    return ReadOutcome::kError;
  }
  std::vector<std::uint8_t> rest(payload_len + kFrameTrailerBytes);
  s = read_exact(sock, rest.data(), rest.size(), &clean_eof, &idle);
  if (!s.ok()) {
    // EOF or timeout inside a frame is never clean — a dribbling peer
    // (slowloris) lands here once the receive timeout expires.
    *status = s;
    return ReadOutcome::kError;
  }
  // Re-assemble through the shared validator so socket and in-memory
  // decode paths can never drift.
  std::vector<std::uint8_t> whole;
  whole.reserve(sizeof(header) + rest.size());
  whole.insert(whole.end(), header, header + sizeof(header));
  whole.insert(whole.end(), rest.begin(), rest.end());
  std::size_t consumed = 0;
  s = decode_frame(whole.data(), whole.size(), out, &consumed, max_payload);
  if (!s.ok()) {
    *status = s;
    return ReadOutcome::kError;
  }
  return ReadOutcome::kFrame;
}

}  // namespace odq::net
