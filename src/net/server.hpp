// NetServer: the TCP front door over ServeFrontEnd / ServeEngine.
//
//   accept thread ──► one reader + one writer thread per connection
//
//   reader:  read_frame -> decode_request -> frontend.submit(tenant)
//            (the future joins the connection's FIFO reply queue);
//            health probes and shutdown acks are encoded immediately and
//            placed on the control queue
//   writer:  drains the control queue FIRST, then waits on reply futures
//            in arrival order — while waiting it polls the control queue
//            every few ms, so a health probe is answered even when every
//            in-flight request is stuck behind a backlogged engine
//
// Failure containment (docs/serving.md has the full matrix):
//   * accept failure (incl. the net.accept fault) — logged, loop continues
//   * garbage / CRC-corrupt stream — typed kCorruption, that connection is
//     torn down; in-flight replies still drain; the server keeps serving
//   * decodable frame, corrupt payload — error response on the same
//     connection (framing is intact), connection stays up
//   * admission refusal — immediate error response carrying the
//     kResourceExhausted / kUnavailable status; nothing enters the engine
//   * slowloris — SO_RCVTIMEO: a timeout *between* frames is idle time
//     (retried up to idle_timeout_ms), a timeout *inside* a frame kills
//     the connection
//
// Shutdown handshake: a kShutdown frame stops that connection's reader,
// the writer drains every pending reply, then acks with an empty
// kShutdown frame — the byte the multi-process driver waits for before
// declaring a clean drain. The frame also sets shutdown_requested() so
// the hosting process can stop the whole server.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "serve/frontend.hpp"
#include "util/status.hpp"

namespace odq::net {

struct ServerConfig {
  std::uint16_t port = 0;  // 0 = kernel-assigned; read back via port()
  // Per-read receive timeout — the slowloris clock. A peer that stalls
  // mid-frame longer than this is disconnected.
  std::int64_t read_timeout_ms = 1000;
  // Max idle time between frames before the connection is closed
  // (accumulated from consecutive idle read timeouts). 0 = never.
  std::int64_t idle_timeout_ms = 30000;
  std::size_t max_payload = kMaxFramePayload;
  // Default tenant for requests that arrive without one.
  std::string default_tenant;
};

struct ServerStats {
  std::uint64_t connections = 0;     // accepted
  std::uint64_t accept_errors = 0;   // accept() failures survived
  std::uint64_t requests = 0;        // infer requests decoded
  std::uint64_t decode_errors = 0;   // frame/payload decode failures
  std::uint64_t health_probes = 0;
  std::uint64_t idle_closes = 0;     // connections closed for idling
  std::uint64_t io_closes = 0;       // closed on read/write/corruption
};

class NetServer {
 public:
  // Neither reference is owned; both must outlive the server.
  NetServer(serve::ServeFrontEnd& frontend, ServerConfig cfg);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Bind, listen, spawn the accept loop. kIoError if the bind fails.
  util::Status start();

  std::uint16_t port() const { return listener_.port(); }

  // True once any connection delivered a kShutdown frame.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }
  // Block until shutdown_requested() (or the server is stopped locally).
  void wait_for_shutdown_request();

  // Stop accepting, wake and join every connection (their writers drain
  // pending replies first), join the accept loop. Idempotent; also run by
  // the destructor. Does NOT shut down the front end or engine.
  void shutdown();

  ServerStats stats() const;

 private:
  struct Connection {
    Socket sock;
    std::thread reader;
    std::thread writer;

    std::mutex mu;
    std::condition_variable cv;
    // Encoded frames that jump the queue: health responses, error
    // responses, the shutdown ack (always last — see push order).
    std::deque<std::vector<std::uint8_t>> control;
    struct Reply {
      std::uint64_t client_req_id = 0;
      std::chrono::steady_clock::time_point start;
      std::future<serve::InferResponse> future;
    };
    std::deque<Reply> replies;  // FIFO, answered in arrival order
    bool reader_done = false;
    bool ack_shutdown = false;  // send the kShutdown ack after the drain
    std::atomic<int> exited{0};     // threads that have finished (0..2)
    std::atomic<bool> done{false};  // both threads exited; reapable
  };

  void accept_loop();
  void reader_loop(Connection* conn);
  void writer_loop(Connection* conn);
  void handle_frame(Connection* conn, const Frame& frame);
  void push_control(Connection* conn, std::vector<std::uint8_t> bytes);
  void reap_finished_locked();

  serve::ServeFrontEnd& frontend_;
  ServerConfig cfg_;
  Listener listener_;
  std::thread acceptor_;

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  // under shutdown_mutex_: shutdown() ran fully

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace odq::net
