#include "net/wire.hpp"

#include <cstring>

namespace odq::net {

using util::Status;
using util::StatusCode;

namespace {

Status corruption(const char* what) {
  return Status(StatusCode::kCorruption, what);
}

// Canonical little-endian append helpers.
void put_u8(std::vector<std::uint8_t>* out, std::uint8_t v) {
  out->push_back(v);
}

void put_u16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i64(std::vector<std::uint8_t>* out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::vector<std::uint8_t>* out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_bytes(std::vector<std::uint8_t>* out, const void* p,
               std::size_t len) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out->insert(out->end(), b, b + len);
}

void put_string16(std::vector<std::uint8_t>* out, const std::string& s) {
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  put_bytes(out, s.data(), s.size());
}

void put_tensor(std::vector<std::uint8_t>* out, const tensor::Tensor& t) {
  put_u8(out, 0);  // dtype: f32
  put_u8(out, static_cast<std::uint8_t>(t.shape().rank()));
  for (std::size_t i = 0; i < t.shape().rank(); ++i) {
    put_u64(out, static_cast<std::uint64_t>(t.shape()[i]));
  }
  put_bytes(out, t.data(), static_cast<std::size_t>(t.numel()) *
                               sizeof(float));
}

// Strict bounds-checked reader over [data, data+len). Every take_*
// returns false instead of reading past the end.
struct Cursor {
  const std::uint8_t* p;
  std::size_t left;

  bool take_bytes(void* out, std::size_t n) {
    if (left < n) return false;
    std::memcpy(out, p, n);
    p += n;
    left -= n;
    return true;
  }

  bool take_u8(std::uint8_t* v) { return take_bytes(v, 1); }

  bool take_u16(std::uint16_t* v) {
    std::uint8_t b[2];
    if (!take_bytes(b, 2)) return false;
    *v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
    return true;
  }

  bool take_u32(std::uint32_t* v) {
    std::uint8_t b[4];
    if (!take_bytes(b, 4)) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i) *v = (*v << 8) | b[i];
    return true;
  }

  bool take_u64(std::uint64_t* v) {
    std::uint8_t b[8];
    if (!take_bytes(b, 8)) return false;
    *v = 0;
    for (int i = 7; i >= 0; --i) *v = (*v << 8) | b[i];
    return true;
  }

  bool take_i64(std::int64_t* v) {
    std::uint64_t u;
    if (!take_u64(&u)) return false;
    *v = static_cast<std::int64_t>(u);
    return true;
  }

  bool take_f64(double* v) {
    std::uint64_t bits;
    if (!take_u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
};

Status take_version(Cursor* c) {
  std::uint32_t version = 0;
  if (!c->take_u32(&version)) return corruption("truncated message header");
  if (version != kWireProtocolVersion) {
    return Status(StatusCode::kFailedPrecondition,
                  "wire protocol version mismatch: got " +
                      std::to_string(version) + ", want " +
                      std::to_string(kWireProtocolVersion));
  }
  return Status::Ok();
}

Status take_string16(Cursor* c, std::size_t max_len, const char* what,
                     std::string* out) {
  std::uint16_t n = 0;
  if (!c->take_u16(&n)) return corruption("truncated string length");
  if (n > max_len) {
    return Status(StatusCode::kCorruption,
                  std::string("oversized ") + what + " (" +
                      std::to_string(n) + " bytes)");
  }
  if (c->left < n) return corruption("truncated string payload");
  out->assign(reinterpret_cast<const char*>(c->p), n);
  c->p += n;
  c->left -= n;
  return Status::Ok();
}

Status take_tensor(Cursor* c, tensor::Tensor* out) {
  std::uint8_t dtype = 0;
  std::uint8_t rank = 0;
  if (!c->take_u8(&dtype)) return corruption("truncated tensor record");
  if (dtype != 0) return corruption("unknown tensor dtype");
  if (!c->take_u8(&rank)) return corruption("truncated tensor record");
  if (rank > kMaxWireTensorRank) return corruption("implausible tensor rank");
  std::vector<std::int64_t> dims(rank);
  std::int64_t numel = 1;
  for (std::uint8_t i = 0; i < rank; ++i) {
    std::uint64_t d = 0;
    if (!c->take_u64(&d)) return corruption("truncated tensor dims");
    if (d == 0 || d > static_cast<std::uint64_t>(kMaxWireTensorElems)) {
      return corruption("implausible tensor dim");
    }
    dims[i] = static_cast<std::int64_t>(d);
    numel *= dims[i];
    // Cap the running product, not just the result: each factor is bounded
    // above, so this cannot overflow before the check trips.
    if (numel > kMaxWireTensorElems) {
      return corruption("tensor element count over wire cap");
    }
  }
  const std::size_t payload =
      static_cast<std::size_t>(numel) * sizeof(float);
  if (c->left < payload) return corruption("truncated tensor payload");
  std::vector<float> data(static_cast<std::size_t>(numel));
  std::memcpy(data.data(), c->p, payload);
  c->p += payload;
  c->left -= payload;
  *out = tensor::Tensor(tensor::Shape(std::move(dims)), std::move(data));
  return Status::Ok();
}

Status expect_end(const Cursor& c) {
  if (c.left != 0) return corruption("trailing bytes after message");
  return Status::Ok();
}

}  // namespace

void encode_request(const WireRequest& req, std::vector<std::uint8_t>* out) {
  put_u32(out, kWireProtocolVersion);
  put_u64(out, req.client_req_id);
  put_i64(out, req.deadline_us);
  put_u64(out, req.tag);
  put_string16(out, req.tenant);
  put_tensor(out, req.input);
}

Status decode_request(const std::uint8_t* data, std::size_t len,
                      WireRequest* out) {
  Cursor c{data, len};
  Status s = take_version(&c);
  if (!s.ok()) return s;
  if (!c.take_u64(&out->client_req_id)) return corruption("truncated request");
  if (!c.take_i64(&out->deadline_us)) return corruption("truncated request");
  if (out->deadline_us < 0) return corruption("negative request deadline");
  if (!c.take_u64(&out->tag)) return corruption("truncated request");
  s = take_string16(&c, kMaxWireTenantBytes, "tenant", &out->tenant);
  if (!s.ok()) return s;
  s = take_tensor(&c, &out->input);
  if (!s.ok()) return s;
  return expect_end(c);
}

void encode_response(const WireResponse& res,
                     std::vector<std::uint8_t>* out) {
  put_u32(out, kWireProtocolVersion);
  put_u64(out, res.client_req_id);
  put_u8(out, res.code);
  put_string16(out, res.message);
  put_string16(out, res.scheme);
  put_u8(out, res.degraded);
  put_f64(out, res.server_latency_us);
  put_u8(out, res.code == 0 ? 1 : 0);
  if (res.code == 0) put_tensor(out, res.output);
}

Status decode_response(const std::uint8_t* data, std::size_t len,
                       WireResponse* out) {
  Cursor c{data, len};
  Status s = take_version(&c);
  if (!s.ok()) return s;
  if (!c.take_u64(&out->client_req_id)) {
    return corruption("truncated response");
  }
  if (!c.take_u8(&out->code)) return corruption("truncated response");
  s = take_string16(&c, kMaxWireMessageBytes, "status message",
                    &out->message);
  if (!s.ok()) return s;
  s = take_string16(&c, kMaxWireMessageBytes, "scheme", &out->scheme);
  if (!s.ok()) return s;
  if (!c.take_u8(&out->degraded)) return corruption("truncated response");
  if (out->degraded > 1) return corruption("bad degraded flag");
  if (!c.take_f64(&out->server_latency_us)) {
    return corruption("truncated response");
  }
  std::uint8_t has_output = 0;
  if (!c.take_u8(&has_output)) return corruption("truncated response");
  if (has_output > 1) return corruption("bad output-present flag");
  // Canonical coupling: a tensor travels with ok responses, exactly.
  if ((out->code == 0) != (has_output == 1)) {
    return corruption("output presence disagrees with status code");
  }
  if (has_output == 1) {
    s = take_tensor(&c, &out->output);
    if (!s.ok()) return s;
  }
  return expect_end(c);
}

void encode_health(const WireHealth& h, std::vector<std::uint8_t>* out) {
  put_u32(out, kWireProtocolVersion);
  put_u8(out, h.ready);
  put_u8(out, h.draining);
  put_u32(out, h.degrade_level);
  put_u64(out, h.queue_depth);
  put_u64(out, h.accepted);
  put_u64(out, h.rejected);
  put_u64(out, h.shed);
}

Status decode_health(const std::uint8_t* data, std::size_t len,
                     WireHealth* out) {
  Cursor c{data, len};
  Status s = take_version(&c);
  if (!s.ok()) return s;
  if (!c.take_u8(&out->ready)) return corruption("truncated health");
  if (!c.take_u8(&out->draining)) return corruption("truncated health");
  if (out->ready > 1 || out->draining > 1) {
    return corruption("bad health flag");
  }
  if (!c.take_u32(&out->degrade_level)) return corruption("truncated health");
  if (!c.take_u64(&out->queue_depth)) return corruption("truncated health");
  if (!c.take_u64(&out->accepted)) return corruption("truncated health");
  if (!c.take_u64(&out->rejected)) return corruption("truncated health");
  if (!c.take_u64(&out->shed)) return corruption("truncated health");
  return expect_end(c);
}

}  // namespace odq::net
