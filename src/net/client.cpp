#include "net/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/fault.hpp"

namespace odq::net {

using util::Status;
using util::StatusCode;
using util::StatusOr;

namespace {

constexpr auto kNoBudget = std::chrono::steady_clock::time_point::max();

// Inference is side-effect free, so "safe to retry" reduces to "retrying
// could plausibly succeed": transient refusals and transport damage yes,
// deterministic rejections and spent budgets no.
bool retryable(const Status& s) {
  switch (s.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kIoError:
    case StatusCode::kCorruption:
      return true;
    default:
      return false;
  }
}

std::int64_t remaining_us(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             deadline - std::chrono::steady_clock::now())
      .count();
}

}  // namespace

NetClient::NetClient(ClientConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

Status NetClient::ensure_connected() {
  if (sock_.valid()) return Status::Ok();
  auto connected = connect_local(cfg_.port, cfg_.connect_timeout_ms);
  if (!connected.ok()) return connected.status();
  sock_ = std::move(connected.value());
  sock_.set_read_timeout_ms(cfg_.read_timeout_ms);
  if (ever_connected_) ++stats_.reconnects;
  ever_connected_ = true;
  return Status::Ok();
}

void NetClient::drop_connection() { sock_.close(); }

Status NetClient::send_request_frame(
    const WireRequest& req, std::chrono::steady_clock::time_point deadline) {
  (void)deadline;
  std::vector<std::uint8_t> payload;
  encode_request(req, &payload);
  if (util::fault_fire("net.slowloris")) {
    // Dribble half the frame, stall past any sane server receive timeout,
    // then try to finish — from the server's side this is a mid-frame
    // stall and the connection should be killed, not waited on.
    std::vector<std::uint8_t> bytes;
    encode_frame(FrameType::kInferRequest, payload.data(), payload.size(),
                 &bytes);
    const std::size_t half = bytes.size() / 2;
    Status s = sock_.write_all(bytes.data(), half);
    if (!s.ok()) return s;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(cfg_.slowloris_stall_ms));
    return sock_.write_all(bytes.data() + half, bytes.size() - half);
  }
  return write_frame(sock_, FrameType::kInferRequest, payload.data(),
                     payload.size());
}

StatusOr<WireResponse> NetClient::read_response() {
  for (;;) {
    Frame frame;
    Status st;
    const ReadOutcome outcome = read_frame(sock_, &frame, &st);
    switch (outcome) {
      case ReadOutcome::kIdleTimeout:
        return Status(StatusCode::kIoError,
                      "timed out waiting for response");
      case ReadOutcome::kPeerClosed:
        return Status(StatusCode::kIoError,
                      "server closed the connection");
      case ReadOutcome::kError:
        return st;
      case ReadOutcome::kFrame:
        break;
    }
    if (frame.type != FrameType::kInferResponse) continue;  // stray frame
    WireResponse res;
    Status s = decode_response(frame.payload.data(), frame.payload.size(),
                               &res);
    if (!s.ok()) return s;
    return res;
  }
}

StatusOr<WireResponse> NetClient::infer(
    const WireRequest& req, std::chrono::steady_clock::time_point deadline) {
  ++stats_.requests;
  Status last(StatusCode::kUnavailable, "no attempt made");
  for (int attempt = 0; attempt < cfg_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      // Jittered exponential backoff: base * 2^(attempt-1), capped, then
      // jittered into [1/2, 1]x so synchronized clients desynchronize.
      std::int64_t delay_ms = cfg_.backoff_base_ms << (attempt - 1);
      delay_ms = std::min(delay_ms, cfg_.backoff_max_ms);
      if (delay_ms > 0) {
        const std::int64_t half = delay_ms / 2;
        delay_ms = half + static_cast<std::int64_t>(rng_.uniform_u64(
                              static_cast<std::uint64_t>(delay_ms - half) +
                              1));
      }
      if (deadline != kNoBudget &&
          remaining_us(deadline) <= delay_ms * 1000) {
        ++stats_.deadline_give_ups;
        return Status(StatusCode::kDeadlineExceeded,
                      "retry budget exhausted; last error: " +
                          last.to_string());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    if (deadline != kNoBudget && remaining_us(deadline) <= 0) {
      ++stats_.deadline_give_ups;
      return Status(StatusCode::kDeadlineExceeded,
                    "deadline passed before send; last error: " +
                        last.to_string());
    }
    ++stats_.attempts;
    Status s = ensure_connected();
    if (!s.ok()) {
      last = s;
      drop_connection();
      continue;  // connect failures are always retryable
    }
    // Refresh the relative deadline each attempt: the server sheds with
    // whatever budget is actually left, not the original one.
    WireRequest attempt_req = req;
    if (deadline != kNoBudget) {
      attempt_req.deadline_us = std::max<std::int64_t>(
          1, remaining_us(deadline));
    }
    s = send_request_frame(attempt_req, deadline);
    if (!s.ok()) {
      last = s;
      drop_connection();
      if (retryable(s)) continue;
      return s;
    }
    auto response = read_response();
    if (!response.ok()) {
      last = response.status();
      drop_connection();  // stream state is unknown: start clean
      if (retryable(last)) continue;
      return last;
    }
    WireResponse res = std::move(response.value());
    if (res.code != 0) {
      Status rs(static_cast<StatusCode>(res.code), res.message);
      if (retryable(rs)) {  // connection is fine, the request was refused
        last = rs;
        continue;
      }
      return rs;
    }
    return res;
  }
  return last;
}

StatusOr<WireHealth> NetClient::health() {
  Status s = ensure_connected();
  if (!s.ok()) return s;
  s = write_frame(sock_, FrameType::kHealthRequest, nullptr, 0);
  if (!s.ok()) {
    drop_connection();
    return s;
  }
  for (;;) {
    Frame frame;
    Status st;
    const ReadOutcome outcome = read_frame(sock_, &frame, &st);
    if (outcome == ReadOutcome::kFrame) {
      if (frame.type != FrameType::kHealthResponse) continue;
      WireHealth h;
      st = decode_health(frame.payload.data(), frame.payload.size(), &h);
      if (!st.ok()) {
        drop_connection();
        return st;
      }
      return h;
    }
    drop_connection();
    if (outcome == ReadOutcome::kError) return st;
    return Status(StatusCode::kIoError, "no health response");
  }
}

Status NetClient::send_shutdown() {
  Status s = ensure_connected();
  if (!s.ok()) return s;
  s = write_frame(sock_, FrameType::kShutdown, nullptr, 0);
  if (!s.ok()) {
    drop_connection();
    return s;
  }
  // The ack arrives only after every in-flight request on this connection
  // has been answered — reading it IS the drain barrier.
  for (;;) {
    Frame frame;
    Status st;
    const ReadOutcome outcome = read_frame(sock_, &frame, &st);
    if (outcome == ReadOutcome::kFrame) {
      if (frame.type == FrameType::kShutdown) {
        drop_connection();
        return Status::Ok();
      }
      continue;  // responses for earlier requests drain first
    }
    drop_connection();
    if (outcome == ReadOutcome::kError) return st;
    return Status(StatusCode::kIoError,
                  "connection ended before shutdown ack");
  }
}

}  // namespace odq::net
