// NetClient: synchronous serving client with deadline-budgeted retries.
//
// One client owns one connection (lazily opened, transparently reopened)
// and runs strict request/response: send a frame, read frames until the
// matching kInferResponse arrives. All failures are typed Status; the
// retry loop decides what is safe to try again:
//
//   RETRIED (idempotent-safe — inference has no side effects, and these
//   codes mean either "never executed" or "transport damage"):
//     kUnavailable        queue full / engine shutting down / load shed
//     kResourceExhausted  tenant admission limit — backs off and retries
//     kIoError            connect / send / recv failure (reconnects first)
//     kCorruption         frame-level damage on the stream (reconnects) —
//                         the net.frame_crc drill lands here
//
//   NOT RETRIED (retrying cannot help, or the budget is gone):
//     kInvalidArgument, kFailedPrecondition (version skew),
//     kDeadlineExceeded, kNotFound
//
// Backoff is jittered exponential (base * 2^attempt, uniformly jittered
// to [1/2, 1]x, capped), driven by a seeded util::Rng so a fixed seed
// gives a reproducible retry schedule. Every sleep is clamped to the
// remaining deadline budget; when the budget cannot cover another attempt
// the client returns kDeadlineExceeded itself.
//
// Fault site `net.slowloris` (docs/serving.md): the nth infer send
// dribbles the first half of the request frame, stalls past the server's
// receive timeout, then tries to finish — exercising the server's
// mid-frame timeout kill from a real client.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace odq::net {

struct ClientConfig {
  std::uint16_t port = 0;
  std::int64_t connect_timeout_ms = 2000;
  // Receive timeout per read while waiting for a response.
  std::int64_t read_timeout_ms = 5000;
  int max_attempts = 4;             // 1 initial + up to 3 retries
  std::int64_t backoff_base_ms = 5;  // first retry delay (pre-jitter)
  std::int64_t backoff_max_ms = 200;
  std::uint64_t seed = 1;  // jitter rng seed (reproducible schedules)
  // How long the net.slowloris fault stalls mid-frame.
  std::int64_t slowloris_stall_ms = 1500;
};

struct ClientStats {
  std::uint64_t requests = 0;   // infer() calls
  std::uint64_t attempts = 0;   // wire-level tries (>= requests)
  std::uint64_t retries = 0;    // attempts beyond the first
  std::uint64_t reconnects = 0;
  std::uint64_t deadline_give_ups = 0;  // budget died before an answer
};

class NetClient {
 public:
  explicit NetClient(ClientConfig cfg);

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // Send one inference request and wait for its response. `deadline` is
  // both the retry budget here and (converted to a relative budget at
  // each send) the server-side shed point. A response whose own code is
  // an error comes back as that Status, after the retry policy has had
  // its chance. kNoDeadline (time_point::max()) disables the budget.
  util::StatusOr<WireResponse> infer(
      const WireRequest& req,
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max());

  // One health probe round-trip (no retries — probes are cheap and the
  // caller polls anyway).
  util::StatusOr<WireHealth> health();

  // Clean-stop handshake: send kShutdown, wait for the server's empty
  // kShutdown ack (which arrives only after every in-flight request on
  // this connection has been answered).
  util::Status send_shutdown();

  const ClientStats& stats() const { return stats_; }

 private:
  util::Status ensure_connected();
  util::Status send_request_frame(const WireRequest& req,
                                  std::chrono::steady_clock::time_point
                                      deadline);
  // Read frames until a kInferResponse arrives (health responses for
  // interleaved probes are impossible here: one outstanding request).
  util::StatusOr<WireResponse> read_response();
  void drop_connection();

  ClientConfig cfg_;
  Socket sock_;
  util::Rng rng_;
  ClientStats stats_;
  bool ever_connected_ = false;
};

}  // namespace odq::net
