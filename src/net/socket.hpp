// Thin RAII wrappers over POSIX TCP sockets, Status-returning throughout.
//
// The serving front end never touches raw fds: Socket owns one connected
// stream (move-only, closes on destruction), Listener owns one listening
// socket. Every failure-capable syscall is bracketed by a deterministic
// fault site (docs/robustness.md, docs/serving.md):
//
//   net.accept   Listener::accept fails with kIoError (the accept loop
//                logs and keeps accepting — one bad accept never stops
//                the server)
//   net.read     Socket::read_some fails with kIoError (the connection is
//                torn down cleanly; in-flight requests still drain)
//   net.write    Socket::write_all fails with kIoError (ditto)
//
// Reads support a per-call timeout (SO_RCVTIMEO) — the slowloris defense:
// a peer that dribbles bytes mid-frame is disconnected instead of pinning
// a server thread forever. Writes are full-delivery loops (write_all
// retries partial writes), so callers never see short writes.
//
// Everything here is loopback/IPv4; the wire format on top (frame.hpp) is
// explicitly little-endian so the codec, not the socket layer, owns
// portability.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace odq::net {

// A connected TCP stream. Move-only; closes its fd on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Read up to `len` bytes. On success *n_read > 0; *n_read == 0 means the
  // peer closed cleanly (EOF). kIoError covers read failures and — when a
  // receive timeout is set — a timeout with no bytes delivered, which the
  // caller distinguishes via would_block_last().
  util::Status read_some(void* buf, std::size_t len, std::size_t* n_read);

  // Write all `len` bytes, retrying partial writes. kIoError on failure
  // (including a closed peer: SIGPIPE is suppressed via MSG_NOSIGNAL).
  util::Status write_all(const void* buf, std::size_t len);

  // Receive timeout for subsequent reads; 0 disables (block forever).
  util::Status set_read_timeout_ms(std::int64_t timeout_ms);

  // True when the last read_some failure was a receive timeout
  // (EAGAIN/EWOULDBLOCK) rather than a hard error — the slowloris /
  // idle-poll distinction.
  bool would_block_last() const { return would_block_last_; }

  // Half-close the read side (wakes a blocked peer write / our reads EOF).
  void shutdown_read();
  // Half-close the write side (peer's reads see EOF after the drain).
  void shutdown_write();
  void close();

 private:
  int fd_ = -1;
  bool would_block_last_ = false;
};

// A listening TCP socket bound to 127.0.0.1.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Bind to 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, readable
  // via port() afterwards) and listen.
  util::Status bind_and_listen(std::uint16_t port, int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  // Block for one connection. kIoError on accept failure (incl. the
  // net.accept fault site); kUnavailable once close() was called.
  util::StatusOr<Socket> accept();

  // Close the listening fd; a blocked accept() returns kUnavailable.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// Connect to 127.0.0.1:`port` with a bounded connect timeout.
util::StatusOr<Socket> connect_local(std::uint16_t port,
                                     std::int64_t timeout_ms = 2000);

}  // namespace odq::net
