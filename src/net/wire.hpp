// Serving wire messages: the payloads carried inside net frames.
//
// Tensors travel as dtype/rank/dims records — the v3 checkpoint idiom
// (docs/robustness.md "Checkpoint format v3") — so the request codec and
// the checkpoint loader share one vocabulary for shape metadata:
//
//   u8  dtype    0 = f32 (the only dtype today)
//   u8  rank     <= 8
//   u64 dims[rank]
//   f32 payload[numel]          little-endian
//
// Every message starts with the u32 protocol version; a mismatch is
// kFailedPrecondition (upgrade skew), every other malformation is
// kCorruption, and decoders are strict: bounds-checked cursor reads (no
// over-read on truncated payloads), element-count caps (no
// attacker-chosen allocations), and an exact-length check (trailing
// garbage is corruption). Encoding is canonical — encode(decode(bytes))
// is byte-identical — which is what the seeded round-trip property suite
// pins (tests/net/test_wire_property.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/status.hpp"

namespace odq::net {

inline constexpr std::uint32_t kWireProtocolVersion = 1;
inline constexpr std::size_t kMaxWireTenantBytes = 64;
inline constexpr std::size_t kMaxWireMessageBytes = 1024;
inline constexpr std::size_t kMaxWireTensorRank = 8;
// Element cap for decoded tensors: 16M floats = 64 MiB, far above any
// model input/output here, far below an allocation bomb.
inline constexpr std::int64_t kMaxWireTensorElems = 16u << 20;

struct WireRequest {
  std::uint64_t client_req_id = 0;
  std::string tenant;              // admission identity; may be empty
  std::int64_t deadline_us = 0;    // remaining budget at send time; 0 = none
  std::uint64_t tag = 0;           // shadow-lane sampling key
  tensor::Tensor input;            // f32
};

struct WireResponse {
  std::uint64_t client_req_id = 0;
  std::uint8_t code = 0;           // util::StatusCode as u8
  std::string message;             // empty when ok
  std::string scheme;              // scheme the request was served under
  std::uint8_t degraded = 0;       // 1 = load-shed degraded path
  double server_latency_us = 0.0;  // enqueue -> done on the server clock
  tensor::Tensor output;           // present iff code == 0
};

struct WireHealth {
  std::uint8_t ready = 0;     // accepting new requests
  std::uint8_t draining = 0;  // shutdown drain in progress
  std::uint32_t degrade_level = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
};

void encode_request(const WireRequest& req, std::vector<std::uint8_t>* out);
util::Status decode_request(const std::uint8_t* data, std::size_t len,
                            WireRequest* out);

void encode_response(const WireResponse& res, std::vector<std::uint8_t>* out);
util::Status decode_response(const std::uint8_t* data, std::size_t len,
                             WireResponse* out);

void encode_health(const WireHealth& h, std::vector<std::uint8_t>* out);
util::Status decode_health(const std::uint8_t* data, std::size_t len,
                           WireHealth* out);

}  // namespace odq::net
