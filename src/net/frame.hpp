// Length-prefixed, CRC32-protected wire frames for the serving protocol.
//
// Layout (all integers little-endian):
//
//   u32 magic        0x46514F44 ("ODQF")
//   u8  type         FrameType
//   u8  flags        0 (reserved)
//   u16 reserved     0
//   u32 payload_len  <= max_payload (default 16 MiB)
//   u32 header_crc   CRC32 over the preceding 12 bytes
//   payload          payload_len bytes
//   u32 payload_crc  CRC32 over the payload
//
// The header carries its own CRC so a desynced or garbage stream is
// detected after at most 16 bytes — the decoder never trusts payload_len
// from an unvalidated header, which is what bounds over-read on corrupt
// input. Every decode failure is a typed util::Status (kCorruption for
// bad magic / CRC / oversize / truncation, kIoError for transport
// failures); nothing in this layer throws or crashes on hostile bytes.
//
// Fault site (docs/robustness.md): `net.frame_crc` — the nth encoded
// frame lands with bit 0 of payload byte 0 flipped *after* the CRCs were
// computed, so the sender succeeds and only the receiver notices (the
// silent-corruption drill, same idiom as ckpt.bitflip).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/socket.hpp"
#include "util/status.hpp"

namespace odq::net {

inline constexpr std::uint32_t kFrameMagic = 0x46514F44;  // "ODQF"
inline constexpr std::size_t kFrameHeaderBytes = 16;
inline constexpr std::size_t kFrameTrailerBytes = 4;
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

enum class FrameType : std::uint8_t {
  kInferRequest = 1,
  kInferResponse = 2,
  kHealthRequest = 3,
  kHealthResponse = 4,
  // Admin: drain everything in flight, ack with an empty kShutdown frame,
  // then exit — the multi-process driver's clean-stop handshake.
  kShutdown = 5,
};

struct Frame {
  FrameType type = FrameType::kInferRequest;
  std::vector<std::uint8_t> payload;
};

// Append one encoded frame to `out`.
void encode_frame(FrameType type, const void* payload, std::size_t len,
                  std::vector<std::uint8_t>* out);

// Decode one frame from the front of [data, data+len). On success sets
// *consumed to the full frame size. Typed failures (nothing consumed):
//   kCorruption — bad magic, bad header/payload CRC, oversized
//                 payload_len, or `len` shorter than the frame (truncation)
// The decoder never reads past data+len.
util::Status decode_frame(const std::uint8_t* data, std::size_t len,
                          Frame* out, std::size_t* consumed,
                          std::size_t max_payload = kMaxFramePayload);

// Socket transport. write_frame encodes and writes atomically from the
// caller's point of view (one write_all).
util::Status write_frame(Socket& sock, FrameType type, const void* payload,
                         std::size_t len);

enum class ReadOutcome {
  kFrame,        // *out holds a validated frame
  kPeerClosed,   // clean EOF at a frame boundary
  kIdleTimeout,  // receive timeout with zero bytes read — caller may retry
  kError,        // *status holds the typed failure:
                 //   kCorruption  garbage / truncated / CRC mismatch
                 //   kIoError     transport failure, or a mid-frame receive
                 //                timeout (the slowloris defense: a peer
                 //                that stalls inside a frame is cut off)
};

ReadOutcome read_frame(Socket& sock, Frame* out, util::Status* status,
                       std::size_t max_payload = kMaxFramePayload);

}  // namespace odq::net
