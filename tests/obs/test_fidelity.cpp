// Fidelity registry: golden error metrics on hand-computed tensors, ODQ
// mask-side attribution, histogram bounds, JSON form, and snapshot
// equality between a 1-thread and a 4-worker-pool executor run.
#include "obs/fidelity.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/odq.hpp"
#include "json_checker.hpp"
#include "tensor/tensor.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace odq {
namespace {

// Match test_trace.cpp: a 4-worker global pool, sized before first use.
const int kForcePoolSize = [] {
  ::setenv("ODQ_THREADS", "4", 1);
  return 4;
}();

class FidelityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_fidelity_enabled(true);
    obs::fidelity_reset();
  }
  void TearDown() override {
    obs::fidelity_reset();
    obs::set_fidelity_enabled(false);
  }
};

TEST_F(FidelityTest, ErrorAccumGoldenValues) {
  // ref = (2, 0), out = (1, 0): err_sq = 1, ref_sq = 4.
  obs::ErrorAccum a;
  a.add(2.0, 1.0);
  a.add(0.0, 0.0);
  EXPECT_EQ(a.count, 2);
  EXPECT_NEAR(a.sqnr_db(), 10.0 * std::log10(4.0), 1e-12);  // ~6.0206 dB
  EXPECT_NEAR(a.cosine(), 1.0, 1e-12);  // collinear
  EXPECT_NEAR(a.mean_abs_err(), 0.5, 1e-12);
  EXPECT_NEAR(a.rmse(), std::sqrt(0.5), 1e-12);
  EXPECT_EQ(a.err_max, 1.0);

  // Orthogonal vectors: ref = (1, 0), out = (0, 1).
  obs::ErrorAccum o;
  o.add(1.0, 0.0);
  o.add(0.0, 1.0);
  EXPECT_NEAR(o.cosine(), 0.0, 1e-12);
  EXPECT_NEAR(o.sqnr_db(), 10.0 * std::log10(0.5), 1e-12);  // ~-3.0103 dB
}

TEST_F(FidelityTest, ErrorAccumEdgeCases) {
  obs::ErrorAccum empty;
  EXPECT_EQ(empty.sqnr_db(), 0.0);
  EXPECT_EQ(empty.cosine(), 1.0);  // zero vectors count as aligned
  EXPECT_EQ(empty.rmse(), 0.0);

  obs::ErrorAccum exact;  // exact match clamps to +300 dB, not +inf
  exact.add(3.0, 3.0);
  EXPECT_EQ(exact.sqnr_db(), 300.0);
  EXPECT_NEAR(exact.cosine(), 1.0, 1e-12);

  obs::ErrorAccum zero_ref;  // error with an all-zero reference: -300 dB
  zero_ref.add(0.0, 1.0);
  EXPECT_EQ(zero_ref.sqnr_db(), -300.0);
}

TEST_F(FidelityTest, ErrorAccumMergeMatchesSerial) {
  util::Rng rng(7);
  std::vector<double> ref(64), out(64);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ref[i] = rng.normal_f(0, 1);
    out[i] = ref[i] + rng.normal_f(0, 0.1f);
  }
  obs::ErrorAccum whole, lo, hi;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    whole.add(ref[i], out[i]);
    (i < 32 ? lo : hi).add(ref[i], out[i]);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.count, whole.count);
  EXPECT_DOUBLE_EQ(lo.ref_sq, whole.ref_sq);
  EXPECT_DOUBLE_EQ(lo.err_sq, whole.err_sq);
  EXPECT_DOUBLE_EQ(lo.err_abs, whole.err_abs);
  EXPECT_DOUBLE_EQ(lo.err_max, whole.err_max);
}

TEST_F(FidelityTest, RecordCreatesSortedCells) {
  const float ref[] = {1.0f, 2.0f};
  const float out[] = {1.0f, 2.5f};
  obs::fidelity_record("static_int8", 1, ref, out, 2);
  obs::fidelity_record("drq", 0, ref, out, 2);
  obs::fidelity_record("static_int8", 0, ref, out, 2);
  obs::fidelity_record("static_int8", 0, ref, out, 2);

  const auto snap = obs::fidelity_snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].scheme, "drq");
  EXPECT_EQ(snap[1].scheme, "static_int8");
  EXPECT_EQ(snap[1].layer, 0);
  EXPECT_EQ(snap[1].calls, 2);
  EXPECT_EQ(snap[1].total.count, 4);
  EXPECT_EQ(snap[2].layer, 1);
  EXPECT_TRUE(snap[0].hist.empty());  // histogram is ODQ-only
  EXPECT_EQ(snap[0].predictor.count, 0);
}

TEST_F(FidelityTest, DisabledRecordsNothing) {
  obs::set_fidelity_enabled(false);
  const float v[] = {1.0f};
  obs::fidelity_record("odq", 0, v, v, 1);
  EXPECT_TRUE(obs::fidelity_snapshot().empty());
}

TEST_F(FidelityTest, OdqMaskSideAttribution) {
  const float ref[] = {1.0f, 2.0f, 3.0f, 4.0f};
  const float full[] = {1.0f, 2.0f, 3.5f, 4.5f};
  const float pred[] = {0.5f, 2.0f, 2.5f, 4.5f};
  const float mag[] = {0.1f, 0.3f, 0.9f, 2.0f};
  const std::uint8_t mask[] = {1, 0, 1, 0};
  obs::fidelity_record_odq("odq", 2, 0.25f, ref, full, pred, mag, mask, 4);

  const auto snap = obs::fidelity_snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const obs::FidelityLayerSnapshot& s = snap[0];
  EXPECT_EQ(s.layer, 2);
  EXPECT_FLOAT_EQ(s.threshold, 0.25f);

  EXPECT_EQ(s.total.count, 4);
  EXPECT_DOUBLE_EQ(s.total.err_abs, 1.0);  // 0 + 0 + 0.5 + 0.5
  EXPECT_EQ(s.sensitive.count, 2);         // indices 0 and 2
  EXPECT_DOUBLE_EQ(s.sensitive.err_abs, 0.5);
  EXPECT_EQ(s.insensitive.count, 2);  // indices 1 and 3
  EXPECT_DOUBLE_EQ(s.insensitive.err_abs, 0.5);
  EXPECT_EQ(s.predictor.count, 4);
  EXPECT_DOUBLE_EQ(s.predictor.err_abs, 1.5);  // 0.5 + 0 + 0.5 + 0.5

  // Histogram range anchors at 4x threshold, threshold on a bin edge.
  EXPECT_DOUBLE_EQ(s.hist_lo, 0.0);
  EXPECT_DOUBLE_EQ(s.hist_hi, 1.0);
  ASSERT_EQ(s.hist.size(), obs::kFidelityHistBins);
  EXPECT_EQ(s.hist_total(), 4u);
  EXPECT_EQ(s.hist.back(), 1u);  // 2.0 overflows into the last bin
  // Magnitudes at/above the 0.25 threshold: 0.3, 0.9, 2.0.
  EXPECT_DOUBLE_EQ(s.hist_fraction_above(0.25), 0.75);
}

TEST_F(FidelityTest, JsonFormRoundTrips) {
  const float ref[] = {1.0f, 2.0f};
  const float full[] = {1.0f, 2.5f};
  const float mag[] = {0.2f, 0.6f};
  const std::uint8_t mask[] = {0, 1};
  obs::fidelity_record_odq("odq", 0, 0.4f, ref, full, full, mag, mask, 2);
  obs::fidelity_record("drq", 0, ref, full, 2);

  util::JsonWriter w;
  obs::fidelity_to_json(w);
  const testjson::Value doc = testjson::parse(w.take());
  ASSERT_EQ(doc.arr.size(), 2u);  // drq sorts before odq
  EXPECT_EQ(doc.arr[0].at("scheme").str, "drq");
  EXPECT_FALSE(doc.arr[0].has("pred_magnitude_hist"));
  const testjson::Value& odq_cell = doc.arr[1];
  EXPECT_EQ(odq_cell.at("scheme").str, "odq");
  EXPECT_EQ(odq_cell.at("total").at("count").num, 2.0);
  EXPECT_TRUE(odq_cell.has("predictor_only"));
  EXPECT_TRUE(odq_cell.has("sensitive"));
  EXPECT_TRUE(odq_cell.has("insensitive"));
  const testjson::Value& hist = odq_cell.at("pred_magnitude_hist");
  // 4 x 0.4 with the threshold stored as float.
  EXPECT_DOUBLE_EQ(hist.at("hi").num, 4.0 * static_cast<double>(0.4f));
  EXPECT_EQ(hist.at("counts").arr.size(), obs::kFidelityHistBins);
}

// The acceptance property from docs/observability.md: for a sequential
// forward pass, the fidelity snapshot is identical whether the executor's
// conv tiles ran serially or on the 4-worker pool.
TEST_F(FidelityTest, SnapshotIdenticalAcrossThreadCounts) {
  const tensor::Shape in_shape{2, 3, 9, 9};
  const tensor::Shape w_shape{5, 3, 3, 3};
  util::Rng rng(11);
  tensor::Tensor input(in_shape), weight(w_shape), bias(tensor::Shape{5});
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    input[i] = rng.uniform_f(0, 1);
  }
  for (std::int64_t i = 0; i < weight.numel(); ++i) {
    weight[i] = rng.normal_f(0, 0.3f);
  }
  for (std::int64_t i = 0; i < bias.numel(); ++i) {
    bias[i] = rng.normal_f(0, 0.1f);
  }

  auto run_with_threads = [&](int num_threads) {
    obs::fidelity_reset();
    core::OdqConfig cfg;
    cfg.threshold = 0.15f;
    cfg.num_threads = num_threads;
    core::OdqConvExecutor exec(cfg);
    exec.run(input, weight, bias, /*stride=*/1, /*pad=*/1, /*conv_id=*/0);
    exec.run(input, weight, bias, /*stride=*/2, /*pad=*/0, /*conv_id=*/1);
    return obs::fidelity_snapshot();
  };

  const auto serial = run_with_threads(1);
  const auto pooled = run_with_threads(0);  // global 4-worker pool

  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const obs::FidelityLayerSnapshot& a = serial[i];
    const obs::FidelityLayerSnapshot& b = pooled[i];
    SCOPED_TRACE("cell " + a.scheme + "/" + std::to_string(a.layer));
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.layer, b.layer);
    EXPECT_EQ(a.calls, b.calls);
    EXPECT_EQ(a.threshold, b.threshold);
    // Bit-exact, not approximate: accumulation is serial per call in flat
    // index order and the integer conv pipeline is thread-count-invariant.
    for (auto [x, y] : {std::pair{&a.total, &b.total},
                        std::pair{&a.predictor, &b.predictor},
                        std::pair{&a.sensitive, &b.sensitive},
                        std::pair{&a.insensitive, &b.insensitive}}) {
      EXPECT_EQ(x->count, y->count);
      EXPECT_EQ(x->ref_sq, y->ref_sq);
      EXPECT_EQ(x->out_sq, y->out_sq);
      EXPECT_EQ(x->dot, y->dot);
      EXPECT_EQ(x->err_sq, y->err_sq);
      EXPECT_EQ(x->err_abs, y->err_abs);
      EXPECT_EQ(x->err_max, y->err_max);
    }
    EXPECT_EQ(a.hist, b.hist);
    EXPECT_EQ(a.hist_lo, b.hist_lo);
    EXPECT_EQ(a.hist_hi, b.hist_hi);
  }
  EXPECT_GT(serial.size(), 0u);
  EXPECT_EQ(serial[0].scheme, "odq");
}

}  // namespace
}  // namespace odq
