// Log-bucketed HDR histograms: bucket-layout invariants, golden quantiles
// against a sorted-vector oracle, merge/subtract algebra, lock-free sharded
// recording, and the windowed epoch ring (advance / skip / clock jumps).
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/proptest.hpp"
#include "obs/telemetry.hpp"
#include "util/rng.hpp"

namespace odq::obs {
namespace {

constexpr double kQuantiles[] = {0.0, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0};

// The oracle uses the same rank convention the histogram documents:
// rank = max(1, ceil(q * n)), order statistic sorted[rank - 1].
std::uint64_t oracle_quantile(const std::vector<std::uint64_t>& sorted,
                              double q) {
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

TEST(LogBucketLayout, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < (1ULL << kLogHistSubBits); ++v) {
    EXPECT_EQ(log_bucket_index(v), v);
    EXPECT_EQ(log_bucket_lo(v), v);
    EXPECT_EQ(log_bucket_hi(v), v + 1);
  }
}

TEST(LogBucketLayout, IndexIsMonotoneAndBoundsRoundTrip) {
  // Sweep every bucket: lo maps back to its own index, hi-1 stays inside,
  // and lo/hi tile the value axis with no gaps or overlaps.
  for (std::size_t i = 0; i < kLogHistBuckets; ++i) {
    const std::uint64_t lo = log_bucket_lo(i);
    const std::uint64_t hi = log_bucket_hi(i);
    ASSERT_LT(lo, hi) << "bucket " << i;
    EXPECT_EQ(log_bucket_index(lo), i);
    EXPECT_EQ(log_bucket_index(hi - 1), i);
    if (i + 1 < kLogHistBuckets) {
      EXPECT_EQ(log_bucket_hi(i), log_bucket_lo(i + 1)) << "gap at " << i;
    }
  }
}

TEST(LogBucketLayout, RelativeWidthBoundedAboveSubBucketRange) {
  // The HDR guarantee: above the exact range, bucket width <= lo / 32,
  // i.e. any value is representable to within ~3.1%.
  for (std::size_t i = 1ULL << kLogHistSubBits; i < kLogHistBuckets; ++i) {
    const std::uint64_t lo = log_bucket_lo(i);
    const std::uint64_t width = log_bucket_hi(i) - lo;
    EXPECT_LE(width * (1ULL << kLogHistSubBits), lo) << "bucket " << i;
  }
}

TEST(LogBucketLayout, HugeValuesClampIntoLastBucket) {
  const std::uint64_t top = std::uint64_t{1} << kLogHistMaxPow;
  EXPECT_EQ(log_bucket_index(top), kLogHistBuckets - 1);
  EXPECT_EQ(log_bucket_index(top * 2), kLogHistBuckets - 1);
  EXPECT_EQ(log_bucket_index(~std::uint64_t{0}), kLogHistBuckets - 1);
  EXPECT_EQ(log_bucket_index(top - 1), kLogHistBuckets - 1);
}

TEST(LogHistogram, CountSumMeanAreExact) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.quantile(0.5), 0u);
  h.add(3);
  h.add(1000);
  h.add(77777, 2);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 3u + 1000u + 2u * 77777u);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(h.sum()) / 4.0);
}

TEST(LogHistogram, MinMaxAreBucketResolution) {
  LogHistogram h;
  h.add(5);        // exact bucket: min == 5
  h.add(1000000);  // log bucket: max == hi-1 of its bucket
  EXPECT_EQ(h.min(), 5u);
  const std::size_t top = log_bucket_index(1000000);
  EXPECT_EQ(h.max(), log_bucket_hi(top) - 1);
  EXPECT_GE(h.max(), 1000000u);
}

// Golden quantiles: for any distribution, quantile(q) must land in the
// same bucket as the sorted-vector order statistic with the same rank.
void check_golden_quantiles(const std::vector<std::uint64_t>& samples) {
  LogHistogram h;
  for (std::uint64_t v : samples) h.add(v);
  std::vector<std::uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  ASSERT_EQ(h.count(), sorted.size());
  for (double q : kQuantiles) {
    const std::uint64_t got = h.quantile(q);
    const std::uint64_t want = oracle_quantile(sorted, q);
    EXPECT_EQ(log_bucket_index(got), log_bucket_index(want))
        << "q=" << q << " hist=" << got << " oracle=" << want;
    // And the reported value is the top of its bucket.
    EXPECT_EQ(got, log_bucket_hi(log_bucket_index(got)) - 1);
  }
}

TEST(LogHistogram, GoldenQuantilesUniform) {
  for (std::uint64_t c = 0; c < 20; ++c) {
    ODQ_PROP_CASE(cs, c);
    const int n = cs.rng().uniform_int(1, 5000);
    std::vector<std::uint64_t> samples;
    samples.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      samples.push_back(cs.rng().uniform_u64(200000));
    }
    check_golden_quantiles(samples);
  }
}

TEST(LogHistogram, GoldenQuantilesLognormal) {
  // Heavy-tailed latencies: exp(normal(mu, sigma)) stretched over several
  // octaves — the shape HDR bucketing exists for.
  for (std::uint64_t c = 0; c < 20; ++c) {
    ODQ_PROP_CASE(cs, c);
    const int n = cs.rng().uniform_int(100, 3000);
    const double mu = cs.rng().uniform(4.0, 10.0);
    const double sigma = cs.rng().uniform(0.3, 2.0);
    std::vector<std::uint64_t> samples;
    samples.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const double v = std::exp(mu + sigma * cs.rng().normal());
      samples.push_back(static_cast<std::uint64_t>(v));
    }
    check_golden_quantiles(samples);
  }
}

TEST(LogHistogram, GoldenQuantilesBimodal) {
  // Fast path + slow path: the p99 sits in the far mode, far from the mean.
  for (std::uint64_t c = 0; c < 20; ++c) {
    ODQ_PROP_CASE(cs, c);
    const int n = cs.rng().uniform_int(200, 4000);
    std::vector<std::uint64_t> samples;
    samples.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      if (cs.rng().uniform() < 0.85) {
        samples.push_back(300 + cs.rng().uniform_u64(300));
      } else {
        samples.push_back(50000 + cs.rng().uniform_u64(50000));
      }
    }
    check_golden_quantiles(samples);
  }
}

TEST(LogHistogram, MergeIsAssociativeAndOrderIndependent) {
  util::Rng rng(testprop::case_seed(101));
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 3000; ++i) samples.push_back(rng.uniform_u64(1 << 20));

  // Split into three parts; merge as (a+b)+c and a+(b+c) and c+a+b.
  LogHistogram part[3];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    part[i % 3].add(samples[i]);
  }
  LogHistogram whole;
  for (std::uint64_t v : samples) whole.add(v);

  auto merged = [](std::initializer_list<const LogHistogram*> hs) {
    LogHistogram out;
    for (const LogHistogram* h : hs) out.merge(*h);
    return out;
  };
  const LogHistogram ab_c = merged({&part[0], &part[1], &part[2]});
  const LogHistogram c_ab = merged({&part[2], &part[0], &part[1]});
  for (const LogHistogram* m : {&ab_c, &c_ab}) {
    EXPECT_EQ(m->count(), whole.count());
    EXPECT_EQ(m->sum(), whole.sum());
    for (std::size_t i = 0; i < kLogHistBuckets; ++i) {
      ASSERT_EQ(m->bucket_count(i), whole.bucket_count(i)) << "bucket " << i;
    }
    for (double q : kQuantiles) {
      EXPECT_EQ(m->quantile(q), whole.quantile(q)) << "q=" << q;
    }
  }
}

TEST(LogHistogram, SubtractRecoversTheDelta) {
  // The windowing primitive: (old + new) - old == new, bucket for bucket.
  util::Rng rng(testprop::case_seed(202));
  LogHistogram older, newer;
  for (int i = 0; i < 1000; ++i) older.add(rng.uniform_u64(100000));
  for (int i = 0; i < 500; ++i) newer.add(rng.uniform_u64(100000));
  LogHistogram cum = older;
  cum.merge(newer);
  cum.subtract(older);
  EXPECT_EQ(cum.count(), newer.count());
  EXPECT_EQ(cum.sum(), newer.sum());
  for (std::size_t i = 0; i < kLogHistBuckets; ++i) {
    ASSERT_EQ(cum.bucket_count(i), newer.bucket_count(i)) << "bucket " << i;
  }
}

TEST(ShardedLogHistogram, ConcurrentRecordingMatchesSerialExactly) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  ShardedLogHistogram sharded;
  LogHistogram serial;

  // Each thread records a deterministic per-thread stream; the merged
  // result must equal the serial replay of all four streams.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sharded, t] {
      util::Rng rng(testprop::case_seed(static_cast<std::uint64_t>(t)));
      for (int i = 0; i < kPerThread; ++i) {
        sharded.record(rng.uniform_u64(1 << 22));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    util::Rng rng(testprop::case_seed(static_cast<std::uint64_t>(t)));
    for (int i = 0; i < kPerThread; ++i) {
      serial.add(rng.uniform_u64(1 << 22));
    }
  }

  const LogHistogram merged = sharded.merged();
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_EQ(merged.sum(), serial.sum());
  for (std::size_t i = 0; i < kLogHistBuckets; ++i) {
    ASSERT_EQ(merged.bucket_count(i), serial.bucket_count(i)) << "bucket " << i;
  }
  for (double q : kQuantiles) {
    EXPECT_EQ(merged.quantile(q), serial.quantile(q)) << "q=" << q;
  }

  sharded.reset();
  EXPECT_TRUE(sharded.merged().empty());
}

// -- Windowed ring (WindowedSeries / WindowedCounter) ---------------------
//
// These drive advance() with a manual epoch clock; no wall time anywhere.

constexpr std::uint64_t kUs = 1;  // microseconds
constexpr std::uint64_t kSec = 1000000 * kUs;

class WindowRingTest : public ::testing::Test {
 protected:
  void SetUp() override { set_telemetry_enabled(true); }
  void TearDown() override { set_telemetry_enabled(false); }
};

TEST_F(WindowRingTest, SamplesBecomeVisibleOnAdvance) {
  WindowedSeries s("t.ring.visible");
  s.record(100);
  s.record(200);
  // Not yet advanced: windows are empty, total sees everything.
  EXPECT_EQ(s.window(1).count(), 0u);
  EXPECT_EQ(s.total().count(), 2u);

  s.advance(0 * kSec + 500000);  // epoch 0
  EXPECT_EQ(s.window(1).count(), 2u);
  EXPECT_EQ(s.window(10).count(), 2u);
  EXPECT_EQ(s.window(60).count(), 2u);
}

TEST_F(WindowRingTest, SameEpochAccumulatesIntoOneSlot) {
  WindowedSeries s("t.ring.same_epoch");
  s.record(10);
  s.advance(5 * kSec);
  s.record(20);
  s.record(30);
  s.advance(5 * kSec + 900000);  // still epoch 5
  EXPECT_EQ(s.window(1).count(), 3u);
  EXPECT_EQ(s.window(1).sum(), 60u);
  EXPECT_EQ(s.total().count(), 3u);
}

TEST_F(WindowRingTest, OldEpochsAgeOutOfNarrowWindowsFirst) {
  WindowedSeries s("t.ring.ageout");
  s.record(111);
  s.advance(0 * kSec);  // epoch 0 carries one sample
  s.record(222);
  s.advance(5 * kSec);  // epoch 5 carries the second

  // window(1) = epoch 5 only; window(10) = epochs (-5, 5] = both.
  EXPECT_EQ(s.window(1).count(), 1u);
  EXPECT_EQ(s.window(10).count(), 2u);
  EXPECT_EQ(s.window(60).count(), 2u);

  // Advance (with nothing new) to epoch 12: epoch 0 falls out of the 10s
  // window but stays in the 60s one.
  s.advance(12 * kSec);
  EXPECT_EQ(s.window(1).count(), 0u);
  EXPECT_EQ(s.window(10).count(), 1u);
  EXPECT_EQ(s.window(60).count(), 2u);

  // Past 60s: everything has aged out of every window; total remains.
  s.advance(70 * kSec);
  EXPECT_EQ(s.window(60).count(), 0u);
  EXPECT_EQ(s.total().count(), 2u);
}

TEST_F(WindowRingTest, EpochSkipLeavesInterveningEpochsEmpty) {
  WindowedSeries s("t.ring.skip");
  s.record(1);
  s.advance(0 * kSec);
  // No samples for epochs 1..58, then one at 59.
  s.record(2);
  s.advance(59 * kSec);
  EXPECT_EQ(s.window(1).count(), 1u);
  EXPECT_EQ(s.window(60).count(), 2u);  // epoch 0 is exactly 59 back: in
  s.advance(60 * kSec);
  EXPECT_EQ(s.window(60).count(), 1u);  // now 60 back: out
}

TEST_F(WindowRingTest, ClockJumpPastWholeRingDropsStaleSlots) {
  WindowedSeries s("t.ring.jump");
  s.record(7);
  s.advance(3 * kSec);
  EXPECT_EQ(s.window(60).count(), 1u);

  // Jump far past the 64-slot ring: the old slot's tag is stale, so no
  // window may resurrect it — but the cumulative total still has it.
  s.advance((3 + 1000) * kSec);
  EXPECT_EQ(s.window(1).count(), 0u);
  EXPECT_EQ(s.window(10).count(), 0u);
  EXPECT_EQ(s.window(60).count(), 0u);
  EXPECT_EQ(s.total().count(), 1u);

  // The ring keeps working after the jump.
  s.record(8);
  s.advance((3 + 1000) * kSec + 1000);
  EXPECT_EQ(s.window(1).count(), 1u);
}

TEST_F(WindowRingTest, BackwardsClockFoldsIntoCurrentEpoch) {
  WindowedSeries s("t.ring.backwards");
  s.record(1);
  s.advance(10 * kSec);
  // A now_us older than the current epoch must not tear the ring: the
  // delta folds into the newest slot instead.
  s.record(2);
  s.advance(4 * kSec);
  EXPECT_EQ(s.window(1).count(), 2u);
  EXPECT_EQ(s.total().count(), 2u);
}

TEST_F(WindowRingTest, ResetClearsSamplesButKeepsWorking) {
  WindowedSeries s("t.ring.reset");
  s.record(5);
  s.advance(1 * kSec);
  s.reset();
  EXPECT_EQ(s.total().count(), 0u);
  EXPECT_EQ(s.window(60).count(), 0u);
  s.record(6);
  s.advance(2 * kSec);
  EXPECT_EQ(s.window(1).count(), 1u);
}

TEST_F(WindowRingTest, DisabledRecordIsANoOp) {
  WindowedSeries s("t.ring.disabled");
  set_telemetry_enabled(false);
  s.record(9);
  set_telemetry_enabled(true);
  s.advance(1 * kSec);
  EXPECT_EQ(s.total().count(), 0u);
}

TEST_F(WindowRingTest, CounterWindowsTrackDeltas) {
  WindowedCounter c("t.ring.counter");
  c.add(5);
  c.advance(0 * kSec);
  EXPECT_EQ(c.total(), 5);
  EXPECT_EQ(c.window(1), 5);

  c.increment();
  c.increment();
  c.advance(5 * kSec);
  EXPECT_EQ(c.total(), 7);
  EXPECT_EQ(c.window(1), 2);
  EXPECT_EQ(c.window(10), 7);

  c.advance(12 * kSec);  // epoch 0's 5 ages out of the 10s window
  EXPECT_EQ(c.window(10), 2);
  EXPECT_EQ(c.window(60), 7);

  c.advance(2000 * kSec);  // far jump: all windows drain, total holds
  EXPECT_EQ(c.window(60), 0);
  EXPECT_EQ(c.total(), 7);
}

}  // namespace
}  // namespace odq::obs
