// Metrics registry: sharded recording, deterministic snapshots, JSON form.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "json_checker.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace odq {
namespace {

// Match test_trace.cpp: a 4-worker global pool, sized before first use.
const int kForcePoolSize = [] {
  ::setenv("ODQ_THREADS", "4", 1);
  return 4;
}();

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_metrics_enabled(true);
    obs::metrics_reset();
  }
  void TearDown() override {
    obs::metrics_reset();
    obs::set_metrics_enabled(false);
  }
};

std::vector<obs::MetricValue> snapshot_of(const std::string& name) {
  std::vector<obs::MetricValue> out;
  for (const obs::MetricValue& m : obs::metrics_snapshot()) {
    if (m.name == name) out.push_back(m);
  }
  return out;
}

TEST_F(MetricsTest, DisabledRecordsNothing) {
  obs::Counter& c = obs::counter("t.disabled.counter");
  obs::Distribution& d = obs::distribution("t.disabled.dist", 0.0, 1.0, 8);
  obs::set_metrics_enabled(false);
  c.add(5);
  d.record(0.5);
  obs::set_metrics_enabled(true);
  EXPECT_EQ(c.total(), 0);
  EXPECT_EQ(d.stats().count(), 0u);
}

TEST_F(MetricsTest, RegistryReturnsSameObjectAndChecksKinds) {
  obs::Counter& a = obs::counter("t.registry.name");
  obs::Counter& b = obs::counter("t.registry.name");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(obs::gauge("t.registry.name"), std::invalid_argument);
  EXPECT_THROW(obs::distribution("t.registry.name"), std::invalid_argument);
}

TEST_F(MetricsTest, ParallelCountsMatchSerialExactly) {
  constexpr std::int64_t kN = 10000;
  obs::Counter& serial = obs::counter("t.det.serial");
  obs::Counter& parallel = obs::counter("t.det.parallel");
  obs::Distribution& sd = obs::distribution("t.det.sdist", 0.0, 100.0, 16);
  obs::Distribution& pd = obs::distribution("t.det.pdist", 0.0, 100.0, 16);

  for (std::int64_t i = 0; i < kN; ++i) {
    serial.add(i % 7);
    sd.record(static_cast<double>(i % 100));
  }
  util::parallel_for(
      kN,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          parallel.add(i % 7);
          pd.record(static_cast<double>(i % 100));
        }
      },
      /*grain=*/64);

  // Counter totals and distribution moments merge to the serial answer no
  // matter how the work was sharded.
  EXPECT_EQ(parallel.total(), serial.total());
  const util::RunningStats s = sd.stats(), p = pd.stats();
  EXPECT_EQ(p.count(), s.count());
  EXPECT_DOUBLE_EQ(p.sum(), s.sum());
  EXPECT_DOUBLE_EQ(p.min(), s.min());
  EXPECT_DOUBLE_EQ(p.max(), s.max());
  EXPECT_NEAR(p.mean(), s.mean(), 1e-9);
  // Histograms agree bin by bin.
  const util::Histogram hs = sd.histogram(), hp = pd.histogram();
  ASSERT_EQ(hp.bins(), hs.bins());
  EXPECT_EQ(hp.total(), hs.total());
  for (std::size_t i = 0; i < hs.bins(); ++i) {
    EXPECT_EQ(hp.count(i), hs.count(i)) << "bin " << i;
  }
}

TEST_F(MetricsTest, GaugeAddAccumulatesDeltas) {
  obs::Gauge& g = obs::gauge("t.gauge.delta");
  g.add(2.5);
  g.add(1.0);
  g.add(-0.5);  // the serve engine's in-flight gauge decrements this way
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set(10.0);  // set still overwrites accumulated deltas
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST_F(MetricsTest, SnapshotIsSortedAndTyped) {
  obs::counter("t.snap.b").add(2);
  obs::gauge("t.snap.a").set(1.5);
  obs::distribution("t.snap.c", 0.0, 10.0, 4).record(3.0);

  const std::vector<obs::MetricValue> snap = obs::metrics_snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  ASSERT_EQ(snapshot_of("t.snap.a").size(), 1u);
  EXPECT_EQ(snapshot_of("t.snap.a")[0].kind,
            obs::MetricValue::Kind::kGauge);
  EXPECT_DOUBLE_EQ(snapshot_of("t.snap.a")[0].value, 1.5);
  EXPECT_EQ(snapshot_of("t.snap.b")[0].count, 2);
  const obs::MetricValue dist = snapshot_of("t.snap.c")[0];
  EXPECT_EQ(dist.kind, obs::MetricValue::Kind::kDistribution);
  EXPECT_EQ(dist.count, 1);
  EXPECT_DOUBLE_EQ(dist.value, 3.0);
}

TEST_F(MetricsTest, ResetZeroesButKeepsHandles) {
  obs::Counter& c = obs::counter("t.reset.c");
  obs::Distribution& d = obs::distribution("t.reset.d", 0.0, 1.0, 4);
  c.add(7);
  d.record(0.25);
  obs::metrics_reset();
  EXPECT_EQ(c.total(), 0);
  EXPECT_EQ(d.stats().count(), 0u);
  c.add(1);
  EXPECT_EQ(c.total(), 1);
}

TEST_F(MetricsTest, GaugeWatermarkTracksPeakAndRearmsOnTake) {
  obs::Gauge& g = obs::gauge("t.wm.gauge");
  g.add(1.0);
  g.add(4.0);   // peak: 5
  g.add(-3.0);  // current: 2
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  EXPECT_DOUBLE_EQ(g.max_watermark(), 5.0);

  // take_watermark reports the peak and re-arms at the current value, so
  // the next window's peak starts from here instead of sticking at the
  // all-time high.
  EXPECT_DOUBLE_EQ(g.take_watermark(), 5.0);
  EXPECT_DOUBLE_EQ(g.max_watermark(), 2.0);
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.max_watermark(), 3.0);

  g.reset();
  EXPECT_DOUBLE_EQ(g.max_watermark(), 0.0);
}

TEST_F(MetricsTest, SnapshotCarriesGaugeWatermarkInMax) {
  obs::Gauge& g = obs::gauge("t.wm.snap");
  g.set(7.0);
  g.set(2.0);
  const std::vector<obs::MetricValue> one = snapshot_of("t.wm.snap");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].value, 2.0);
  EXPECT_DOUBLE_EQ(one[0].max, 7.0);  // peak since the previous snapshot
  // The snapshot re-armed the watermark at the current value.
  EXPECT_DOUBLE_EQ(snapshot_of("t.wm.snap")[0].max, 2.0);
}

TEST_F(MetricsTest, SnapshotIncludesSyntheticTraceDroppedEventsCounter) {
  // Span loss must be visible wherever metrics are, even when no metric
  // named trace.* was ever registered.
  const std::vector<obs::MetricValue> dropped =
      snapshot_of("trace.dropped_events");
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0].kind, obs::MetricValue::Kind::kCounter);
  EXPECT_GE(dropped[0].count, 0);
}

TEST_F(MetricsTest, JsonSnapshotParses) {
  obs::counter("t.json.counter").add(3);
  obs::gauge("t.json.gauge").set(0.5);
  obs::distribution("t.json.dist", 0.0, 1.0, 4).record(0.75);

  util::JsonWriter w;
  obs::metrics_to_json(w);
  const testjson::Value doc = testjson::parse(w.take());
  ASSERT_EQ(doc.kind, testjson::Value::Kind::kObject);
  EXPECT_EQ(doc.at("t.json.counter").at("type").str, "counter");
  EXPECT_EQ(doc.at("t.json.counter").at("count").num, 3.0);
  EXPECT_EQ(doc.at("t.json.gauge").at("type").str, "gauge");
  EXPECT_EQ(doc.at("t.json.dist").at("type").str, "distribution");
  EXPECT_EQ(doc.at("t.json.dist").at("count").num, 1.0);
  EXPECT_EQ(doc.at("t.json.dist").at("mean").num, 0.75);
}

}  // namespace
}  // namespace odq
