// Telemetry registry, snapshot/exposition layer, and the background
// exporter (manual injected clock; no wall-time dependence in assertions).
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/temp_path.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/json_read.hpp"

namespace odq::obs {
namespace {

constexpr std::uint64_t kSec = 1000000;

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_telemetry_enabled(true);
    telemetry_reset();
  }
  void TearDown() override {
    telemetry_reset();
    set_telemetry_enabled(false);
  }
};

TEST_F(TelemetryTest, RegistryReturnsSameObjectAndChecksKinds) {
  WindowedSeries& a = telemetry_series("t.reg.series");
  WindowedSeries& b = telemetry_series("t.reg.series");
  EXPECT_EQ(&a, &b);
  WindowedCounter& c = telemetry_counter("t.reg.counter");
  WindowedCounter& d = telemetry_counter("t.reg.counter");
  EXPECT_EQ(&c, &d);
  // One namespace: a name registered as one kind refuses the other.
  EXPECT_THROW(telemetry_counter("t.reg.series"), std::invalid_argument);
  EXPECT_THROW(telemetry_series("t.reg.counter"), std::invalid_argument);
}

TEST_F(TelemetryTest, DisabledRecordsNothing) {
  WindowedSeries& s = telemetry_series("t.gate.series");
  WindowedCounter& c = telemetry_counter("t.gate.counter");
  set_telemetry_enabled(false);
  s.record(42);
  c.increment();
  set_telemetry_enabled(true);
  EXPECT_EQ(s.total().count(), 0u);
  EXPECT_EQ(c.total(), 0);
}

TEST_F(TelemetryTest, SnapshotCarriesSortedSeriesAndCounters) {
  telemetry_series("t.snap.zz").record(100);
  telemetry_series("t.snap.aa").record(200);
  telemetry_counter("t.snap.mm").add(7);

  const TelemetrySnapshot snap = telemetry_snapshot(3 * kSec);
  EXPECT_EQ(snap.generated_us, 3 * kSec);
  for (std::size_t i = 1; i < snap.series.size(); ++i) {
    EXPECT_LT(snap.series[i - 1].name, snap.series[i].name);
  }
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }

  bool saw_aa = false, saw_mm = false;
  for (const TelemetrySeriesSnapshot& s : snap.series) {
    if (s.name == "t.snap.aa") {
      saw_aa = true;
      EXPECT_EQ(s.total.count, 1u);
      EXPECT_EQ(s.total.mean, 200.0);
      // The snapshot's advance folded the sample into epoch 3, so every
      // window sees it.
      for (const TelemetryWindowStats& w : s.windows) {
        EXPECT_EQ(w.count, 1u);
        EXPECT_GE(w.p50, 200u);
      }
    }
  }
  for (const TelemetryCounterSnapshot& c : snap.counters) {
    if (c.name == "t.snap.mm") {
      saw_mm = true;
      EXPECT_EQ(c.total, 7);
      for (std::int64_t w : c.windows) EXPECT_EQ(w, 7);
    }
  }
  EXPECT_TRUE(saw_aa);
  EXPECT_TRUE(saw_mm);
}

TEST_F(TelemetryTest, JsonDocumentParsesWithSchemaTag) {
  telemetry_series("t.json.lat").record(1234);
  telemetry_counter("t.json.req").add(3);
  const TelemetrySnapshot snap = telemetry_snapshot(1 * kSec);

  util::JsonWriter w;
  telemetry_to_json(snap, w);
  const util::StatusOr<util::JsonValue> parsed = util::json_try_parse(w.take());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const util::JsonValue& doc = *parsed;

  EXPECT_EQ(doc.at("bench").str, "odq_telemetry");
  EXPECT_EQ(doc.at("schema_version").num,
            static_cast<double>(kTelemetrySchemaVersion));
  ASSERT_EQ(doc.at("windows_s").arr.size(), kTelemetryWindowsS.size());
  EXPECT_EQ(doc.at("windows_s").arr[0].num, 1.0);

  const util::JsonValue& series = doc.at("series").at("t.json.lat");
  for (const char* win : {"total", "1s", "10s", "60s"}) {
    ASSERT_TRUE(series.has(win)) << win;
    EXPECT_EQ(series.at(win).at("count").num, 1.0);
    EXPECT_GE(series.at(win).at("p99").num, 1234.0);
  }
  EXPECT_EQ(doc.at("counters").at("t.json.req").at("total").num, 3.0);
  EXPECT_EQ(doc.at("counters").at("t.json.req").at("1s").num, 3.0);
}

TEST_F(TelemetryTest, PrometheusExpositionHasSummaryAndCounterLines) {
  telemetry_series("t.prom.latency_us").record(500);
  telemetry_counter("t.prom.requests").add(9);
  const TelemetrySnapshot snap = telemetry_snapshot(1 * kSec);

  const std::string text = telemetry_to_prometheus(snap);
  EXPECT_NE(text.find("# TYPE odq_t_prom_latency_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("odq_t_prom_latency_us{window=\"1s\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("odq_t_prom_latency_us_count{window=\"total\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("odq_t_prom_latency_us_sum{window=\"total\"} 500"),
            std::string::npos);
  EXPECT_NE(text.find("odq_t_prom_requests_total 9"), std::string::npos);
  EXPECT_NE(text.find("odq_trace_dropped_events_total"), std::string::npos);
}

TEST_F(TelemetryTest, SnapshotSurfacesTraceDroppedEvents) {
  // The droppedEvents counter rides along in every snapshot so starved
  // trace buffers are visible from odq_top, not just the trace file.
  EXPECT_EQ(telemetry_snapshot(0).trace_dropped_events,
            trace_dropped_events());
}

TEST_F(TelemetryTest, ExporterFlushOnceWritesBothFilesAtomically) {
  const std::string json_path =
      testutil::temp_path("odq_telemetry_test.json");
  const std::string prom_path =
      testutil::temp_path("odq_telemetry_test.prom");
  telemetry_series("t.exp.lat").record(777);
  telemetry_counter("t.exp.req").add(2);

  std::uint64_t fake_now = 5 * kSec;
  TelemetryExporterConfig cfg;
  cfg.json_path = json_path;
  cfg.prom_path = prom_path;
  cfg.now_us = [&fake_now] { return fake_now; };
  TelemetryExporter exporter(cfg);

  const TelemetrySnapshot first = exporter.flush_once();
  EXPECT_EQ(first.flush_seq, 1u);
  EXPECT_EQ(first.generated_us, 5 * kSec);
  EXPECT_EQ(exporter.flush_count(), 1u);

  const util::StatusOr<util::JsonValue> doc =
      util::json_try_parse_file(json_path);
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  EXPECT_EQ(doc->at("bench").str, "odq_telemetry");
  EXPECT_EQ(doc->at("flush_seq").num, 1.0);
  EXPECT_EQ(doc->at("series").at("t.exp.lat").at("total").at("count").num,
            1.0);

  // Re-flush at a later epoch: the file is atomically replaced (no .tmp
  // residue) and the 1s window has drained while the total persists.
  fake_now = 20 * kSec;
  telemetry_series("t.exp.lat").record(888);
  const TelemetrySnapshot second = exporter.flush_once();
  EXPECT_EQ(second.flush_seq, 2u);
  const util::StatusOr<util::JsonValue> doc2 =
      util::json_try_parse_file(json_path);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(doc2->at("series").at("t.exp.lat").at("total").at("count").num,
            2.0);
  EXPECT_EQ(doc2->at("series").at("t.exp.lat").at("1s").at("count").num, 1.0);
  std::FILE* tmp = std::fopen((json_path + ".tmp").c_str(), "r");
  EXPECT_EQ(tmp, nullptr) << "tmp file left behind";
  if (tmp != nullptr) std::fclose(tmp);

  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());
}

TEST_F(TelemetryTest, ExporterStopDrainsFinalSamples) {
  const std::string json_path =
      testutil::temp_path("odq_telemetry_drain.json");
  std::atomic<std::uint64_t> fake_now{1 * kSec};
  TelemetryExporterConfig cfg;
  cfg.json_path = json_path;
  cfg.flush_interval_ms = 1;
  cfg.now_us = [&fake_now] { return fake_now.load(); };
  TelemetryExporter exporter(cfg);
  exporter.start();

  // A sample recorded while the flusher runs must be on disk after stop()
  // even if no periodic flush happened to see it: stop() drains.
  telemetry_counter("t.drain.req").add(5);
  exporter.stop();
  EXPECT_GE(exporter.flush_count(), 1u);

  const util::StatusOr<util::JsonValue> doc =
      util::json_try_parse_file(json_path);
  ASSERT_TRUE(doc.ok()) << doc.status().to_string();
  EXPECT_EQ(doc->at("counters").at("t.drain.req").at("total").num, 5.0);

  exporter.stop();  // idempotent
  std::remove(json_path.c_str());
}

TEST_F(TelemetryTest, ExporterWithBadPathReportsButDoesNotThrowFromStop) {
  TelemetryExporterConfig cfg;
  cfg.json_path = "/nonexistent-dir/odq_telemetry.json";
  cfg.flush_interval_ms = 1;
  cfg.now_us = [] { return std::uint64_t{0}; };
  TelemetryExporter exporter(cfg);
  exporter.start();
  exporter.stop();  // swallows the write failure; flush_once would throw
  EXPECT_THROW(exporter.flush_once(), std::runtime_error);
}

}  // namespace
}  // namespace odq::obs
