// Online quality monitoring (obs/quality.hpp, obs/flight.hpp): TV-distance
// goldens and re-binning, snapshot merge associativity and bulk-vs-merged
// equivalence, FidelityScope isolation, baseline round-trip, drift-detector
// hysteresis (including a randomized property over window sizes and trigger
// kinds), and the flight recorder's ring bounds + valid-or-absent dump.
#include "obs/quality.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/proptest.hpp"
#include "common/temp_path.hpp"
#include "obs/fidelity.hpp"
#include "obs/flight.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace odq::obs {
namespace {

using tensor::Shape;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Synthetic cells: hand-built ODQ fidelity cells with exact integer counts,
// so drift behavior is testable without running a model.
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> mass_at(int nbins, int bin,
                                   std::uint64_t count = 100) {
  std::vector<std::uint64_t> h(static_cast<std::size_t>(nbins), 0);
  h[static_cast<std::size_t>(bin)] = count;
  return h;
}

FidelityLayerSnapshot synthetic_cell(int layer, std::int64_t sensitive,
                                     std::int64_t total,
                                     std::vector<std::uint64_t> hist) {
  FidelityLayerSnapshot s;
  s.scheme = "odq";
  s.layer = layer;
  s.calls = 1;
  s.threshold = 0.25f;
  s.total.count = total;
  s.total.ref_sq = static_cast<double>(total);
  s.total.out_sq = static_cast<double>(total);
  s.total.dot = static_cast<double>(total);
  s.total.err_sq = static_cast<double>(total) * 1e-2;
  s.predictor.count = total;
  s.predictor.ref_sq = static_cast<double>(total);
  s.predictor.err_sq = static_cast<double>(total) * 1e-1;
  s.sensitive.count = sensitive;
  s.insensitive.count = total - sensitive;
  s.hist_lo = 0.0;
  s.hist_hi = 1.0;
  s.hist = std::move(hist);
  return s;
}

Tensor tiny_input() {
  Tensor t(Shape{1, 1, 2, 2});
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = 0.25f * static_cast<float>(i);
  }
  return t;
}

// ---------------------------------------------------------------------------
// quality_hist_distance
// ---------------------------------------------------------------------------

TEST(QualityHistDistance, Goldens) {
  const std::vector<double> a = {0.5, 0.5, 0.0, 0.0};
  const std::vector<double> b = {0.0, 0.5, 0.5, 0.0};
  const std::vector<double> c = {0.0, 0.0, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(quality_hist_distance(0, 1, a, 0, 1, a), 0.0);
  EXPECT_DOUBLE_EQ(quality_hist_distance(0, 1, a, 0, 1, b), 0.5);
  EXPECT_DOUBLE_EQ(quality_hist_distance(0, 1, a, 0, 1, c), 1.0);  // disjoint
  // Either side empty = no evidence, not maximal drift.
  EXPECT_DOUBLE_EQ(quality_hist_distance(0, 1, {}, 0, 1, a), 0.0);
  EXPECT_DOUBLE_EQ(quality_hist_distance(0, 1, a, 0, 1, {}), 0.0);
}

TEST(QualityHistDistance, RebinsMismatchedBoundsByMidpoint) {
  // p: 4 bins over [0,1). q: 2 bins over [0,0.5) with all mass in bin 0 —
  // midpoint 0.125 lands in p's bin 0, so equal-mass histograms agree.
  const std::vector<double> p = {1.0, 0.0, 0.0, 0.0};
  const std::vector<double> q = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(quality_hist_distance(0, 1, p, 0, 0.5, q), 0.0);
  // q over [0,2) with mass in bin 1 — midpoint 1.5 clamps into p's last
  // bin, maximally far from p's bin 0.
  const std::vector<double> q2 = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(quality_hist_distance(0, 1, p, 0, 2.0, q2), 1.0);
}

// ---------------------------------------------------------------------------
// FidelityLayerSnapshot::merge on real recorded cells
// ---------------------------------------------------------------------------

struct OdqChunk {
  std::vector<float> ref, full, pred, mag;
  std::vector<std::uint8_t> mask;
};

OdqChunk random_chunk(util::Rng& rng, std::int64_t n) {
  OdqChunk c;
  c.ref.resize(static_cast<std::size_t>(n));
  c.full.resize(static_cast<std::size_t>(n));
  c.pred.resize(static_cast<std::size_t>(n));
  c.mag.resize(static_cast<std::size_t>(n));
  c.mask.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < c.ref.size(); ++i) {
    c.ref[i] = rng.normal_f(0, 1);
    c.full[i] = c.ref[i] + rng.normal_f(0, 0.05f);
    c.pred[i] = c.ref[i] + rng.normal_f(0, 0.2f);
    c.mag[i] = rng.uniform_f(0, 1.2f);
    c.mask[i] = c.mag[i] >= 0.25f ? 1 : 0;
  }
  return c;
}

FidelityLayerSnapshot record_chunk(const OdqChunk& c) {
  FidelityScope scope;
  fidelity_record_odq("odq", 0, 0.25f, c.ref.data(), c.full.data(),
                      c.pred.data(), c.mag.data(), c.mask.data(),
                      static_cast<std::int64_t>(c.ref.size()));
  const auto snap = scope.snapshot();
  EXPECT_EQ(snap.size(), 1u);
  return snap.empty() ? FidelityLayerSnapshot{} : snap[0];
}

void expect_int_fields_equal(const FidelityLayerSnapshot& a,
                             const FidelityLayerSnapshot& b) {
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.total.count, b.total.count);
  EXPECT_EQ(a.predictor.count, b.predictor.count);
  EXPECT_EQ(a.sensitive.count, b.sensitive.count);
  EXPECT_EQ(a.insensitive.count, b.insensitive.count);
  EXPECT_EQ(a.hist, b.hist);
  EXPECT_EQ(a.hist_lo, b.hist_lo);
  EXPECT_EQ(a.hist_hi, b.hist_hi);
}

void expect_double_fields_near(const FidelityLayerSnapshot& a,
                               const FidelityLayerSnapshot& b) {
  for (auto [x, y] : {std::pair{&a.total, &b.total},
                      std::pair{&a.predictor, &b.predictor},
                      std::pair{&a.sensitive, &b.sensitive},
                      std::pair{&a.insensitive, &b.insensitive}}) {
    const double scale = std::abs(x->ref_sq) + 1.0;
    EXPECT_NEAR(x->ref_sq, y->ref_sq, 1e-9 * scale);
    EXPECT_NEAR(x->out_sq, y->out_sq, 1e-9 * scale);
    EXPECT_NEAR(x->dot, y->dot, 1e-9 * scale);
    EXPECT_NEAR(x->err_sq, y->err_sq, 1e-9 * scale);
    EXPECT_NEAR(x->err_abs, y->err_abs, 1e-9 * scale);
    EXPECT_EQ(x->err_max, y->err_max);  // max is exactly associative
  }
}

TEST(FidelityMerge, AssociativeOnRecordedCells) {
  util::Rng rng(31);
  const FidelityLayerSnapshot a = record_chunk(random_chunk(rng, 64));
  const FidelityLayerSnapshot b = record_chunk(random_chunk(rng, 48));
  const FidelityLayerSnapshot c = record_chunk(random_chunk(rng, 80));

  FidelityLayerSnapshot left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  FidelityLayerSnapshot bc = b;     // a + (b + c)
  bc.merge(c);
  FidelityLayerSnapshot right = a;
  right.merge(bc);

  // Integer fields and same-bounds histograms are exactly associative;
  // double sums associate up to rounding (the contract the serve bench
  // gate's integer-derived quality cells rely on).
  expect_int_fields_equal(left, right);
  expect_double_fields_near(left, right);
  EXPECT_GT(left.total.count, 0);
}

TEST(FidelityMerge, MergedChunksMatchBulkRecording) {
  util::Rng rng(37);
  const OdqChunk c1 = random_chunk(rng, 64);
  const OdqChunk c2 = random_chunk(rng, 96);

  FidelityLayerSnapshot merged = record_chunk(c1);
  merged.merge(record_chunk(c2));

  FidelityScope scope;  // both chunks into one cell
  for (const OdqChunk* c : {&c1, &c2}) {
    fidelity_record_odq("odq", 0, 0.25f, c->ref.data(), c->full.data(),
                        c->pred.data(), c->mag.data(), c->mask.data(),
                        static_cast<std::int64_t>(c->ref.size()));
  }
  const auto snap = scope.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  expect_int_fields_equal(merged, snap[0]);
  expect_double_fields_near(merged, snap[0]);
  EXPECT_EQ(merged.total.count, 160);
}

TEST(FidelityScopeTest, IsolatesRecordsFromGlobalRegistry) {
  set_fidelity_enabled(false);
  fidelity_reset();
  const float v[] = {1.0f, 2.0f};
  {
    // A scope force-enables fidelity on this thread and captures privately.
    FidelityScope scope;
    fidelity_record("odq", 3, v, v, 2);
    const auto inner = scope.snapshot();
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_EQ(inner[0].layer, 3);
    EXPECT_EQ(inner[0].total.count, 2);
  }
  // Nothing leaked into the global cells, and the global switch is still
  // off: records after scope destruction go nowhere.
  EXPECT_TRUE(fidelity_snapshot().empty());
  fidelity_record("odq", 3, v, v, 2);
  EXPECT_TRUE(fidelity_snapshot().empty());
}

// ---------------------------------------------------------------------------
// Baseline build + round-trip
// ---------------------------------------------------------------------------

TEST(QualityBaselineTest, BuildSkipsNonOdqCellsAndSortsLayers) {
  FidelityLayerSnapshot drq;  // no mask split: must not contribute a layer
  drq.scheme = "drq";
  drq.layer = 5;
  drq.total.count = 10;
  const std::vector<FidelityLayerSnapshot> cells = {
      synthetic_cell(1, 80, 100, mass_at(8, 2, 400)),
      drq,
      synthetic_cell(0, 25, 100, mass_at(8, 6, 200)),
  };
  const QualityBaseline base = make_quality_baseline(cells);
  ASSERT_EQ(base.layers.size(), 2u);
  EXPECT_EQ(base.layers[0].layer, 0);
  EXPECT_EQ(base.layers[1].layer, 1);
  EXPECT_DOUBLE_EQ(base.layers[0].sensitive_fraction, 0.25);
  EXPECT_DOUBLE_EQ(base.layers[1].sensitive_fraction, 0.80);
  // Histograms come out normalized regardless of the raw counts.
  double sum = 0.0;
  for (double v : base.layers[0].hist) sum += v;
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_DOUBLE_EQ(base.layers[0].hist[6], 1.0);
}

TEST(QualityBaselineTest, SaveLoadRoundTrips) {
  QualityBaseline base;
  base.model = "lenet5";
  base.scheme = "odq";
  base.width = 8;
  base.threshold = 0.25f;
  base.inputs = "uniform";
  base.seed = 42;
  base.batch = 64;
  QualityBaselineLayer l0;
  l0.layer = 0;
  l0.threshold = 0.25f;
  l0.sensitive_fraction = 0.75;
  l0.sqnr_db = 12.5;
  l0.hist_lo = 0.0;
  l0.hist_hi = 1.0;
  l0.hist = {0.25, 0.75};
  base.layers.push_back(l0);

  const std::string path = testutil::temp_path("quality_baseline.json");
  ASSERT_TRUE(base.save(path).ok());
  const util::StatusOr<QualityBaseline> loaded = QualityBaseline::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->model, "lenet5");
  EXPECT_EQ(loaded->scheme, "odq");
  EXPECT_EQ(loaded->inputs, "uniform");
  EXPECT_EQ(loaded->seed, 42u);
  EXPECT_EQ(loaded->batch, 64);
  EXPECT_FLOAT_EQ(loaded->threshold, 0.25f);
  ASSERT_EQ(loaded->layers.size(), 1u);
  EXPECT_EQ(loaded->layers[0].layer, 0);
  EXPECT_DOUBLE_EQ(loaded->layers[0].sensitive_fraction, 0.75);
  EXPECT_DOUBLE_EQ(loaded->layers[0].sqnr_db, 12.5);
  ASSERT_EQ(loaded->layers[0].hist.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->layers[0].hist[1], 0.75);
  std::remove(path.c_str());
}

TEST(QualityBaselineTest, LoadRejectsForeignDocuments) {
  const std::string path = testutil::temp_path("not_a_baseline.json");
  {
    std::ofstream f(path);
    f << "{\"doc\":\"something_else\",\"version\":1}\n";
  }
  const auto loaded = QualityBaseline::load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kCorruption);
  std::remove(path.c_str());
  EXPECT_FALSE(QualityBaseline::load(path).ok());  // absent file
}

// ---------------------------------------------------------------------------
// Drift detector
// ---------------------------------------------------------------------------

TEST(QualityMonitorTest, NoBaselineAccumulatesWithoutAlerts) {
  QualityMonitor mon;
  const Tensor input = tiny_input();
  for (int r = 0; r < 20; ++r) {
    mon.observe(static_cast<std::uint64_t>(r), input,
                {synthetic_cell(0, 50, 100, mass_at(8, 1))});
  }
  EXPECT_EQ(mon.observed(), 20u);
  EXPECT_EQ(mon.drift_alerts(), 0);
  EXPECT_FALSE(mon.has_baseline());
  const auto sum = mon.summary();
  ASSERT_EQ(sum.size(), 1u);
  EXPECT_EQ(sum[0].requests, 20);
  EXPECT_DOUBLE_EQ(sum[0].sensitive_fraction, 0.5);
}

TEST(QualityMonitorTest, PersistentShiftFiresOncePerLayer) {
  QualityConfig cfg;
  cfg.drift_window = 2;
  QualityMonitor mon(cfg);
  const auto in_dist = synthetic_cell(0, 80, 100, mass_at(8, 1));
  mon.set_baseline(make_quality_baseline({in_dist}));
  const Tensor input = tiny_input();

  std::uint64_t rid = 0;
  // In-distribution traffic: identical statistics, zero alerts.
  for (int r = 0; r < 8; ++r) mon.observe(rid++, input, {in_dist});
  EXPECT_EQ(mon.drift_alerts(), 0);

  // Persistent shift (disjoint histogram + sensitive fraction move): the
  // first completed window fires, hysteresis holds every later one.
  const auto shifted = synthetic_cell(0, 40, 100, mass_at(8, 6));
  for (int r = 0; r < 10; ++r) mon.observe(rid++, input, {shifted});
  EXPECT_EQ(mon.drift_alerts(), 1);
  auto sum = mon.summary();
  ASSERT_EQ(sum.size(), 1u);
  EXPECT_TRUE(sum[0].drifted);
  EXPECT_EQ(sum[0].alerts, 1);
  EXPECT_DOUBLE_EQ(sum[0].window_distance, 1.0);
  EXPECT_EQ(mon.flight().total_recorded(), 1u);

  // Recovery re-arms (both statistics back under threshold * rearm), then
  // a second shift fires exactly once more.
  for (int r = 0; r < 4; ++r) mon.observe(rid++, input, {in_dist});
  EXPECT_EQ(mon.drift_alerts(), 1);
  EXPECT_FALSE(mon.summary()[0].drifted);
  for (int r = 0; r < 6; ++r) mon.observe(rid++, input, {shifted});
  EXPECT_EQ(mon.drift_alerts(), 2);
}

TEST(QualityMonitorTest, LayerAbsentFromBaselineNeverAlerts) {
  QualityConfig cfg;
  cfg.drift_window = 1;
  QualityMonitor mon(cfg);
  mon.set_baseline(
      make_quality_baseline({synthetic_cell(0, 80, 100, mass_at(8, 1))}));
  const Tensor input = tiny_input();
  // Layer 7 has no baseline entry: it accumulates but cannot drift.
  for (int r = 0; r < 5; ++r) {
    mon.observe(static_cast<std::uint64_t>(r), input,
                {synthetic_cell(7, 10, 100, mass_at(8, 5))});
  }
  EXPECT_EQ(mon.drift_alerts(), 0);
}

// Property: over random window sizes, bin counts, and trigger kinds, a
// persistent shifted stream fires exactly once per arming and an unshifted
// stream never fires (the hysteresis contract CI's drift fixture relies on).
TEST(QualityMonitorProperty, HysteresisFiresExactlyOncePerShift) {
  for (int i = 0; i < 40; ++i) {
    ODQ_PROP_CASE(c, i);
    util::Rng& rng = c.rng();
    const int nbins = rng.uniform_int(4, 16);
    const int base_bin = rng.uniform_int(0, nbins - 1);
    const int shift_bin = (base_bin + rng.uniform_int(1, nbins - 1)) % nbins;
    const std::int64_t sens = rng.uniform_int(10, 50);

    QualityConfig cfg;
    cfg.drift_window = rng.uniform_int(1, 4);
    QualityMonitor mon(cfg);
    const auto in_dist = synthetic_cell(0, sens, 100, mass_at(nbins, base_bin));
    mon.set_baseline(make_quality_baseline({in_dist}));

    // Trigger kind: histogram shift, sensitive-fraction shift, or both.
    const int kind = rng.uniform_int(0, 2);
    const std::int64_t shifted_sens = kind == 0 ? sens : sens + 40;
    const int shifted_bin = kind == 1 ? base_bin : shift_bin;
    const auto shifted =
        synthetic_cell(0, shifted_sens, 100, mass_at(nbins, shifted_bin));

    const Tensor input = tiny_input();
    std::uint64_t rid = 0;
    auto feed = [&](const FidelityLayerSnapshot& cell, int windows) {
      for (std::int64_t r = 0; r < windows * cfg.drift_window; ++r) {
        mon.observe(rid++, input, {cell});
      }
    };

    feed(in_dist, rng.uniform_int(1, 4));
    EXPECT_EQ(mon.drift_alerts(), 0) << "unshifted stream fired";
    feed(shifted, rng.uniform_int(2, 6));
    EXPECT_EQ(mon.drift_alerts(), 1) << "persistent shift must fire once";
    feed(in_dist, rng.uniform_int(1, 4));  // recovery re-arms, no new alert
    EXPECT_EQ(mon.drift_alerts(), 1);
    feed(shifted, rng.uniform_int(2, 6));
    EXPECT_EQ(mon.drift_alerts(), 2) << "re-armed layer must fire again";
  }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

FlightRecord make_record(std::uint64_t id, util::Rng& rng) {
  FlightRecord rec;
  rec.request_id = id;
  rec.reason = "hist_drift";
  rec.layer = 1;
  rec.distance = 0.625;
  rec.sens_delta = 0.125;
  Tensor input(Shape{1, 2, 3, 3});
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    input[i] = rng.uniform_f(0, 1);
  }
  rec.input = input;
  rec.layers = {synthetic_cell(0, 40, 100, mass_at(8, 2)),
                synthetic_cell(1, 90, 100, mass_at(8, 5))};
  return rec;
}

TEST(FlightRecorderTest, RingOverwritesOldestAtCapacity) {
  util::Rng rng(5);
  FlightRecorder ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  for (std::uint64_t id = 1; id <= 5; ++id) ring.record(make_record(id, rng));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_recorded(), 5u);
  const auto records = ring.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].request_id, 3u);  // oldest surviving, oldest first
  EXPECT_EQ(records[1].request_id, 4u);
  EXPECT_EQ(records[2].request_id, 5u);
}

TEST(FlightRecorderTest, DumpLoadRoundTripsBitExactly) {
  util::Rng rng(9);
  FlightRecorder ring(4);
  ring.set_context({"lenet5", "odq", "ckpt.bin", 8, 0.15f});
  ring.record(make_record(11, rng));
  ring.record(make_record(12, rng));

  const std::string path = testutil::temp_path("flight_roundtrip.bin");
  ASSERT_TRUE(ring.dump(path).ok());
  const util::StatusOr<FlightDump> loaded = FlightRecorder::load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->context.model, "lenet5");
  EXPECT_EQ(loaded->context.scheme, "odq");
  EXPECT_EQ(loaded->context.checkpoint, "ckpt.bin");
  EXPECT_EQ(loaded->context.width, 8);
  EXPECT_FLOAT_EQ(loaded->context.threshold, 0.15f);
  const auto original = ring.records();
  ASSERT_EQ(loaded->records.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const FlightRecord& a = original[i];
    const FlightRecord& b = loaded->records[i];
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(a.request_id, b.request_id);
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_EQ(a.layer, b.layer);
    EXPECT_EQ(a.distance, b.distance);  // raw doubles: bit-exact
    EXPECT_EQ(a.sens_delta, b.sens_delta);
    ASSERT_EQ(a.input.numel(), b.input.numel());
    for (std::int64_t j = 0; j < a.input.numel(); ++j) {
      EXPECT_EQ(a.input[j], b.input[j]);
    }
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t l = 0; l < a.layers.size(); ++l) {
      EXPECT_EQ(a.layers[l].scheme, b.layers[l].scheme);
      EXPECT_EQ(a.layers[l].layer, b.layers[l].layer);
      EXPECT_EQ(a.layers[l].total.count, b.layers[l].total.count);
      EXPECT_EQ(a.layers[l].total.err_sq, b.layers[l].total.err_sq);
      EXPECT_EQ(a.layers[l].sensitive.count, b.layers[l].sensitive.count);
      EXPECT_EQ(a.layers[l].hist, b.layers[l].hist);
    }
  }
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, LoadRejectsCorruptionAndTruncation) {
  util::Rng rng(13);
  FlightRecorder ring(2);
  ring.record(make_record(7, rng));
  const std::string path = testutil::temp_path("flight_corrupt.bin");
  ASSERT_TRUE(ring.dump(path).ok());

  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(f),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 32u);

  // Bit-flip mid-payload: CRC must catch it.
  std::string flipped = bytes;
  flipped[bytes.size() / 2] = static_cast<char>(flipped[bytes.size() / 2] ^ 0x40);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  auto corrupt = FlightRecorder::load(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), util::StatusCode::kCorruption);

  // Truncation: typed corruption, never a crash.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto truncated = FlightRecorder::load(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), util::StatusCode::kCorruption);

  std::remove(path.c_str());
  EXPECT_EQ(FlightRecorder::load(path).status().code(),
            util::StatusCode::kNotFound);
}

TEST(FlightRecorderTest, EmptyRingDumpsAndLoads) {
  FlightRecorder ring;
  ring.set_context({"resnet20", "odq", "", 8, 0.1f});
  const std::string path = testutil::temp_path("flight_empty.bin");
  ASSERT_TRUE(ring.dump(path).ok());
  const auto loaded = FlightRecorder::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->context.model, "resnet20");
  EXPECT_TRUE(loaded->records.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace odq::obs
