// Trace profiler: JSON well-formedness, span nesting, multi-thread capture.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.hpp"
#include "util/thread_pool.hpp"

namespace odq {
namespace {

// Size the global pool to 4 workers before anything touches it: the pool is
// constructed on first use, and this initializer runs before main().
const int kForcePoolSize = [] {
  ::setenv("ODQ_THREADS", "4", 1);
  return 4;
}();

// Cap per-thread span buffers (read once on first record) so the
// saturation test below can fill one without recording a million spans.
// Generous enough that no other test in this binary comes near it.
const int kForceTraceCap = [] {
  ::setenv("ODQ_TRACE_MAX_EVENTS", "4096", 1);
  return 4096;
}();

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_trace_enabled(true);
    obs::trace_clear();
  }
  void TearDown() override {
    obs::trace_clear();
    obs::set_trace_enabled(false);
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  obs::set_trace_enabled(false);
  { ODQ_TRACE_SPAN("should.not.appear"); }
  obs::trace_record("also.not", 0.0, 1.0);
  EXPECT_TRUE(obs::trace_events().empty());
}

TEST_F(TraceTest, SpanRecordsNameDurationAndArg) {
  {
    obs::TraceSpan span("unit.test");
    span.arg("items", 42);
  }
  const std::vector<obs::TraceEvent> events = obs::trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "unit.test");
  EXPECT_GE(events[0].dur_us, 0.0);
  EXPECT_GE(events[0].ts_us, 0.0);
  ASSERT_NE(events[0].arg_name, nullptr);
  EXPECT_STREQ(events[0].arg_name, "items");
  EXPECT_EQ(events[0].arg_value, 42);
}

TEST_F(TraceTest, JsonIsWellFormedChromeFormat) {
  {
    ODQ_TRACE_SPAN("outer");
    ODQ_TRACE_SPAN("inner \"quoted\"\n");
  }
  const testjson::Value doc = testjson::parse(obs::trace_to_json());
  ASSERT_EQ(doc.kind, testjson::Value::Kind::kObject);
  ASSERT_TRUE(doc.has("traceEvents"));
  const testjson::Value& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, testjson::Value::Kind::kArray);
  ASSERT_EQ(events.arr.size(), 2u);
  for (const testjson::Value& e : events.arr) {
    EXPECT_EQ(e.at("ph").str, "X");
    EXPECT_EQ(e.at("pid").num, 1.0);
    EXPECT_EQ(e.at("name").kind, testjson::Value::Kind::kString);
    EXPECT_EQ(e.at("ts").kind, testjson::Value::Kind::kNumber);
    EXPECT_EQ(e.at("dur").kind, testjson::Value::Kind::kNumber);
    EXPECT_EQ(e.at("tid").kind, testjson::Value::Kind::kNumber);
  }
  // The escaped name round-trips.
  const bool found = std::any_of(
      events.arr.begin(), events.arr.end(), [](const testjson::Value& e) {
        return e.at("name").str == "inner \"quoted\"\n";
      });
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, ParallelForCapturesWorkerSpansThatNest) {
  ASSERT_EQ(util::ThreadPool::global().size(), 4u);
  std::atomic<std::int64_t> sum{0};
  {
    ODQ_TRACE_SPAN("test.parallel_region");
    util::parallel_for(
        64,
        [&](std::int64_t b, std::int64_t e) {
          ODQ_TRACE_SPAN("test.chunk");
          for (std::int64_t i = b; i < e; ++i) {
            sum.fetch_add(i, std::memory_order_relaxed);
          }
          // Yield so several workers get a share even on a 1-core host.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        },
        /*grain=*/1);
  }
  EXPECT_EQ(sum.load(), 64 * 63 / 2);

  const std::vector<obs::TraceEvent> events = obs::trace_events();
  // At least: the region span, pool.parallel_for, several pool.task spans
  // and the per-chunk spans (from more than one worker thread).
  std::map<std::string, int> count;
  std::map<std::uint32_t, int> by_tid;
  for (const obs::TraceEvent& e : events) {
    ++count[e.name];
    if (e.name == "test.chunk") ++by_tid[e.tid];
  }
  EXPECT_EQ(count["test.parallel_region"], 1);
  EXPECT_EQ(count["pool.parallel_for"], 1);
  EXPECT_GE(count["test.chunk"], 4);
  EXPECT_EQ(count["pool.task"], count["test.chunk"]);
  EXPECT_GE(by_tid.size(), 2u) << "chunks should run on multiple workers";

  // Spans on each thread obey stack discipline: sorted by start time, every
  // span either nests inside the previous open span or starts after it
  // ends. "X" events from scoped RAII spans can never partially overlap.
  std::map<std::uint32_t, std::vector<const obs::TraceEvent*>> per_tid;
  for (const obs::TraceEvent& e : events) per_tid[e.tid].push_back(&e);
  const double slack_us = 1.0;  // clock granularity
  for (auto& [tid, list] : per_tid) {
    std::sort(list.begin(), list.end(),
              [](const obs::TraceEvent* a, const obs::TraceEvent* b) {
                return a->ts_us < b->ts_us;
              });
    std::vector<const obs::TraceEvent*> open;
    for (const obs::TraceEvent* e : list) {
      while (!open.empty() &&
             open.back()->ts_us + open.back()->dur_us <= e->ts_us + slack_us) {
        open.pop_back();
      }
      for (const obs::TraceEvent* outer : open) {
        EXPECT_LE(e->ts_us + e->dur_us,
                  outer->ts_us + outer->dur_us + slack_us)
            << e->name << " escapes enclosing span " << outer->name
            << " on tid " << tid;
      }
      open.push_back(e);
    }
  }

  // And the whole thing still serializes to valid JSON.
  const testjson::Value doc = testjson::parse(obs::trace_to_json());
  EXPECT_EQ(doc.at("traceEvents").arr.size(), events.size());
}

TEST_F(TraceTest, SpanCarriesTwoArgsIntoEventAndJson) {
  {
    obs::TraceSpan span("two.args");
    span.arg("batch_size", 4);
    span.arg("batch_id", 17);
    span.arg("batch_size", 5);  // re-using a key overwrites its slot
  }
  const std::vector<obs::TraceEvent> events = obs::trace_events();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_NE(events[0].arg_name, nullptr);
  EXPECT_STREQ(events[0].arg_name, "batch_size");
  EXPECT_EQ(events[0].arg_value, 5);
  ASSERT_NE(events[0].arg2_name, nullptr);
  EXPECT_STREQ(events[0].arg2_name, "batch_id");
  EXPECT_EQ(events[0].arg2_value, 17);

  // Both land in one "args" object in the Chrome JSON.
  const testjson::Value doc = testjson::parse(obs::trace_to_json());
  const testjson::Value& e = doc.at("traceEvents").arr[0];
  EXPECT_EQ(e.at("args").at("batch_size").num, 5.0);
  EXPECT_EQ(e.at("args").at("batch_id").num, 17.0);
}

TEST_F(TraceTest, RequestScopeTagsSpansAndNests) {
  EXPECT_EQ(obs::trace_request_id(), -1);
  {
    obs::TraceRequestScope outer(42);
    EXPECT_EQ(obs::trace_request_id(), 42);
    { obs::TraceSpan span("scoped.outer"); }
    {
      obs::TraceRequestScope inner(43);
      EXPECT_EQ(obs::trace_request_id(), 43);
      { obs::TraceSpan span("scoped.inner"); }
    }
    EXPECT_EQ(obs::trace_request_id(), 42);  // nesting restores
    obs::trace_record("scoped.record", 0.0, 1.0, "phase", 2);
  }
  EXPECT_EQ(obs::trace_request_id(), -1);
  { obs::TraceSpan span("scoped.after"); }

  std::map<std::string, const obs::TraceEvent*> by_name;
  const std::vector<obs::TraceEvent> events = obs::trace_events();
  for (const obs::TraceEvent& e : events) by_name[e.name] = &e;

  auto req_id_of = [](const obs::TraceEvent& e) -> std::int64_t {
    if (e.arg_name != nullptr && std::string(e.arg_name) == "req_id") {
      return e.arg_value;
    }
    if (e.arg2_name != nullptr && std::string(e.arg2_name) == "req_id") {
      return e.arg2_value;
    }
    return -1;
  };
  ASSERT_EQ(by_name.size(), 4u);
  EXPECT_EQ(req_id_of(*by_name["scoped.outer"]), 42);
  EXPECT_EQ(req_id_of(*by_name["scoped.inner"]), 43);
  // The auto-tag fills the free slot next to explicit arguments.
  EXPECT_EQ(req_id_of(*by_name["scoped.record"]), 42);
  EXPECT_STREQ(by_name["scoped.record"]->arg_name, "phase");
  // Outside any scope, no req_id is attached.
  EXPECT_EQ(req_id_of(*by_name["scoped.after"]), -1);
}

TEST_F(TraceTest, ExplicitReqIdWinsOverScopeAutoTag) {
  obs::TraceRequestScope scope(99);
  obs::trace_record("explicit.req", 0.0, 1.0, "req_id", 7);
  const std::vector<obs::TraceEvent> events = obs::trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].arg_name, "req_id");
  EXPECT_EQ(events[0].arg_value, 7);
  // No duplicate req_id in the second slot.
  EXPECT_EQ(events[0].arg2_name, nullptr);
}

TEST_F(TraceTest, ClearDropsEvents) {
  { ODQ_TRACE_SPAN("x"); }
  ASSERT_FALSE(obs::trace_events().empty());
  obs::trace_clear();
  EXPECT_TRUE(obs::trace_events().empty());
}

TEST_F(TraceTest, WriteChromeTraceThrowsOnBadPath) {
  { ODQ_TRACE_SPAN("x"); }
  EXPECT_THROW(obs::write_chrome_trace("/nonexistent-dir/x.trace.json"),
               std::runtime_error);
}

TEST_F(TraceTest, BufferSaturationCountsDroppedEvents) {
  ASSERT_EQ(obs::trace_dropped_events(), 0u);
  const int flood = kForceTraceCap + 904;
  for (int i = 0; i < flood; ++i) {
    obs::trace_record("test.flood", 0.0, 1.0);
  }
  // This thread's buffer holds exactly the cap; the rest were dropped and
  // counted instead of silently lost or growing without bound.
  EXPECT_EQ(obs::trace_events().size(), static_cast<std::size_t>(kForceTraceCap));
  EXPECT_EQ(obs::trace_dropped_events(), 904u);
  const testjson::Value doc = testjson::parse(obs::trace_to_json());
  EXPECT_EQ(doc.at("droppedEvents").num, 904.0);
  // trace_clear() frees the buffers and resets the counter.
  obs::trace_clear();
  EXPECT_EQ(obs::trace_dropped_events(), 0u);
}

}  // namespace
}  // namespace odq
