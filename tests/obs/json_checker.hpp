// JSON validation shim for the obs tests. The parser itself lives in
// util/json_read.hpp (shared with the odq_bench_diff / odq_fidelity tools);
// this header keeps the tests' historical odq::testjson names.
#pragma once

#include "util/json_read.hpp"

namespace odq::testjson {

using Value = util::JsonValue;

inline Value parse(const std::string& text) { return util::json_parse(text); }

}  // namespace odq::testjson
