#include "core/odq.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/init.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace odq::core {
namespace {

using quant::QTensor;
using tensor::Shape;
using tensor::Tensor;

Tensor random_acts(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform_f(0, 1);
  return t;
}

Tensor random_weights(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) t[i] = rng.normal_f(0, 0.3f);
  return t;
}

TEST(OdqConv, ShapesAndScale) {
  QTensor in = quant::quantize_activations(random_acts(Shape{1, 2, 8, 8}, 1), 4);
  QTensor w = quant::quantize_weights(random_weights(Shape{3, 2, 3, 3}, 2), 4);
  OdqConfig cfg;
  OdqConvResult r = odq_conv(in, w, 1, 1, cfg);
  EXPECT_EQ(r.acc.shape(), Shape({1, 3, 8, 8}));
  EXPECT_EQ(r.mask.shape(), r.acc.shape());
  EXPECT_FLOAT_EQ(r.scale, in.scale * w.scale);
  EXPECT_EQ(r.sensitive_per_channel.size(), 3u);
}

TEST(OdqConv, RejectsWrongBitWidth) {
  QTensor in = quant::quantize_activations(random_acts(Shape{1, 1, 4, 4}, 3), 6);
  QTensor w = quant::quantize_weights(random_weights(Shape{1, 1, 3, 3}, 4), 4);
  EXPECT_THROW(odq_conv(in, w, 1, 1, OdqConfig{}), std::invalid_argument);
}

TEST(OdqConv, StatsAreConsistent) {
  QTensor in = quant::quantize_activations(random_acts(Shape{2, 3, 8, 8}, 5), 4);
  QTensor w = quant::quantize_weights(random_weights(Shape{4, 3, 3, 3}, 6), 4);
  OdqConfig cfg;
  cfg.threshold = 0.3f;
  OdqConvResult r = odq_conv(in, w, 1, 1, cfg);

  EXPECT_EQ(r.stats.outputs, 2 * 4 * 8 * 8);
  std::int64_t mask_count = 0;
  for (std::int64_t i = 0; i < r.mask.numel(); ++i) mask_count += r.mask[i];
  EXPECT_EQ(r.stats.sensitive, mask_count);
  EXPECT_EQ(r.stats.predictor_macs, r.stats.outputs * 3 * 3 * 3);
  // Executor MACs only arise from sensitive outputs; with 3x3 kernels and
  // padding, each sensitive output contributes at most C*K*K MACs.
  EXPECT_LE(r.stats.executor_macs, r.stats.sensitive * 3 * 3 * 3);

  std::int64_t per_channel_total = 0;
  for (std::int64_t c : r.sensitive_per_channel) per_channel_total += c;
  EXPECT_EQ(per_channel_total, r.stats.sensitive);
}

TEST(OdqConv, ZeroThresholdMarksEverythingWithNonzeroPredictor) {
  QTensor in = quant::quantize_activations(random_acts(Shape{1, 2, 6, 6}, 7), 4);
  QTensor w = quant::quantize_weights(random_weights(Shape{2, 2, 3, 3}, 8), 4);
  OdqConfig cfg;
  cfg.threshold = 0.0f;
  OdqConvResult r = odq_conv(in, w, 1, 1, cfg);
  // |x| >= 0 is always true.
  EXPECT_EQ(r.stats.sensitive, r.stats.outputs);
}

TEST(OdqConv, HugeThresholdMarksNothing) {
  QTensor in = quant::quantize_activations(random_acts(Shape{1, 2, 6, 6}, 9), 4);
  QTensor w = quant::quantize_weights(random_weights(Shape{2, 2, 3, 3}, 10), 4);
  OdqConfig cfg;
  cfg.threshold = 1e30f;
  OdqConvResult r = odq_conv(in, w, 1, 1, cfg);
  EXPECT_EQ(r.stats.sensitive, 0);
  EXPECT_EQ(r.stats.executor_macs, 0);
  // Output equals the predictor-only partial sums.
  for (std::int64_t i = 0; i < r.acc.numel(); ++i) {
    EXPECT_EQ(r.acc[i], r.predictor_acc[i]);
  }
}

TEST(OdqConvFloat, AppliesBias) {
  Tensor x = random_acts(Shape{1, 1, 4, 4}, 11);
  Tensor w = random_weights(Shape{2, 1, 3, 3}, 12);
  Tensor bias(Shape{2}, std::vector<float>{1.0f, -1.0f});
  Tensor no_bias;
  OdqConfig cfg;
  cfg.threshold = 0.0f;
  Tensor with = odq_conv_float(x, w, bias, 1, 1, cfg);
  Tensor without = odq_conv_float(x, w, no_bias, 1, 1, cfg);
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(with[i] - without[i], 1.0f, 1e-6f);
    EXPECT_NEAR(with[16 + i] - without[16 + i], -1.0f, 1e-6f);
  }
}

TEST(OdqExecutor, CollectsStatsPerLayer) {
  nn::Model model = nn::make_resnet(8, 10, 4);
  nn::kaiming_init(model, 13);
  model.assign_conv_ids();

  OdqConfig cfg;
  cfg.threshold = 0.3f;
  auto exec = std::make_shared<OdqConvExecutor>(cfg);
  model.set_conv_executor(exec);
  (void)model.forward(random_acts(Shape{2, 3, 16, 16}, 14), false);
  model.set_conv_executor(nullptr);

  EXPECT_EQ(exec->num_layers_seen(), model.convs().size());
  for (std::size_t i = 0; i < exec->num_layers_seen(); ++i) {
    const OdqLayerStats s = exec->layer_stats(static_cast<int>(i));
    EXPECT_EQ(s.calls, 1);
    EXPECT_GT(s.outputs, 0);
    EXPECT_GE(s.sensitive_fraction(), 0.0);
    EXPECT_LE(s.sensitive_fraction(), 1.0);
  }
}

TEST(OdqExecutor, StatsMergeAcrossCalls) {
  OdqConfig cfg;
  cfg.threshold = 0.2f;
  OdqConvExecutor exec(cfg);
  Tensor x = random_acts(Shape{1, 1, 6, 6}, 15);
  Tensor w = random_weights(Shape{1, 1, 3, 3}, 16);
  Tensor bias(Shape{1});
  (void)exec.run(x, w, bias, 1, 1, 0);
  (void)exec.run(x, w, bias, 1, 1, 0);
  EXPECT_EQ(exec.layer_stats(0).calls, 2);
  EXPECT_EQ(exec.layer_stats(0).outputs, 2 * 36);
}

TEST(OdqExecutor, CalibrationCollectsSamples) {
  OdqConfig cfg;
  OdqConvExecutor exec(cfg);
  exec.enable_calibration(true);
  Tensor x = random_acts(Shape{1, 2, 8, 8}, 17);
  Tensor w = random_weights(Shape{2, 2, 3, 3}, 18);
  Tensor bias;
  (void)exec.run(x, w, bias, 1, 1, 0);
  EXPECT_FALSE(exec.calibration_samples().empty());
  for (float v : exec.calibration_samples()) EXPECT_GE(v, 0.0f);
}

TEST(OdqExecutor, PerChannelCountsMatchStats) {
  OdqConfig cfg;
  cfg.threshold = 0.25f;
  OdqConvExecutor exec(cfg);
  Tensor x = random_acts(Shape{1, 2, 8, 8}, 19);
  Tensor w = random_weights(Shape{3, 2, 3, 3}, 20);
  Tensor bias;
  (void)exec.run(x, w, bias, 1, 1, 0);
  auto counts = exec.last_sensitive_per_channel(0);
  ASSERT_EQ(counts.size(), 3u);
  std::int64_t total = 0;
  for (std::int64_t c : counts) total += c;
  EXPECT_EQ(total, exec.layer_stats(0).sensitive);
}

TEST(OdqExecutor, UnknownLayerYieldsEmptyStats) {
  OdqConvExecutor exec(OdqConfig{});
  EXPECT_EQ(exec.layer_stats(42).outputs, 0);
  EXPECT_TRUE(exec.last_sensitive_per_channel(42).empty());
}

}  // namespace
}  // namespace odq::core
